module webrev

go 1.22
