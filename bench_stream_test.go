// Benchmarks for the streaming incremental build (see ARCHITECTURE.md,
// streaming path): batch Pipeline.Build vs Pipeline.BuildStream over the
// same materialized corpus, across in-flight caps. Both paths produce
// byte-identical repositories (pinned by TestBuildStreamMatchesBuild and
// the golden stream tests); these benchmarks measure what the bounded
// pipeline costs — or saves — in time and allocations. `make check` runs
// them once in -short mode; `make bench` produces the full numbers
// alongside BENCH_stream.json.
package webrev_test

import (
	"context"
	"testing"

	"webrev"
	"webrev/internal/corpus"
)

// benchStreamDocs sizes the benchmark corpus: small under -short (the
// `make check` smoke leg), the E9 corpus size otherwise.
func benchStreamDocs(b *testing.B) int {
	if testing.Short() {
		return 20
	}
	return 100
}

func benchStreamSources(n int) []webrev.Source {
	g := corpus.New(corpus.Options{Seed: 1})
	var out []webrev.Source
	for _, r := range g.Corpus(n) {
		out = append(out, webrev.Source{Name: r.Name, HTML: r.HTML})
	}
	return out
}

// BenchmarkBatchBuild is the baseline: the batch pipeline over a fully
// materialized corpus.
func BenchmarkBatchBuild(b *testing.B) {
	sources := benchStreamSources(benchStreamDocs(b))
	p, err := webrev.NewResumePipeline()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Build(sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamBuild runs the streaming build over the same corpus at
// several in-flight caps; the reported peak-inflight metric confirms the
// bounded-memory guarantee held while the clock ran.
func BenchmarkStreamBuild(b *testing.B) {
	sources := benchStreamSources(benchStreamDocs(b))
	for _, cap := range []int{4, 16, 0} {
		name := "cap=default"
		if cap > 0 {
			name = "cap=" + itoa(cap)
		}
		b.Run(name, func(b *testing.B) {
			coll := webrev.NewCollector()
			p, err := webrev.New(webrev.Config{
				Concepts:    webrev.ResumeConcepts(),
				Constraints: webrev.ResumeConstraints(),
				RootName:    "resume",
				MaxInFlight: cap,
				Tracer:      coll,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.BuildStream(context.Background(), webrev.SourceChan(sources)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := coll.Snapshot()
			b.ReportMetric(float64(snap.Gauges[webrev.GaugeStreamInFlightPeak]), "peak-inflight")
			b.ReportMetric(float64(snap.Gauges[webrev.GaugeStreamShards]), "shards")
		})
	}
}
