// Command webrevd serves a webrev repository over HTTP: label-path
// queries, concept/instance lookups, document retrieval, and schema/DTD
// inspection, answered lock-free from an immutable snapshot that POST
// /api/reload swaps atomically under live traffic.
//
// Serve a checkpointed repository (written by `webrev build -out DIR`):
//
//	webrevd -repo DIR [-addr :8077]
//
// Or build one in-process from the synthetic corpus:
//
//	webrevd -corpus 200 [-seed 1]
//
// Bench mode stands the same server up on a loopback port, drives a mixed
// workload with -clients concurrent clients (swapping snapshots mid-load
// when -swap-every is set), and writes latency percentiles as a
// BENCH_serve.json that cmd/benchdiff gates:
//
//	webrevd -corpus 200 -bench -clients 64 -duration 3s -swap-every 500ms -out BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/schema"
	"webrev/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "webrevd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("webrevd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8077", "listen address")
		repoDir    = fs.String("repo", "", "serve the repository checkpointed in this directory")
		corpusN    = fs.Int("corpus", 0, "build and serve a repository from this many generated resumes")
		seed       = fs.Int64("seed", 1, "corpus generator seed")
		sup        = fs.Float64("sup", 0.5, "schema support threshold for -corpus builds")
		ratio      = fs.Float64("ratio", 0.1, "support-ratio threshold for -corpus builds")
		maxResults = fs.Int("max-results", 1000, "cap on results rendered per query request")
		driftFile  = fs.String("drift", "", "publish this drift report (JSON, as written by `webrev watch`) at /api/drift")

		bench     = fs.Bool("bench", false, "run the load-test harness instead of serving")
		clients   = fs.Int("clients", 64, "concurrent clients in bench mode")
		duration  = fs.Duration("duration", 3*time.Second, "bench run length")
		swapEvery = fs.Duration("swap-every", 500*time.Millisecond, "bench: swap snapshots at this interval (0 disables)")
		workload  = fs.Int("workload", 16, "bench: distinct query paths sampled into the workload")
		out       = fs.String("out", "BENCH_serve.json", "bench: output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*repoDir == "") == (*corpusN == 0) {
		return fmt.Errorf("exactly one of -repo or -corpus is required")
	}

	load := repoSource(*repoDir, *corpusN, *seed, *sup, *ratio)
	repo, err := load()
	if err != nil {
		return err
	}

	coll := obs.NewCollector()
	srv := serve.NewServer(repo, serve.Options{
		Tracer:     coll,
		MaxResults: *maxResults,
		Reload:     load,
	})
	obs.RegisterDebug(srv.Mux(), coll)

	if *driftFile != "" {
		d, err := loadDrift(*driftFile)
		if err != nil {
			return err
		}
		srv.SetDrift(d)
	}

	if *bench {
		return runBench(w, srv, load, benchConfig{
			clients:   *clients,
			duration:  *duration,
			swapEvery: *swapEvery,
			workload:  *workload,
			out:       *out,
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "webrevd: serving %d documents, %d paths on %s (gen %d)\n",
		srv.Snapshot().Docs(), len(srv.Snapshot().Frozen().Paths()), ln.Addr(), srv.Snapshot().Gen())
	return http.Serve(ln, srv.Handler())
}

// loadDrift reads a drift report (as `webrev watch -drift FILE` writes it)
// and rejects versions this build does not understand.
func loadDrift(path string) (*schema.Drift, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drift report: %w", err)
	}
	d := &schema.Drift{}
	if err := json.Unmarshal(data, d); err != nil {
		return nil, fmt.Errorf("drift report %s: %w", path, err)
	}
	if d.Version != schema.DriftVersion {
		return nil, fmt.Errorf("drift report %s: version %d not supported (want %d)",
			path, d.Version, schema.DriftVersion)
	}
	return d, nil
}

// repoSource returns the loader the server boots from and /api/reload
// re-invokes: a checkpoint directory read, or a full corpus pipeline run.
func repoSource(dir string, n int, seed int64, sup, ratio float64) func() (*repository.Repository, error) {
	if dir != "" {
		return func() (*repository.Repository, error) {
			return repository.Load(dir)
		}
	}
	return func() (*repository.Repository, error) {
		p, err := core.New(core.Config{
			Concepts:       concept.ResumeConcepts(),
			Constraints:    concept.ResumeConstraints(),
			RootName:       "resume",
			SupThreshold:   sup,
			RatioThreshold: ratio,
		})
		if err != nil {
			return nil, err
		}
		resumes := corpus.New(corpus.Options{Seed: seed}).Corpus(n)
		srcs := make([]core.Source, len(resumes))
		for i, r := range resumes {
			srcs[i] = core.Source{Name: r.Name, HTML: r.HTML}
		}
		return p.BuildRepository(srcs)
	}
}

type benchConfig struct {
	clients   int
	duration  time.Duration
	swapEvery time.Duration
	workload  int
	out       string
}

// runBench serves on a loopback port, drives the load harness against it,
// and writes the percentiles in the shared BENCH_*.json shape so the CI
// bench-regression job diffs serving latency like any other benchmark.
func runBench(w io.Writer, srv *serve.Server, load func() (*repository.Repository, error), cfg benchConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	opts := serve.LoadOptions{
		Clients:  cfg.clients,
		Duration: cfg.duration,
		Workload: srv.DefaultWorkload(cfg.workload),
	}
	if cfg.swapEvery > 0 {
		opts.SwapEvery = cfg.swapEvery
		opts.SwapRepo = func() *repository.Repository {
			repo, err := load()
			if err != nil {
				panic(fmt.Sprintf("bench swap reload: %v", err))
			}
			return repo
		}
	}
	res, err := serve.LoadTest(srv, "http://"+ln.Addr().String(), opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "webrevd bench: %s\n", res)
	if res.Errors > 0 {
		return fmt.Errorf("bench: %d of %d requests failed", res.Errors, res.Requests)
	}

	// Latencies land as ns_per_op under benchmark-style names; the
	// throughput entry is mean inter-arrival time (1e9/rps), so lower is
	// better for every entry and benchdiff's ns/op gate applies uniformly.
	file := &obs.BenchFile{
		Meta: obs.CollectMeta("."),
		Benchmarks: map[string]obs.BenchResult{
			"ServeMixed/p50":        {NsPerOp: float64(res.P50.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/p90":        {NsPerOp: float64(res.P90.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/p99":        {NsPerOp: float64(res.P99.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/mean":       {NsPerOp: float64(res.Mean.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/throughput": {NsPerOp: 1e9 / res.Throughput, Iterations: res.Requests},
		},
	}
	if cfg.out == "" || cfg.out == "-" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}
	if err := file.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (clients=%d duration=%s swaps=%d)\n", cfg.out, res.Clients, res.Duration.Round(time.Millisecond), res.Swaps)
	return nil
}
