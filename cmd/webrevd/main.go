// Command webrevd serves a webrev repository over HTTP: label-path
// queries, concept/instance lookups, document retrieval, and schema/DTD
// inspection, answered lock-free from an immutable snapshot that POST
// /api/reload swaps atomically under live traffic.
//
// The daemon is production-hardened: admission control sheds excess load
// with 503 + Retry-After (-max-inflight/-max-queue/-queue-wait), every
// request carries a deadline (-request-timeout, client-overridable with
// ?timeout= up to -max-request-timeout), handler panics become 500s
// without killing the process, the listener enforces header/write/idle
// timeouts and a header-size cap, and SIGTERM/SIGINT drain in-flight
// requests (up to -drain-timeout) before a clean exit 0. /healthz is
// liveness; /readyz is readiness (503 until the first snapshot installs
// and again while draining).
//
// Serve a checkpointed repository (written by `webrev build -out DIR`):
//
//	webrevd -repo DIR [-addr :8077]
//
// Or build one in-process from the synthetic corpus:
//
//	webrevd -corpus 200 [-seed 1]
//
// Or follow a checkpoint directory that a continuous-operation watch loop
// (`webrev watch -out DIR`) rewrites each cycle — webrevd polls it,
// validates every candidate, swaps in good ones, and keeps serving the
// last good generation (with backoff) across corrupt or mid-write states:
//
//	webrevd -follow DIR [-follow-interval 2s]
//
// Bench mode stands the same server up on a loopback port, drives a mixed
// workload with -clients concurrent clients (swapping snapshots mid-load
// when -swap-every is set), then an overload pass at a deliberately tiny
// admission limit, and writes latency percentiles plus overload
// goodput/shed rows as a BENCH_serve.json that cmd/benchdiff gates:
//
//	webrevd -corpus 200 -bench -clients 64 -duration 3s -swap-every 500ms -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/faultinject"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/schema"
	"webrev/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "webrevd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("webrevd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8077", "listen address")
		repoDir    = fs.String("repo", "", "serve the repository checkpointed in this directory")
		corpusN    = fs.Int("corpus", 0, "build and serve a repository from this many generated resumes")
		followDir  = fs.String("follow", "", "follow a repository checkpoint directory (e.g. `webrev watch -out DIR`): poll, validate, and swap in each good rewrite")
		followInt  = fs.Duration("follow-interval", 2*time.Second, "follow mode poll cadence (failure backoff doubles from here)")
		seed       = fs.Int64("seed", 1, "corpus generator seed")
		sup        = fs.Float64("sup", 0.5, "schema support threshold for -corpus builds")
		ratio      = fs.Float64("ratio", 0.1, "support-ratio threshold for -corpus builds")
		maxResults = fs.Int("max-results", 1000, "cap on results rendered per query request")
		driftFile  = fs.String("drift", "", "publish this drift report (JSON, as written by `webrev watch`) at /api/drift")
		metricsOut = fs.String("metrics", "", "write the obs metrics snapshot to this file when the daemon drains")

		// Overload & robustness knobs (see ARCHITECTURE.md, "Overload & drain").
		maxInFlight   = fs.Int("max-inflight", 256, "admitted /api requests executing concurrently (0 = unlimited)")
		maxQueue      = fs.Int("max-queue", 0, "requests waiting for an in-flight slot (0 = same as -max-inflight, negative = no queue)")
		queueWait     = fs.Duration("queue-wait", 100*time.Millisecond, "max time a queued request waits before being shed 503")
		reqTimeout    = fs.Duration("request-timeout", 10*time.Second, "default per-request deadline (?timeout= overrides, capped by -max-request-timeout)")
		maxReqTimeout = fs.Duration("max-request-timeout", time.Minute, "upper bound on client-requested ?timeout=")
		readHeaderTO  = fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		writeTO       = fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTO        = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		maxHeader     = fs.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
		drainTO       = fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM/SIGINT")

		bench     = fs.Bool("bench", false, "run the load-test harness instead of serving")
		clients   = fs.Int("clients", 64, "concurrent clients in bench mode")
		duration  = fs.Duration("duration", 3*time.Second, "bench run length")
		swapEvery = fs.Duration("swap-every", 500*time.Millisecond, "bench: swap snapshots at this interval (0 disables)")
		workload  = fs.Int("workload", 16, "bench: distinct query paths sampled into the workload")
		out       = fs.String("out", "BENCH_serve.json", "bench: output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*repoDir != "", *corpusN != 0, *followDir != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of -repo, -corpus or -follow is required")
	}

	coll := obs.NewCollector()
	opts := serve.Options{
		Tracer:            coll,
		MaxResults:        *maxResults,
		MaxInFlight:       *maxInFlight,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		RequestTimeout:    *reqTimeout,
		MaxRequestTimeout: *maxReqTimeout,
	}

	var repo *repository.Repository
	load := repoSource(*repoDir, *corpusN, *seed, *sup, *ratio)
	if *followDir != "" {
		// Follow mode: the loop installs snapshots; /api/reload forces an
		// immediate validated attempt against the same directory.
		load = func() (*repository.Repository, error) {
			return repository.Load(*followDir)
		}
	} else {
		var err error
		if repo, err = load(); err != nil {
			return err
		}
	}
	opts.Reload = load
	srv := serve.NewServer(repo, opts)
	obs.RegisterDebug(srv.Mux(), coll)

	if *driftFile != "" {
		d, err := loadDrift(*driftFile)
		if err != nil {
			return err
		}
		srv.SetDrift(d)
	}

	if *bench {
		return runBench(w, srv, load, benchConfig{
			clients:   *clients,
			duration:  *duration,
			swapEvery: *swapEvery,
			workload:  *workload,
			out:       *out,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	if *followDir != "" {
		go srv.Follow(ctx, serve.FollowOptions{
			Load:     load,
			Interval: *followInt,
			Fingerprint: func() (string, error) {
				return serve.DirFingerprint(*followDir)
			},
			OnSwap: func(gen uint64, fp string) {
				fmt.Fprintf(w, "webrevd: follow %s: installed gen %d (%s)\n", *followDir, gen, fp)
			},
			OnReject: func(err error) {
				fmt.Fprintf(w, "webrevd: follow %s: rejected reload, keeping gen %d: %v\n",
					*followDir, snapshotGen(srv), err)
			},
		})
	}

	d := serve.NewDaemon(srv, serve.DaemonOptions{
		ReadHeaderTimeout: *readHeaderTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    *maxHeader,
		DrainTimeout:      *drainTO,
		OnDrained: func() {
			if *metricsOut != "" {
				if err := coll.Snapshot().WriteFile(*metricsOut); err != nil {
					fmt.Fprintf(w, "webrevd: metrics flush: %v\n", err)
				}
			}
		},
	})
	go func() {
		<-ctx.Done()
		fmt.Fprintln(w, "webrevd: draining")
		if err := d.Drain(context.Background()); err != nil {
			fmt.Fprintln(w, "webrevd:", err)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ix := srv.Snapshot(); ix != nil {
		fmt.Fprintf(w, "webrevd: serving %d documents, %d paths on %s (gen %d)\n",
			ix.Docs(), len(ix.Frozen().Paths()), ln.Addr(), ix.Gen())
	} else {
		fmt.Fprintf(w, "webrevd: pending on %s (following %s; /readyz 503 until the first valid snapshot)\n",
			ln.Addr(), *followDir)
	}
	if err := d.Serve(ln); err != nil {
		return err
	}
	fmt.Fprintln(w, "webrevd: drained, exiting")
	return nil
}

// snapshotGen reports the current generation for log lines (0 = pending).
func snapshotGen(s *serve.Server) uint64 {
	if ix := s.Snapshot(); ix != nil {
		return ix.Gen()
	}
	return 0
}

// loadDrift reads a drift report (as `webrev watch -drift FILE` writes it)
// and rejects versions this build does not understand.
func loadDrift(path string) (*schema.Drift, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drift report: %w", err)
	}
	d := &schema.Drift{}
	if err := json.Unmarshal(data, d); err != nil {
		return nil, fmt.Errorf("drift report %s: %w", path, err)
	}
	if d.Version != schema.DriftVersion {
		return nil, fmt.Errorf("drift report %s: version %d not supported (want %d)",
			path, d.Version, schema.DriftVersion)
	}
	return d, nil
}

// repoSource returns the loader the server boots from and /api/reload
// re-invokes: a checkpoint directory read, or a full corpus pipeline run.
func repoSource(dir string, n int, seed int64, sup, ratio float64) func() (*repository.Repository, error) {
	if dir != "" {
		return func() (*repository.Repository, error) {
			return repository.Load(dir)
		}
	}
	return func() (*repository.Repository, error) {
		p, err := core.New(core.Config{
			Concepts:       concept.ResumeConcepts(),
			Constraints:    concept.ResumeConstraints(),
			RootName:       "resume",
			SupThreshold:   sup,
			RatioThreshold: ratio,
		})
		if err != nil {
			return nil, err
		}
		resumes := corpus.New(corpus.Options{Seed: seed}).Corpus(n)
		srcs := make([]core.Source, len(resumes))
		for i, r := range resumes {
			srcs[i] = core.Source{Name: r.Name, HTML: r.HTML}
		}
		return p.BuildRepository(srcs)
	}
}

type benchConfig struct {
	clients   int
	duration  time.Duration
	swapEvery time.Duration
	workload  int
	out       string
}

// overloadInFlight is the deliberately tiny admission limit of the bench
// overload pass: with per-request delay injection it pins capacity far
// below the offered load, so the pass measures shedding behavior, not the
// hardware.
const overloadInFlight = 4

// runBench serves on a loopback port, drives the load harness against it,
// and writes the percentiles in the shared BENCH_*.json shape so the CI
// bench-regression job diffs serving latency like any other benchmark.
// A second, shorter pass drives 4x-overload into a tight admission limit
// and records admitted-request percentiles and goodput (ServeOverload/*)
// plus the shed rate (ServeShed/rate, informational).
func runBench(w io.Writer, srv *serve.Server, load func() (*repository.Repository, error), cfg benchConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	opts := serve.LoadOptions{
		Clients:  cfg.clients,
		Duration: cfg.duration,
		Workload: srv.DefaultWorkload(cfg.workload),
	}
	if cfg.swapEvery > 0 {
		opts.SwapEvery = cfg.swapEvery
		opts.SwapRepo = func() *repository.Repository {
			repo, err := load()
			if err != nil {
				panic(fmt.Sprintf("bench swap reload: %v", err))
			}
			return repo
		}
	}
	res, err := serve.LoadTest(srv, "http://"+ln.Addr().String(), opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "webrevd bench: %s\n", res)
	if res.Errors > 0 {
		return fmt.Errorf("bench: %d of %d requests failed", res.Errors, res.Requests)
	}

	over, err := runOverloadBench(srv.Snapshot(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "webrevd overload: %s (shed rate %.0f%%)\n", over, 100*over.ShedRate())

	// Latencies land as ns_per_op under benchmark-style names; the
	// throughput entries are mean inter-arrival time (1e9/rps), so lower
	// is better for every entry and benchdiff's ns/op gate applies
	// uniformly. ServeShed/rate is a percentage, recorded for the record
	// but excluded from the CI -match (its steady state is by design high).
	file := &obs.BenchFile{
		Meta: obs.CollectMeta("."),
		Benchmarks: map[string]obs.BenchResult{
			"ServeMixed/p50":        {NsPerOp: float64(res.P50.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/p90":        {NsPerOp: float64(res.P90.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/p99":        {NsPerOp: float64(res.P99.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/mean":       {NsPerOp: float64(res.Mean.Nanoseconds()), Iterations: res.Requests},
			"ServeMixed/throughput": {NsPerOp: 1e9 / res.Throughput, Iterations: res.Requests},
			"ServeOverload/p99":     {NsPerOp: float64(over.P99.Nanoseconds()), Iterations: over.Admitted},
			"ServeOverload/goodput": {NsPerOp: 1e9 / over.Goodput, Iterations: over.Admitted},
			"ServeShed/rate":        {NsPerOp: 100 * over.ShedRate(), Iterations: over.Requests},
		},
	}
	if cfg.out == "" || cfg.out == "-" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
		return nil
	}
	if err := file.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (clients=%d duration=%s swaps=%d)\n", cfg.out, res.Clients, res.Duration.Round(time.Millisecond), res.Swaps)
	return nil
}

// runOverloadBench stands up a second server over the same snapshot with
// a tiny admission limit and slow (delay-injected) handlers, then offers
// roughly 4x its capacity: admitted-request p99 must stay bounded by the
// queue wait while the excess sheds.
func runOverloadBench(ix *serve.Index, cfg benchConfig) (*serve.LoadResult, error) {
	if ix == nil {
		return nil, fmt.Errorf("bench: no snapshot to run the overload pass against")
	}
	srv := serve.NewServer(ix.Repo(), serve.Options{
		MaxInFlight: overloadInFlight,
		MaxQueue:    overloadInFlight,
		QueueWait:   20 * time.Millisecond,
		Faults: faultinject.NewStage(faultinject.StageConfig{
			Seed:         1,
			Rate:         1,
			Kinds:        []faultinject.StageKind{faultinject.StageDelay},
			FaultsPerKey: -1,
			Delay:        2 * time.Millisecond,
		}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	dur := cfg.duration / 2
	if dur < 500*time.Millisecond {
		dur = 500 * time.Millisecond
	}
	return serve.LoadTest(srv, "http://"+ln.Addr().String(), serve.LoadOptions{
		// 4x the admitted concurrency (slots + queue) keeps the server
		// saturated: every slot full, every queue position contended.
		Clients:  4 * (overloadInFlight + overloadInFlight),
		Duration: dur,
		Workload: srv.DefaultWorkload(8),
	})
}
