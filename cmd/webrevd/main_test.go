package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"webrev/internal/obs"
	"webrev/internal/schema"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("no source flags accepted")
	}
	if err := run([]string{"-repo", "x", "-corpus", "10"}, io.Discard); err == nil {
		t.Fatal("both -repo and -corpus accepted")
	}
	if err := run([]string{"-repo", "x", "-follow", "y"}, io.Discard); err == nil {
		t.Fatal("both -repo and -follow accepted")
	}
	if err := run([]string{"-corpus", "10", "-follow", "y"}, io.Discard); err == nil {
		t.Fatal("both -corpus and -follow accepted")
	}
	if err := run([]string{"-badflag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBenchFromCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := run([]string{
		"-corpus", "20", "-bench",
		"-clients", "4", "-duration", "300ms", "-swap-every", "100ms",
		"-out", out,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	f, err := obs.ReadBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ServeMixed/p50", "ServeMixed/p90", "ServeMixed/p99",
		"ServeMixed/mean", "ServeMixed/throughput",
		"ServeOverload/p99", "ServeOverload/goodput",
	} {
		res, ok := f.Benchmarks[name]
		if !ok || res.NsPerOp <= 0 || res.Iterations == 0 {
			t.Errorf("benchmark %s missing or empty: %+v", name, res)
		}
	}
	if f.Meta == nil || f.Meta.GoVersion == "" {
		t.Errorf("meta not stamped: %+v", f.Meta)
	}
}

func TestRepoSourceCheckpointRoundTrip(t *testing.T) {
	build := repoSource("", 12, 7, 0.5, 0.1)
	repo, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() == 0 {
		t.Fatal("corpus build produced empty repository")
	}
	dir := t.TempDir()
	if err := repo.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := repoSource(dir, 0, 0, 0, 0)()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("checkpoint round trip: %d docs, want %d", loaded.Len(), repo.Len())
	}
}

func TestLoadDrift(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadDrift(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing drift file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDrift(bad); err == nil {
		t.Fatal("malformed drift file accepted")
	}
	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"version":99,"cycle":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDrift(future); err == nil {
		t.Fatal("unknown drift version accepted")
	}
	good := filepath.Join(dir, "drift.json")
	blob, err := json.Marshal(&schema.Drift{Version: schema.DriftVersion, Cycle: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDrift(good)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycle != 5 || d.Version != schema.DriftVersion {
		t.Fatalf("drift round-trip: %+v", d)
	}
}
