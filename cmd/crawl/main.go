// Command crawl demonstrates the acquisition path of the paper's system: it
// serves a generated resume site on localhost, crawls it with the topical
// crawler, and reports which pages passed the resume filter.
//
// Usage:
//
//	crawl [-n 30] [-distractors 10] [-seed 1] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"

	"webrev/internal/corpus"
	"webrev/internal/crawler"
)

func main() {
	n := flag.Int("n", 30, "resumes on the site")
	distractors := flag.Int("distractors", 10, "off-topic pages on the site")
	seed := flag.Int64("seed", 1, "corpus seed")
	workers := flag.Int("workers", 8, "concurrent fetches")
	flag.Parse()

	if err := run(*n, *distractors, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(n, distractors int, seed int64, workers int) error {
	g := corpus.New(corpus.Options{Seed: seed})
	var off []string
	for i := 0; i < distractors; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(g.Corpus(n), off)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: site.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	seedURL := "http://" + ln.Addr().String() + "/"
	fmt.Printf("serving %d pages at %s\n", site.PageCount(), seedURL)

	c := &crawler.Crawler{Workers: workers, Filter: crawler.ResumeFilter(3)}
	pages, err := c.Crawl(seedURL)
	if err != nil {
		return err
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].URL < pages[j].URL })
	onTopic := 0
	for _, p := range pages {
		mark := " "
		if p.OnTopic {
			mark = "*"
			onTopic++
		}
		fmt.Printf("  %s %s (%d bytes)\n", mark, p.URL, len(p.HTML))
	}
	fmt.Printf("fetched %d pages, %d on topic (marked *)\n", len(pages), onTopic)
	return nil
}
