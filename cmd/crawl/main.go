// Command crawl demonstrates the acquisition path of the paper's system: it
// serves a generated resume site on localhost, crawls it with the topical
// crawler, and reports which pages passed the resume filter plus a crawl
// report (fetched/failed/retried/skipped, error classes, bytes, wall time).
//
// The fetch layer is fault tolerant: per-request timeouts, bounded retries
// with exponential backoff for transient failures, an error budget, and
// Ctrl-C cancellation. With -fault-rate > 0 the served site is wrapped in
// the deterministic fault-injection middleware so the robustness machinery
// can be watched working.
//
// Usage:
//
//	crawl [-n 30] [-distractors 10] [-seed 1] [-workers 8]
//	      [-timeout 10s] [-retries 2] [-max-pages 0] [-max-failures 0]
//	      [-fault-rate 0] [-fault-seed 1]
//	      [-stream] [-inflight 0] [-checkpoint dir] [-quarantine dir]
//	      [-metrics snap.json] [-pprof addr]
//
// With -stream the crawl feeds the full pipeline as it runs (crawl-and-
// build): on-topic pages stream through conversion and mergeable schema
// statistics while the crawler is still fetching, the DTD is derived once
// the crawl ends, and the conformed repository is reported — without ever
// materializing the intermediate corpus. -inflight caps how many documents
// the streaming build holds at once (its backpressure bound; 0 picks the
// default of 4x the conversion workers). With -checkpoint DIR the
// streaming build snapshots its state there and a rerun after Ctrl-C
// resumes instead of restarting; -quarantine DIR persists documents the
// build dropped, for `webrev quarantine`. See ARCHITECTURE.md.
//
// -metrics FILE writes a JSON snapshot of the run's stage timing and
// counters (the same format the pipeline's observability layer emits);
// -pprof ADDR serves /debug/pprof, /debug/vars and /metrics on ADDR while
// the crawl runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"time"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
	"webrev/internal/crawler/faultinject"
	"webrev/internal/obs"
)

type options struct {
	n           int
	distractors int
	seed        int64
	workers     int
	timeout     time.Duration
	retries     int
	maxPages    int
	maxFailures int
	faultRate   float64
	faultSeed   int64
	stream      bool
	inFlight    int
	checkpoint  string
	quarantine  string
	metricsOut  string
	pprofAddr   string
}

func main() {
	var o options
	flag.IntVar(&o.n, "n", 30, "resumes on the site")
	flag.IntVar(&o.distractors, "distractors", 10, "off-topic pages on the site")
	flag.Int64Var(&o.seed, "seed", 1, "corpus seed")
	flag.IntVar(&o.workers, "workers", 8, "concurrent fetches (fixed worker pool)")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request timeout")
	flag.IntVar(&o.retries, "retries", 2, "retries per URL for transient failures (negative disables)")
	flag.IntVar(&o.maxPages, "max-pages", 0, "page budget (0 = crawler default)")
	flag.IntVar(&o.maxFailures, "max-failures", 0, "error budget: stop after this many failed URLs (0 = unlimited)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient faults on this fraction of paths (demo)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed")
	flag.BoolVar(&o.stream, "stream", false, "crawl-and-build: stream on-topic pages through the full pipeline while crawling")
	flag.IntVar(&o.inFlight, "inflight", 0, "streaming build's in-flight document cap (0 = 4x conversion workers)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "with -stream: snapshot build state to this directory and resume from it on rerun")
	flag.StringVar(&o.quarantine, "quarantine", "", "persist documents the build quarantined to this directory (see `webrev quarantine`)")
	flag.StringVar(&o.metricsOut, "metrics", "", "write a JSON metrics snapshot of the crawl to this file")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve /debug/pprof, /debug/vars and /metrics on this address during the crawl")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	g := corpus.New(corpus.Options{Seed: o.seed})
	var off []string
	for i := 0; i < o.distractors; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(g.Corpus(o.n), off)

	handler := http.Handler(site.Handler())
	var inj *faultinject.Injector
	if o.faultRate > 0 {
		inj = faultinject.New(handler, faultinject.Config{
			Seed: o.faultSeed,
			Rate: o.faultRate,
		})
		handler = inj
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	seedURL := "http://" + ln.Addr().String() + "/"
	fmt.Printf("serving %d pages at %s\n", site.PageCount(), seedURL)
	if inj != nil {
		fmt.Printf("injecting transient faults on ~%.0f%% of paths (seed %d)\n",
			o.faultRate*100, o.faultSeed)
	}

	coll := obs.NewCollector()
	var tr obs.Tracer
	if o.metricsOut != "" || o.pprofAddr != "" || o.stream {
		tr = coll
	}
	if o.pprofAddr != "" {
		dbg, err := obs.ServeDebug(o.pprofAddr, coll)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint at http://%s/debug/pprof/ (metrics at /metrics)\n", dbg.Addr)
	}

	c := &crawler.Crawler{
		Workers:     o.workers,
		MaxPages:    o.maxPages,
		MaxFailures: o.maxFailures,
		Filter:      crawler.ResumeFilter(3),
		Fetch: crawler.FetchPolicy{
			Timeout:    o.timeout,
			MaxRetries: o.retries,
		},
		Tracer: tr,
	}
	writeMetrics := func() error {
		if o.metricsOut == "" {
			return nil
		}
		if err := coll.Snapshot().WriteFile(o.metricsOut); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot to %s\n", o.metricsOut)
		return nil
	}
	if o.stream {
		if err := runStream(ctx, o, c, seedURL, coll); err != nil {
			return err
		}
		if inj != nil {
			fmt.Printf("faults injected: %d %v\n", inj.Total(), inj.Injected())
		}
		return writeMetrics()
	}

	pages, rep, err := c.CrawlContext(ctx, seedURL)
	if err != nil {
		fmt.Printf("crawl ended early: %v\nreport: %s\n", err, rep)
		return writeMetrics()
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].URL < pages[j].URL })
	onTopic := 0
	for _, p := range pages {
		mark := " "
		if p.OnTopic {
			mark = "*"
			onTopic++
		}
		trunc := ""
		if p.Truncated {
			trunc = " [truncated]"
		}
		fmt.Printf("  %s %s (%d bytes)%s\n", mark, p.URL, len(p.HTML), trunc)
	}
	fmt.Printf("fetched %d pages, %d on topic (marked *)\n", len(pages), onTopic)
	fmt.Printf("report: %s\n", rep)
	if tr != nil {
		fmt.Print(coll.Snapshot().Summary())
	}
	if inj != nil {
		fmt.Printf("faults injected: %d %v\n", inj.Total(), inj.Injected())
	}
	return writeMetrics()
}

// runStream is the crawl-and-build path: the crawler's on-topic pages feed
// the streaming pipeline while the crawl is still running, so no
// intermediate corpus is ever materialized.
func runStream(ctx context.Context, o options, c *crawler.Crawler, seedURL string, coll *obs.Collector) error {
	p, err := core.New(core.Config{
		Concepts:      concept.ResumeConcepts(),
		Constraints:   concept.ResumeConstraints(),
		RootName:      "resume",
		MaxInFlight:   o.inFlight,
		Tracer:        coll,
		CheckpointDir: o.checkpoint,
		QuarantineDir: o.quarantine,
	})
	if err != nil {
		return err
	}
	src, wait := core.AcquireStream(ctx, c, seedURL)
	repo, buildErr := p.BuildStream(ctx, src)
	rep, crawlErr := wait()
	fmt.Printf("report: %s\n", rep)
	if crawlErr != nil {
		fmt.Printf("crawl ended early: %v\n", crawlErr)
	}
	if buildErr != nil {
		fmt.Printf("streaming build ended early: %v\n", buildErr)
		return nil
	}
	snap := coll.Snapshot()
	fmt.Printf("crawled and built %d on-topic documents; schema %d paths; DTD %d elements\n",
		len(repo.Docs), len(repo.Schema.Paths()), repo.DTD.Len())
	if len(repo.Quarantined) > 0 {
		fmt.Printf("quarantined %d of %d documents (failure ratio %.1f%%)\n",
			len(repo.Quarantined), repo.TotalInput, repo.FailureRatio()*100)
	}
	fmt.Printf("peak in-flight documents %d (cap %d); %d statistic shards merged\n",
		snap.Gauges[obs.GaugeStreamInFlightPeak], o.inFlight, snap.Gauges[obs.GaugeStreamShards])
	fmt.Printf("pre-mapping conformance %.1f%%, total mapping cost %d edits\n",
		repo.ConformanceRate()*100, repo.TotalMapCost())
	fmt.Print(snap.Summary())
	fmt.Print(repo.DTD.Render())
	return nil
}
