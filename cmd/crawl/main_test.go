package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webrev/internal/obs"
)

func baseOptions() options {
	return options{
		n:           5,
		distractors: 2,
		seed:        1,
		workers:     4,
		timeout:     5 * time.Second,
		retries:     2,
	}
}

func TestRunCrawlDemo(t *testing.T) {
	// Smoke test: the demo serves a site, crawls it and reports without
	// error (output goes to stdout, which the test harness captures).
	if err := run(context.Background(), baseOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrawlDemoMetrics(t *testing.T) {
	o := baseOptions()
	o.metricsOut = filepath.Join(t.TempDir(), "crawl.json")
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(o.metricsOut)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stages[obs.StageCrawl].Count != 1 {
		t.Fatalf("crawl stage not recorded: %v", snap.Stages)
	}
	if snap.Counters[obs.CtrCrawlFetched] == 0 {
		t.Fatalf("crawl.fetched counter empty: %v", snap.Counters)
	}
}

func TestRunCrawlDemoWithFaults(t *testing.T) {
	o := baseOptions()
	o.faultRate = 0.3
	o.faultSeed = 2
	o.timeout = 500 * time.Millisecond
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrawlDemoCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-canceled context must not error out the demo; it prints the
	// partial report instead.
	if err := run(ctx, baseOptions()); err != nil {
		t.Fatal(err)
	}
}
