package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webrev/internal/obs"
)

func baseOptions() options {
	return options{
		n:           5,
		distractors: 2,
		seed:        1,
		workers:     4,
		timeout:     5 * time.Second,
		retries:     2,
	}
}

func TestRunCrawlDemo(t *testing.T) {
	// Smoke test: the demo serves a site, crawls it and reports without
	// error (output goes to stdout, which the test harness captures).
	if err := run(context.Background(), baseOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrawlDemoMetrics(t *testing.T) {
	o := baseOptions()
	o.metricsOut = filepath.Join(t.TempDir(), "crawl.json")
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(o.metricsOut)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stages[obs.StageCrawl].Count != 1 {
		t.Fatalf("crawl stage not recorded: %v", snap.Stages)
	}
	if snap.Counters[obs.CtrCrawlFetched] == 0 {
		t.Fatalf("crawl.fetched counter empty: %v", snap.Counters)
	}
}

func TestRunCrawlDemoWithFaults(t *testing.T) {
	o := baseOptions()
	o.faultRate = 0.3
	o.faultSeed = 2
	o.timeout = 500 * time.Millisecond
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrawlDemoStream(t *testing.T) {
	o := baseOptions()
	o.stream = true
	o.inFlight = 3
	o.metricsOut = filepath.Join(t.TempDir(), "stream.json")
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(o.metricsOut)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming build ran the whole pipeline inside the crawl.
	if snap.Counters[obs.CtrDocsConverted] != 5 {
		t.Fatalf("docs.converted = %d, want 5", snap.Counters[obs.CtrDocsConverted])
	}
	if peak := snap.Gauges[obs.GaugeStreamInFlightPeak]; peak < 1 || peak > 3 {
		t.Fatalf("peak in-flight = %d, want within (0, 3]", peak)
	}
	if snap.Stages[obs.StageMerge].Count != 1 {
		t.Fatalf("merge stage not recorded: %v", snap.Stages)
	}
}

func TestRunCrawlDemoStreamCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := baseOptions()
	o.stream = true
	// Like the batch demo, cancellation reports partial progress instead of
	// failing the command.
	if err := run(ctx, o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrawlDemoCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-canceled context must not error out the demo; it prints the
	// partial report instead.
	if err := run(ctx, baseOptions()); err != nil {
		t.Fatal(err)
	}
}
