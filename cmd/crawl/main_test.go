package main

import "testing"

func TestRunCrawlDemo(t *testing.T) {
	// Smoke test: the demo serves a site, crawls it and reports without
	// error (output goes to stdout, which the test harness captures).
	if err := run(5, 2, 1, 4); err != nil {
		t.Fatal(err)
	}
}
