package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run(5, 1, dir, true, 2, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	htmls, truths, pages := 0, 0, 0
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".truth.xml"):
			truths++
		case strings.HasPrefix(e.Name(), "resume-") && strings.HasSuffix(e.Name(), ".html"):
			htmls++
		case strings.HasPrefix(e.Name(), "page-"):
			pages++
		}
	}
	if htmls != 5 || truths != 5 || pages != 2 {
		t.Fatalf("files: %d html, %d truth, %d pages", htmls, truths, pages)
	}
	// Deterministic: same seed reproduces byte-identical documents.
	dir2 := t.TempDir()
	if err := run(5, 1, dir2, false, 0, false); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "resume-0001.html"))
	b, _ := os.ReadFile(filepath.Join(dir2, "resume-0001.html"))
	if string(a) != string(b) {
		t.Fatal("same seed produced different corpus")
	}
}

func TestRunBadDir(t *testing.T) {
	if err := run(1, 1, "/proc/definitely/not/writable", false, 0, false); err == nil {
		t.Fatal("expected error for unwritable directory")
	}
}

func TestRunStampSkipsWhenFresh(t *testing.T) {
	dir := t.TempDir()
	if err := run(3, 7, dir, false, 0, false); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(dir, "resume-0001.html")
	if err := os.WriteFile(doc, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Matching stamp: -if-stale skips, leaving the (tampered) file alone.
	if err := run(3, 7, dir, false, 0, true); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(doc); string(b) != "tampered" {
		t.Fatal("fresh stamp should have skipped regeneration")
	}
	// Different parameters: the stamp mismatches and the corpus regenerates.
	if err := run(3, 8, dir, false, 0, true); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(doc); string(b) == "tampered" {
		t.Fatal("stale stamp should have regenerated the corpus")
	}
}

func TestDistractorNote(t *testing.T) {
	if distractorNote(0) != "" {
		t.Fatal("zero distractors should yield empty note")
	}
	if !strings.Contains(distractorNote(3), "3") {
		t.Fatal("note should mention count")
	}
}
