// Command corpusgen writes a synthetic resume corpus to disk: the
// heterogeneous HTML documents plus, optionally, the ground-truth XML trees
// used by the accuracy experiment.
//
// Usage:
//
//	corpusgen -n 100 -seed 1 -out ./corpus [-truth] [-if-stale]
//
// A generation run stamps the output directory (.corpusgen-stamp) with the
// generator version and parameters; -if-stale skips regeneration when the
// stamp already matches, so CI can cache the corpus between runs keyed on
// the stamp inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"webrev/internal/corpus"
	"webrev/internal/xmlout"
)

// generatorVersion keys the output cache: bump it whenever
// internal/corpus changes what any (n, seed) pair produces, so stale
// cached corpora regenerate.
const generatorVersion = 1

// stampFile marks a completed generation run and its parameters.
const stampFile = ".corpusgen-stamp"

func main() {
	n := flag.Int("n", 100, "number of resumes to generate")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same corpus)")
	out := flag.String("out", "corpus", "output directory")
	truth := flag.Bool("truth", false, "also write ground-truth XML next to each document")
	distractors := flag.Int("distractors", 0, "additional off-topic pages")
	ifStale := flag.Bool("if-stale", false, "skip generation when the output directory's stamp already matches")
	flag.Parse()

	if err := run(*n, *seed, *out, *truth, *distractors, *ifStale); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, out string, truth bool, distractors int, ifStale bool) error {
	stamp := fmt.Sprintf("corpusgen v%d n=%d seed=%d truth=%t distractors=%d\n",
		generatorVersion, n, seed, truth, distractors)
	stampPath := filepath.Join(out, stampFile)
	if ifStale {
		if prev, err := os.ReadFile(stampPath); err == nil && string(prev) == stamp {
			fmt.Printf("corpus in %s up to date (stamp matches), skipping generation\n", out)
			return nil
		}
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	// A stale stamp means a half-finished or differently-parameterized run
	// may be on disk; remove it first so a crash mid-generation can never
	// masquerade as a complete corpus.
	if err := os.Remove(stampPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	g := corpus.New(corpus.Options{Seed: seed})
	for _, r := range g.Corpus(n) {
		base := filepath.Join(out, fmt.Sprintf("resume-%04d", r.ID))
		if err := os.WriteFile(base+".html", []byte(r.HTML), 0o644); err != nil {
			return err
		}
		if truth {
			if err := os.WriteFile(base+".truth.xml", []byte(xmlout.Marshal(r.Truth)), 0o644); err != nil {
				return err
			}
		}
	}
	for i := 0; i < distractors; i++ {
		name := filepath.Join(out, fmt.Sprintf("page-%04d.html", i+1))
		if err := os.WriteFile(name, []byte(g.Distractor()), 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(stampPath, []byte(stamp), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d resumes%s to %s\n", n, distractorNote(distractors), out)
	return nil
}

func distractorNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(" and %d distractor pages", n)
}
