// Command corpusgen writes a synthetic resume corpus to disk: the
// heterogeneous HTML documents plus, optionally, the ground-truth XML trees
// used by the accuracy experiment.
//
// Usage:
//
//	corpusgen -n 100 -seed 1 -out ./corpus [-truth]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"webrev/internal/corpus"
	"webrev/internal/xmlout"
)

func main() {
	n := flag.Int("n", 100, "number of resumes to generate")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same corpus)")
	out := flag.String("out", "corpus", "output directory")
	truth := flag.Bool("truth", false, "also write ground-truth XML next to each document")
	distractors := flag.Int("distractors", 0, "additional off-topic pages")
	flag.Parse()

	if err := run(*n, *seed, *out, *truth, *distractors); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, out string, truth bool, distractors int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	g := corpus.New(corpus.Options{Seed: seed})
	for _, r := range g.Corpus(n) {
		base := filepath.Join(out, fmt.Sprintf("resume-%04d", r.ID))
		if err := os.WriteFile(base+".html", []byte(r.HTML), 0o644); err != nil {
			return err
		}
		if truth {
			if err := os.WriteFile(base+".truth.xml", []byte(xmlout.Marshal(r.Truth)), 0o644); err != nil {
				return err
			}
		}
	}
	for i := 0; i < distractors; i++ {
		name := filepath.Join(out, fmt.Sprintf("page-%04d.html", i+1))
		if err := os.WriteFile(name, []byte(g.Distractor()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d resumes%s to %s\n", n, distractorNote(distractors), out)
	return nil
}

func distractorNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(" and %d distractor pages", n)
}
