// Command benchdiff parses `go test -bench` output into a stable JSON form
// and compares two such files, failing on throughput regressions. It is the
// gate behind the CI bench-regression job and `make bench-convert`.
//
// Usage:
//
//	benchdiff -parse [-out BENCH_convert.json] [bench.txt]
//	benchdiff -old base.json -new head.json [-threshold 15] [-match REGEX]
//
// Parse mode reads benchmark output (a file argument or stdin), keeps the
// best (minimum ns/op) run per benchmark across repeats, stamps build
// metadata, and writes JSON. Compare mode diffs ns/op between two parsed
// files and exits non-zero when any matched benchmark slows down by more
// than the threshold percentage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"webrev/internal/obs"
)

// Result is the parsed measurement of one benchmark (best run across
// repeats); File is the on-disk shape of a parsed run. Both are the shared
// obs forms, so other producers (webrevd's bench mode) write files this
// command's compare mode gates.
type (
	Result = obs.BenchResult
	File   = obs.BenchFile
)

func main() {
	var (
		parse     = flag.Bool("parse", false, "parse go test -bench output into JSON")
		out       = flag.String("out", "", "output file for -parse (default stdout)")
		oldPath   = flag.String("old", "", "baseline JSON for compare mode")
		newPath   = flag.String("new", "", "candidate JSON for compare mode")
		threshold = flag.Float64("threshold", 15, "fail when ns/op regresses by more than this percent")
		match     = flag.String("match", "", "only compare benchmarks whose name matches this regexp")
	)
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(flag.Arg(0), *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	case *oldPath != "" && *newPath != "":
		regressed, err := runCompare(*oldPath, *newPath, *threshold, *match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(in, out string) error {
	r := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	file := &File{Meta: obs.CollectMeta("."), Benchmarks: parseBench(string(data))}
	if len(file.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// parseBench extracts benchmark results from `go test -bench` output,
// keeping the minimum ns/op per benchmark across repeated runs (the least
// noisy estimate of true cost).
func parseBench(s string) map[string]Result {
	out := make(map[string]Result)
	for _, line := range strings.Split(s, "\n") {
		name, res, ok := parseLine(line)
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	return out
}

// parseLine parses one result line, e.g.
//
//	BenchmarkConvertResume-8  34974  36348 ns/op  12.52 MB/s  16919 B/op  272 allocs/op
//
// The GOMAXPROCS suffix is stripped so files from different machines align.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "MB/s":
			res.MBPerS = v
		}
	}
	return name, res, seen
}

// runCompare prints a per-benchmark delta table and reports whether any
// matched benchmark regressed beyond the threshold. Benchmarks present in
// only one file are listed but never gate.
func runCompare(oldPath, newPath string, threshold float64, match string) (bool, error) {
	oldF, err := obs.ReadBenchFile(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := obs.ReadBenchFile(newPath)
	if err != nil {
		return false, err
	}
	var re *regexp.Regexp
	if match != "" {
		re, err = regexp.Compile(match)
		if err != nil {
			return false, fmt.Errorf("bad -match: %w", err)
		}
	}
	names := make([]string, 0, len(newF.Benchmarks))
	for name := range newF.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := false
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		nw := newF.Benchmarks[name]
		old, ok := oldF.Benchmarks[name]
		if !ok || old.NsPerOp == 0 {
			fmt.Printf("%-40s %14s %14.1f %9s\n", name, "-", nw.NsPerOp, "new")
			continue
		}
		pct := (nw.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		marker := ""
		if pct > threshold {
			marker = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-40s %14.1f %14.1f %+8.1f%%%s\n", name, old.NsPerOp, nw.NsPerOp, pct, marker)
	}
	if regressed {
		fmt.Printf("\nFAIL: at least one benchmark regressed more than %.0f%% in ns/op\n", threshold)
	}
	return regressed, nil
}
