package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: webrev/internal/convert
BenchmarkConvertResume-8   	   34974	     36348 ns/op	  12.52 MB/s	   16919 B/op	     272 allocs/op
BenchmarkConvertResume-8   	   36000	     35011 ns/op	  13.01 MB/s	   16920 B/op	     272 allocs/op
BenchmarkMarshal 	   98108	     12082 ns/op	    4864 B/op	       1 allocs/op
PASS
ok  	webrev/internal/convert	2.5s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleOutput)
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	conv, ok := got["BenchmarkConvertResume"]
	if !ok {
		t.Fatal("BenchmarkConvertResume missing (GOMAXPROCS suffix not stripped?)")
	}
	if conv.NsPerOp != 35011 {
		t.Errorf("NsPerOp = %v, want the minimum across repeats (35011)", conv.NsPerOp)
	}
	if conv.AllocsPerOp != 272 || conv.BytesPerOp != 16920 || conv.MBPerS != 13.01 {
		t.Errorf("unexpected fields: %+v", conv)
	}
	m := got["BenchmarkMarshal"]
	if m.NsPerOp != 12082 || m.AllocsPerOp != 1 {
		t.Errorf("BenchmarkMarshal = %+v", m)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  	webrev	1s", "goos: linux",
		"Benchmark", "BenchmarkX-8 notanumber 5 ns/op",
		"BenchmarkNoNs-8 100 5 B/op",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted as %q", line, name)
		}
	}
}
