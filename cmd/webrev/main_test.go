package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/schema"
)

// writeResume writes a small well-formed resume file and returns its path.
func writeResume(t *testing.T, dir, name string) string {
	t.Helper()
	html := `<html><body><h1>Test Person</h1>
<h2>Education</h2><ul><li>University of Testing, B.S. Computer Science, June 1996</li></ul>
<h2>Experience</h2><p>Acme Inc, Software Engineer, January 1998 - June 2000, Developed tools</p>
<h2>Skills</h2><p>Java, SQL</p>
</body></html>`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(html), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdConvert(t *testing.T) {
	dir := t.TempDir()
	f := writeResume(t, dir, "a.html")
	var out strings.Builder
	if err := cmdConvert([]string{f}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"<resume", "<education", "<institution", "identified"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCmdConvertNoFiles(t *testing.T) {
	var out strings.Builder
	if err := cmdConvert(nil, &out); err == nil {
		t.Fatal("expected error for no input files")
	}
	if err := cmdConvert([]string{"/no/such/file.html"}, &out); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCmdSchemaAndDTD(t *testing.T) {
	dir := t.TempDir()
	files := []string{
		writeResume(t, dir, "a.html"),
		writeResume(t, dir, "b.html"),
	}
	var schemaOut strings.Builder
	if err := cmdSchema(append([]string{"-sup", "0.5"}, files...), false, &schemaOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(schemaOut.String(), "majority schema over 2 documents") {
		t.Fatalf("schema output:\n%s", schemaOut.String())
	}
	var dtdOut strings.Builder
	if err := cmdSchema(append([]string{"-sup", "0.5"}, files...), true, &dtdOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dtdOut.String(), "<!ELEMENT resume") {
		t.Fatalf("dtd output:\n%s", dtdOut.String())
	}
}

func TestCmdBuildAndQuery(t *testing.T) {
	dir := t.TempDir()
	files := []string{
		writeResume(t, dir, "a.html"),
		writeResume(t, dir, "b.html"),
		writeResume(t, dir, "c.html"),
	}
	repoDir := filepath.Join(dir, "repo")
	var out strings.Builder
	if err := cmdBuild(append([]string{"-sup", "0.5", "-out", repoDir}, files...), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 3 XML documents") {
		t.Fatalf("build output:\n%s", out.String())
	}
	var qOut strings.Builder
	if err := cmdQuery([]string{"-repo", repoDir, "//institution"}, &qOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qOut.String(), "matches in 3 documents") {
		t.Fatalf("query output:\n%s", qOut.String())
	}
	// Errors.
	if err := cmdQuery([]string{"-repo", repoDir}, &qOut); err == nil {
		t.Fatal("missing expression should error")
	}
	if err := cmdQuery([]string{"-repo", filepath.Join(dir, "nope"), "//x"}, &qOut); err == nil {
		t.Fatal("missing repo should error")
	}
	if err := cmdQuery([]string{"-repo", repoDir, "bad query"}, &qOut); err == nil {
		t.Fatal("bad query should error")
	}
}

func TestCmdBuildMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	files := []string{
		writeResume(t, dir, "a.html"),
		writeResume(t, dir, "b.html"),
	}
	snapPath := filepath.Join(dir, "snap.json")
	var out strings.Builder
	if err := cmdBuild(append([]string{"-metrics", snapPath}, files...), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stage") || !strings.Contains(out.String(), "pipeline.convert") {
		t.Fatalf("build with -metrics did not print the stage summary:\n%s", out.String())
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range obs.PipelineStages {
		if snap.Stages[stage].Count == 0 {
			t.Fatalf("snapshot missing stage %q: %v", stage, snap.Stages)
		}
	}
	if snap.Counters[obs.CtrDocsConverted] != 2 {
		t.Fatalf("docs.converted = %d, want 2", snap.Counters[obs.CtrDocsConverted])
	}
}

func TestCmdExperimentsE8Metrics(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	err := cmdExperiments([]string{"-run", "E8", "-docs", "8", "-seed", "3", "-metrics", snapPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E8 —") || !strings.Contains(out.String(), "counters:") {
		t.Fatalf("E8 output:\n%s", out.String())
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
}

func TestCmdExperimentsSmall(t *testing.T) {
	var out strings.Builder
	err := cmdExperiments([]string{"-run", "E1,E2", "-docs", "10", "-seed", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E1 —") || !strings.Contains(got, "E2 —") {
		t.Fatalf("experiments output:\n%s", got)
	}
	if strings.Contains(got, "E3 —") {
		t.Fatal("unselected experiment ran")
	}
}

func TestCmdSuggest(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for i := 0; i < 4; i++ {
		files = append(files, writeResume(t, dir, filepath.Join(fmt.Sprintf("s%d.html", i))))
	}
	var out strings.Builder
	if err := cmdSuggest(append([]string{"-mindocs", "3"}, files...), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "candidate") && !strings.Contains(got, "no instance candidates") {
		t.Fatalf("suggest output:\n%s", got)
	}
}

// TestCmdQuarantineRoundTrip seeds a quarantine store directly (as a
// faulty build would), lists it, replays it — the stored documents are
// well-formed, so the replay "fixes" them — and checks -rm empties the
// store: the full inspect-and-replay round trip.
func TestCmdQuarantineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := core.OpenQuarantineStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(writeResume(t, t.TempDir(), "a.html"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha.html", "beta.html"} {
		rec := core.FailureRecord{
			Stage: obs.StageConvert,
			URL:   name,
			Kind:  core.FailPanic,
			Err:   "injected panic",
		}
		if err := store.Put(rec, string(html)); err != nil {
			t.Fatal(err)
		}
	}

	var list strings.Builder
	if err := cmdQuarantine([]string{"-dir", dir, "list"}, &list); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alpha.html", "beta.html", "panic", "injected panic", "2 quarantined"} {
		if !strings.Contains(list.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, list.String())
		}
	}

	var replay strings.Builder
	if err := cmdQuarantine([]string{"-dir", dir, "-rm", "replay"}, &replay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replay.String(), "2 now convert cleanly") {
		t.Fatalf("replay did not fix the documents:\n%s", replay.String())
	}

	var after strings.Builder
	if err := cmdQuarantine([]string{"-dir", dir, "list"}, &after); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.String(), "quarantine is empty") {
		t.Fatalf("store not emptied after replay -rm:\n%s", after.String())
	}
}

// TestCmdQuarantineErrors covers the usage errors.
func TestCmdQuarantineErrors(t *testing.T) {
	var out strings.Builder
	if err := cmdQuarantine(nil, &out); err == nil {
		t.Fatal("expected usage error without -dir")
	}
	if err := cmdQuarantine([]string{"-dir", t.TempDir(), "explode"}, &out); err == nil {
		t.Fatal("expected error for unknown action")
	}
}

// TestCmdExperimentsE10 runs the fault-tolerance sweep end to end through
// the CLI.
func TestCmdExperimentsE10(t *testing.T) {
	var out strings.Builder
	if err := cmdExperiments([]string{"-run", "E10", "-docs", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E10", "fidelity", "quarantined"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("E10 output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCmdWatch(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 3})
	site := crawler.BuildSite(g.Corpus(8), []string{g.Distractor()})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "state")
	drift := filepath.Join(dir, "drift.json")
	repoDir := filepath.Join(dir, "repo")
	var out strings.Builder
	err := cmdWatch([]string{
		"-seed", srv.URL + "/",
		"-checkpoint", ckpt,
		"-cycles", "2", "-interval", "0",
		"-drift", drift, "-out", repoDir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "cycle 1:") || !strings.Contains(got, "cycle 2:") {
		t.Fatalf("missing cycle summaries:\n%s", got)
	}

	// The drift file holds the latest cycle's report...
	blob, err := os.ReadFile(drift)
	if err != nil {
		t.Fatal(err)
	}
	var d schema.Drift
	if err := json.Unmarshal(blob, &d); err != nil {
		t.Fatal(err)
	}
	if d.Version != schema.DriftVersion || d.Cycle != 2 {
		t.Fatalf("drift file version=%d cycle=%d, want %d/2", d.Version, d.Cycle, schema.DriftVersion)
	}
	// ...the exported repository loads and serves queries...
	repo, err := repository.Load(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() == 0 {
		t.Fatal("exported repository is empty")
	}
	// ...and a restarted watch resumes from the checkpoint.
	out.Reset()
	err = cmdWatch([]string{
		"-seed", srv.URL + "/", "-checkpoint", ckpt, "-cycles", "1", "-interval", "0",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "resuming at cycle 2") ||
		!strings.Contains(got, "cycle 3:") {
		t.Fatalf("restart did not resume from checkpoint:\n%s", got)
	}
}

func TestCmdWatchFlagValidation(t *testing.T) {
	if err := cmdWatch(nil, io.Discard); err == nil {
		t.Fatal("missing -seed accepted")
	}
}
