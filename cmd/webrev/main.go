// Command webrev drives the full pipeline from the shell: convert HTML
// files to XML, discover a majority schema, derive a DTD, map documents to
// conform, and regenerate the paper's experiments.
//
// Usage:
//
//	webrev convert  [-root resume] file.html...        # HTML -> XML on stdout
//	webrev schema   [-sup 0.5] [-ratio 0.1] file.html...
//	webrev dtd      [-sup 0.5] [-ratio 0.1] file.html...
//	webrev build    [-out dir] [-shards N] [-store mem|disk] [-metrics snap.json] [-pprof addr] file.html...
//	webrev scale    -dir WORK [-corpus DIR | -n N] [-shards N] [-max-resident N] [-verify] [-bench-out FILE]
//	webrev quarantine -dir DIR [list|replay]           # inspect / replay failed documents
//	webrev watch -seed URL [-checkpoint DIR] [-cycles N] [-interval 15m] [-drift FILE] [-out dir]
//	webrev experiments [-run E1,...] [-docs N] [-seed N] [-metrics snap.json] [-pprof addr]
//
// build and experiments take observability flags: -metrics FILE writes a
// JSON snapshot of per-stage timings and counters (the BENCH_pipeline.json
// format), and -pprof ADDR serves /debug/pprof, /debug/vars and /metrics on
// ADDR for the duration of the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/crawler"
	"webrev/internal/discover"
	"webrev/internal/dom"
	"webrev/internal/experiments"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/watch"
	"webrev/internal/xmlout"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = cmdConvert(os.Args[2:], os.Stdout)
	case "schema":
		err = cmdSchema(os.Args[2:], false, os.Stdout)
	case "dtd":
		err = cmdSchema(os.Args[2:], true, os.Stdout)
	case "build":
		err = cmdBuild(os.Args[2:], os.Stdout)
	case "scale":
		err = cmdScale(os.Args[2:], os.Stdout)
	case "query":
		err = cmdQuery(os.Args[2:], os.Stdout)
	case "suggest":
		err = cmdSuggest(os.Args[2:], os.Stdout)
	case "quarantine":
		err = cmdQuarantine(os.Args[2:], os.Stdout)
	case "watch":
		err = cmdWatch(os.Args[2:], os.Stdout)
	case "experiments":
		err = cmdExperiments(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "webrev: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "webrev:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: webrev <command> [flags] [files]

commands:
  convert      transform HTML files into concept-tagged XML
  schema       discover the majority schema over HTML files
  dtd          derive the DTD over HTML files
  build        full pipeline: convert, discover, derive, conform
               (-shards N -store disk shards the build onto a disk-backed store)
  scale        sharded disk-backed build at scale: lazy sources, flat RSS,
               wall/RSS/disk bench rows, optional byte-identity verify
  query        evaluate a label-path query against a built repository
  suggest      propose new concept instances from unidentified text
  quarantine   list documents a build quarantined, or replay them after a fix
  watch        continuous operation: recrawl a site on a cadence, fold deltas,
               and report schema drift (state persists in -checkpoint DIR)
  experiments  regenerate the paper's evaluation (E1-E10, E12-E14)

build and experiments accept -metrics FILE (JSON stage-metrics snapshot)
and -pprof ADDR (live /debug/pprof + /metrics endpoint).
`)
}

func newPipeline(root string, sup, ratio float64) (*core.Pipeline, error) {
	return newTracedPipeline(root, sup, ratio, nil)
}

func newTracedPipeline(root string, sup, ratio float64, tr obs.Tracer) (*core.Pipeline, error) {
	return core.New(core.Config{
		Concepts:       concept.ResumeConcepts(),
		Constraints:    concept.ResumeConstraints(),
		RootName:       root,
		SupThreshold:   sup,
		RatioThreshold: ratio,
		Tracer:         tr,
	})
}

// obsFlags registers the shared observability flags on a command's flag
// set; finish starts the optional debug endpoint, and its returned func
// writes the snapshot file once the run is done.
func obsFlags(fs *flag.FlagSet) (metricsOut, pprofAddr *string) {
	metricsOut = fs.String("metrics", "", "write a JSON metrics snapshot (stage timings + counters) to this file")
	pprofAddr = fs.String("pprof", "", "serve /debug/pprof, /debug/vars and /metrics on this address during the run")
	return metricsOut, pprofAddr
}

// startObs wires a collector to the optional pprof endpoint and returns a
// finish func that writes the metrics file (when requested) and stops the
// endpoint.
func startObs(coll *obs.Collector, metricsOut, pprofAddr string, w io.Writer) (finish func() error, err error) {
	var dbg *obs.DebugServer
	if pprofAddr != "" {
		dbg, err = obs.ServeDebug(pprofAddr, coll)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "debug endpoint at http://%s/debug/pprof/ (metrics at /metrics)\n", dbg.Addr)
	}
	return func() error {
		if dbg != nil {
			dbg.Close()
		}
		if metricsOut != "" {
			snap := coll.Snapshot()
			snap.Meta = obs.CollectMeta(".")
			if err := snap.WriteFile(metricsOut); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote metrics snapshot to %s\n", metricsOut)
		}
		return nil
	}, nil
}

func readSources(paths []string) ([]core.Source, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	var out []core.Source
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Source{Name: p, HTML: string(b)})
	}
	return out, nil
}

func cmdConvert(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	root := fs.String("root", "resume", "root element name")
	fs.Parse(args)
	p, err := newPipeline(*root, 0, 0)
	if err != nil {
		return err
	}
	srcs, err := readSources(fs.Args())
	if err != nil {
		return err
	}
	for _, s := range srcs {
		doc := p.Convert(s.Name, s.HTML)
		fmt.Fprintf(w, "<!-- %s: %d tokens, %.0f%% identified -->\n",
			s.Name, doc.Stats.Tokens, doc.Stats.IdentifiedRatio()*100)
		fmt.Fprint(w, xmlout.Marshal(doc.XML))
	}
	return nil
}

func cmdSchema(args []string, asDTD bool, w io.Writer) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	root := fs.String("root", "resume", "root element name")
	sup := fs.Float64("sup", 0.5, "support threshold")
	ratio := fs.Float64("ratio", 0.1, "support-ratio threshold")
	fs.Parse(args)
	p, err := newPipeline(*root, *sup, *ratio)
	if err != nil {
		return err
	}
	srcs, err := readSources(fs.Args())
	if err != nil {
		return err
	}
	var docs []*core.Document
	for _, s := range srcs {
		docs = append(docs, p.Convert(s.Name, s.HTML))
	}
	s := p.DiscoverSchema(docs)
	if asDTD {
		fmt.Fprint(w, p.DeriveDTD(s).Render())
		return nil
	}
	fmt.Fprintf(w, "majority schema over %d documents (%d paths explored):\n%s",
		s.Docs, s.Explored, s.String())
	return nil
}

func cmdBuild(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	root := fs.String("root", "resume", "root element name")
	sup := fs.Float64("sup", 0.5, "support threshold")
	ratio := fs.Float64("ratio", 0.1, "support-ratio threshold")
	out := fs.String("out", "", "directory for the conformed XML repository")
	shards := fs.Int("shards", 1, "shard the build across N independent workers (implies -store disk)")
	store := fs.String("store", "mem", "document store backing the build: mem or disk")
	shardDir := fs.String("shard-dir", "", "working directory for the sharded build (default: a temp directory)")
	maxResident := fs.Int("max-resident", repository.DefaultMaxResidentDocs, "decoded-document LRU bound of the disk store")
	metricsOut, pprofAddr := obsFlags(fs)
	fs.Parse(args)
	if *store != "mem" && *store != "disk" {
		return fmt.Errorf("unknown -store %q (want mem or disk)", *store)
	}
	coll := obs.NewCollector()
	var tr obs.Tracer
	if *metricsOut != "" || *pprofAddr != "" {
		tr = coll
	}
	p, err := newTracedPipeline(*root, *sup, *ratio, tr)
	if err != nil {
		return err
	}
	finish, err := startObs(coll, *metricsOut, *pprofAddr, w)
	if err != nil {
		return err
	}
	srcs, err := readSources(fs.Args())
	if err != nil {
		return err
	}
	if *shards > 1 || *store == "disk" {
		return buildSharded(p, srcs, *shards, *shardDir, *maxResident, *out, coll, tr != nil, w, finish)
	}
	repo, err := p.Build(srcs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "converted %d documents; schema %d paths; DTD %d elements\n",
		len(repo.Docs), len(repo.Schema.Paths()), repo.DTD.Len())
	if tr != nil {
		fmt.Fprint(w, coll.Snapshot().Summary())
	}
	fmt.Fprintf(w, "pre-mapping conformance %.1f%%, total mapping cost %d edits\n",
		repo.ConformanceRate()*100, repo.TotalMapCost())
	fmt.Fprint(w, repo.DTD.Render())
	if *out == "" {
		return finish()
	}
	stored := repo.Export()
	if err := stored.Save(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d XML documents and schema.dtd to %s\n", stored.Len(), *out)
	return finish()
}

// buildSharded is cmdBuild's disk-backed path (-shards / -store disk): the
// sharded driver converts and maps through per-shard disk segments and the
// final repository lives in shard-dir/final as a disk store.
func buildSharded(p *core.Pipeline, srcs []core.Source, shards int, dir string, maxResident int, out string, coll *obs.Collector, traced bool, w io.Writer, finish func() error) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "webrev-shards-")
		if err != nil {
			return err
		}
		dir = tmp
	}
	res, err := p.BuildSharded(context.Background(), srcs, core.ShardOptions{
		Shards: shards,
		Dir:    dir,
		Store:  repository.DiskOptions{MaxResidentDocs: maxResident},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sharded build: %d documents in %d shards; DTD %d elements; %d bytes on disk\n",
		res.Repo.Len(), shards, res.DTD.Len(), res.BytesOnDisk)
	if len(res.Quarantined) > 0 || len(res.Degraded) > 0 {
		fmt.Fprintf(w, "%d quarantined, %d degraded\n", len(res.Quarantined), len(res.Degraded))
	}
	if traced {
		fmt.Fprint(w, coll.Snapshot().Summary())
	}
	fmt.Fprint(w, res.DTD.Render())
	fmt.Fprintf(w, "disk repository at %s\n", filepath.Join(dir, "final"))
	if out != "" {
		if err := res.Repo.Save(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d XML documents and schema.dtd to %s\n", res.Repo.Len(), out)
	}
	return finish()
}

func cmdQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("repo", "", "repository directory written by `webrev build -out`")
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: webrev query -repo DIR 'EXPR'")
	}
	repo, err := repository.Load(*dir)
	if err != nil {
		return err
	}
	refs, err := repo.Query(fs.Arg(0))
	if err != nil {
		return err
	}
	names := repo.Names()
	for _, r := range refs {
		fmt.Fprintf(w, "%s\t<%s val=%q>\n", names[r.Doc], r.Node.Tag, r.Node.Val())
	}
	fmt.Fprintf(w, "%d matches in %d documents\n", len(refs), repo.Len())
	return nil
}

func cmdSuggest(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	root := fs.String("root", "resume", "root element name")
	minDocs := fs.Int("mindocs", 3, "minimum supporting documents")
	fs.Parse(args)
	p, err := newPipeline(*root, 0, 0)
	if err != nil {
		return err
	}
	srcs, err := readSources(fs.Args())
	if err != nil {
		return err
	}
	var trees []*dom.Node
	for _, d := range p.ConvertAll(srcs) {
		trees = append(trees, d.XML)
	}
	suggestions := discover.SuggestInstances(trees, p.Set(), discover.Options{MinDocs: *minDocs})
	if len(suggestions) == 0 {
		fmt.Fprintln(w, "no instance candidates found")
		return nil
	}
	fmt.Fprintf(w, "%-20s %-18s %5s  example\n", "concept context", "candidate", "docs")
	for _, s := range suggestions {
		example := ""
		if len(s.Examples) > 0 {
			example = s.Examples[0]
		}
		fmt.Fprintf(w, "%-20s %-18s %5d  %s\n", s.Concept, s.Instance, s.Docs, example)
	}
	return nil
}

// cmdQuarantine inspects a quarantine directory (Config.QuarantineDir):
// `list` prints each failed document's record, and `replay` re-converts
// the stored HTML through a fresh pipeline — the round trip after a fix —
// removing entries that now convert cleanly when -rm is set.
func cmdQuarantine(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("quarantine", flag.ExitOnError)
	dir := fs.String("dir", "", "quarantine directory a build wrote (QuarantineDir)")
	root := fs.String("root", "resume", "root element name for replay")
	rm := fs.Bool("rm", false, "on replay, remove entries that convert cleanly")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("usage: webrev quarantine -dir DIR [list|replay]")
	}
	action := "list"
	if fs.NArg() > 0 {
		action = fs.Arg(0)
	}
	if action != "list" && action != "replay" {
		return fmt.Errorf("unknown quarantine action %q (want list or replay)", action)
	}
	store, err := core.OpenQuarantineStore(*dir)
	if err != nil {
		return err
	}
	entries, err := store.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Fprintln(w, "quarantine is empty")
		return nil
	}
	switch action {
	case "list":
		fmt.Fprintf(w, "%-20s %-8s %-18s %-30s %s\n", "id", "kind", "stage", "document", "error")
		for _, e := range entries {
			errLine := e.Record.Err
			if i := strings.IndexByte(errLine, '\n'); i >= 0 {
				errLine = errLine[:i]
			}
			fmt.Fprintf(w, "%-20s %-8s %-18s %-30s %s\n",
				e.ID, e.Record.Kind, e.Record.Stage, e.Record.URL, errLine)
		}
		fmt.Fprintf(w, "%d quarantined documents\n", len(entries))
		return nil
	case "replay":
		p, err := newPipeline(*root, 0, 0)
		if err != nil {
			return err
		}
		fixed := 0
		for _, e := range entries {
			html, err := store.HTML(e.ID)
			if err != nil {
				return err
			}
			d, rec := p.TryConvert(e.Record.URL, html)
			switch {
			case d == nil:
				fmt.Fprintf(w, "%-20s still failing: %s\n", e.ID, rec)
			case rec != nil:
				fmt.Fprintf(w, "%-20s degraded: %s\n", e.ID, rec.Err)
			default:
				fixed++
				fmt.Fprintf(w, "%-20s ok (%d tokens, %.0f%% identified)\n",
					e.ID, d.Stats.Tokens, d.Stats.IdentifiedRatio()*100)
				if *rm {
					if err := store.Remove(e.ID); err != nil {
						return err
					}
				}
			}
		}
		fmt.Fprintf(w, "replayed %d documents, %d now convert cleanly\n", len(entries), fixed)
		return nil
	default:
		return fmt.Errorf("unknown quarantine action %q (want list or replay)", action)
	}
}

// cmdWatch runs the continuous-operation loop: recrawl the seed site every
// interval, fold page deltas into the accumulator, rebuild incrementally,
// and print (and optionally write) each cycle's drift report. With
// -checkpoint the state survives restarts — a streaming-build checkpoint
// (`webrev build -out DIR` is not one, but internal/core's BuildStream
// checkpoint is) migrates into the watch format on first load.
func cmdWatch(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	seed := fs.String("seed", "", "seed URL every cycle starts from (required)")
	ckpt := fs.String("checkpoint", "", "state directory persisted after every cycle and resumed on start")
	cycles := fs.Int("cycles", 0, "cycles to run before exiting (0 = run until interrupted)")
	interval := fs.Duration("interval", 15*time.Minute, "sleep between cycles")
	root := fs.String("root", "resume", "root element name")
	sup := fs.Float64("sup", 0.5, "support threshold")
	ratio := fs.Float64("ratio", 0.1, "support-ratio threshold")
	minShift := fs.Float64("min-shift", 0, "support change below which a path is not reported as shifted (0 = default)")
	topicHits := fs.Int("topic-hits", 3, "concept hits required for a crawled page to join the corpus")
	driftOut := fs.String("drift", "", "write the latest cycle's drift report JSON to this file (servable via `webrevd -drift`)")
	out := fs.String("out", "", "export the conformed repository to this directory after every cycle")
	metricsOut, pprofAddr := obsFlags(fs)
	fs.Parse(args)
	if *seed == "" {
		return fmt.Errorf("usage: webrev watch -seed URL [-checkpoint DIR] [-cycles N] [-interval DUR]")
	}

	coll := obs.NewCollector()
	var tr obs.Tracer
	if *metricsOut != "" || *pprofAddr != "" {
		tr = coll
	}
	p, err := newTracedPipeline(*root, *sup, *ratio, tr)
	if err != nil {
		return err
	}
	finish, err := startObs(coll, *metricsOut, *pprofAddr, w)
	if err != nil {
		return err
	}
	watcher, err := watch.New(watch.Options{
		Pipeline: p,
		Crawler: &crawler.Crawler{
			Filter: crawler.ResumeFilter(*topicHits),
			Fetch:  crawler.FetchPolicy{Revalidate: true},
			Tracer: tr,
		},
		Seed:            *seed,
		StateDir:        *ckpt,
		MinSupportShift: *minShift,
		Tracer:          tr,
	})
	if err != nil {
		return err
	}
	if n := watcher.Docs(); n > 0 {
		fmt.Fprintf(w, "resuming at cycle %d with %d live documents\n", watcher.Cycles(), n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var emitErr error
	err = watcher.Run(ctx, *cycles, *interval, func(res *watch.Result) {
		fmt.Fprintln(w, res.Drift.Summary())
		if emitErr != nil {
			return
		}
		if *driftOut != "" {
			data, err := json.MarshalIndent(res.Drift, "", " ")
			if err != nil {
				emitErr = err
				return
			}
			if err := os.WriteFile(*driftOut, append(data, '\n'), 0o644); err != nil {
				emitErr = err
				return
			}
		}
		if *out != "" {
			if err := res.Repo.Export().Save(*out); err != nil {
				emitErr = err
			}
		}
	})
	if err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}
	return finish()
}

func cmdExperiments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	run := fs.String("run", "E1,E2,E3,E4,E5,E6,E7,E8,E9,E10,E12,E13,E14", "comma-separated experiment ids")
	docs := fs.Int("docs", 0, "override corpus size (0 = per-experiment default)")
	seed := fs.Int64("seed", 1, "corpus seed")
	metricsOut, pprofAddr := obsFlags(fs)
	fs.Parse(args)
	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	n := func(def int) int {
		if *docs > 0 {
			return *docs
		}
		return def
	}
	if want["E1"] {
		fmt.Fprintln(w, experiments.RunAccuracy(n(50), *seed).Report())
	}
	if want["E2"] {
		fmt.Fprintln(w, experiments.RunConstraints(n(100), *seed).Report())
	}
	if want["E3"] {
		sizes := []int{20, 50, 100, 190, 380}
		if *docs > 0 {
			sizes = []int{*docs / 4, *docs / 2, *docs}
		}
		fmt.Fprintln(w, experiments.RunScalability(sizes, *seed).Report())
	}
	if want["E4"] {
		fmt.Fprintln(w, experiments.RunSampleDTD(n(1400), *seed).Report())
	}
	if want["E5"] {
		fmt.Fprintln(w, experiments.RunSchemaComparison(n(200), *seed).Report())
	}
	if want["E6"] {
		fmt.Fprintln(w, experiments.RunClassifier(n(80)/2, n(80)/2, *seed).Report())
	}
	if want["E7"] {
		r, err := experiments.RunRobustness(n(40), 0.2, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
	}
	if want["E8"] {
		coll := obs.NewCollector()
		finish, err := startObs(coll, *metricsOut, *pprofAddr, w)
		if err != nil {
			return err
		}
		r, err := experiments.RunStageMetrics(n(100), *seed, coll)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
		if err := finish(); err != nil {
			return err
		}
	}
	if want["E9"] {
		coll := obs.NewCollector()
		finish, err := startObs(coll, *metricsOut, *pprofAddr, w)
		if err != nil {
			return err
		}
		r, err := experiments.RunStreamComparison(n(100), *seed, coll)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
		if err := finish(); err != nil {
			return err
		}
	}
	if want["E10"] {
		r, err := experiments.RunFaultTolerance(n(60), []float64{0, 0.1, 0.25, 0.75}, 0, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
	}
	if want["E13"] {
		r, err := experiments.RunDriftDetection(n(40), []float64{0, 0.05, 0.1, 0.2, 0.4}, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
	}
	if want["E12"] {
		sizes := []int{20, 50, 100, 200}
		if *docs > 0 {
			sizes = []int{*docs / 4, *docs / 2, *docs}
		}
		r, err := experiments.RunHotPath(sizes, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
	}
	if want["E14"] {
		r, err := experiments.RunOverloadSweep(n(40), []int{2, 8, 32}, []int{1, 2, 4}, time.Second, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Report())
	}
	return nil
}
