package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/obs"
	"webrev/internal/repository"
)

// cmdScale runs a sharded, disk-backed build at scale and reports its
// cost: wall time, peak RSS, and bytes on disk, optionally as
// BENCH_shard.json rows the bench-regression gate compares. Sources come
// from a corpus directory (-corpus, e.g. one cmd/corpusgen wrote) or are
// generated on the fly (-n/-seed) — either way they are produced lazily,
// one document at a time inside the owning shard, so the corpus is never
// resident and RSS stays bounded by -max-resident regardless of -n.
//
// With -verify the same sources also go through the single-process
// in-memory build, and the two repositories are compared byte for byte —
// the CI scale-smoke gate's identity check.
func cmdScale(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	corpusDir := fs.String("corpus", "", "read .html sources from this directory (sorted by name) instead of generating")
	n := fs.Int("n", 10000, "synthetic documents to generate when -corpus is unset")
	seed := fs.Int64("seed", 1, "generator seed for synthetic documents")
	shards := fs.Int("shards", 2, "independent shard workers")
	dir := fs.String("dir", "", "working directory for shard state and the final disk repository (required)")
	maxResident := fs.Int("max-resident", repository.DefaultMaxResidentDocs, "decoded-document LRU bound of the final disk store")
	ckptEvery := fs.Int("checkpoint-every", 256, "documents a shard processes between durable checkpoints")
	root := fs.String("root", "resume", "root element name")
	sup := fs.Float64("sup", 0.5, "support threshold")
	ratio := fs.Float64("ratio", 0.1, "support-ratio threshold")
	verify := fs.Bool("verify", false, "also run the single-process in-memory build and require byte-identical output")
	benchOut := fs.String("bench-out", "", "write ShardBuild/... rows (wall, rss_kb, disk_bytes) to this BENCH_shard.json, merging with existing rows")
	metricsOut, pprofAddr := obsFlags(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("usage: webrev scale -dir WORK [-corpus DIR | -n N -seed S] [-shards N] [-max-resident N] [-verify] [-bench-out FILE]")
	}

	total, at, err := scaleSources(*corpusDir, *n, *seed)
	if err != nil {
		return err
	}

	coll := obs.NewCollector()
	var tr obs.Tracer
	if *metricsOut != "" || *pprofAddr != "" {
		tr = coll
	}
	p, err := newTracedPipeline(*root, *sup, *ratio, tr)
	if err != nil {
		return err
	}
	finish, err := startObs(coll, *metricsOut, *pprofAddr, w)
	if err != nil {
		return err
	}

	startT := time.Now()
	res, err := p.BuildShardedFrom(context.Background(), total, at, core.ShardOptions{
		Shards:          *shards,
		Dir:             *dir,
		CheckpointEvery: *ckptEvery,
		Store:           repository.DiskOptions{MaxResidentDocs: *maxResident},
	})
	if err != nil {
		return err
	}
	wall := time.Since(startT)
	rssKB := peakRSSKB()
	fmt.Fprintf(w, "sharded build: %d docs, %d shards, %d quarantined, %d degraded\n",
		total, *shards, len(res.Quarantined), len(res.Degraded))
	fmt.Fprintf(w, "wall %.2fs, peak RSS %d KB, %d bytes on disk, DTD %d elements\n",
		wall.Seconds(), rssKB, res.BytesOnDisk, res.DTD.Len())
	fmt.Fprintf(w, "final repository: %s (open with repository.LoadDisk)\n", filepath.Join(*dir, "final"))

	if *benchOut != "" {
		prefix := fmt.Sprintf("ShardBuild/docs=%d/shards=%d", total, *shards)
		rows := map[string]obs.BenchResult{
			prefix + "/wall":       {NsPerOp: float64(wall.Nanoseconds()), Iterations: 1},
			prefix + "/rss_kb":     {NsPerOp: float64(rssKB), Iterations: 1},
			prefix + "/disk_bytes": {NsPerOp: float64(res.BytesOnDisk), Iterations: 1},
		}
		if err := mergeBenchRows(*benchOut, rows); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d bench rows to %s\n", len(rows), *benchOut)
	}

	if *verify {
		if err := verifySharded(p, total, at, res.Repo, w); err != nil {
			return err
		}
	}
	return finish()
}

// scaleSources resolves the lazy source provider: files of a corpus
// directory, or per-index seeded synthetic resumes. Per-index seeding
// (rather than one sequential generator) is what lets any shard produce
// exactly its own range without generating everyone else's prefix.
func scaleSources(corpusDir string, n int, seed int64) (int, func(int) (core.Source, error), error) {
	if corpusDir != "" {
		matches, err := filepath.Glob(filepath.Join(corpusDir, "*.html"))
		if err != nil {
			return 0, nil, err
		}
		if len(matches) == 0 {
			return 0, nil, fmt.Errorf("no .html files in %s", corpusDir)
		}
		sort.Strings(matches)
		return len(matches), func(i int) (core.Source, error) {
			b, err := os.ReadFile(matches[i])
			if err != nil {
				return core.Source{}, err
			}
			return core.Source{Name: matches[i], HTML: string(b)}, nil
		}, nil
	}
	if n <= 0 {
		return 0, nil, fmt.Errorf("-n must be positive")
	}
	return n, func(i int) (core.Source, error) {
		g := corpus.New(corpus.Options{Seed: seed + int64(i)*1000003})
		return core.Source{Name: fmt.Sprintf("gen-%07d", i), HTML: g.Resume().HTML}, nil
	}, nil
}

// verifySharded runs the single-process in-memory build over the same
// sources and requires the sharded repository to match it byte for byte:
// same DTD, same document names, same canonical XML. This materializes the
// whole corpus, so it is meant for smoke-scale runs (the 10k CI gate), not
// the million-document sweep.
func verifySharded(p *core.Pipeline, total int, at func(int) (core.Source, error), sharded *repository.Repository, w io.Writer) error {
	sources := make([]core.Source, total)
	for i := range sources {
		s, err := at(i)
		if err != nil {
			return err
		}
		sources[i] = s
	}
	single, err := p.BuildRepository(sources)
	if err != nil {
		return fmt.Errorf("verify: single-process build: %w", err)
	}
	if got, want := sharded.DTD().Render(), single.DTD().Render(); got != want {
		return fmt.Errorf("verify: sharded DTD differs from single-process DTD")
	}
	if got, want := sharded.Len(), single.Len(); got != want {
		return fmt.Errorf("verify: sharded build stored %d documents, single-process %d", got, want)
	}
	for i := 0; i < single.Len(); i++ {
		if got, want := sharded.Store().Name(i), single.Store().Name(i); got != want {
			return fmt.Errorf("verify: document %d named %q (sharded) vs %q (single)", i, got, want)
		}
		got, err := sharded.Store().XML(i)
		if err != nil {
			return fmt.Errorf("verify: sharded doc %d: %w", i, err)
		}
		want, err := single.Store().XML(i)
		if err != nil {
			return fmt.Errorf("verify: single doc %d: %w", i, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("verify: document %d (%s) differs between sharded and single-process build", i, single.Store().Name(i))
		}
	}
	fmt.Fprintf(w, "verify: sharded output byte-identical to single-process build (%d documents)\n", single.Len())
	return nil
}

// mergeBenchRows folds rows into the BENCH file at path, keeping rows
// already there under other names — so the 10k/100k/1M sweeps accumulate
// into one committed file.
func mergeBenchRows(path string, rows map[string]obs.BenchResult) error {
	out := &obs.BenchFile{Benchmarks: map[string]obs.BenchResult{}}
	if prev, err := obs.ReadBenchFile(path); err == nil && prev.Benchmarks != nil {
		out.Benchmarks = prev.Benchmarks
		out.Meta = prev.Meta
	}
	for k, v := range rows {
		out.Benchmarks[k] = v
	}
	if out.Meta == nil {
		out.Meta = obs.CollectMeta(".")
	}
	return out.WriteFile(path)
}

// peakRSSKB reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}
