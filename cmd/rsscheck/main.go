// Command rsscheck runs a command and enforces a peak-RSS budget on it:
// the child's maximum resident set (rusage) is printed and, when it
// exceeds -budget-kb, rsscheck exits non-zero. The CI scale-smoke gate
// wraps the sharded build with it, so a change that breaks the flat-memory
// property (a resident corpus, an unbounded cache) fails the PR instead of
// landing silently.
//
// Usage:
//
//	rsscheck -budget-kb 524288 ./webrev scale -dir work -corpus corpus -shards 2
//
// The child's stdout/stderr pass through; a child that itself fails makes
// rsscheck fail regardless of memory use. Wrap a compiled binary, not
// `go run` — `go run`'s rusage would measure the toolchain, not the build.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"syscall"
)

func main() {
	budget := flag.Int64("budget-kb", 0, "peak-RSS budget in KB (required, > 0)")
	flag.Parse()
	if *budget <= 0 || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: rsscheck -budget-kb N COMMAND [ARGS...]")
		os.Exit(2)
	}
	cmd := exec.Command(flag.Arg(0), flag.Args()[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	runErr := cmd.Run()
	if cmd.ProcessState == nil {
		fmt.Fprintln(os.Stderr, "rsscheck:", runErr)
		os.Exit(1)
	}
	peakKB := int64(-1)
	if ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage); ok {
		peakKB = ru.Maxrss
		if runtime.GOOS == "darwin" {
			// Maxrss is bytes on darwin, KB on linux.
			peakKB /= 1024
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "rsscheck: command failed:", runErr)
		os.Exit(1)
	}
	if peakKB < 0 {
		fmt.Fprintln(os.Stderr, "rsscheck: rusage unavailable on this platform")
		os.Exit(1)
	}
	fmt.Printf("rsscheck: peak RSS %d KB (budget %d KB)\n", peakKB, *budget)
	if peakKB > *budget {
		fmt.Fprintf(os.Stderr, "rsscheck: peak RSS %d KB exceeds budget %d KB\n", peakKB, *budget)
		os.Exit(1)
	}
}
