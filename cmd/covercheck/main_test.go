package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleProfile = `mode: atomic
webrev/internal/bayes/bayes.go:10.20,12.2 2 5
webrev/internal/bayes/bayes.go:14.1,16.2 3 0
webrev/internal/bayes/frozen.go:8.1,9.2 1 1
webrev/internal/xmlout/xmlout.go:5.1,7.2 4 0
webrev/internal/bayes/bayes.go:10.20,12.2 2 0
`

func TestReadProfile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	cov, err := readProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	bayes := cov["webrev/internal/bayes"]
	if len(bayes) != 3 {
		t.Fatalf("bayes blocks = %d, want 3 (duplicate block must merge)", len(bayes))
	}
	// Duplicate block keeps the higher count.
	if b := bayes["webrev/internal/bayes/bayes.go:10.20,12.2"]; b.count != 5 || b.stmts != 2 {
		t.Errorf("merged block = %+v, want count 5 stmts 2", b)
	}
	total, covered := 0, 0
	for _, b := range bayes {
		total += b.stmts
		if b.count > 0 {
			covered += b.stmts
		}
	}
	// 2 + 1 covered of 2 + 3 + 1 statements.
	if total != 6 || covered != 3 {
		t.Errorf("bayes total/covered = %d/%d, want 6/3", total, covered)
	}
	if xml := cov["webrev/internal/xmlout"]; len(xml) != 1 {
		t.Errorf("xmlout blocks = %d, want 1", len(xml))
	}
}

func TestParsePkgArg(t *testing.T) {
	cases := []struct {
		arg     string
		pkg     string
		floor   float64
		wantErr bool
	}{
		{arg: "webrev/internal/bayes", pkg: "webrev/internal/bayes", floor: 70},
		{arg: "webrev/internal/mapping=85", pkg: "webrev/internal/mapping", floor: 85},
		{arg: "webrev/internal/schema=92.5", pkg: "webrev/internal/schema", floor: 92.5},
		{arg: "pkg=", wantErr: true},
		{arg: "=85", wantErr: true},
		{arg: "pkg=abc", wantErr: true},
	}
	for _, c := range cases {
		pkg, floor, err := parsePkgArg(c.arg, 70)
		if c.wantErr {
			if err == nil {
				t.Errorf("parsePkgArg(%q): expected error, got %q/%v", c.arg, pkg, floor)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePkgArg(%q): %v", c.arg, err)
			continue
		}
		if pkg != c.pkg || floor != c.floor {
			t.Errorf("parsePkgArg(%q) = %q, %v; want %q, %v", c.arg, pkg, floor, c.pkg, c.floor)
		}
	}
}
