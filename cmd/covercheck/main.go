// Command covercheck enforces per-package coverage floors from a Go
// coverprofile. CI runs the hot-path packages (bayes, convert, xmlout)
// through it so optimization work cannot quietly shed test coverage.
//
// Usage:
//
//	covercheck -profile cover.out -floor 70 webrev/internal/bayes webrev/internal/convert
//	covercheck -profile cover.out -floor 70 webrev/internal/bayes webrev/internal/mapping=85
//
// Each package argument is matched against the directory of the files in
// the profile. A package may carry its own floor with the pkg=floor form,
// overriding -floor — how CI holds the discover/mine/map packages to a
// higher bar than the default. Exit status 1 when any listed package is
// under its floor.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

// block is one coverprofile region; stmts statements executed count times.
type block struct {
	stmts, count int
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile file to read")
	floor := flag.Float64("floor", 70, "minimum statement coverage percent per package")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no packages listed")
		os.Exit(2)
	}
	cov, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	failed := false
	for _, arg := range pkgs {
		pkg, pkgFloor, err := parsePkgArg(arg, *floor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covercheck:", err)
			os.Exit(2)
		}
		blocks, ok := cov[pkg]
		if !ok {
			fmt.Printf("%-32s no profile data  FAIL\n", pkg)
			failed = true
			continue
		}
		total, covered := 0, 0
		for _, b := range blocks {
			total += b.stmts
			if b.count > 0 {
				covered += b.stmts
			}
		}
		pct := 0.0
		if total > 0 {
			pct = float64(covered) / float64(total) * 100
		}
		status := "ok"
		if pct < pkgFloor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-32s %6.1f%% (%d/%d stmts, floor %.0f%%)  %s\n",
			pkg, pct, covered, total, pkgFloor, status)
	}
	if failed {
		os.Exit(1)
	}
}

// parsePkgArg splits an optional "pkg=floor" argument, falling back to the
// global floor for bare package paths.
func parsePkgArg(arg string, def float64) (pkg string, floor float64, err error) {
	eq := strings.LastIndexByte(arg, '=')
	if eq < 0 {
		return arg, def, nil
	}
	f, err := strconv.ParseFloat(arg[eq+1:], 64)
	if err != nil || arg[:eq] == "" {
		return "", 0, fmt.Errorf("bad package argument %q (want pkg or pkg=floor)", arg)
	}
	return arg[:eq], f, nil
}

// readProfile parses a coverprofile into per-package block maps keyed by
// "file:region". Repeated blocks (merged profiles) keep the highest count.
func readProfile(p string) (map[string]map[string]block, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cov := make(map[string]map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:12.34,15.2 numStmts count
		colon := strings.LastIndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("bad profile line: %q", line)
		}
		file := line[:colon]
		rest := strings.Fields(line[colon+1:])
		if len(rest) != 3 {
			return nil, fmt.Errorf("bad profile line: %q", line)
		}
		stmts, err1 := strconv.Atoi(rest[1])
		count, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad profile line: %q", line)
		}
		pkg := path.Dir(file)
		if cov[pkg] == nil {
			cov[pkg] = make(map[string]block)
		}
		key := file + ":" + rest[0]
		b := cov[pkg][key]
		b.stmts = stmts
		if count > b.count {
			b.count = count
		}
		cov[pkg][key] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cov, nil
}
