// Command docslint enforces the repository's documentation bar (see
// ARCHITECTURE.md): every package in the module must carry a package
// comment; every exported top-level identifier of the root webrev
// facade — the API surface users program against — must have a doc
// comment; and every exported struct field in internal/core and
// internal/schema — the types that cross the pipeline boundary and persist
// to disk — must have one too. It prints one line per violation and exits
// non-zero when any exist, so `make docs-lint` can gate `make check`.
//
// Usage:
//
//	docslint [dir]
//
// dir is the module root to scan (default "."). Test files, testdata and
// vendored trees are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d undocumented identifiers or packages\n", len(violations))
		os.Exit(1)
	}
}

// lint walks every Go package directory under root and collects
// documentation violations, sorted by position.
func lint(root string) ([]string, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []string
	for dir := range dirs {
		v, err := lintDir(root, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	sort.Strings(out)
	return out, nil
}

// structFieldDirs lists the package directories (relative to the module
// root) whose exported struct fields must each carry a doc comment: the
// config/result types crossing the pipeline boundary and the statistics
// types that persist to disk.
var structFieldDirs = []string{
	filepath.Join("internal", "core"),
	filepath.Join("internal", "schema"),
}

// lintDir parses one package directory. All packages need a package
// comment; the root webrev package additionally needs a doc comment on
// every exported top-level identifier; the structFieldDirs packages need
// one on every exported struct field.
func lintDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if !hasDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if filepath.Clean(dir) == filepath.Clean(root) && name == "webrev" {
			for fname, f := range pkg.Files {
				out = append(out, lintExported(fset, fname, f)...)
			}
		}
		if rel, err := filepath.Rel(root, dir); err == nil {
			for _, want := range structFieldDirs {
				if filepath.Clean(rel) == want {
					for _, f := range pkg.Files {
						out = append(out, lintStructFields(fset, f)...)
					}
				}
			}
		}
	}
	return out, nil
}

// lintStructFields reports exported fields of exported struct types that
// carry neither a doc comment nor a line comment. Embedded fields are
// exempt — their documentation lives on the embedded type.
func lintStructFields(fset *token.FileSet, f *ast.File) []string {
	var out []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, fld := range st.Fields.List {
				if fld.Doc != nil || fld.Comment != nil {
					continue
				}
				for _, n := range fld.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s: exported field %s.%s has no doc comment",
							fset.Position(n.Pos()), ts.Name.Name, n.Name))
					}
				}
			}
		}
	}
	return out
}

// lintExported reports exported top-level identifiers without doc
// comments in one file. A comment on the enclosing declaration group
// covers its specs (the const-block idiom); a comment on the individual
// spec does too.
func lintExported(fset *token.FileSet, fname string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment",
			fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil {
				continue // methods: the facade's types are aliases; their method sets are documented at the source
			}
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}
