package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"),
		"package webrev\n\nfunc Exported() {}\n\n// Documented is fine.\nfunc Documented() {}\n")
	write(t, filepath.Join(dir, "internal", "x", "x.go"),
		"package x\n\nfunc F() {}\n")
	write(t, filepath.Join(dir, "internal", "y", "y.go"),
		"// Package y is documented.\npackage y\n\nfunc G() {}\n")

	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{
		"package webrev has no package comment",
		"exported function Exported has no doc comment",
		"package x has no package comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
	// y is documented; G is exported but only the facade package is held
	// to the identifier bar.
	for _, notWant := range []string{"package y", "Documented", " G "} {
		if strings.Contains(joined, notWant) {
			t.Errorf("unexpected violation mentioning %q in:\n%s", notWant, joined)
		}
	}
}

func TestLintCleanOnConstBlock(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"),
		"// Package webrev is the facade.\npackage webrev\n\n"+
			"// Roles for everything in the block.\nconst (\n\tRoleA = 1\n\tRoleB = 2\n)\n")
	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("clean tree flagged: %v", got)
	}
}

func TestLintSkipsTestFilesAndTestdata(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"), "// Package webrev is the facade.\npackage webrev\n")
	write(t, filepath.Join(dir, "w_test.go"), "package webrev\n\nfunc TestHelperExported() {}\n")
	write(t, filepath.Join(dir, "testdata", "bad.go"), "package bad\n\nfunc Bad() {}\n")
	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("test-only files flagged: %v", got)
	}
}
