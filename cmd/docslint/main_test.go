package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"),
		"package webrev\n\nfunc Exported() {}\n\n// Documented is fine.\nfunc Documented() {}\n")
	write(t, filepath.Join(dir, "internal", "x", "x.go"),
		"package x\n\nfunc F() {}\n")
	write(t, filepath.Join(dir, "internal", "y", "y.go"),
		"// Package y is documented.\npackage y\n\nfunc G() {}\n")

	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{
		"package webrev has no package comment",
		"exported function Exported has no doc comment",
		"package x has no package comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing violation %q in:\n%s", want, joined)
		}
	}
	// y is documented; G is exported but only the facade package is held
	// to the identifier bar.
	for _, notWant := range []string{"package y", "Documented", " G "} {
		if strings.Contains(joined, notWant) {
			t.Errorf("unexpected violation mentioning %q in:\n%s", notWant, joined)
		}
	}
}

func TestLintCleanOnConstBlock(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"),
		"// Package webrev is the facade.\npackage webrev\n\n"+
			"// Roles for everything in the block.\nconst (\n\tRoleA = 1\n\tRoleB = 2\n)\n")
	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("clean tree flagged: %v", got)
	}
}

func TestLintSkipsTestFilesAndTestdata(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"), "// Package webrev is the facade.\npackage webrev\n")
	write(t, filepath.Join(dir, "w_test.go"), "package webrev\n\nfunc TestHelperExported() {}\n")
	write(t, filepath.Join(dir, "testdata", "bad.go"), "package bad\n\nfunc Bad() {}\n")
	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("test-only files flagged: %v", got)
	}
}

func TestLintStructFields(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "w.go"), "// Package webrev is the facade.\npackage webrev\n")
	write(t, filepath.Join(dir, "internal", "core", "core.go"),
		"// Package core is the pipeline.\npackage core\n\n"+
			"// T crosses the pipeline boundary.\ntype T struct {\n"+
			"\tBare int\n"+
			"\t// Documented is fine.\n\tDocumented int\n"+
			"\tInline int // a line comment counts\n"+
			"\thidden int\n"+
			"}\n\n"+
			"type internalOnly struct{ AlsoBare int }\n")
	write(t, filepath.Join(dir, "internal", "other", "o.go"),
		"// Package other is outside the field bar.\npackage other\n\n"+
			"// S is documented.\ntype S struct{ Bare int }\n")

	got, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "exported field T.Bare has no doc comment") {
		t.Errorf("missing T.Bare violation in:\n%s", joined)
	}
	// Documented/inline-commented, unexported, unexported-struct, and
	// out-of-scope-package fields all pass.
	for _, notWant := range []string{"Documented", "Inline", "hidden", "AlsoBare", "S.Bare"} {
		if strings.Contains(joined, notWant) {
			t.Errorf("unexpected violation mentioning %q in:\n%s", notWant, joined)
		}
	}
}
