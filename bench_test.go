// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// table/figure (E1-E5, see DESIGN.md) plus ablations of the design choices.
// Custom metrics carry the headline numbers alongside the timing so a
// single `go test -bench=. -benchmem` run reproduces the evaluation.
package webrev_test

import (
	"testing"

	"webrev/internal/baseline"
	"webrev/internal/concept"
	"webrev/internal/convert"
	"webrev/internal/corpus"
	"webrev/internal/dom"
	"webrev/internal/experiments"
	"webrev/internal/metrics"
	"webrev/internal/schema"
)

// BenchmarkE1Accuracy regenerates Figure 4 (§4.1): conversion accuracy over
// 50 documents. Reported: errors/doc (paper 3.9), concept nodes/doc (paper
// 53.7), accuracy % (paper 90.8).
func BenchmarkE1Accuracy(b *testing.B) {
	var r experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunAccuracy(50, 1)
	}
	b.ReportMetric(r.Aggregate.AvgErrors, "errors/doc")
	b.ReportMetric(r.Aggregate.AvgConceptNodes, "concepts/doc")
	b.ReportMetric(r.Aggregate.Accuracy()*100, "accuracy%")
}

// BenchmarkE2Constraints regenerates §4.2: search-space reduction through
// concept constraints. Reported: admissible nodes (paper 1,871 of
// 7,962,623) and explored nodes (paper 73).
func BenchmarkE2Constraints(b *testing.B) {
	var r experiments.ConstraintsResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunConstraints(100, 1)
	}
	b.ReportMetric(float64(r.Constrained), "admissible")
	b.ReportMetric(float64(r.ExploredConstrained), "explored")
	b.ReportMetric(float64(r.Exhaustive), "exhaustive")
}

// BenchmarkE3Scalability regenerates Figure 5 (§4.3): full pipeline running
// time for growing corpus sizes up to the paper's 380 documents. The
// per-size timings are the figure's series; concept-node counts are
// reported so the linearity can be checked.
func BenchmarkE3Scalability(b *testing.B) {
	for _, n := range []int{20, 95, 190, 380} {
		b.Run(benchName(n), func(b *testing.B) {
			var r experiments.ScalabilityResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunScalability([]int{n}, 1)
			}
			p := r.Points[0]
			b.ReportMetric(float64(p.ConceptNodes), "concept-nodes")
			b.ReportMetric(float64(p.Nodes), "nodes")
			b.ReportMetric(p.Millis, "pipeline-ms")
		})
	}
}

func benchName(n int) string {
	switch {
	case n < 100:
		return "docs=0" + itoa(n)
	default:
		return "docs=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkE4SampleDTD regenerates §4.4: schema discovery and DTD
// derivation over a large corpus (the paper used >1400 resumes and found a
// 20-element DTD).
func BenchmarkE4SampleDTD(b *testing.B) {
	var r experiments.DTDResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunSampleDTD(1400, 1)
	}
	b.ReportMetric(float64(r.Elements), "dtd-elements")
}

// BenchmarkE5SchemaComparison runs the majority-vs-DataGuide-vs-lower-bound
// ablation behind the paper's claim that repository integration needs a
// majority schema. Reported: average mapping cost per document for the
// majority schema and for the DataGuide.
func BenchmarkE5SchemaComparison(b *testing.B) {
	var r experiments.SchemaComparisonResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunSchemaComparison(200, 1)
	}
	for _, v := range r.Variants {
		switch v.Name {
		case "majority-0.3":
			b.ReportMetric(v.AvgMapCost, "majority-cost/doc")
		case "dataguide":
			b.ReportMetric(v.AvgMapCost, "dataguide-cost/doc")
		case "lower-bound":
			b.ReportMetric(v.AvgMapCost, "lowerbound-cost/doc")
		}
	}
}

// BenchmarkE6Classifier runs the incomplete-vocabulary ablation of the
// Bayes classifier (§2.3.1). Reported: identified-token ratio with and
// without the classifier.
func BenchmarkE6Classifier(b *testing.B) {
	var r experiments.ClassifierResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunClassifier(40, 40, 1)
	}
	b.ReportMetric(r.RatioWithout*100, "ratio-without%")
	b.ReportMetric(r.RatioWith*100, "ratio-with%")
}

// ---------------------------------------------------------------------------
// Ablations of individual design choices (DESIGN.md §5)
// ---------------------------------------------------------------------------

func corpusHTML(n int, seed int64) []string {
	g := corpus.New(corpus.Options{Seed: seed})
	var out []string
	for _, r := range g.Corpus(n) {
		out = append(out, r.HTML)
	}
	return out
}

// BenchmarkAblationConstraints compares conversion quality with and without
// concept constraints guiding consolidation.
func BenchmarkAblationConstraints(b *testing.B) {
	g := corpus.New(corpus.Options{Seed: 2})
	docs := g.Corpus(50)
	for _, withCons := range []bool{true, false} {
		name := "constraints=on"
		opts := convert.Options{RootName: "resume", Constraints: concept.ResumeConstraints()}
		if !withCons {
			name = "constraints=off"
			opts = convert.Options{RootName: "resume"}
		}
		b.Run(name, func(b *testing.B) {
			conv := convert.New(concept.ResumeSet(), opts)
			for i := 0; i < b.N; i++ {
				for _, d := range docs {
					conv.Convert(d.HTML)
				}
			}
		})
	}
}

// BenchmarkAblationGrouping quantifies the grouping rule's contribution:
// conversion accuracy against ground truth with and without the rule. The
// metric is the corpus accuracy; timing shows the rule's cost.
func BenchmarkAblationGrouping(b *testing.B) {
	g := corpus.New(corpus.Options{Seed: 6})
	docs := g.Corpus(50)
	for _, skip := range []bool{false, true} {
		name := "grouping=on"
		if skip {
			name = "grouping=off"
		}
		b.Run(name, func(b *testing.B) {
			conv := convert.New(concept.ResumeSet(), convert.Options{
				RootName:     "resume",
				Constraints:  concept.ResumeConstraints(),
				SkipGrouping: skip,
			})
			var acc float64
			for i := 0; i < b.N; i++ {
				var rs []metrics.Result
				for _, d := range docs {
					x, _ := conv.Convert(d.HTML)
					rs = append(rs, metrics.Compare(x, d.Truth))
				}
				acc = metrics.Summarize(rs).Accuracy()
			}
			b.ReportMetric(acc*100, "accuracy%")
		})
	}
}

// BenchmarkAblationTidy measures the cost of the HTML cleansing pass the
// paper recommends (§2.4).
func BenchmarkAblationTidy(b *testing.B) {
	htmls := corpusHTML(50, 3)
	for _, skip := range []bool{false, true} {
		name := "tidy=on"
		if skip {
			name = "tidy=off"
		}
		b.Run(name, func(b *testing.B) {
			conv := convert.New(concept.ResumeSet(), convert.Options{
				RootName: "resume", SkipTidy: skip,
				Constraints: concept.ResumeConstraints(),
			})
			for i := 0; i < b.N; i++ {
				for _, h := range htmls {
					conv.Convert(h)
				}
			}
		})
	}
}

// BenchmarkAblationPathModel compares the paper's label-path model against
// the node-identifier model of Wang–Liu [26], which models trees "too
// precisely": the metric is the path-set blowup the simplification avoids.
func BenchmarkAblationPathModel(b *testing.B) {
	g := corpus.New(corpus.Options{Seed: 4})
	conv := convert.New(concept.ResumeSet(), convert.Options{
		RootName: "resume", Constraints: concept.ResumeConstraints(),
	})
	var trees []*dom.Node
	for _, r := range g.Corpus(100) {
		x, _ := conv.Convert(r.HTML)
		trees = append(trees, x)
	}
	b.Run("label-paths", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			labels := make(map[string]bool)
			for _, t := range trees {
				for p := range schema.Extract(t).Paths {
					labels[p] = true
				}
			}
			n = len(labels)
		}
		b.ReportMetric(float64(n), "distinct-paths")
	})
	b.Run("node-id-paths", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			ids := make(map[string]bool)
			for _, t := range trees {
				for p := range baseline.NodeIDPaths(t) {
					ids[p] = true
				}
			}
			n = len(ids)
		}
		b.ReportMetric(float64(n), "distinct-paths")
	})
}

// BenchmarkAblationMinerPruning isolates the miner's constraint pruning on
// a fixed converted corpus.
func BenchmarkAblationMinerPruning(b *testing.B) {
	g := corpus.New(corpus.Options{Seed: 5})
	conv := convert.New(concept.ResumeSet(), convert.Options{
		RootName: "resume", Constraints: concept.ResumeConstraints(),
	})
	var docs []*schema.DocPaths
	for _, r := range g.Corpus(200) {
		x, _ := conv.Convert(r.HTML)
		docs = append(docs, schema.Extract(x))
	}
	b.Run("pruning=on", func(b *testing.B) {
		m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1,
			Constraints: concept.ResumeConstraints(), Set: concept.ResumeSet()}
		var explored int
		for i := 0; i < b.N; i++ {
			explored = m.Discover(docs).Explored
		}
		b.ReportMetric(float64(explored), "explored")
	})
	b.Run("pruning=off", func(b *testing.B) {
		m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}
		var explored int
		for i := 0; i < b.N; i++ {
			explored = m.Discover(docs).Explored
		}
		b.ReportMetric(float64(explored), "explored")
	})
}
