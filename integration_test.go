package webrev_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"webrev"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
)

// TestEndToEnd exercises the complete system the paper describes, in order:
// a topical crawler gathers resume pages from a (local) site, the pipeline
// converts them to XML and discovers the majority schema, the derived DTD
// governs mapping into a repository, the repository round-trips through
// disk, and label-path queries retrieve semantic content that keyword
// search over the original HTML could not isolate.
func TestEndToEnd(t *testing.T) {
	// 1. The "Web": a generated site with resumes and distractors.
	g := corpus.New(corpus.Options{Seed: 1234})
	resumes := g.Corpus(30)
	var off []string
	for i := 0; i < 10; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(resumes, off)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	// 2. Topic-specific crawling via the fault-tolerant acquisition path.
	c := &crawler.Crawler{Workers: 4, Filter: crawler.ResumeFilter(3)}
	sources, rep, err := webrev.Acquire(context.Background(), c, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 30 {
		t.Fatalf("topical filter kept %d of 30 resumes", len(sources))
	}
	if rep.Fetched != site.PageCount() || rep.Failed != 0 {
		t.Fatalf("crawl report off for a healthy site: %s", rep)
	}

	// 3. Conversion, schema discovery, DTD derivation, mapping.
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		t.Fatal(err)
	}
	repo, err := pipe.BuildRepository(sources)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 30 {
		t.Fatalf("repository holds %d docs", repo.Len())
	}
	if repo.DTD().Len() < 8 {
		t.Fatalf("DTD suspiciously small:\n%s", repo.DTD().Render())
	}

	// 4. Persistence round trip.
	dir := t.TempDir()
	if err := repo.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := webrev.LoadRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("loaded %d of %d docs", loaded.Len(), repo.Len())
	}

	// 5. Semantic retrieval: every resume has an education section whose
	// institutions are named entities, retrievable by structure.
	refs, err := loaded.Query("/resume/education")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 20 {
		t.Fatalf("education sections found: %d", len(refs))
	}
	insts, err := loaded.Query("//institution")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("no institutions retrievable")
	}
	named := 0
	for _, r := range insts {
		v := strings.ToLower(r.Node.Val())
		if v == "" {
			continue // placeholder inserted by conformance mapping
		}
		if !strings.Contains(v, "university") && !strings.Contains(v, "college") &&
			!strings.Contains(v, "institute") {
			t.Fatalf("institution val looks wrong: %q", r.Node.Val())
		}
		named++
	}
	if named < len(insts)/2 {
		t.Fatalf("too many placeholder institutions: %d named of %d", named, len(insts))
	}
	// Predicate query: specific degree values.
	bs, err := loaded.Query(`//degree[@val~"B.S."]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Fatal("no B.S. degrees retrievable")
	}
}
