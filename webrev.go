// Package webrev reproduces "Reverse Engineering for Web Data: From Visual
// to Semantic Structures" (Chung, Gertz, Sundaresan; ICDE 2002): a system
// that converts topic-specific HTML documents into concept-tagged XML,
// discovers a majority schema over the results, derives a DTD with element
// ordering and repetition, and maps non-conforming documents into a
// homogeneous XML repository.
//
// The package is a thin facade over the internal packages; see DESIGN.md
// for the system inventory and README.md for a walkthrough.
//
//	pipe, err := webrev.NewResumePipeline()
//	doc := pipe.Convert("resume-1", html)
//	repo, err := pipe.Build(sources)
//	fmt.Print(repo.DTD.Render())
package webrev

import (
	"context"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/crawler"
	"webrev/internal/dom"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/serve"
	"webrev/internal/xmlout"
)

// Re-exported observability types (see internal/obs and DESIGN.md). Pass a
// *Collector as Config.Tracer to record per-stage timings and counters; the
// default is a no-op with near-zero overhead.
type (
	// Tracer receives span timings and counter updates from every pipeline
	// stage.
	Tracer = obs.Tracer
	// Collector is the recording Tracer; snapshot it for metrics.
	Collector = obs.Collector
	// Snapshot is a point-in-time copy of a Collector, serializable as
	// JSON.
	Snapshot = obs.Snapshot
	// StageStats aggregates the observations of one named stage.
	StageStats = obs.StageStats
)

// NewCollector returns an empty recording Tracer.
func NewCollector() *Collector { return obs.NewCollector() }

// PipelineStages lists the stage names Pipeline.Build records, in pipeline
// order.
var PipelineStages = obs.PipelineStages

// ResumeConcepts returns the paper's resume-domain concept vocabulary.
func ResumeConcepts() []Concept { return concept.ResumeConcepts() }

// ResumeConstraints returns the paper's §4.2 resume constraint classes.
func ResumeConstraints() *Constraints { return concept.ResumeConstraints() }

// Re-exported pipeline types. Pipeline is the main entry point.
type (
	// Pipeline converts, discovers, derives and maps. Build with New or
	// NewResumePipeline.
	Pipeline = core.Pipeline
	// Config parameterizes New.
	Config = core.Config
	// Source is one named HTML input for Pipeline.Build.
	Source = core.Source
	// Document is one converted input.
	Document = core.Document
	// Repository is the full pipeline output.
	Repository = core.Repository
	// Concept is one topic concept with its instances.
	Concept = concept.Concept
	// Constraints are optional concept constraints guiding the pipeline.
	Constraints = concept.Constraints
	// XMLRepository stores DTD-conformant documents, persists them, and
	// answers label-path queries (see Pipeline.BuildRepository).
	XMLRepository = repository.Repository
	// Crawler is the fault-tolerant topical crawler of the acquisition
	// path (retries, timeouts, cancellation; see internal/crawler).
	Crawler = crawler.Crawler
	// FetchPolicy governs the crawler's per-URL timeouts, retries and
	// backoff.
	FetchPolicy = crawler.FetchPolicy
	// CrawlReport accounts for every URL a crawl touched: fetched, failed
	// by error class, retried, skipped, truncated.
	CrawlReport = crawler.Report
)

// Re-exported fault-isolation types (see internal/core and the "Failure
// domains & recovery" section of ARCHITECTURE.md). Each per-document unit
// of work runs inside a fault boundary: failures quarantine the document
// instead of aborting the build, subject to Config.MaxFailureRatio.
type (
	// FailureRecord describes one per-document failure: stage, document,
	// kind, error, and (for panics) the stack.
	FailureRecord = core.FailureRecord
	// FailureKind classifies a FailureRecord (panic, timeout, error,
	// limit).
	FailureKind = core.FailureKind
	// Limits bounds the resources one document may consume (DOM size,
	// token budget, per-document deadline, mapping edit-cost ceiling);
	// set it on Config.Limits.
	Limits = core.Limits
	// QuarantineStore is the directory-backed log of quarantined
	// documents (Config.QuarantineDir) that `webrev quarantine` lists and
	// replays.
	QuarantineStore = core.QuarantineStore
	// QuarantinedDoc is one QuarantineStore entry.
	QuarantinedDoc = core.QuarantinedDoc
)

// Failure kinds a FailureRecord carries.
const (
	FailPanic   = core.FailPanic
	FailTimeout = core.FailTimeout
	FailError   = core.FailError
	FailLimit   = core.FailLimit
)

// OpenQuarantineStore opens (creating if needed) the quarantine store at
// dir — the directory a build configured as Config.QuarantineDir wrote.
func OpenQuarantineStore(dir string) (*QuarantineStore, error) {
	return core.OpenQuarantineStore(dir)
}

// Acquire crawls from seed under ctx with the given crawler and adapts the
// on-topic pages into pipeline Sources, alongside the crawl's report.
func Acquire(ctx context.Context, c *Crawler, seed string) ([]Source, *CrawlReport, error) {
	return core.Acquire(ctx, c, seed)
}

// StreamSink receives each document of a streaming build
// (Pipeline.BuildStreamTo) as its DTD-guided mapping finishes, in input
// order.
type StreamSink = core.StreamSink

// AcquireStream starts the crawl in the background and returns a channel of
// on-topic Sources fit to feed Pipeline.BuildStream, so document conversion
// and schema statistics overlap the crawl (see ARCHITECTURE.md, streaming
// path). wait blocks until the crawl ends and returns its report.
func AcquireStream(ctx context.Context, c *Crawler, seed string) (src <-chan Source, wait func() (*CrawlReport, error)) {
	return core.AcquireStream(ctx, c, seed)
}

// SourceChan adapts an already materialized corpus into the channel
// Pipeline.BuildStream consumes.
func SourceChan(sources []Source) <-chan Source { return core.SourceChan(sources) }

// Gauge names the streaming build records on its tracer: current and peak
// in-flight documents, and the number of per-worker statistic shards
// merged. The bounded-memory guarantee is peak <= Config.MaxInFlight.
const (
	GaugeStreamInFlight     = obs.GaugeStreamInFlight
	GaugeStreamInFlightPeak = obs.GaugeStreamInFlightPeak
	GaugeStreamShards       = obs.GaugeStreamShards
)

// LoadRepository reads a repository previously written with
// XMLRepository.Save.
func LoadRepository(dir string) (*XMLRepository, error) { return repository.Load(dir) }

// Re-exported serving layer (cmd/webrevd's engine; see ARCHITECTURE.md §6).
// All reads are lock-free against an immutable snapshot; Swap and Reload
// replace the snapshot atomically under live traffic.
type (
	// RepositoryServer answers repository queries over HTTP from an
	// immutable snapshot behind an atomic pointer.
	RepositoryServer = serve.Server
	// ServeOptions configures NewRepositoryServer (caches, result caps,
	// the reload source).
	ServeOptions = serve.Options
	// ServeStats is the RepositoryServer's /api/stats payload: request
	// totals, cache hit rates, and the serving generation.
	ServeStats = serve.Stats
	// LoadOptions parameterizes LoadTestServer.
	LoadOptions = serve.LoadOptions
	// LoadResult reports a load test's latency percentiles and throughput.
	LoadResult = serve.LoadResult
)

// NewRepositoryServer builds an HTTP server over a repository snapshot.
func NewRepositoryServer(repo *XMLRepository, opts ServeOptions) *RepositoryServer {
	return serve.NewServer(repo, opts)
}

// LoadTestServer drives concurrent clients against a running
// RepositoryServer at baseURL and reports latency percentiles — the
// harness behind `webrevd -bench` and BENCH_serve.json.
func LoadTestServer(s *RepositoryServer, baseURL string, opts LoadOptions) (*LoadResult, error) {
	return serve.LoadTest(s, baseURL, opts)
}

// Concept roles (see concept.Role).
const (
	RoleAny     = concept.RoleAny
	RoleTitle   = concept.RoleTitle
	RoleContent = concept.RoleContent
)

// New assembles a pipeline from a configuration.
func New(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// NewResumePipeline returns a pipeline preconfigured with the paper's
// resume-domain knowledge: 24 concepts, 233 instances, and the §4.2
// constraint classes.
func NewResumePipeline() (*Pipeline, error) {
	return core.New(core.Config{
		Concepts:    concept.ResumeConcepts(),
		Constraints: concept.ResumeConstraints(),
		RootName:    "resume",
	})
}

// MarshalXML renders a converted document as indented XML text.
func MarshalXML(n *dom.Node) string { return xmlout.Marshal(n) }
