// Quickstart: convert one HTML resume into a concept-tagged XML document
// using the public webrev API and print the result.
package main

import (
	"fmt"
	"log"

	"webrev"
)

const page = `
<html><head><title>Jane Doe</title></head><body>
<h1>Jane Doe</h1>
<h2>Objective</h2>
<p>Seeking a software engineer position.</p>
<h2>Education</h2>
<ul>
  <li>University of California at Davis, B.S. Computer Science, June 1996, GPA 3.8/4.0</li>
  <li>Foothill College, A.S., June 1992</li>
</ul>
<h2>Experience</h2>
<p><b>Acme Inc</b>, Software Engineer, June 1996 - December 2000.
Developed internal tools in Java and Perl.</p>
<h2>Skills</h2>
<p>Java, C++, Perl, SQL, Unix</p>
</body></html>`

func main() {
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		log.Fatal(err)
	}
	doc := pipe.Convert("jane-doe.html", page)
	fmt.Printf("tokens: %d, identified: %.0f%%, concept nodes: %d\n\n",
		doc.Stats.Tokens, doc.Stats.IdentifiedRatio()*100, doc.Stats.ConceptNodes)
	fmt.Print(webrev.MarshalXML(doc.XML))
}
