// Crawl and build: the end-to-end flow of the paper's system — a topical
// crawler gathers resume pages from a (local) web site, and the pipeline
// turns the on-topic pages into a DTD-conformant XML repository.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"webrev"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
)

func main() {
	n := flag.Int("n", 40, "resumes on the generated site")
	distractors := flag.Int("distractors", 15, "off-topic pages on the site")
	seed := flag.Int64("seed", 3, "corpus seed")
	flag.Parse()

	if err := run(*n, *distractors, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n, distractors int, seed int64) error {
	// Serve a synthetic site (substitutes for the 2001 Web).
	g := corpus.New(corpus.Options{Seed: seed})
	var off []string
	for i := 0; i < distractors; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(g.Corpus(n), off)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: site.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	// Crawl it with the topical filter.
	c := &crawler.Crawler{Workers: 8, Filter: crawler.ResumeFilter(3)}
	pages, err := c.Crawl("http://" + ln.Addr().String() + "/")
	if err != nil {
		return err
	}
	var sources []webrev.Source
	for _, p := range pages {
		if p.OnTopic {
			sources = append(sources, webrev.Source{Name: p.URL, HTML: p.HTML})
		}
	}
	fmt.Printf("crawled %d pages, kept %d on-topic resumes\n", len(pages), len(sources))

	// Feed the pipeline.
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		return err
	}
	repo, err := pipe.Build(sources)
	if err != nil {
		return err
	}
	fmt.Printf("majority schema: %d paths; DTD: %d elements\n",
		len(repo.Schema.Paths()), repo.DTD.Len())
	fmt.Printf("pre-mapping conformance %.1f%%; %d edits to integrate the rest\n",
		repo.ConformanceRate()*100, repo.TotalMapCost())
	fmt.Print(repo.DTD.RenderElements())
	return nil
}
