// Crawl and build: the end-to-end flow of the paper's system — a topical
// crawler gathers resume pages from a (local) web site, and the pipeline
// turns the on-topic pages into a DTD-conformant XML repository.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"webrev"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
)

func main() {
	n := flag.Int("n", 40, "resumes on the generated site")
	distractors := flag.Int("distractors", 15, "off-topic pages on the site")
	seed := flag.Int64("seed", 3, "corpus seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *n, *distractors, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, n, distractors int, seed int64) error {
	// Serve a synthetic site (substitutes for the 2001 Web).
	g := corpus.New(corpus.Options{Seed: seed})
	var off []string
	for i := 0; i < distractors; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(g.Corpus(n), off)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: site.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	// Crawl it with the topical filter under a fault-tolerant fetch
	// policy; Acquire adapts on-topic pages into pipeline sources and
	// returns the crawl report.
	c := &crawler.Crawler{Workers: 8, Filter: crawler.ResumeFilter(3),
		Fetch: crawler.FetchPolicy{Timeout: 10 * time.Second, MaxRetries: 2}}
	sources, rep, err := webrev.Acquire(ctx, c, "http://"+ln.Addr().String()+"/")
	if err != nil {
		return err
	}
	fmt.Printf("crawled %d pages, kept %d on-topic resumes\n", rep.Fetched, len(sources))
	fmt.Printf("crawl report: %s\n", rep)

	// Feed the pipeline.
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		return err
	}
	repo, err := pipe.Build(sources)
	if err != nil {
		return err
	}
	fmt.Printf("majority schema: %d paths; DTD: %d elements\n",
		len(repo.Schema.Paths()), repo.DTD.Len())
	fmt.Printf("pre-mapping conformance %.1f%%; %d edits to integrate the rest\n",
		repo.ConformanceRate()*100, repo.TotalMapCost())
	fmt.Print(repo.DTD.RenderElements())
	return nil
}
