// Instance discovery: the paper's §5 future-work loop, closed. Starting
// from an incomplete vocabulary, the system converts a corpus, mines the
// unidentified text for instance candidates, and shows how adopting the top
// suggestions raises the identified-token ratio — the feedback signal
// §2.3.1 tells the user to watch.
package main

import (
	"flag"
	"fmt"
	"log"

	"webrev/internal/concept"
	"webrev/internal/convert"
	"webrev/internal/corpus"
	"webrev/internal/discover"
	"webrev/internal/dom"
)

func main() {
	n := flag.Int("n", 60, "corpus size")
	seed := flag.Int64("seed", 17, "corpus seed")
	flag.Parse()

	// An incomplete vocabulary: the institution concept lost its most
	// important instances.
	var reduced []concept.Concept
	for _, c := range concept.ResumeConcepts() {
		if c.Name == "institution" {
			c.Instances = []string{"academy"} // nearly everything missing
		}
		reduced = append(reduced, c)
	}
	set := concept.MustSet(reduced...)

	g := corpus.New(corpus.Options{Seed: *seed})
	docs := g.Corpus(*n)

	ratio, trees := convertAll(set, docs)
	fmt.Printf("identified-token ratio with incomplete vocabulary: %.1f%%\n\n", ratio*100)

	suggestions := discover.SuggestInstances(trees, set, discover.Options{MinDocs: 5, MaxPerConcept: 5})
	fmt.Println("top instance candidates mined from unidentified text:")
	for _, s := range suggestions {
		fmt.Printf("  %-12s %-14s %3d docs   e.g. %q\n", s.Concept, s.Instance, s.Docs, s.Examples[0])
	}

	// Adopt every candidate suggested for a concept context into that
	// concept (a real user would review; this demo accepts them all).
	byConcept := map[string][]string{}
	for _, s := range suggestions {
		byConcept[s.Concept] = append(byConcept[s.Concept], s.Instance)
	}
	var grown []concept.Concept
	for _, c := range reduced {
		c.Instances = append(c.Instances, byConcept[c.Name]...)
		grown = append(grown, c)
	}
	grownSet := concept.MustSet(grown...)

	ratio2, _ := convertAll(grownSet, docs)
	fmt.Printf("\nidentified-token ratio after adopting candidates: %.1f%%\n", ratio2*100)
}

func convertAll(set *concept.Set, docs []*corpus.Resume) (float64, []*dom.Node) {
	conv := convert.New(set, convert.Options{
		RootName:    "resume",
		Constraints: concept.ResumeConstraints(),
	})
	var trees []*dom.Node
	sum := 0.0
	for _, r := range docs {
		x, stats := conv.Convert(r.HTML)
		trees = append(trees, x)
		sum += stats.IdentifiedRatio()
	}
	if len(docs) == 0 {
		log.Fatal("empty corpus")
	}
	return sum / float64(len(docs)), trees
}
