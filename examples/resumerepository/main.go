// Resume repository: the full pipeline of the paper over a generated
// heterogeneous corpus — convert every document, discover the majority
// schema, derive the DTD, and map each document to conform. Prints the DTD
// and integration statistics.
package main

import (
	"flag"
	"fmt"
	"log"

	"webrev"
	"webrev/internal/corpus"
)

func main() {
	n := flag.Int("n", 200, "corpus size")
	seed := flag.Int64("seed", 7, "corpus seed")
	flag.Parse()

	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		log.Fatal(err)
	}

	g := corpus.New(corpus.Options{Seed: *seed})
	var sources []webrev.Source
	for _, r := range g.Corpus(*n) {
		sources = append(sources, webrev.Source{Name: r.Name, HTML: r.HTML})
	}

	repo, err := pipe.Build(sources)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d heterogeneous HTML resumes\n", len(repo.Docs))
	fmt.Printf("majority schema: %d frequent paths (%d candidates explored)\n",
		len(repo.Schema.Paths()), repo.Schema.Explored)
	fmt.Printf("derived DTD (%d elements):\n\n%s\n", repo.DTD.Len(), repo.DTD.Render())
	fmt.Printf("pre-mapping conformance: %.1f%% of documents\n", repo.ConformanceRate()*100)
	fmt.Printf("document mapping: %d total edits to integrate the rest\n", repo.TotalMapCost())

	ok := 0
	for _, c := range repo.Conformed {
		if repo.DTD.Conforms(c) {
			ok++
		}
	}
	fmt.Printf("post-mapping conformance: %d/%d documents\n", ok, len(repo.Conformed))
}
