// Job postings: the pipeline on a second topic, showing that the
// restructuring rules and schema discovery are domain independent — only
// the concepts, instances and constraints change (paper §2.2: concepts are
// the minimal user input).
package main

import (
	"fmt"
	"log"

	"webrev"
	"webrev/internal/corpus"
)

// The topic vocabulary a user would specify after inspecting a few job
// posting pages.
func jobConcepts() []webrev.Concept {
	return []webrev.Concept{
		{Name: "position", Role: webrev.RoleTitle, Instances: []string{
			"job title", "position title", "role", "opening", "vacancy",
		}},
		{Name: "requirements", Role: webrev.RoleTitle, Instances: []string{
			"qualifications", "required skills", "must have", "we require",
		}},
		{Name: "responsibilities", Role: webrev.RoleTitle, Instances: []string{
			"duties", "what you will do", "the role involves",
		}},
		{Name: "compensation", Role: webrev.RoleTitle, Instances: []string{
			"salary", "pay", "benefits", "we offer",
		}},
		{Name: "about", Role: webrev.RoleTitle, Instances: []string{
			"about us", "company profile", "who we are",
		}},
		{Name: "employer", Role: webrev.RoleContent, Instances: []string{
			"inc", "corp", "llc", "company", "corporation",
		}},
		{Name: "location", Role: webrev.RoleContent, Instances: []string{
			"san jose", "remote", "on-site", "new york", "headquarters",
		}},
		{Name: "skill", Role: webrev.RoleContent, Instances: []string{
			"java", "c++", "sql", "perl", "unix", "html", "xml",
		}},
		{Name: "experience-years", Role: webrev.RoleContent, Instances: []string{
			"years of experience", "years experience", "1+ years", "3+ years", "5+ years",
		}},
		{Name: "degree", Role: webrev.RoleContent, Instances: []string{
			"b.s.", "m.s.", "bachelor", "master", "ph.d.",
		}},
		{Name: "amount", Role: webrev.RoleContent, Instances: []string{
			"per year", "per hour", "annually", "stock options", "401k",
		}},
	}
}

// Three postings from "different sites": same topic, different markup.
var postings = []webrev.Source{
	{Name: "site-a", HTML: `
<html><body>
<h1>Opening: Senior Developer</h1>
<h2>About Us</h2><p>Initech Corp, San Jose. We build workflow software.</p>
<h2>Requirements</h2><ul>
  <li>B.S. in a technical field</li>
  <li>5+ years experience, Java, SQL</li>
  <li>Unix, XML</li>
</ul>
<h2>Salary</h2><p>90000 per year, 401k</p>
</body></html>`},
	{Name: "site-b", HTML: `
<html><body>
<p><b>Vacancy</b></p><p>Junior Programmer</p>
<p><b>Must Have</b></p><p>1+ years; Perl; HTML</p>
<p><b>We Offer</b></p><p>25 per hour, stock options</p>
<p><b>Who We Are</b></p><p>Globex LLC, remote</p>
</body></html>`},
	{Name: "site-c", HTML: `
<html><body>
<table>
<tr><td>Role</td><td>Database Engineer</td></tr>
<tr><td>Qualifications</td><td>M.S. preferred; 3+ years; SQL, C++</td></tr>
<tr><td>Duties</td><td>Design schemas; tune queries</td></tr>
<tr><td>Pay</td><td>80000 annually</td></tr>
</table>
</body></html>`},
}

func main() {
	pipe, err := webrev.New(webrev.Config{
		Concepts: jobConcepts(),
		Constraints: &webrev.Constraints{
			NoRepeatOnPath: true,
			MaxDepth:       3,
			RoleDepth:      true,
		},
		RootName:     "jobposting",
		SupThreshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range postings {
		doc := pipe.Convert(s.Name, s.HTML)
		fmt.Printf("--- %s (%.0f%% tokens identified)\n%s\n",
			s.Name, doc.Stats.IdentifiedRatio()*100, webrev.MarshalXML(doc.XML))
	}

	repo, err := pipe.Build(postings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- majority schema DTD over %d postings:\n%s", len(repo.Docs), repo.DTD.Render())

	// At scale: a generated posting corpus from many "sites".
	g := corpus.NewJobGenerator(42)
	var many []webrev.Source
	for _, p := range g.Postings(120) {
		many = append(many, webrev.Source{Name: p.Title, HTML: p.HTML})
	}
	big, err := pipe.Build(many)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- DTD over %d generated postings (%d elements):\n%s",
		len(big.Docs), big.DTD.Len(), big.DTD.RenderElements())
}
