package webrev_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"webrev"
	"webrev/internal/corpus"
)

// goldenBuildStream runs the streaming pipeline over the same fixed corpus
// as goldenBuild, with a recording tracer and a deliberately tight
// in-flight cap.
func goldenBuildStream(t *testing.T, cap int) (*webrev.Repository, *webrev.Snapshot) {
	t.Helper()
	coll := webrev.NewCollector()
	pipe, err := webrev.New(webrev.Config{
		Concepts:    webrev.ResumeConcepts(),
		Constraints: webrev.ResumeConstraints(),
		RootName:    "resume",
		MaxInFlight: cap,
		Tracer:      coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sources []webrev.Source
	for _, r := range corpus.New(corpus.Options{Seed: goldenSeed}).Corpus(goldenDocs) {
		sources = append(sources, webrev.Source{Name: r.Name, HTML: r.HTML})
	}
	repo, err := pipe.BuildStream(context.Background(), webrev.SourceChan(sources))
	if err != nil {
		t.Fatal(err)
	}
	return repo, coll.Snapshot()
}

// TestGoldenBuildStream pins the streaming build against the same committed
// golden artifacts the batch build produces: BuildStream on the golden
// corpus must yield a byte-identical DTD and conformed repository. Metrics
// are not compared byte-for-byte (the streaming build records extra merge
// and gauge entries) but the per-document counters must agree with the
// batch path.
func TestGoldenBuildStream(t *testing.T) {
	const cap = 4
	repo, snap := goldenBuildStream(t, cap)

	got := renderGolden(t, repo, snap)
	dir := filepath.Join("testdata", "golden")
	for _, name := range []string{"schema.dtd", "conformed.xml"} {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing golden file (run `go test -run TestGoldenBuild -update .`): %v", err)
		}
		if string(want) != got[name] {
			t.Errorf("streaming %s differs from the batch golden file\n%s",
				name, firstDiff(string(want), got[name]))
		}
	}

	if n := snap.Counters["docs.converted"]; n != goldenDocs {
		t.Errorf("docs.converted = %d, want %d", n, goldenDocs)
	}
	if peak := snap.Gauges[webrev.GaugeStreamInFlightPeak]; peak < 1 || peak > cap {
		t.Errorf("peak in-flight = %d, want within (0, %d]", peak, cap)
	}
	if st := snap.Stages["schema.merge"]; st.Count != 1 {
		t.Errorf("merge stage count = %d, want 1", st.Count)
	}
	// The per-document stages saw exactly the golden corpus.
	for _, stage := range []string{"pipeline.convert", "schema.extract", "map.conform"} {
		if st := snap.Stages[stage]; st.Count != goldenDocs {
			t.Errorf("stage %s count = %d, want %d", stage, st.Count, goldenDocs)
		}
	}
}

// TestGoldenBuildStreamDeterministic asserts two streaming builds with
// different worker counts produce byte-identical artifacts.
func TestGoldenBuildStreamDeterministic(t *testing.T) {
	repoA, _ := goldenBuildStream(t, 2)
	repoB, _ := goldenBuildStream(t, 9)
	if repoA.DTD.Render() != repoB.DTD.Render() {
		t.Error("DTD differs across in-flight caps")
	}
	for i := range repoA.Conformed {
		if webrev.MarshalXML(repoA.Conformed[i]) != webrev.MarshalXML(repoB.Conformed[i]) {
			t.Errorf("conformed document %d differs across in-flight caps", i)
		}
	}
}
