# Developer / CI targets. `make check` is the full gate: build, vet, the
# tier-1 test suite, and the race detector over the concurrent packages.

GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The crawler's worker pool, retry/backoff machinery, and fault-injection
# middleware are concurrency-heavy; they must stay race-clean.
race:
	$(GO) test -race ./...

check: build vet test race
