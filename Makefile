# Developer / CI targets. `make check` is the full gate: build, vet, the
# tier-1 test suite, the race detector over the concurrent packages, a
# short run of every fuzz target, the documentation lint, and a one-shot
# smoke run of the streaming-build benchmarks.

GO ?= go

# Per-target budget for `make fuzz` (and the fuzz leg of `make check`).
FUZZTIME ?= 5s

.PHONY: build test vet race fuzz bench bench-convert bench-map bench-serve \
	bench-recrawl bench-shard bench-stream-short docs-lint chaos chaos-drift \
	chaos-serve scale-smoke coverage check ci-test ci-race-chaos ci-fuzz-docs

# Packages whose statement coverage is gated in CI (the convert hot path
# plus the query/serving read path and the discover->mine->map stages).
COVER_PKGS = webrev/internal/bayes webrev/internal/convert webrev/internal/xmlout \
	webrev/internal/query webrev/internal/pathindex webrev/internal/serve \
	webrev/internal/discover webrev/internal/schema webrev/internal/mapping
# Floor enforced by `make coverage` / the CI coverage job. The
# discover/mine/map packages carry a higher floor (pkg=floor form,
# understood by cmd/covercheck): their correctness rests on equivalence
# proofs, so untested branches there are a determinism risk.
COVER_FLOOR ?= 70
COVER_ARGS = webrev/internal/bayes webrev/internal/convert webrev/internal/xmlout \
	webrev/internal/query webrev/internal/pathindex webrev/internal/serve=80 \
	webrev/internal/discover=85 webrev/internal/schema=85 webrev/internal/mapping=85

# Benchmarks gating the CI bench-regression job: the per-document convert
# hot path (tokenize, classify, concept matching, parse, serialize) plus
# the schema stages.
CONVERT_BENCH = 'BenchmarkConvertResume|BenchmarkClassify|BenchmarkFrozenClassify|BenchmarkFindAllResume|BenchmarkParseResumeLike|BenchmarkMarshal|BenchmarkExtract|BenchmarkDiscover'

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The crawler's worker pool, retry/backoff machinery, parallel document
# mapping, and fault-injection middleware are concurrency-heavy; they must
# stay race-clean.
race:
	$(GO) test -race ./...

# Native fuzz targets: the parser, the cleaner and the full converter must
# accept arbitrary bytes without panicking; the tree-edit-distance memo and
# the parallel path miner must additionally stay equivalent to their naive
# and serial references on arbitrary inputs; fold/subtract interleavings
# over the delta accumulator must exactly invert. Go allows one -fuzz
# target per invocation, so each gets its own short run.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzHTMLParse -fuzztime $(FUZZTIME) ./internal/htmlparse/
	$(GO) test -run '^$$' -fuzz FuzzTidy -fuzztime $(FUZZTIME) ./internal/tidy/
	$(GO) test -run '^$$' -fuzz FuzzConvert -fuzztime $(FUZZTIME) ./internal/convert/
	$(GO) test -run '^$$' -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/query/
	$(GO) test -run '^$$' -fuzz FuzzTreeDistance -fuzztime $(FUZZTIME) ./internal/mapping/
	$(GO) test -run '^$$' -fuzz FuzzMinePaths -fuzztime $(FUZZTIME) ./internal/schema/
	$(GO) test -run '^$$' -fuzz FuzzFoldSubtract -fuzztime $(FUZZTIME) ./internal/schema/

# E1-E5 micro/macro benchmarks plus metrics snapshots of the full batch
# pipeline (experiment E8 -> BENCH_pipeline.json) and the streaming
# crawl-and-build comparison (experiment E9 -> BENCH_stream.json), both
# written through the observability layer.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
	$(GO) run ./cmd/webrev experiments -run E8 -docs 100 -seed 1 -metrics BENCH_pipeline.json
	$(GO) run ./cmd/webrev experiments -run E9 -docs 200 -seed 1 -metrics BENCH_stream.json

# Convert-stage throughput snapshot: runs the hot-path benchmarks (3
# repeats, min kept) and writes BENCH_convert.json with commit/platform
# metadata via cmd/benchdiff. Compare two snapshots with
#   go run ./cmd/benchdiff -old base.json -new head.json -threshold 15
bench-convert:
	$(GO) test -run '^$$' -bench $(CONVERT_BENCH) -benchmem -count 3 ./... \
		| tee /tmp/bench_convert.txt
	$(GO) run ./cmd/benchdiff -parse -out BENCH_convert.json /tmp/bench_convert.txt

# Mapping/mining hot-path snapshot: the memoized tree-edit distance, the
# compiled conformance pass, and the sharded path miner. Written as
# BENCH_map.json (same benchdiff shape as BENCH_convert.json) and gated in
# the CI bench-regression job at the 15% threshold.
MAP_BENCH = 'BenchmarkTreeDistance|BenchmarkConform|BenchmarkDiscover|BenchmarkMineParallel'
bench-map:
	$(GO) test -run '^$$' -bench $(MAP_BENCH) -benchmem -count 3 \
		./internal/mapping/ ./internal/schema/ | tee /tmp/bench_map.txt
	$(GO) run ./cmd/benchdiff -parse -out BENCH_map.json /tmp/bench_map.txt

# Serving-latency snapshot: webrevd's load-test harness drives 64
# concurrent clients against a corpus-built repository with background
# snapshot swaps (ServeMixed rows), then a 4x-overload pass into a tiny
# admission limit (ServeOverload goodput/p99 rows), and writes the result
# as BENCH_serve.json (same file shape as bench-convert, so cmd/benchdiff
# compares it directly).
bench-serve:
	$(GO) run ./cmd/webrevd -corpus 200 -seed 1 -bench \
		-clients 64 -duration 3s -swap-every 500ms -out BENCH_serve.json

# Statement-coverage gate over the hot-path packages. The coverprofile is
# a build product, not a source: it goes under the git-ignored .cover/
# directory (published from there as a CI artifact) and fails below
# COVER_FLOOR percent.
coverage:
	mkdir -p .cover
	$(GO) test -coverprofile .cover/cover.out -covermode atomic $(addprefix ./,$(subst webrev/,,$(COVER_PKGS)))
	$(GO) run ./cmd/covercheck -profile .cover/cover.out -floor $(COVER_FLOOR) $(COVER_ARGS)

# One iteration of the batch-vs-streaming build benchmarks over a small
# corpus: proves the streaming path still runs end to end without paying
# for full benchmark statistics (the `make check` smoke leg).
bench-stream-short:
	$(GO) test -run '^$$' -bench 'Benchmark(Batch|Stream)Build' -benchtime 1x -short .

# Documentation gate: every package needs a package comment and every
# exported identifier of the webrev facade needs a doc comment.
docs-lint:
	$(GO) run ./cmd/docslint

# Fault-isolation gate: inject panics, errors and delays into the convert
# and map stages of both build paths and require the build to finish with
# the failures quarantined and the surviving output byte-identical to a
# clean run; also kills and resumes a checkpointed streaming build. See
# ARCHITECTURE.md, "Failure domains & recovery".
chaos:
	$(GO) test -short -run 'TestChaos|TestBuildStreamCheckpoint' ./internal/core/

# Continuous-operation chaos gate: a seeded template-mutation sweep
# rewrites ~20% of a site's templates mid-watch; the next cycle must detect
# every mutated page, emit a drift report matching the pinned golden
# (internal/watch/testdata/chaos_drift.golden), keep the quarantine budget
# untouched, and resume cleanly from its state directory after a kill. See
# ARCHITECTURE.md §7, "Continuous operation".
chaos-drift:
	$(GO) test -run TestWatchChaosDrift ./internal/watch/

# Serving-layer chaos gate, always under -race: 4x overload must shed with
# 503s while admitted requests keep a bounded p99, injected handler panics
# and corrupt/panicking reloads must kill neither the process nor the
# serving generation, and a drain must finish every in-flight request. See
# ARCHITECTURE.md, "Overload & drain".
chaos-serve:
	$(GO) test -race -run TestChaos ./internal/serve/

# Recrawl-cycle snapshot: steady-state (all-304) and 20%-delta watch cycles
# against the cold full-rebuild baseline, written as BENCH_recrawl.json for
# the CI bench-regression job.
bench-recrawl:
	$(GO) test -run '^$$' -bench BenchmarkRecrawl -benchmem -count 3 \
		./internal/watch/ | tee /tmp/bench_recrawl.txt
	$(GO) run ./cmd/benchdiff -parse -out BENCH_recrawl.json /tmp/bench_recrawl.txt

# Scale-gate parameters. SCALE_BUDGET_KB is the committed peak-RSS budget
# for the smoke-scale sharded build: the 10k run measures ~51 MB on a
# clean tree, so 128 MB leaves GC headroom while still failing fast if the
# flat-memory property breaks (a resident corpus, an unbounded cache).
SCALE_DOCS ?= 10000
SCALE_SEED ?= 1
SCALE_SHARDS ?= 2
SCALE_BUDGET_KB ?= 131072
SCALE_CORPUS ?= .scale/corpus
SCALE_DIR ?= .scale/work

# Scale-smoke gate: a 10k-document, 2-shard, disk-backed build must finish
# under the committed peak-RSS budget (enforced by cmd/rsscheck around the
# compiled binary — never `go run`, whose rusage measures the toolchain)
# and produce output byte-identical to the single-process in-memory build.
# The corpus is stamped by cmd/corpusgen, so -if-stale reuses it across
# runs (and the CI cache restores it keyed on the stamp inputs). The
# -verify pass runs outside the RSS budget: it resumes the already-built
# shards, then materializes the corpus for the in-memory reference build,
# which legitimately uses more memory than the gated sharded path.
scale-smoke:
	$(GO) build -o bin/webrev ./cmd/webrev
	$(GO) build -o bin/rsscheck ./cmd/rsscheck
	$(GO) build -o bin/corpusgen ./cmd/corpusgen
	bin/corpusgen -n $(SCALE_DOCS) -seed $(SCALE_SEED) -out $(SCALE_CORPUS) -if-stale
	rm -rf $(SCALE_DIR)
	bin/rsscheck -budget-kb $(SCALE_BUDGET_KB) bin/webrev scale \
		-corpus $(SCALE_CORPUS) -shards $(SCALE_SHARDS) -dir $(SCALE_DIR)
	bin/webrev scale -corpus $(SCALE_CORPUS) -shards $(SCALE_SHARDS) \
		-dir $(SCALE_DIR) -verify

# Sharded-build scaling snapshot: a smoke-scale synthetic sharded build's
# wall/rss_kb/disk_bytes rows merged into BENCH_shard.json (the committed
# file also carries the 100k and 1M sweep rows from `webrev scale
# -bench-out`). The CI bench-regression job regenerates this row on the PR
# head and its merge base and gates the wall-clock delta at 25%.
bench-shard:
	$(GO) build -o bin/webrev ./cmd/webrev
	rm -rf .scale/bench
	bin/webrev scale -n $(SCALE_DOCS) -seed $(SCALE_SEED) -shards $(SCALE_SHARDS) \
		-dir .scale/bench -bench-out BENCH_shard.json

# CI matrix legs: the workflow splits `make check` into three parallel
# jobs per Go version. Locally, `make check` remains their union.
ci-test: build vet test

ci-race-chaos: race chaos chaos-drift chaos-serve

ci-fuzz-docs: fuzz docs-lint bench-stream-short

check: build vet test race fuzz docs-lint chaos chaos-drift chaos-serve bench-stream-short
