# Developer / CI targets. `make check` is the full gate: build, vet, the
# tier-1 test suite, the race detector over the concurrent packages, and a
# short run of every fuzz target.

GO ?= go

# Per-target budget for `make fuzz` (and the fuzz leg of `make check`).
FUZZTIME ?= 5s

.PHONY: build test vet race fuzz bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The crawler's worker pool, retry/backoff machinery, parallel document
# mapping, and fault-injection middleware are concurrency-heavy; they must
# stay race-clean.
race:
	$(GO) test -race ./...

# Native fuzz targets: the parser, the cleaner and the full converter must
# accept arbitrary bytes without panicking. Go allows one -fuzz target per
# invocation, so each gets its own short run.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzHTMLParse -fuzztime $(FUZZTIME) ./internal/htmlparse/
	$(GO) test -run '^$$' -fuzz FuzzTidy -fuzztime $(FUZZTIME) ./internal/tidy/
	$(GO) test -run '^$$' -fuzz FuzzConvert -fuzztime $(FUZZTIME) ./internal/convert/

# E1-E5 micro/macro benchmarks plus a metrics snapshot of the full pipeline
# (experiment E8) written through the observability layer.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
	$(GO) run ./cmd/webrev experiments -run E8 -docs 100 -seed 1 -metrics BENCH_pipeline.json

check: build vet test race fuzz
