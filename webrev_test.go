package webrev_test

import (
	"strings"
	"testing"

	"webrev"
	"webrev/internal/corpus"
)

func TestNewResumePipeline(t *testing.T) {
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Set().Len() != 24 {
		t.Fatalf("concepts = %d", pipe.Set().Len())
	}
}

func TestFacadeConvertAndMarshal(t *testing.T) {
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		t.Fatal(err)
	}
	doc := pipe.Convert("x", `<body><h2>Education</h2><p>University of Nowhere, B.S., June 1996</p></body>`)
	xml := webrev.MarshalXML(doc.XML)
	for _, want := range []string{"<resume", "<education", "<institution", "University of Nowhere"} {
		if !strings.Contains(xml, want) {
			t.Fatalf("marshal missing %q:\n%s", want, xml)
		}
	}
}

func TestFacadeCustomDomain(t *testing.T) {
	pipe, err := webrev.New(webrev.Config{
		Concepts: []webrev.Concept{
			{Name: "recipe", Role: webrev.RoleTitle, Instances: []string{"ingredients"}},
			{Name: "quantity", Role: webrev.RoleContent, Instances: []string{"cups", "grams"}},
		},
		RootName: "dish",
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := pipe.Convert("r", `<body><h2>Ingredients</h2><p>2 cups flour, 100 grams butter</p></body>`)
	if doc.XML.Tag != "dish" || doc.XML.FindElement("recipe") == nil {
		t.Fatalf("custom domain conversion: %s", doc.XML.String())
	}
	if got := len(doc.XML.FindElements("quantity")); got != 2 {
		t.Fatalf("quantities = %d", got)
	}
}

func TestFacadeFullBuild(t *testing.T) {
	pipe, err := webrev.NewResumePipeline()
	if err != nil {
		t.Fatal(err)
	}
	g := corpus.New(corpus.Options{Seed: 99})
	var sources []webrev.Source
	for _, r := range g.Corpus(25) {
		sources = append(sources, webrev.Source{Name: r.Name, HTML: r.HTML})
	}
	repo, err := pipe.Build(sources)
	if err != nil {
		t.Fatal(err)
	}
	if repo.DTD.Len() == 0 || len(repo.Conformed) != 25 {
		t.Fatalf("repo: dtd=%d conformed=%d", repo.DTD.Len(), len(repo.Conformed))
	}
	for i, c := range repo.Conformed {
		if !repo.DTD.Conforms(c) {
			t.Fatalf("doc %d not conformant", i)
		}
	}
}
