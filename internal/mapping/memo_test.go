package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
)

// randDoc builds a random tree mixing element and text nodes — richer than
// randTree, exercising the text-label interning and hash paths.
func randDoc(r *rand.Rand, maxNodes int) *dom.Node {
	tags := []string{"a", "b", "c", "d"}
	texts := []string{"x", "y", "longer text value", ""}
	root := el("root")
	parents := []*dom.Node{root}
	for i := 0; i < r.Intn(maxNodes); i++ {
		p := parents[r.Intn(len(parents))]
		if r.Intn(4) == 0 {
			p.AppendChild(dom.NewText(texts[r.Intn(len(texts))]))
			continue
		}
		c := el(tags[r.Intn(len(tags))])
		p.AppendChild(c)
		parents = append(parents, c)
	}
	return root
}

// customCosts is a non-canonical model (insert 2, delete 3, rename 1.5/0)
// that must route TreeDistance through the generic kernel.
func customCosts() Costs {
	return Costs{
		Insert: func(*dom.Node) float64 { return 2 },
		Delete: func(*dom.Node) float64 { return 3 },
		Rename: func(a, b *dom.Node) float64 {
			if label(a) == label(b) {
				return 0
			}
			return 1.5
		},
	}
}

// TestPropertyMemoMatchesNaive is the central equivalence property: the
// pooled, memoized, kernel-specialized TreeDistance must be bit-identical
// (float64 ==, not approximately equal) to the fresh-allocation naive
// reference on randomized document pairs, under both the canonical unit
// model and a custom cost table.
func TestPropertyMemoMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDoc(r, 30), randDoc(r, 30)
		for _, costs := range []Costs{UnitCosts(), customCosts()} {
			if TreeDistance(a, b, costs) != treeDistanceNaive(a, b, costs) {
				return false
			}
		}
		// Identical-tree pairs hit the memo short-circuit; the naive path
		// computes the full matrix. Both must be exactly 0.
		c := a.Clone()
		if TreeDistance(a, c, UnitCosts()) != 0 || treeDistanceNaive(a, c, UnitCosts()) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnitKernelMatchesClosures pins the devirtualization seam: the
// named-function unit model (specialized kernel) and semantically identical
// closures (generic kernel) must produce bit-identical distances.
func TestPropertyUnitKernelMatchesClosures(t *testing.T) {
	closures := Costs{
		Insert: func(*dom.Node) float64 { return 1 },
		Delete: func(*dom.Node) float64 { return 1 },
		Rename: func(a, b *dom.Node) float64 {
			if label(a) == label(b) {
				return 0
			}
			return 1
		},
	}
	if closures.isUnit() {
		t.Fatal("closure costs must not be detected as the canonical unit model")
	}
	if !UnitCosts().isUnit() {
		t.Fatal("UnitCosts must be detected as the canonical unit model")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDoc(r, 25), randDoc(r, 25)
		return TreeDistance(a, b, UnitCosts()) == TreeDistance(a, b, closures)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySymmetryAndIdentity re-checks the metric axioms on the
// text-bearing generator (the existing axiom test uses element-only trees).
func TestPropertySymmetryAndIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDoc(r, 25), randDoc(r, 25)
		if TreeDistance(a, b, UnitCosts()) != TreeDistance(b, a, UnitCosts()) {
			return false
		}
		return TreeDistance(a, a, UnitCosts()) == 0 && TreeDistance(b, b, UnitCosts()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDistanceNilRoots(t *testing.T) {
	a := el("root", el("a"), el("b"))
	if d := TreeDistance(nil, nil, UnitCosts()); d != 0 {
		t.Fatalf("d(nil, nil) = %v, want 0", d)
	}
	if d := TreeDistance(nil, a, UnitCosts()); d != 3 {
		t.Fatalf("d(nil, tree) = %v, want 3 inserts", d)
	}
	if d := TreeDistance(a, nil, UnitCosts()); d != 3 {
		t.Fatalf("d(tree, nil) = %v, want 3 deletes", d)
	}
}

// TestTreeDistanceMemoHitCounter checks that identical-tree pairs are
// actually served by the subtree-hash short-circuit, and that near-misses
// (same size, different labels) are not.
func TestTreeDistanceMemoHitCounter(t *testing.T) {
	a := el("root", el("a", el("b")), el("c"))
	before, _ := MemoStats()
	if d := TreeDistance(a, a.Clone(), UnitCosts()); d != 0 {
		t.Fatalf("identical distance = %v", d)
	}
	after, _ := MemoStats()
	if after != before+1 {
		t.Fatalf("tree memo hits %d -> %d, want +1", before, after)
	}
	b := el("root", el("a", el("b")), el("d")) // one label differs
	before = after
	if d := TreeDistance(a, b, UnitCosts()); d != 1 {
		t.Fatalf("near-miss distance = %v, want 1", d)
	}
	after, _ = MemoStats()
	if after != before {
		t.Fatalf("near-miss must not count as a memo hit (%d -> %d)", before, after)
	}
}

// TestTreeDistanceMemoWithMutatedCosts: the short-circuit must survive
// replacing Insert/Delete (it only depends on the rename-equal-is-zero
// property), and the result must still match the naive reference.
func TestTreeDistanceMemoWithMutatedCosts(t *testing.T) {
	costs := UnitCosts()
	costs.Insert = func(*dom.Node) float64 { return 7 }
	a := el("root", el("a"), el("b", el("c")))
	if d := TreeDistance(a, a.Clone(), costs); d != 0 {
		t.Fatalf("identical distance under mutated insert cost = %v", d)
	}
	b := el("root", el("a"), el("b", el("c"), el("d")))
	if got, want := TreeDistance(a, b, costs), treeDistanceNaive(a, b, costs); got != want {
		t.Fatalf("mutated-cost distance = %v, naive = %v", got, want)
	}
	if got := TreeDistance(a, b, costs); got != 7 {
		t.Fatalf("one insert at cost 7 = %v", got)
	}
}

func TestSubtreeHash(t *testing.T) {
	a := el("root", el("a", el("b")), el("c"))
	if SubtreeHash(a) != SubtreeHash(a.Clone()) {
		t.Fatal("identical trees must hash equal")
	}
	b := el("root", el("a", el("b")), el("d"))
	if SubtreeHash(a) == SubtreeHash(b) {
		t.Fatal("differing trees should hash differently")
	}
	// Text content participates; comments do not.
	x1, x2 := el("x"), el("x")
	x1.AppendChild(dom.NewText("hello"))
	x2.AppendChild(dom.NewText("world"))
	if SubtreeHash(x1) == SubtreeHash(x2) {
		t.Fatal("text content must affect the hash")
	}
	x3 := el("x")
	x3.AppendChild(dom.NewText("hello"))
	x3.AppendChild(&dom.Node{Type: dom.CommentNode, Text: "ignored"})
	if SubtreeHash(x1) != SubtreeHash(x3) {
		t.Fatal("comments must not affect the hash")
	}
	if SubtreeHash(nil) != SubtreeHash(nil) {
		t.Fatal("nil hash must be stable")
	}
	// A text node and an element with the same spelling must differ: the
	// kind marker keeps "#text:a" from colliding with <a>.
	ta := dom.NewText("a")
	ea := el("a")
	if SubtreeHash(ta) == SubtreeHash(ea) {
		t.Fatal("text and element with same spelling must hash differently")
	}
}
