package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/schema"
)

func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

func TestTreeDistanceIdentity(t *testing.T) {
	a := el("resume", el("contact"), el("education", el("degree"), el("date")))
	if d := TreeDistance(a, a.Clone(), UnitCosts()); d != 0 {
		t.Fatalf("identity distance = %v", d)
	}
}

func TestTreeDistanceSingleOps(t *testing.T) {
	base := el("resume", el("contact"), el("education"))
	// One rename.
	ren := el("resume", el("contact"), el("experience"))
	if d := TreeDistance(base, ren, UnitCosts()); d != 1 {
		t.Fatalf("rename distance = %v", d)
	}
	// One insert.
	ins := el("resume", el("contact"), el("education"), el("skills"))
	if d := TreeDistance(base, ins, UnitCosts()); d != 1 {
		t.Fatalf("insert distance = %v", d)
	}
	// One delete.
	del := el("resume", el("contact"))
	if d := TreeDistance(base, del, UnitCosts()); d != 1 {
		t.Fatalf("delete distance = %v", d)
	}
}

func TestTreeDistanceNested(t *testing.T) {
	a := el("resume", el("education", el("degree"), el("date")))
	b := el("resume", el("education", el("degree")))
	if d := TreeDistance(a, b, UnitCosts()); d != 1 {
		t.Fatalf("distance = %v", d)
	}
	// Known textbook case: swapping structure costs more.
	c := el("resume", el("degree", el("education"), el("date")))
	if d := TreeDistance(a, c, UnitCosts()); d != 2 {
		t.Fatalf("swap distance = %v, want 2 (two renames)", d)
	}
}

func TestTreeDistanceTextNodes(t *testing.T) {
	a := el("x")
	a.AppendChild(dom.NewText("hello"))
	b := el("x")
	b.AppendChild(dom.NewText("world"))
	if d := TreeDistance(a, b, UnitCosts()); d != 1 {
		t.Fatalf("text rename distance = %v", d)
	}
}

func randTree(r *rand.Rand, maxNodes int) *dom.Node {
	tags := []string{"a", "b", "c"}
	root := el("root")
	nodes := []*dom.Node{root}
	for i := 0; i < r.Intn(maxNodes); i++ {
		p := nodes[r.Intn(len(nodes))]
		c := el(tags[r.Intn(len(tags))])
		p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return root
}

func TestPropertyDistanceMetricAxioms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randTree(r, 10), randTree(r, 10), randTree(r, 10)
		dab := TreeDistance(a, b, UnitCosts())
		dba := TreeDistance(b, a, UnitCosts())
		if dab != dba { // symmetry under unit costs
			return false
		}
		if TreeDistance(a, a, UnitCosts()) != 0 { // identity
			return false
		}
		dac := TreeDistance(a, c, UnitCosts())
		dbc := TreeDistance(b, c, UnitCosts())
		return dac <= dab+dbc+1e-9 // triangle inequality
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// resumeDTD builds a small DTD for conformance tests:
// resume ((#PCDATA), contact, education+); education ((#PCDATA), degree, date).
func resumeDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	mk := func() *schema.DocPaths {
		return schema.Extract(el("resume",
			el("contact"),
			el("education", el("degree"), el("date")),
			el("education", el("degree"), el("date")),
			el("education", el("degree"), el("date")),
		))
	}
	s := (&schema.Miner{SupThreshold: 0.5}).Discover([]*schema.DocPaths{mk(), mk()})
	return dtd.FromSchema(s, dtd.Options{})
}

func TestConformAlreadyValid(t *testing.T) {
	d := resumeDTD(t)
	doc := el("resume", el("contact"), el("education", el("degree"), el("date")))
	out, stats := Conform(doc, d)
	if stats.Cost() != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !d.Conforms(out) {
		t.Fatalf("output invalid: %v", d.Validate(out))
	}
	if !doc.Equal(out) {
		t.Fatal("no-op conform should preserve the document")
	}
}

func TestConformInsertsMissing(t *testing.T) {
	d := resumeDTD(t)
	doc := el("resume", el("education", el("degree"), el("date")))
	out, stats := Conform(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
	if stats.Inserted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.FindElement("contact") == nil {
		t.Fatal("contact not inserted")
	}
}

func TestConformReorders(t *testing.T) {
	d := resumeDTD(t)
	doc := el("resume", el("education", el("date"), el("degree")), el("contact"))
	out, stats := Conform(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
	if stats.Reordered < 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.Children[0].Tag != "contact" {
		t.Fatalf("order not fixed: %s", out.String())
	}
}

func TestConformDeletesAndFoldsVal(t *testing.T) {
	d := resumeDTD(t)
	junk := el("hobby")
	junk.SetVal("sailing")
	doc := el("resume", el("contact"), junk, el("education", el("degree"), el("date")))
	out, stats := Conform(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
	if stats.Deleted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.Val() != "sailing" {
		t.Fatalf("val lost: %q", out.Val())
	}
}

func TestConformUnwrapsContainers(t *testing.T) {
	d := resumeDTD(t)
	// education buried inside an undeclared wrapper.
	doc := el("resume", el("contact"), el("section", el("education", el("degree"), el("date"))))
	out, stats := Conform(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
	if stats.Unwrapped != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestConformMergesSurplus(t *testing.T) {
	d := resumeDTD(t)
	c1 := el("contact")
	c1.SetVal("a@x")
	c2 := el("contact")
	c2.SetVal("b@y")
	doc := el("resume", c1, c2, el("education", el("degree"), el("date")))
	out, stats := Conform(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
	if stats.Merged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	contact := out.FindElement("contact")
	if contact.Val() != "a@x b@y" {
		t.Fatalf("merged val = %q", contact.Val())
	}
}

func TestConformRenamesRoot(t *testing.T) {
	d := resumeDTD(t)
	doc := el("cv", el("contact"), el("education", el("degree"), el("date")))
	out, stats := Conform(doc, d)
	if out.Tag != "resume" || stats.Renamed != 1 {
		t.Fatalf("root = %s stats = %+v", out.Tag, stats)
	}
}

func TestConformDoesNotMutateInput(t *testing.T) {
	d := resumeDTD(t)
	doc := el("resume", el("education", el("date"), el("degree")))
	snapshot := doc.String()
	Conform(doc, d)
	if doc.String() != snapshot {
		t.Fatal("input mutated")
	}
}

func TestConformDocumentNodeInput(t *testing.T) {
	d := resumeDTD(t)
	docNode := dom.NewDocument()
	docNode.AppendChild(el("resume", el("contact"), el("education", el("degree"), el("date"))))
	out, _ := Conform(docNode, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid: %v", d.Validate(out))
	}
}

func TestPropertyConformAlwaysValidates(t *testing.T) {
	d := resumeDTD(t)
	tags := []string{"resume", "contact", "education", "degree", "date", "junk", "section"}
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		root := el("resume")
		nodes := []*dom.Node{root}
		for i := 0; i < int(size%25); i++ {
			p := nodes[r.Intn(len(nodes))]
			c := el(tags[r.Intn(len(tags))])
			if r.Intn(3) == 0 {
				c.SetVal("v")
			}
			p.AppendChild(c)
			nodes = append(nodes, c)
		}
		out, _ := Conform(root, d)
		return d.Conforms(out) && out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDistanceCustomCosts(t *testing.T) {
	// Doubling insert cost doubles the pure-insert distance.
	a := el("r")
	b := el("r", el("x"), el("y"))
	costs := UnitCosts()
	if d := TreeDistance(a, b, costs); d != 2 {
		t.Fatalf("unit distance = %v", d)
	}
	costs.Insert = func(*dom.Node) float64 { return 2 }
	if d := TreeDistance(a, b, costs); d != 4 {
		t.Fatalf("weighted distance = %v", d)
	}
}

func TestTreeDistanceLargerStructures(t *testing.T) {
	// Known distance on a deeper pair: move a leaf between parents costs
	// one delete + one insert under unit costs (ordered trees).
	a := el("r", el("p", el("x")), el("q"))
	b := el("r", el("p"), el("q", el("x")))
	if d := TreeDistance(a, b, UnitCosts()); d != 2 {
		t.Fatalf("move distance = %v, want 2", d)
	}
}

func BenchmarkTreeDistance(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	t1, t2 := randTree(r, 40), randTree(r, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TreeDistance(t1, t2, UnitCosts())
	}
}

func BenchmarkConform(b *testing.B) {
	var tt testing.T
	d := resumeDTD(&tt)
	doc := el("resume", el("education", el("date"), el("degree")), el("junk"), el("contact"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Conform(doc, d)
	}
}
