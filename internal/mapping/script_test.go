package mapping

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
	"webrev/internal/dtd"
)

func TestConformScriptRecordsOperations(t *testing.T) {
	d := resumeDTD(t)
	junk := el("hobby")
	junk.SetVal("sailing")
	doc := el("resume",
		el("education", el("date"), el("degree")), // wrong order
		junk,                         // undeclared
		el("section", el("contact")), // wrapped
	)
	out, script := ConformScript(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("invalid output: %v", d.Validate(out))
	}
	text := script.String()
	for _, want := range []string{"delete", "unwrap", "reorder"} {
		if !strings.Contains(text, want) {
			t.Fatalf("script missing %q:\n%s", want, text)
		}
	}
	for _, op := range script {
		if op.Path == "" || op.Detail == "" {
			t.Fatalf("incomplete op: %+v", op)
		}
	}
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpRename, OpInsert, OpDelete, OpMerge, OpReorder, OpUnwrap}
	names := []string{"rename", "insert", "delete", "merge", "reorder", "unwrap"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Fatalf("kind %d = %q", i, k.String())
		}
	}
	if OpKind(99).String() != "?" {
		t.Fatal("unknown kind")
	}
}

func TestScriptStatsMatchesConform(t *testing.T) {
	// ConformScript must produce the same tree and equivalent stats as
	// Conform on arbitrary inputs — they are maintained in lockstep.
	d := resumeDTD(t)
	tags := []string{"resume", "contact", "education", "degree", "date", "junk", "wrap"}
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		root := el("resume")
		nodes := []*dom.Node{root}
		for i := 0; i < int(size%20); i++ {
			p := nodes[r.Intn(len(nodes))]
			c := el(tags[r.Intn(len(tags))])
			if r.Intn(3) == 0 {
				c.SetVal("v")
			}
			p.AppendChild(c)
			nodes = append(nodes, c)
		}
		out1, stats := Conform(root, d)
		out2, script := ConformScript(root, d)
		return out1.Equal(out2) && script.Stats() == stats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConformGroupParticles(t *testing.T) {
	// A DTD with (institution, degree)+ under education: Conform must
	// complete broken tuples.
	src := `<!ELEMENT resume ((#PCDATA), education)>
<!ELEMENT education ((#PCDATA), (institution, degree)+)>
<!ELEMENT institution (#PCDATA)>
<!ELEMENT degree (#PCDATA)>`
	d, err := dtdParse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple with a missing degree and a surplus lone institution.
	doc := el("resume", el("education",
		el("institution"), el("degree"), el("institution"),
	))
	out, script := ConformScript(doc, d)
	if !d.Conforms(out) {
		t.Fatalf("group conformance failed: %v\n%s", d.Validate(out), script.String())
	}
	if script.Stats().Inserted != 1 {
		t.Fatalf("expected one tuple-completing insert:\n%s", script.String())
	}
	// Empty education gets one full placeholder tuple.
	out2, _ := ConformScript(el("resume", el("education")), d)
	if !d.Conforms(out2) {
		t.Fatalf("empty group conformance failed: %v", d.Validate(out2))
	}
}

func TestConformScriptRenameAndEmptyInput(t *testing.T) {
	d := resumeDTD(t)
	out, script := ConformScript(el("cv"), d)
	if out.Tag != "resume" {
		t.Fatalf("root = %s", out.Tag)
	}
	found := false
	for _, op := range script {
		if op.Kind == OpRename {
			found = true
		}
	}
	if !found {
		t.Fatalf("rename not recorded:\n%s", script.String())
	}
	// Document node with no element at all.
	docNode := dom.NewDocument()
	out2, script2 := ConformScript(docNode, d)
	if out2.Tag != "resume" || len(script2) == 0 {
		t.Fatalf("empty input handling: %s / %d ops", out2.Tag, len(script2))
	}
}

// dtdParse is a local alias to keep the mapping tests free of a direct
// dependency cycle concern in imports.
func dtdParse(src string) (*dtd.DTD, error) { return dtd.Parse(src) }
