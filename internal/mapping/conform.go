package mapping

import (
	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/obs"
)

// EditStats counts the operations Conform performed to make a document
// match the DTD. Cost() is their sum — comparable across schema variants,
// which is how the majority-schema-vs-DataGuide ablation (DESIGN.md E5)
// quantifies the paper's claim that "Data Guides or lower bound schemas do
// not suffice" for repository integration.
type EditStats struct {
	Renamed   int // root renamed to the DTD root
	Inserted  int // placeholder elements inserted for missing required children
	Deleted   int // undeclared elements removed (val folded into parent)
	Merged    int // surplus occurrences merged into the first occurrence
	Reordered int // children moved to satisfy the content-model order
	Unwrapped int // undeclared containers spliced up to expose their children
}

// Cost returns the total number of edit operations.
func (s EditStats) Cost() int {
	return s.Renamed + s.Inserted + s.Deleted + s.Merged + s.Reordered + s.Unwrapped
}

// Conform transforms a copy of doc so that it validates against d, and
// reports the edits required. The input document is not modified.
//
// The transformation preserves information: deleted elements fold their val
// and text into the parent's val, and merged occurrences concatenate vals
// and adopt children. Use ConformScript to additionally obtain the ordered
// edit operations.
//
// Conform runs the non-recording fast path over the compiled conformance
// index cached on d (see Precompile): no per-node lookup-table rebuilds, no
// operation strings. The transformation and counts are exactly those of
// ConformScript — pinned by the lockstep property test in script_test.go.
func Conform(doc *dom.Node, d *dtd.DTD) (*dom.Node, EditStats) {
	out, stats, _ := conformFast(doc, d)
	return out, stats
}

// conformFast is Conform returning whether the compiled index was already
// cached on d (a memo hit, recorded by ConformTraced).
func conformFast(doc *dom.Node, d *dtd.DTD) (*dom.Node, EditStats, bool) {
	cd, hit := compiledIndex(d)
	var stats EditStats
	out := doc.Clone()
	if out.Type != dom.ElementNode {
		if el := out.Find(func(n *dom.Node) bool { return n.Type == dom.ElementNode }); el != nil {
			el.Detach()
			out = el
		} else {
			out = dom.NewElement(d.RootName)
			stats.Inserted++
		}
	}
	if out.Tag != d.RootName && d.RootName != "" {
		stats.Renamed++
		out.Tag = d.RootName
	}
	conformNode(out, cd, &stats)
	return out, stats, hit
}

// ConformTraced is Conform timed under obs.StageMap with the edit-cost and
// per-operation counters recorded on tr. tr may be nil (no-op). Safe for
// concurrent use with a shared Collector: each call records once, under
// the mapping worker running it.
func ConformTraced(doc *dom.Node, d *dtd.DTD, tr obs.Tracer) (*dom.Node, EditStats) {
	tr = obs.OrNop(tr)
	sp := tr.StartSpan(obs.StageMap)
	out, stats, hit := conformFast(doc, d)
	sp.End()
	if tr.Enabled() {
		tr.Add(obs.CtrMapDocs, 1)
		tr.Add(obs.CtrMapEdits, int64(stats.Cost()))
		if hit {
			tr.Add(obs.CtrMapMemoHits, 1)
		}
		record := func(kind OpKind, n int) {
			if n > 0 {
				tr.Add(obs.MapOpCounter(kind.String()), int64(n))
			}
		}
		record(OpRename, stats.Renamed)
		record(OpInsert, stats.Inserted)
		record(OpDelete, stats.Deleted)
		record(OpMerge, stats.Merged)
		record(OpReorder, stats.Reordered)
		record(OpUnwrap, stats.Unwrapped)
	}
	return out, stats
}
