// Package mapping implements the Document Mapping Component referenced by
// the paper (§5, refs [11][13]): it "converts non-conforming XML documents
// using a tree-edit distance algorithm so that they eventually conform to
// the derived DTD and can easily be integrated into an XML document
// repository". The package provides the Zhang–Shasha ordered tree edit
// distance and a DTD-directed conformance transformation.
//
// # Cost model
//
// TreeDistance charges per elementary operation under a Costs table; the
// standard UnitCosts model is:
//
//	operation            cost  applied to
//	insert node          1     every node of the target absent from the source
//	delete node          1     every node of the source absent from the target
//	rename (labels ≠)    1     a matched pair with differing labels
//	rename (labels =)    0     a matched pair with equal labels
//
// Element nodes compare by tag and text nodes by "#text:"-prefixed
// content; comments and doctypes are ignored entirely. The conformance
// transformation (Conform/ConformScript) reports its own EditStats whose
// Cost() is the count of rename/insert/delete/merge/reorder/unwrap
// operations it performed — comparable across schema variants, but not the
// same scale as TreeDistance (a merge or unwrap bundles several elementary
// edits).
//
// # Complexity and degenerate input
//
// Zhang–Shasha runs in O(|T1|·|T2|·min(depth,leaves)²) time and
// O(|T1|·|T2|) space — quadratic in document size even for flat trees, so
// callers mapping untrusted corpora should bound input size (see
// core.Limits). Degenerate trees are safe: nil roots are treated as empty
// trees (distance = cost of inserting/deleting the other side), and
// single-node and comment-only trees take the n==0/m==0 fast path or the
// ordinary recurrence without special cases.
package mapping

import (
	"webrev/internal/dom"
)

// Costs parameterizes the edit distance. The zero value is invalid; use
// UnitCosts.
type Costs struct {
	Insert func(n *dom.Node) float64
	Delete func(n *dom.Node) float64
	Rename func(a, b *dom.Node) float64
}

// UnitCosts returns the standard unit-cost model: 1 per insert/delete, 1 per
// rename of differing labels, 0 for matching labels.
func UnitCosts() Costs {
	return Costs{
		Insert: func(*dom.Node) float64 { return 1 },
		Delete: func(*dom.Node) float64 { return 1 },
		Rename: func(a, b *dom.Node) float64 {
			if label(a) == label(b) {
				return 0
			}
			return 1
		},
	}
}

func label(n *dom.Node) string {
	if n.Type == dom.TextNode {
		return "#text:" + n.Text
	}
	return n.Tag
}

// TreeDistance computes the Zhang–Shasha ordered tree edit distance between
// the trees rooted at t1 and t2 under the given cost model. Element and
// text nodes participate; comments and doctypes are ignored. A nil root is
// an empty tree: the distance degenerates to the cost of inserting (or
// deleting) every node of the other side, and two nil roots are at
// distance 0.
func TreeDistance(t1, t2 *dom.Node, costs Costs) float64 {
	a := newOrdered(t1)
	b := newOrdered(t2)
	return zhangShasha(a, b, costs)
}

// ordered is the postorder representation Zhang–Shasha works on.
type ordered struct {
	nodes []*dom.Node // postorder
	lmld  []int       // leftmost leaf descendant index per node
	keyrs []int       // keyroots
}

func newOrdered(root *dom.Node) *ordered {
	o := &ordered{}
	if root == nil {
		return o
	}
	var walk func(n *dom.Node) int // returns index of n's leftmost leaf
	walk = func(n *dom.Node) int {
		lm := -1
		for _, c := range n.Children {
			if c.Type != dom.ElementNode && c.Type != dom.TextNode {
				continue
			}
			l := walk(c)
			if lm == -1 {
				lm = l
			}
		}
		o.nodes = append(o.nodes, n)
		idx := len(o.nodes) - 1
		if lm == -1 {
			lm = idx
		}
		o.lmld = append(o.lmld, lm)
		return lm
	}
	walk(root)
	// Keyroots: nodes with no left sibling on the path (distinct lmld, take
	// the highest postorder index per lmld value).
	last := make(map[int]int)
	for i, l := range o.lmld {
		last[l] = i
	}
	for _, i := range last {
		o.keyrs = append(o.keyrs, i)
	}
	// Sort keyroots ascending.
	for i := 1; i < len(o.keyrs); i++ {
		for j := i; j > 0 && o.keyrs[j-1] > o.keyrs[j]; j-- {
			o.keyrs[j-1], o.keyrs[j] = o.keyrs[j], o.keyrs[j-1]
		}
	}
	return o
}

func zhangShasha(a, b *ordered, costs Costs) float64 {
	n, m := len(a.nodes), len(b.nodes)
	if n == 0 || m == 0 {
		var d float64
		for _, x := range a.nodes {
			d += costs.Delete(x)
		}
		for _, x := range b.nodes {
			d += costs.Insert(x)
		}
		return d
	}
	td := make([][]float64, n)
	for i := range td {
		td[i] = make([]float64, m)
	}
	fd := make([][]float64, n+1)
	for i := range fd {
		fd[i] = make([]float64, m+1)
	}
	for _, i := range a.keyrs {
		for _, j := range b.keyrs {
			treedist(a, b, i, j, td, fd, costs)
		}
	}
	return td[n-1][m-1]
}

// treedist fills td[i][j] for the subtree pair rooted at postorder i of a
// and j of b (the classic forest-distance recurrence).
func treedist(a, b *ordered, i, j int, td, fd [][]float64, costs Costs) {
	li, lj := a.lmld[i], b.lmld[j]
	fd[li][lj] = 0
	for di := li; di <= i; di++ {
		fd[di+1][lj] = fd[di][lj] + costs.Delete(a.nodes[di])
	}
	for dj := lj; dj <= j; dj++ {
		fd[li][dj+1] = fd[li][dj] + costs.Insert(b.nodes[dj])
	}
	for di := li; di <= i; di++ {
		for dj := lj; dj <= j; dj++ {
			if a.lmld[di] == li && b.lmld[dj] == lj {
				m := min3(
					fd[di][dj+1]+costs.Delete(a.nodes[di]),
					fd[di+1][dj]+costs.Insert(b.nodes[dj]),
					fd[di][dj]+costs.Rename(a.nodes[di], b.nodes[dj]),
				)
				fd[di+1][dj+1] = m
				td[di][dj] = m
			} else {
				m := min3(
					fd[di][dj+1]+costs.Delete(a.nodes[di]),
					fd[di+1][dj]+costs.Insert(b.nodes[dj]),
					fd[a.lmld[di]][b.lmld[dj]]+td[di][dj],
				)
				fd[di+1][dj+1] = m
			}
		}
	}
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
