// Package mapping implements the Document Mapping Component referenced by
// the paper (§5, refs [11][13]): it "converts non-conforming XML documents
// using a tree-edit distance algorithm so that they eventually conform to
// the derived DTD and can easily be integrated into an XML document
// repository". The package provides the Zhang–Shasha ordered tree edit
// distance and a DTD-directed conformance transformation.
//
// # Cost model
//
// TreeDistance charges per elementary operation under a Costs table; the
// standard UnitCosts model is:
//
//	operation            cost  applied to
//	insert node          1     every node of the target absent from the source
//	delete node          1     every node of the source absent from the target
//	rename (labels ≠)    1     a matched pair with differing labels
//	rename (labels =)    0     a matched pair with equal labels
//
// Element nodes compare by tag and text nodes by "#text:"-prefixed
// content; comments and doctypes are ignored entirely. The conformance
// transformation (Conform/ConformScript) reports its own EditStats whose
// Cost() is the count of rename/insert/delete/merge/reorder/unwrap
// operations it performed — comparable across schema variants, but not the
// same scale as TreeDistance (a merge or unwrap bundles several elementary
// edits).
//
// # Complexity and degenerate input
//
// Zhang–Shasha runs in O(|T1|·|T2|·min(depth,leaves)²) time and
// O(|T1|·|T2|) space — quadratic in document size even for flat trees, so
// callers mapping untrusted corpora should bound input size (see
// core.Limits). Degenerate trees are safe: nil roots are treated as empty
// trees (distance = cost of inserting/deleting the other side), and
// single-node and comment-only trees take the n==0/m==0 fast path or the
// ordinary recurrence without special cases.
//
// # Performance model
//
// TreeDistance is on the mapping hot path (experiment E5 computes it per
// document, and the incremental-recrawl direction needs it per delta), so
// the implementation is allocation-free at steady state:
//
//   - Every call borrows a pooled scratch (sync.Pool) holding the two
//     postorder representations, the interned label table, and the flat
//     td/fd distance matrices, instead of allocating [][]float64 rows.
//   - During the single postorder traversal each node's label is interned
//     to a dense int32 id (text nodes hash their content without building
//     the "#text:" key) and an FNV-1a structure hash of its subtree —
//     label plus child hashes — is memoized per node.
//   - Structurally identical trees short-circuit to distance 0 under any
//     cost model whose same-label rename cost is zero: equal root hashes
//     are verified with an exact O(n) shape comparison (hash collisions
//     can never produce a wrong distance), counted by MemoStats.
//   - The canonical UnitCosts model runs a devirtualized kernel comparing
//     interned label ids directly; custom cost tables take the generic
//     kernel, which performs the identical float operations in the same
//     order, so both kernels return bit-identical distances (pinned by
//     the memo-vs-naive property and fuzz tests).
package mapping

import (
	"reflect"
	"sync"
	"sync/atomic"

	"webrev/internal/dom"
)

// Costs parameterizes the edit distance. The zero value is invalid; use
// UnitCosts. Cost functions must be non-negative. Replacing individual
// fields of a UnitCosts() value is allowed and routes the computation to
// the generic kernel.
type Costs struct {
	Insert func(n *dom.Node) float64
	Delete func(n *dom.Node) float64
	Rename func(a, b *dom.Node) float64
}

func unitInsert(*dom.Node) float64 { return 1 }
func unitDelete(*dom.Node) float64 { return 1 }
func unitRename(a, b *dom.Node) float64 {
	if label(a) == label(b) {
		return 0
	}
	return 1
}

// UnitCosts returns the standard unit-cost model: 1 per insert/delete, 1 per
// rename of differing labels, 0 for matching labels.
func UnitCosts() Costs {
	return Costs{Insert: unitInsert, Delete: unitDelete, Rename: unitRename}
}

func label(n *dom.Node) string {
	if n.Type == dom.TextNode {
		return "#text:" + n.Text
	}
	return n.Tag
}

// treeMemoHits counts identical-tree short-circuits across all TreeDistance
// calls (see MemoStats).
var treeMemoHits atomic.Int64

// TreeDistance computes the Zhang–Shasha ordered tree edit distance between
// the trees rooted at t1 and t2 under the given cost model. Element and
// text nodes participate; comments and doctypes are ignored. A nil root is
// an empty tree: the distance degenerates to the cost of inserting (or
// deleting) every node of the other side, and two nil roots are at
// distance 0.
func TreeDistance(t1, t2 *dom.Node, costs Costs) float64 {
	sc := scratchPool.Get().(*zsScratch)
	defer scratchPool.Put(sc)
	clear(sc.labels)
	sc.a.build(t1, sc)
	sc.b.build(t2, sc)
	return zhangShasha(&sc.a, &sc.b, costs, sc)
}

// treeDistanceNaive is the unpooled, unmemoized reference implementation
// the property and fuzz tests compare TreeDistance against: fresh
// allocations, generic kernel, no identical-tree short-circuit.
func treeDistanceNaive(t1, t2 *dom.Node, costs Costs) float64 {
	sc := &zsScratch{labels: make(map[labelKey]int32)}
	sc.a.build(t1, sc)
	sc.b.build(t2, sc)
	a, b := &sc.a, &sc.b
	n, m := len(a.nodes), len(b.nodes)
	if n == 0 || m == 0 {
		return emptyDistance(a, b, costs)
	}
	td := make([]float64, n*m)
	fd := make([]float64, (n+1)*(m+1))
	for _, i := range a.keyrs {
		for _, j := range b.keyrs {
			treedistGeneric(a, b, i, j, td, fd, costs)
		}
	}
	return td[(n-1)*m+m-1]
}

// MemoStats reports the cumulative effectiveness of the mapping memos: the
// number of TreeDistance calls short-circuited by the subtree-hash identity
// check (TreeHits) and the number of Conform calls that reused a compiled
// DTD index (ConformHits). Counters are process-wide and monotone.
func MemoStats() (treeHits, conformHits int64) {
	return treeMemoHits.Load(), conformMemoHits.Load()
}

// labelKey distinguishes text-node content from a same-spelled element tag
// without building the "#text:"-prefixed string.
type labelKey struct {
	text bool
	s    string
}

// ordered is the postorder representation Zhang–Shasha works on, extended
// with the per-node interned label ids and memoized subtree structure
// hashes computed during the same traversal.
type ordered struct {
	nodes []*dom.Node // postorder
	lmld  []int       // leftmost leaf descendant index per node
	keyrs []int       // keyroots, ascending
	lab   []int32     // interned label id per node (scratch-scoped)
	hash  []uint64    // FNV-1a structure hash of the subtree at each node
}

// zsScratch is the pooled per-call state: both postorder forms, the shared
// label intern table, the flat td/fd matrices, and the keyroot seen-marks.
type zsScratch struct {
	a, b   ordered
	labels map[labelKey]int32
	td, fd []float64
	seen   []bool
}

var scratchPool = sync.Pool{
	New: func() any { return &zsScratch{labels: make(map[labelKey]int32, 64)} },
}

func (sc *zsScratch) intern(n *dom.Node) int32 {
	k := labelKey{text: n.Type == dom.TextNode}
	if k.text {
		k.s = n.Text
	} else {
		k.s = n.Tag
	}
	id, ok := sc.labels[k]
	if !ok {
		id = int32(len(sc.labels))
		sc.labels[k] = id
	}
	return id
}

// FNV-1a constants; the structure hash mixes a node-kind marker, the label
// bytes, and each participating child's subtree hash in order.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// SubtreeHash returns the FNV-1a structure hash of the subtree rooted at n
// under the edit-distance node model (elements by tag, text nodes by
// content, comments and doctypes ignored). Equal trees always hash equal;
// the hash is stable across calls and processes, which is what makes it
// usable as a cheap change detector for incremental delta builds.
func SubtreeHash(n *dom.Node) uint64 {
	if n == nil {
		return fnvOffset
	}
	h := fnvOffset
	if n.Type == dom.TextNode {
		h = hashByte(h, 2)
		h = hashString(h, n.Text)
	} else {
		h = hashByte(h, 1)
		h = hashString(h, n.Tag)
	}
	for _, c := range n.Children {
		if c.Type != dom.ElementNode && c.Type != dom.TextNode {
			continue
		}
		h = hashUint64(h, SubtreeHash(c))
	}
	return h
}

// build (re)computes the postorder representation of root into o, reusing
// the slices from the previous call. Labels are interned through sc so both
// trees of a distance computation share one id space.
func (o *ordered) build(root *dom.Node, sc *zsScratch) {
	o.nodes = o.nodes[:0]
	o.lmld = o.lmld[:0]
	o.keyrs = o.keyrs[:0]
	o.lab = o.lab[:0]
	o.hash = o.hash[:0]
	if root == nil {
		return
	}
	var walk func(n *dom.Node) (lm int, h uint64)
	walk = func(n *dom.Node) (int, uint64) {
		lm := -1
		h := fnvOffset
		if n.Type == dom.TextNode {
			h = hashByte(h, 2)
			h = hashString(h, n.Text)
		} else {
			h = hashByte(h, 1)
			h = hashString(h, n.Tag)
		}
		for _, c := range n.Children {
			if c.Type != dom.ElementNode && c.Type != dom.TextNode {
				continue
			}
			l, ch := walk(c)
			if lm == -1 {
				lm = l
			}
			h = hashUint64(h, ch)
		}
		o.nodes = append(o.nodes, n)
		idx := len(o.nodes) - 1
		if lm == -1 {
			lm = idx
		}
		o.lmld = append(o.lmld, lm)
		o.lab = append(o.lab, sc.intern(n))
		o.hash = append(o.hash, h)
		return lm, h
	}
	walk(root)
	// Keyroots: the highest postorder index per distinct lmld value.
	// Scanning from the root down with a seen-mark per lmld value finds
	// them without a map; the collected list is descending, so reverse it.
	n := len(o.nodes)
	seen := sc.seen
	if cap(seen) < n {
		seen = make([]bool, n)
		sc.seen = seen
	}
	seen = seen[:n]
	for i := range seen {
		seen[i] = false
	}
	for i := n - 1; i >= 0; i-- {
		if !seen[o.lmld[i]] {
			seen[o.lmld[i]] = true
			o.keyrs = append(o.keyrs, i)
		}
	}
	for i, j := 0, len(o.keyrs)-1; i < j; i, j = i+1, j-1 {
		o.keyrs[i], o.keyrs[j] = o.keyrs[j], o.keyrs[i]
	}
}

// sameShape reports exact structural equality of the two postorder forms:
// equal interned labels and equal leftmost-leaf structure at every index.
// It is the collision-proof verification behind the hash short-circuit.
func sameShape(a, b *ordered) bool {
	if len(a.nodes) != len(b.nodes) {
		return false
	}
	for i := range a.lab {
		if a.lab[i] != b.lab[i] || a.lmld[i] != b.lmld[i] {
			return false
		}
	}
	return true
}

// isUnit reports whether all three cost functions are the canonical unit
// model, enabling the devirtualized kernel. Detection is by code pointer,
// so a UnitCosts() value with any field replaced takes the generic kernel.
func (c Costs) isUnit() bool {
	return funcEq(c.Insert, unitInsert) && funcEq(c.Delete, unitDelete) &&
		funcEq2(c.Rename, unitRename)
}

// funcEq / funcEq2 compare function values by code pointer. Func values are
// pointer-shaped, so the reflect conversions below do not allocate — pinned
// by the steady-state AllocsPerRun test on TreeDistance.
func funcEq(f, g func(*dom.Node) float64) bool {
	return f != nil && reflect.ValueOf(f).Pointer() == reflect.ValueOf(g).Pointer()
}

func funcEq2(f, g func(a, b *dom.Node) float64) bool {
	return f != nil && reflect.ValueOf(f).Pointer() == reflect.ValueOf(g).Pointer()
}

// zeroSameRename reports whether the rename cost of equal labels is zero —
// the property that makes "identical trees ⇒ distance 0" hold regardless
// of the insert/delete costs.
func (c Costs) zeroSameRename() bool { return funcEq2(c.Rename, unitRename) }

func emptyDistance(a, b *ordered, costs Costs) float64 {
	var d float64
	for _, x := range a.nodes {
		d += costs.Delete(x)
	}
	for _, x := range b.nodes {
		d += costs.Insert(x)
	}
	return d
}

func zhangShasha(a, b *ordered, costs Costs, sc *zsScratch) float64 {
	n, m := len(a.nodes), len(b.nodes)
	if n == 0 || m == 0 {
		return emptyDistance(a, b, costs)
	}
	// Memoized-subtree short-circuit: identical root hashes, verified by an
	// exact shape comparison, mean distance 0 under any zero-same-rename
	// cost model — no matrices touched.
	if n == m && a.hash[n-1] == b.hash[m-1] && costs.zeroSameRename() && sameShape(a, b) {
		treeMemoHits.Add(1)
		return 0
	}
	td := growFloats(&sc.td, n*m)
	fd := growFloats(&sc.fd, (n+1)*(m+1))
	if costs.isUnit() {
		for _, i := range a.keyrs {
			for _, j := range b.keyrs {
				treedistUnit(a, b, i, j, td, fd)
			}
		}
	} else {
		for _, i := range a.keyrs {
			for _, j := range b.keyrs {
				treedistGeneric(a, b, i, j, td, fd, costs)
			}
		}
	}
	return td[(n-1)*m+m-1]
}

// growFloats returns (*s)[:want], reallocating only when capacity is
// insufficient — the pooled-matrix reuse path.
func growFloats(s *[]float64, want int) []float64 {
	if cap(*s) < want {
		*s = make([]float64, want)
	}
	return (*s)[:want]
}

// treedistUnit fills the td entries for the subtree pair rooted at
// postorder i of a and j of b under the canonical unit-cost model: the
// classic forest-distance recurrence with interned-label comparison in
// place of cost-function calls. It performs the same float additions in
// the same order as treedistGeneric with UnitCosts, so the two are
// bit-identical.
func treedistUnit(a, b *ordered, i, j int, td, fd []float64) {
	m := len(b.nodes)
	m1 := m + 1
	li, lj := a.lmld[i], b.lmld[j]
	fd[li*m1+lj] = 0
	for di := li; di <= i; di++ {
		fd[(di+1)*m1+lj] = fd[di*m1+lj] + 1
	}
	for dj := lj; dj <= j; dj++ {
		fd[li*m1+dj+1] = fd[li*m1+dj] + 1
	}
	for di := li; di <= i; di++ {
		alm, alab := a.lmld[di], a.lab[di]
		row := di * m1
		row1 := row + m1
		tdrow := di * m
		for dj := lj; dj <= j; dj++ {
			if alm == li && b.lmld[dj] == lj {
				ren := fd[row+dj]
				if alab != b.lab[dj] {
					ren += 1
				}
				v := min3(fd[row+dj+1]+1, fd[row1+dj]+1, ren)
				fd[row1+dj+1] = v
				td[tdrow+dj] = v
			} else {
				v := min3(
					fd[row+dj+1]+1,
					fd[row1+dj]+1,
					fd[alm*m1+b.lmld[dj]]+td[tdrow+dj],
				)
				fd[row1+dj+1] = v
			}
		}
	}
}

// treedistGeneric is the cost-table kernel (the classic forest-distance
// recurrence) over the flat matrices.
func treedistGeneric(a, b *ordered, i, j int, td, fd []float64, costs Costs) {
	m := len(b.nodes)
	m1 := m + 1
	li, lj := a.lmld[i], b.lmld[j]
	fd[li*m1+lj] = 0
	for di := li; di <= i; di++ {
		fd[(di+1)*m1+lj] = fd[di*m1+lj] + costs.Delete(a.nodes[di])
	}
	for dj := lj; dj <= j; dj++ {
		fd[li*m1+dj+1] = fd[li*m1+dj] + costs.Insert(b.nodes[dj])
	}
	for di := li; di <= i; di++ {
		alm := a.lmld[di]
		an := a.nodes[di]
		row := di * m1
		row1 := row + m1
		tdrow := di * m
		for dj := lj; dj <= j; dj++ {
			if alm == li && b.lmld[dj] == lj {
				v := min3(
					fd[row+dj+1]+costs.Delete(an),
					fd[row1+dj]+costs.Insert(b.nodes[dj]),
					fd[row+dj]+costs.Rename(an, b.nodes[dj]),
				)
				fd[row1+dj+1] = v
				td[tdrow+dj] = v
			} else {
				v := min3(
					fd[row+dj+1]+costs.Delete(an),
					fd[row1+dj]+costs.Insert(b.nodes[dj]),
					fd[alm*m1+b.lmld[dj]]+td[tdrow+dj],
				)
				fd[row1+dj+1] = v
			}
		}
	}
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
