//go:build !race

package mapping

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
