package mapping

import (
	"sync/atomic"

	"webrev/internal/dom"
	"webrev/internal/dtd"
)

// compiledElem is the per-element conformance table: the declaration plus
// the membership and content-model-position maps that conformNode and
// conformNodeScript previously rebuilt for every node visit. Read-only
// after construction, shared across parallel mapping workers.
type compiledElem struct {
	decl    *dtd.Element
	inModel map[string]bool // child tags admitted by the content model
	pos     map[string]int  // child tag -> particle index in decl.Children
}

// compiledDTD indexes compiledElem by element name.
type compiledDTD struct {
	elems map[string]*compiledElem
}

// conformMemoHits counts Conform/ConformScript calls that found the
// compiled index already cached on the DTD (see MemoStats).
var conformMemoHits atomic.Int64

// Precompile builds the conformance index for d and caches it on the DTD,
// so subsequent Conform/ConformScript calls — including concurrent ones —
// reuse it instead of rebuilding per-node lookup tables. core.DeriveDTD
// calls this once per derived DTD; the cache assumes d's declarations are
// immutable from then on. Calling it again is a cheap no-op.
func Precompile(d *dtd.DTD) {
	if d == nil {
		return
	}
	if _, ok := d.Compiled().(*compiledDTD); !ok {
		d.StoreCompiled(buildCompiled(d))
	}
}

// compiledIndex returns the conformance index for d, building and caching
// it on a miss. hit reports whether the index was already cached.
func compiledIndex(d *dtd.DTD) (cd *compiledDTD, hit bool) {
	if cd, ok := d.Compiled().(*compiledDTD); ok {
		conformMemoHits.Add(1)
		return cd, true
	}
	cd = buildCompiled(d)
	d.StoreCompiled(cd)
	return cd, false
}

func buildCompiled(d *dtd.DTD) *compiledDTD {
	cd := &compiledDTD{elems: make(map[string]*compiledElem, len(d.Elements))}
	for _, el := range d.Elements {
		ce := &compiledElem{
			decl:    el,
			inModel: make(map[string]bool, len(el.Children)),
			pos:     make(map[string]int, len(el.Children)),
		}
		for i, c := range el.Children {
			if c.Group != nil {
				for _, m := range c.Group {
					ce.inModel[m.Name] = true
					ce.pos[m.Name] = i
				}
				continue
			}
			ce.inModel[c.Name] = true
			ce.pos[c.Name] = i
		}
		cd.elems[el.Name] = ce
	}
	return cd
}

// conformNode is the non-recording twin of conformNodeScript: it applies
// the identical transformation and counts edits into st without building
// paths, details, or a Script. The two are kept in lockstep by the
// equivalence property test in script_test.go.
func conformNode(n *dom.Node, cd *compiledDTD, st *EditStats) {
	ce := cd.elems[n.Tag]
	if ce == nil {
		return
	}
	model := ce.decl.Children

	for changed := true; changed; {
		changed = false
		for _, c := range n.Children {
			if c.Type != dom.ElementNode || ce.inModel[c.Tag] {
				continue
			}
			if len(c.Children) == 0 {
				n.AppendVal(c.Val())
				n.AppendVal(c.Text)
				c.Detach()
				st.Deleted++
			} else {
				n.AppendVal(c.Val())
				c.SpliceUp()
				st.Unwrapped++
			}
			changed = true
			break
		}
	}

	buckets := make([][]*dom.Node, len(model))
	kids := make([]*dom.Node, len(n.Children))
	copy(kids, n.Children)
	orderChanged := false
	prevPos := -1
	for _, c := range kids {
		if c.Type != dom.ElementNode {
			if c.Type == dom.TextNode {
				n.AppendVal(c.Text)
			}
			c.Detach()
			continue
		}
		p := ce.pos[c.Tag]
		if p < prevPos {
			orderChanged = true
		}
		prevPos = p
		c.Detach()
		buckets[p] = append(buckets[p], c)
	}
	if orderChanged {
		st.Reordered++
	}

	for i, spec := range model {
		b := buckets[i]
		if spec.Group != nil {
			for _, c := range assembleGroupFast(spec, b, st) {
				n.AppendChild(c)
			}
			continue
		}
		switch spec.Repeat {
		case dtd.One, dtd.Opt:
			if len(b) > 1 {
				head := b[0]
				for _, extra := range b[1:] {
					head.AppendVal(extra.Val())
					head.AdoptChildren(extra)
					st.Merged++
				}
				b = b[:1]
			}
			if len(b) == 0 && spec.Repeat == dtd.One {
				b = append(b, dom.NewElement(spec.Name))
				st.Inserted++
			}
		case dtd.Plus:
			if len(b) == 0 {
				b = append(b, dom.NewElement(spec.Name))
				st.Inserted++
			}
		}
		for _, c := range b {
			n.AppendChild(c)
		}
	}

	for _, c := range n.Children {
		conformNode(c, cd, st)
	}
}

// assembleGroupFast is assembleGroup without operation recording.
func assembleGroupFast(spec dtd.Child, b []*dom.Node, st *EditStats) []*dom.Node {
	byName := make(map[string][]*dom.Node, len(spec.Group))
	for _, c := range b {
		byName[c.Tag] = append(byName[c.Tag], c)
	}
	k := 0
	for _, m := range spec.Group {
		if l := len(byName[m.Name]); l > k {
			k = l
		}
	}
	switch spec.Repeat {
	case dtd.One, dtd.Opt:
		if k > 1 {
			for _, m := range spec.Group {
				occ := byName[m.Name]
				if len(occ) > 1 {
					head := occ[0]
					for _, extra := range occ[1:] {
						head.AppendVal(extra.Val())
						head.AdoptChildren(extra)
						st.Merged++
					}
					byName[m.Name] = occ[:1]
				}
			}
			k = 1
		}
		if k == 0 && spec.Repeat == dtd.One {
			k = 1
		}
	case dtd.Plus:
		if k == 0 {
			k = 1
		}
	}
	var out []*dom.Node
	for t := 0; t < k; t++ {
		for _, m := range spec.Group {
			occ := byName[m.Name]
			if t < len(occ) {
				out = append(out, occ[t])
				continue
			}
			out = append(out, dom.NewElement(m.Name))
			st.Inserted++
		}
	}
	return out
}
