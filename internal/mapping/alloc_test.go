package mapping

import (
	"math/rand"
	"testing"
)

// TestTreeDistanceAllocsSteadyState pins the pooled edit-distance scratch:
// once the pool is warm, repeated TreeDistance calls — postorder builds,
// label interning, kernel dispatch, and the full DP — must not allocate.
// A regression here (per-call matrices, label string concatenation, an
// escaping cost-function comparison) multiplies allocations across every
// distance computed by experiments and delta builds.
func TestTreeDistanceAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the pin only holds in normal builds")
	}
	r := rand.New(rand.NewSource(7))
	a, b := randDoc(r, 40), randDoc(r, 40)
	costs := UnitCosts()
	// Warm the pool and grow the scratch to the working-set size.
	for i := 0; i < 4; i++ {
		TreeDistance(a, b, costs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		TreeDistance(a, b, costs)
	}); allocs != 0 {
		t.Errorf("TreeDistance steady state: %v allocs/run, want 0", allocs)
	}
	// The identical-tree short-circuit is equally allocation-free.
	c := a.Clone()
	for i := 0; i < 4; i++ {
		TreeDistance(a, c, costs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		TreeDistance(a, c, costs)
	}); allocs != 0 {
		t.Errorf("TreeDistance memo hit: %v allocs/run, want 0", allocs)
	}
}

// TestSubtreeHashAllocs pins the standalone hash: it walks the tree with
// no scratch state at all.
func TestSubtreeHashAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randDoc(r, 60)
	if allocs := testing.AllocsPerRun(100, func() {
		SubtreeHash(a)
	}); allocs != 0 {
		t.Errorf("SubtreeHash: %v allocs/run, want 0", allocs)
	}
}
