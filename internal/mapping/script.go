package mapping

import (
	"fmt"
	"strings"

	"webrev/internal/dom"
	"webrev/internal/dtd"
)

// OpKind identifies one edit operation applied during conformance mapping.
type OpKind int

// Edit operation kinds.
const (
	OpRename OpKind = iota
	OpInsert
	OpDelete
	OpMerge
	OpReorder
	OpUnwrap
)

func (k OpKind) String() string {
	switch k {
	case OpRename:
		return "rename"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpMerge:
		return "merge"
	case OpReorder:
		return "reorder"
	case OpUnwrap:
		return "unwrap"
	}
	return "?"
}

// Op is one recorded edit operation.
type Op struct {
	Kind   OpKind
	Path   string // element path at which the operation applied
	Detail string // human-readable specifics
}

func (o Op) String() string {
	return fmt.Sprintf("%s %s: %s", o.Kind, o.Path, o.Detail)
}

// Script is the ordered list of operations a conformance mapping performed.
type Script []Op

// String renders the script one operation per line.
func (s Script) String() string {
	var b strings.Builder
	for _, op := range s {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats summarizes the script as EditStats.
func (s Script) Stats() EditStats {
	var st EditStats
	for _, op := range s {
		switch op.Kind {
		case OpRename:
			st.Renamed++
		case OpInsert:
			st.Inserted++
		case OpDelete:
			st.Deleted++
		case OpMerge:
			st.Merged++
		case OpReorder:
			st.Reordered++
		case OpUnwrap:
			st.Unwrapped++
		}
	}
	return st
}

// ConformScript is Conform with full operation recording: it returns the
// conformed copy and the edit script that produced it. Conform remains the
// cheaper entry point when only counts are needed.
func ConformScript(doc *dom.Node, d *dtd.DTD) (*dom.Node, Script) {
	cd, _ := compiledIndex(d)
	var script Script
	out := doc.Clone()
	if out.Type != dom.ElementNode {
		if el := out.Find(func(n *dom.Node) bool { return n.Type == dom.ElementNode }); el != nil {
			el.Detach()
			out = el
		} else {
			out = dom.NewElement(d.RootName)
			script = append(script, Op{Kind: OpInsert, Path: "/", Detail: "empty input; created root " + d.RootName})
		}
	}
	if out.Tag != d.RootName && d.RootName != "" {
		script = append(script, Op{Kind: OpRename, Path: "/" + out.Tag,
			Detail: fmt.Sprintf("root %s -> %s", out.Tag, d.RootName)})
		out.Tag = d.RootName
	}
	conformNodeScript(out, "/"+out.Tag, cd, &script)
	return out, script
}

// conformNodeScript mirrors conformNode with operation recording. The two
// are kept in lockstep by the equivalence test in script_test.go. Both read
// the shared compiled conformance tables (see compile.go) instead of
// rebuilding per-node membership and position maps.
func conformNodeScript(n *dom.Node, path string, cd *compiledDTD, script *Script) {
	ce := cd.elems[n.Tag]
	if ce == nil {
		return
	}
	model := ce.decl.Children

	for changed := true; changed; {
		changed = false
		for _, c := range n.Children {
			if c.Type != dom.ElementNode || ce.inModel[c.Tag] {
				continue
			}
			if len(c.Children) == 0 {
				n.AppendVal(c.Val())
				n.AppendVal(c.Text)
				c.Detach()
				*script = append(*script, Op{Kind: OpDelete, Path: path,
					Detail: fmt.Sprintf("undeclared <%s> removed, val folded", c.Tag)})
			} else {
				n.AppendVal(c.Val())
				tag := c.Tag
				c.SpliceUp()
				*script = append(*script, Op{Kind: OpUnwrap, Path: path,
					Detail: fmt.Sprintf("undeclared container <%s> spliced up", tag)})
			}
			changed = true
			break
		}
	}

	buckets := make([][]*dom.Node, len(model))
	kids := make([]*dom.Node, len(n.Children))
	copy(kids, n.Children)
	orderChanged := false
	prevPos := -1
	for _, c := range kids {
		if c.Type != dom.ElementNode {
			if c.Type == dom.TextNode {
				n.AppendVal(c.Text)
			}
			c.Detach()
			continue
		}
		p := ce.pos[c.Tag]
		if p < prevPos {
			orderChanged = true
		}
		prevPos = p
		c.Detach()
		buckets[p] = append(buckets[p], c)
	}
	if orderChanged {
		*script = append(*script, Op{Kind: OpReorder, Path: path,
			Detail: "children reordered to content-model order"})
	}

	for i, spec := range model {
		b := buckets[i]
		if spec.Group != nil {
			for _, c := range assembleGroup(spec, b, path, script) {
				n.AppendChild(c)
			}
			continue
		}
		switch spec.Repeat {
		case dtd.One, dtd.Opt:
			if len(b) > 1 {
				head := b[0]
				for _, extra := range b[1:] {
					head.AppendVal(extra.Val())
					head.AdoptChildren(extra)
					*script = append(*script, Op{Kind: OpMerge, Path: path,
						Detail: fmt.Sprintf("surplus <%s> merged into first occurrence", spec.Name)})
				}
				b = b[:1]
			}
			if len(b) == 0 && spec.Repeat == dtd.One {
				b = append(b, dom.NewElement(spec.Name))
				*script = append(*script, Op{Kind: OpInsert, Path: path,
					Detail: fmt.Sprintf("required <%s> inserted", spec.Name)})
			}
		case dtd.Plus:
			if len(b) == 0 {
				b = append(b, dom.NewElement(spec.Name))
				*script = append(*script, Op{Kind: OpInsert, Path: path,
					Detail: fmt.Sprintf("required <%s> inserted", spec.Name)})
			}
		}
		for _, c := range b {
			n.AppendChild(c)
		}
	}

	for _, c := range n.Children {
		conformNodeScript(c, path+"/"+c.Tag, cd, script)
	}
}

// assembleGroup arranges the bucketed children of a group particle into
// complete tuples, inserting placeholders for missing members (and, for
// One/Opt groups, merging surplus occurrences of each member). The result
// always satisfies the group's occurrence indicator.
func assembleGroup(spec dtd.Child, b []*dom.Node, path string, script *Script) []*dom.Node {
	byName := make(map[string][]*dom.Node, len(spec.Group))
	for _, c := range b {
		byName[c.Tag] = append(byName[c.Tag], c)
	}
	k := 0
	for _, m := range spec.Group {
		if l := len(byName[m.Name]); l > k {
			k = l
		}
	}
	switch spec.Repeat {
	case dtd.One, dtd.Opt:
		if k > 1 {
			for _, m := range spec.Group {
				occ := byName[m.Name]
				if len(occ) > 1 {
					head := occ[0]
					for _, extra := range occ[1:] {
						head.AppendVal(extra.Val())
						head.AdoptChildren(extra)
						*script = append(*script, Op{Kind: OpMerge, Path: path,
							Detail: fmt.Sprintf("surplus <%s> merged into first group tuple", m.Name)})
					}
					byName[m.Name] = occ[:1]
				}
			}
			k = 1
		}
		if k == 0 && spec.Repeat == dtd.One {
			k = 1
		}
	case dtd.Plus:
		if k == 0 {
			k = 1
		}
	}
	var out []*dom.Node
	for t := 0; t < k; t++ {
		for _, m := range spec.Group {
			occ := byName[m.Name]
			if t < len(occ) {
				out = append(out, occ[t])
				continue
			}
			out = append(out, dom.NewElement(m.Name))
			*script = append(*script, Op{Kind: OpInsert, Path: path,
				Detail: fmt.Sprintf("group member <%s> inserted to complete tuple %d", m.Name, t+1)})
		}
	}
	return out
}
