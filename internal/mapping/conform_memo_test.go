package mapping

import (
	"testing"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/obs"
)

// TestConformGroupParity drives the group-particle paths of the fast
// non-recording conformNode (assembleGroupFast) against ConformScript on
// every tuple shape: complete, missing member, surplus under One, empty.
func TestConformGroupParity(t *testing.T) {
	src := `<!ELEMENT resume ((#PCDATA), education)>
<!ELEMENT education ((#PCDATA), (institution, degree)+)>
<!ELEMENT institution (#PCDATA)>
<!ELEMENT degree (#PCDATA)>`
	d, err := dtdParse(src)
	if err != nil {
		t.Fatal(err)
	}
	oneSrc := `<!ELEMENT resume ((#PCDATA), (name, phone))>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>`
	dOne, err := dtdParse(oneSrc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []*dom.Node{
		el("resume", el("education", el("institution"), el("degree"))),
		el("resume", el("education", el("institution"), el("degree"), el("institution"))),
		el("resume", el("education")),
		el("resume", el("education", el("degree"), el("degree"), el("institution"))),
		el("resume"),
	}
	for i, doc := range cases {
		for _, dd := range []*dtd.DTD{d, dOne} {
			fast, stats := Conform(doc, dd)
			scripted, script := ConformScript(doc, dd)
			if !fast.Equal(scripted) {
				t.Fatalf("case %d (%s): fast and scripted trees differ", i, dd.RootName)
			}
			if stats != script.Stats() {
				t.Fatalf("case %d (%s): stats %+v != script stats %+v", i, dd.RootName, stats, script.Stats())
			}
			if !dd.Conforms(fast) {
				t.Fatalf("case %d (%s): output invalid: %v", i, dd.RootName, dd.Validate(fast))
			}
		}
	}
	// Surplus members under a One group must merge identically on both
	// paths (two phones into the tuple's single slot).
	doc := el("resume", el("name"), el("phone"), el("phone"))
	fast, stats := Conform(doc, dOne)
	scripted, script := ConformScript(doc, dOne)
	if !fast.Equal(scripted) || stats != script.Stats() {
		t.Fatalf("one-group surplus: parity broken (stats %+v vs %+v)", stats, script.Stats())
	}
	if stats.Merged == 0 {
		t.Fatalf("expected a merge, got %+v", stats)
	}
}

// TestConformTracedMemoHits pins the map.memo_hits counter semantics: a
// cold DTD's first conform builds the index (no hit), every later conform
// reuses it, and Precompile warms it so even the first conform hits.
func TestConformTracedMemoHits(t *testing.T) {
	doc := el("resume", el("education", el("degree"), el("date")))

	cold := resumeDTD(t)
	col := obs.NewCollector()
	ConformTraced(doc, cold, col)
	ConformTraced(doc, cold, col)
	snap := col.Snapshot()
	if got := snap.Counters[obs.CtrMapMemoHits]; got != 1 {
		t.Fatalf("cold DTD memo hits = %d, want 1 (first call builds)", got)
	}
	if got := snap.Counters[obs.CtrMapDocs]; got != 2 {
		t.Fatalf("map.docs = %d, want 2", got)
	}

	warm := resumeDTD(t)
	Precompile(warm)
	Precompile(warm) // idempotent
	col2 := obs.NewCollector()
	out, stats := ConformTraced(doc, warm, col2)
	if got := col2.Snapshot().Counters[obs.CtrMapMemoHits]; got != 1 {
		t.Fatalf("precompiled DTD memo hits = %d, want 1", got)
	}
	// Warm and cold outputs are identical.
	outCold, statsCold := Conform(doc, cold)
	if !out.Equal(outCold) || stats != statsCold {
		t.Fatalf("warm/cold outputs differ: %+v vs %+v", stats, statsCold)
	}

	Precompile(nil) // must not panic
}
