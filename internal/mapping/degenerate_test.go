package mapping

import (
	"testing"

	"webrev/internal/dom"
)

// TestTreeDistanceDegenerate pins the edit distance on the degenerate
// trees real corpora produce: empty (nil) trees, single nodes, trees whose
// only children are ignored node types, and deep single-child chains.
func TestTreeDistanceDegenerate(t *testing.T) {
	single := func(tag string) *dom.Node { return dom.NewElement(tag) }
	withComment := func(tag string) *dom.Node {
		n := dom.NewElement(tag)
		n.AppendChild(dom.NewComment("ignored"))
		return n
	}
	chain := func(depth int) *dom.Node {
		root := dom.NewElement("a")
		cur := root
		for i := 0; i < depth; i++ {
			c := dom.NewElement("a")
			cur.AppendChild(c)
			cur = c
		}
		return root
	}

	cases := []struct {
		name string
		a, b *dom.Node
		want float64
	}{
		{"nil vs nil", nil, nil, 0},
		{"nil vs single", nil, single("a"), 1},
		{"single vs nil", single("a"), nil, 1},
		{"single vs same single", single("a"), single("a"), 0},
		{"single vs renamed single", single("a"), single("b"), 1},
		{"comment-only child ignored", withComment("a"), single("a"), 0},
		{"nil vs chain", nil, chain(3), 4},
		{"chain vs longer chain", chain(2), chain(4), 2},
		{"single vs chain", single("a"), chain(3), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := TreeDistance(tc.a, tc.b, UnitCosts()); got != tc.want {
				t.Fatalf("TreeDistance = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestTreeDistanceDegenerateSymmetry checks d(a,b) == d(b,a) under unit
// costs for the degenerate shapes.
func TestTreeDistanceDegenerateSymmetry(t *testing.T) {
	shapes := []*dom.Node{nil, dom.NewElement("a"), dom.NewElement("b")}
	deep := dom.NewElement("a")
	deep.AppendChild(dom.NewElement("b"))
	shapes = append(shapes, deep)
	for i, a := range shapes {
		for j, b := range shapes {
			ab := TreeDistance(a, b, UnitCosts())
			ba := TreeDistance(b, a, UnitCosts())
			if ab != ba {
				t.Fatalf("asymmetry between shapes %d and %d: %v vs %v", i, j, ab, ba)
			}
		}
	}
}
