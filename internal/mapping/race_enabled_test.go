//go:build race

package mapping

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool deliberately drops items under the race detector, so the
// strict zero-allocation pins on pooled scratch cannot hold there.
const raceEnabled = true
