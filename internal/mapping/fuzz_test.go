package mapping

import (
	"testing"

	"webrev/internal/corpus"
	"webrev/internal/dom"
	"webrev/internal/htmlparse"
)

// fuzzTreeCap bounds the node count fed to the quadratic Zhang–Shasha
// matrices so the fuzzer spends its budget on structural variety rather
// than one giant O(n²·m²) case.
const fuzzTreeCap = 250

// pruneTo returns root with subtrees pruned so at most cap element/text
// nodes remain (depth-first keep order).
func pruneTo(root *dom.Node, capN int) *dom.Node {
	kept := 0
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		out := n.Children[:0]
		for _, c := range n.Children {
			if c.Type != dom.ElementNode && c.Type != dom.TextNode {
				continue
			}
			if kept >= capN {
				break
			}
			kept++
			out = append(out, c)
			walk(c)
		}
		n.Children = out
	}
	kept++ // the root itself
	walk(root)
	return root
}

// FuzzTreeDistance parses two fuzzed HTML documents and checks the edit
// distance invariants: no panic on any input, distance non-negative,
// symmetric under unit costs, zero against itself, and — the memo
// equivalence — bit-identical to the naive unmemoized reference.
func FuzzTreeDistance(f *testing.F) {
	g := corpus.New(corpus.Options{Seed: 23})
	rs := g.Corpus(3)
	seeds := [][2]string{
		{"", ""},
		{"<p>a</p>", "<p>b</p>"},
		{"<h1>Jane</h1><ul><li>x<li>y</ul>", "<h1>Jane</h1>"},
		{"<table><tr><td>a</table>", "\x00<h1>\xff</h1>"},
		{rs[0].HTML, rs[1].HTML},
		{rs[1].HTML, rs[2].HTML},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, src1, src2 string) {
		if len(src1) > 4096 {
			src1 = src1[:4096]
		}
		if len(src2) > 4096 {
			src2 = src2[:4096]
		}
		t1 := pruneTo(htmlparse.Parse(src1), fuzzTreeCap)
		t2 := pruneTo(htmlparse.Parse(src2), fuzzTreeCap)
		costs := UnitCosts()
		d := TreeDistance(t1, t2, costs)
		if d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		if got := treeDistanceNaive(t1, t2, costs); got != d {
			t.Fatalf("memo distance %v != naive %v", d, got)
		}
		if back := TreeDistance(t2, t1, costs); back != d {
			t.Fatalf("asymmetric: d(a,b)=%v d(b,a)=%v", d, back)
		}
		if self := TreeDistance(t1, t1, costs); self != 0 {
			t.Fatalf("d(t,t) = %v", self)
		}
	})
}
