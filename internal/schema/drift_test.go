package schema_test

import (
	"reflect"
	"strings"
	"testing"

	"webrev/internal/schema"
)

func TestDiffSupports(t *testing.T) {
	old := map[string]float64{"r": 1, "r/a": 0.9, "r/b": 0.5, "r/c": 0.45}
	cur := map[string]float64{"r": 1, "r/a": 0.6, "r/c": 0.5, "r/d": 0.8}
	added, vanished, shifted := schema.DiffSupports(old, cur, 0.1)
	if want := []schema.PathSupport{{Path: "r/d", Support: 0.8}}; !reflect.DeepEqual(added, want) {
		t.Errorf("added = %+v, want %+v", added, want)
	}
	if want := []schema.PathSupport{{Path: "r/b", Support: 0.5}}; !reflect.DeepEqual(vanished, want) {
		t.Errorf("vanished = %+v, want %+v", vanished, want)
	}
	// r/a moved 0.3 (reported); r/c moved 0.05 (below the minimum shift);
	// r stayed put.
	if want := []schema.PathShift{{Path: "r/a", OldSupport: 0.9, NewSupport: 0.6}}; !reflect.DeepEqual(shifted, want) {
		t.Errorf("shifted = %+v, want %+v", shifted, want)
	}
}

func TestDiffSupportsStable(t *testing.T) {
	m := map[string]float64{"r": 1, "r/a": 0.5}
	added, vanished, shifted := schema.DiffSupports(m, m, 0)
	if len(added)+len(vanished)+len(shifted) != 0 {
		t.Fatalf("identical maps reported drift: +%v -%v ~%v", added, vanished, shifted)
	}
}

// TestDiffDTDTextIgnoresPadding: Render pads element names to the longest
// name in each DTD, so adding an unrelated long element re-pads every
// line. The diff must see through that.
func TestDiffDTDTextIgnoresPadding(t *testing.T) {
	oldText := "<!ELEMENT resume  ((#PCDATA), contact+)>\n" +
		"<!ELEMENT contact (#PCDATA)>\n" +
		"<!ATTLIST resume  val CDATA #IMPLIED>\n"
	newText := "<!ELEMENT resume        ((#PCDATA), contact+, publications)>\n" +
		"<!ELEMENT contact       (#PCDATA)>\n" +
		"<!ELEMENT publications  (#PCDATA)>\n"
	d := schema.DiffDTDText(oldText, newText)
	if want := []string{"<!ELEMENT publications (#PCDATA)>"}; !reflect.DeepEqual(d.Added, want) {
		t.Errorf("added = %v, want %v", d.Added, want)
	}
	if len(d.Removed) != 0 {
		t.Errorf("removed = %v, want none", d.Removed)
	}
	want := []schema.DTDChange{{
		Element: "resume",
		Old:     "<!ELEMENT resume ((#PCDATA), contact+)>",
		New:     "<!ELEMENT resume ((#PCDATA), contact+, publications)>",
	}}
	if !reflect.DeepEqual(d.Changed, want) {
		t.Errorf("changed = %+v, want %+v", d.Changed, want)
	}
	if d.Empty() {
		t.Error("diff with changes reported Empty")
	}
	if same := schema.DiffDTDText(newText, newText); !same.Empty() {
		t.Errorf("self-diff not empty: %+v", same)
	}
}

func TestDriftSummaryAndShifted(t *testing.T) {
	d := &schema.Drift{Version: schema.DriftVersion, Cycle: 3,
		Docs: schema.DocDelta{Unchanged: 10, Changed: 2, New: 1, Vanished: 1}}
	if d.Shifted() {
		t.Error("empty diff reported as shifted")
	}
	if s := d.Summary(); !strings.Contains(s, "schema stable") || !strings.Contains(s, "cycle 3") {
		t.Errorf("stable summary = %q", s)
	}
	d.NewPaths = []schema.PathSupport{{Path: "r/x", Support: 0.7}}
	d.DTD.Added = []string{"<!ELEMENT x (#PCDATA)>"}
	if !d.Shifted() {
		t.Error("diff with new paths not reported as shifted")
	}
	if s := d.Summary(); !strings.Contains(s, "schema drift") {
		t.Errorf("drift summary = %q", s)
	}
}

func TestSiteConformanceRegressed(t *testing.T) {
	row := schema.SiteConformance{Site: "a", OldDocs: 10, NewDocs: 10, OldRate: 0.9, NewRate: 0.7}
	if !row.Regressed(0.1) {
		t.Error("0.2 drop not reported at 0.1 threshold")
	}
	if row.Regressed(0.3) {
		t.Error("0.2 drop reported at 0.3 threshold")
	}
	noOld := schema.SiteConformance{Site: "b", NewDocs: 5, NewRate: 0.5}
	if noOld.Regressed(0.1) {
		t.Error("site with no old docs reported as regressed")
	}
}

// TestSupportMap checks the flattening against the schema's own Paths().
func TestSupportMap(t *testing.T) {
	docs := convertedCorpus(t, 20, 3)
	s := (&schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}).Discover(docs)
	m := s.SupportMap()
	paths := s.Paths()
	if len(m) != len(paths) {
		t.Fatalf("SupportMap has %d entries, schema has %d paths", len(m), len(paths))
	}
	for _, p := range paths {
		sup, ok := m[p]
		if !ok {
			t.Fatalf("path %q missing from SupportMap", p)
		}
		if sup <= 0 || sup > 1 {
			t.Fatalf("path %q support out of range: %v", p, sup)
		}
	}
	if (*schema.Schema)(nil).SupportMap() == nil {
		t.Error("nil schema SupportMap returned nil map")
	}
}
