package schema_test

import (
	"math/rand"
	"testing"

	"webrev/internal/concept"
	"webrev/internal/convert"
	"webrev/internal/corpus"
	"webrev/internal/schema"
)

// convertedCorpus converts n generated resumes and extracts their path
// representations — realistic miner input with heterogeneous structure.
func convertedCorpus(t testing.TB, n int, seed int64) []*schema.DocPaths {
	t.Helper()
	g := corpus.New(corpus.Options{Seed: seed})
	conv := convert.New(concept.ResumeSet(), convert.Options{
		RootName:    "resume",
		Constraints: concept.ResumeConstraints(),
	})
	var out []*schema.DocPaths
	for _, r := range g.Corpus(n) {
		x, _ := conv.Convert(r.HTML)
		out = append(out, schema.Extract(x))
	}
	return out
}

// mineStats folds docs into per-shard accumulators according to shard
// assignment, merges the shards in the given order, and mines the result.
func mineStats(t *testing.T, m *schema.Miner, docs []*schema.DocPaths, assign []int, shards int, order []int) *schema.Schema {
	t.Helper()
	accs := make([]*schema.Accumulator, shards)
	for i := range accs {
		accs[i] = schema.NewAccumulator(0)
	}
	for i, d := range docs {
		accs[assign[i]].Add(i, d)
	}
	merged := schema.NewAccumulator(0)
	for _, s := range order {
		if err := merged.Merge(accs[s]); err != nil {
			t.Fatal(err)
		}
	}
	return m.DiscoverStats(merged)
}

// TestAccumulatorMergeCommutativeAssociative is the property behind the
// streaming build: any sharding of the corpus, merged in any order (and any
// association, since merge trees reduce to orders of pairwise merges into
// one accumulator), mines the identical schema — same supports, same
// supportRatios, same ordering and repetition statistics, same sequence
// samples — as the batch miner over the full slice.
func TestAccumulatorMergeCommutativeAssociative(t *testing.T) {
	docs := convertedCorpus(t, 40, 7)
	m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1,
		Constraints: concept.ResumeConstraints(), Set: concept.ResumeSet()}
	want := m.Discover(docs).String()
	if want == "" {
		t.Fatal("batch miner found no schema; corpus too small")
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		shards := 1 + rng.Intn(7)
		assign := make([]int, len(docs))
		for i := range assign {
			assign[i] = rng.Intn(shards)
		}
		order := rng.Perm(shards)
		got := mineStats(t, m, docs, assign, shards, order)
		if g := got.String(); g != want {
			t.Fatalf("trial %d (%d shards, order %v): merged schema differs\nwant:\n%s\ngot:\n%s",
				trial, shards, order, want, g)
		}
	}
}

// TestAccumulatorPairwiseAssociativity checks (a·b)·c == a·(b·c) directly
// on three shards, comparing the mined result of both association orders.
func TestAccumulatorPairwiseAssociativity(t *testing.T) {
	docs := convertedCorpus(t, 30, 11)
	build := func(lo, hi int) *schema.Accumulator {
		a := schema.NewAccumulator(0)
		for i := lo; i < hi; i++ {
			a.Add(i, docs[i])
		}
		return a
	}
	m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}

	// (a·b)·c
	left := build(0, 10)
	if err := left.Merge(build(10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(build(20, 30)); err != nil {
		t.Fatal(err)
	}
	// a·(b·c)
	bc := build(10, 20)
	if err := bc.Merge(build(20, 30)); err != nil {
		t.Fatal(err)
	}
	right := build(0, 10)
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs := m.DiscoverStats(left), m.DiscoverStats(right)
	if ls.String() != rs.String() {
		t.Fatalf("association order changed the schema\n(a·b)·c:\n%s\na·(b·c):\n%s", ls.String(), rs.String())
	}
	if ls.Docs != 30 || rs.Docs != 30 {
		t.Fatalf("doc counts wrong: %d, %d", ls.Docs, rs.Docs)
	}
}

// TestAccumulatorSupportRatiosExact pins the exactness claim: supports and
// supportRatios from merged shards equal the batch miner's to the last bit,
// not merely approximately.
func TestAccumulatorSupportRatiosExact(t *testing.T) {
	docs := convertedCorpus(t, 25, 3)
	m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}
	want := m.Discover(docs)

	assign := make([]int, len(docs))
	for i := range assign {
		assign[i] = i % 4
	}
	got := mineStats(t, m, docs, assign, 4, []int{2, 0, 3, 1})

	var collect func(n *schema.Node, into map[string][2]float64)
	collect = func(n *schema.Node, into map[string][2]float64) {
		into[n.Path] = [2]float64{n.Support, n.Ratio}
		for _, c := range n.Children {
			collect(c, into)
		}
	}
	wm, gm := map[string][2]float64{}, map[string][2]float64{}
	for _, r := range want.Roots {
		collect(r, wm)
	}
	for _, r := range got.Roots {
		collect(r, gm)
	}
	if len(wm) == 0 || len(wm) != len(gm) {
		t.Fatalf("schema sizes differ: batch %d, merged %d", len(wm), len(gm))
	}
	for p, w := range wm {
		if gm[p] != w {
			t.Errorf("path %s: batch (sup=%v ratio=%v) vs merged (sup=%v ratio=%v)",
				p, w[0], w[1], gm[p][0], gm[p][1])
		}
	}
}

// TestAccumulatorMergeThresholdMismatch rejects merging summaries folded
// with different repetition thresholds — their repDocs counts are not
// comparable.
func TestAccumulatorMergeThresholdMismatch(t *testing.T) {
	a, b := schema.NewAccumulator(3), schema.NewAccumulator(5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched repetition thresholds succeeded")
	}
}

// TestAccumulatorSeqSampleBounded feeds far more than maxSeqSamples
// sequences through sharded accumulators and checks the merged sample is
// the same corpus-order prefix the batch miner keeps.
func TestAccumulatorSeqSampleBounded(t *testing.T) {
	// Synthesize many small documents with one repetitive node each.
	var docs []*schema.DocPaths
	for i := 0; i < 400; i++ {
		d := &schema.DocPaths{
			Paths:     map[string]bool{"r": true, "r/e": true},
			Mult:      map[string]int{"r": 1, "r/e": 4},
			PosSum:    map[string]float64{"r": 0, "r/e": float64(i % 5)},
			PosCount:  map[string]int{"r": 1, "r/e": 1},
			ChildSeqs: map[string][][]string{"r": {{"e", "e"}}},
		}
		docs = append(docs, d)
	}
	m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}
	want := m.Discover(docs)

	assign := make([]int, len(docs))
	rng := rand.New(rand.NewSource(9))
	for i := range assign {
		assign[i] = rng.Intn(5)
	}
	got := mineStats(t, m, docs, assign, 5, []int{4, 3, 2, 1, 0})

	wr, gr := want.Root(), got.Root()
	if wr == nil || gr == nil {
		t.Fatal("no root mined")
	}
	if len(wr.Seqs) != len(gr.Seqs) {
		t.Fatalf("sample sizes differ: batch %d, merged %d", len(wr.Seqs), len(gr.Seqs))
	}
	for i := range wr.Seqs {
		if len(wr.Seqs[i]) != len(gr.Seqs[i]) {
			t.Fatalf("sample %d differs", i)
		}
	}
	if want.String() != got.String() {
		t.Fatalf("schemas differ\nbatch:\n%s\nmerged:\n%s", want.String(), got.String())
	}
}
