package schema

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"webrev/internal/htmlparse"
)

// FuzzFoldSubtract drives an arbitrary fold/subtract interleaving over a
// small document pool and requires the surviving accumulator to match a
// from-scratch delta accumulator over the live set: identical JSON and an
// identical mined schema. Each op byte toggles one document in or out.
func FuzzFoldSubtract(f *testing.F) {
	f.Add("<resume><contact/><education><degree/></education></resume>", []byte{0, 1, 2, 1, 0})
	f.Add("<a><b><c/></b><b/></a>", []byte{3, 3, 3, 0, 2, 1})
	f.Add("<ul><li>x<li>y</ul>", []byte{})
	f.Add("\x00<h1>\xff</h1>", []byte{0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, src string, ops []byte) {
		if len(src) > 4096 {
			src = src[:4096]
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		// Carve the input into a pool of documents, as FuzzMinePaths does.
		var docs []*DocPaths
		for i := 0; i < 4; i++ {
			docs = append(docs, Extract(htmlparse.Parse(src[len(src)*i/4:])))
		}
		acc := NewDeltaAccumulator(0)
		live := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % len(docs)
			if live[i] {
				if err := acc.Subtract(i, docs[i]); err != nil {
					t.Fatalf("subtract doc %d: %v", i, err)
				}
				delete(live, i)
			} else {
				acc.Add(i, docs[i])
				live[i] = true
			}
		}
		fresh := NewDeltaAccumulator(0)
		for i := range docs {
			if live[i] {
				fresh.Add(i, docs[i])
			}
		}
		aj, err := json.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		fj, err := json.Marshal(fresh)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, fj) {
			t.Fatalf("interleaved accumulator diverged from from-scratch\ngot:  %s\nwant: %s", aj, fj)
		}
		m := &Miner{SupThreshold: 0.5, RatioThreshold: 0.1}
		if got, want := m.DiscoverStats(acc), m.DiscoverStats(fresh); !reflect.DeepEqual(got, want) {
			t.Fatalf("mined schema diverged:\n%s\nvs\n%s", got, want)
		}
	})
}
