package schema

import (
	"bytes"
	"encoding/json"
	"testing"

	"webrev/internal/dom"
)

// jsonDoc builds a small document tree with repeated children so the
// accumulator records positions, multiplicities, and sequence samples.
func jsonDoc(extra string) *dom.Node {
	root := dom.NewElement("resume")
	for i := 0; i < 3; i++ {
		e := dom.NewElement("education")
		e.AppendChild(dom.NewElement("degree"))
		e.AppendChild(dom.NewElement("date"))
		root.AppendChild(e)
	}
	if extra != "" {
		root.AppendChild(dom.NewElement(extra))
	}
	return root
}

// TestAccumulatorJSONRoundTrip checks that marshal → unmarshal → marshal is
// byte-stable and preserves the accumulator's headline statistics.
func TestAccumulatorJSONRoundTrip(t *testing.T) {
	acc := NewAccumulator(0)
	acc.Add(0, Extract(jsonDoc("skills")))
	acc.Add(1, Extract(jsonDoc("")))
	acc.Add(2, Extract(jsonDoc("awards")))

	first, err := json.Marshal(acc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := &Accumulator{}
	if err := json.Unmarshal(first, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if restored.Docs() != acc.Docs() || restored.RepThreshold() != acc.RepThreshold() {
		t.Fatalf("restored docs/rep = %d/%d, want %d/%d",
			restored.Docs(), restored.RepThreshold(), acc.Docs(), acc.RepThreshold())
	}
	second, err := json.Marshal(restored)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("encoding not stable across a round trip:\n%s\nvs\n%s", first, second)
	}
}

// TestAccumulatorJSONMinesIdentically checks the restored accumulator
// merges and mines exactly like the live one — the property checkpoint
// resume depends on.
func TestAccumulatorJSONMinesIdentically(t *testing.T) {
	live := NewAccumulator(0)
	live.Add(0, Extract(jsonDoc("skills")))
	live.Add(1, Extract(jsonDoc("")))

	data, err := json.Marshal(live)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := &Accumulator{}
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	// Continue both with the same later shard, then mine.
	later := func() *Accumulator {
		b := NewAccumulator(0)
		b.Add(2, Extract(jsonDoc("awards")))
		return b
	}
	if err := live.Merge(later()); err != nil {
		t.Fatalf("merge live: %v", err)
	}
	if err := restored.Merge(later()); err != nil {
		t.Fatalf("merge restored: %v", err)
	}
	m := &Miner{SupThreshold: 0.3, RatioThreshold: 0.1}
	a, b := m.DiscoverStats(live), m.DiscoverStats(restored)
	if a.String() != b.String() {
		t.Fatalf("restored accumulator mines differently:\n%s\nvs\n%s", a, b)
	}
}

// TestAccumulatorJSONRejectsBadInput checks the decoder validates its
// input instead of building a corrupt accumulator.
func TestAccumulatorJSONRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"rep":0,"docs":1}`,
		`{"rep":3,"docs":1,"paths":[{"path":"/a","docs":1,"pos_num":"x","pos_den":"2"}]}`,
		`{"rep":3,"docs":1,"paths":[{"path":"/a","docs":1,"pos_num":"1","pos_den":"0"}]}`,
	}
	for _, in := range bad {
		if err := json.Unmarshal([]byte(in), &Accumulator{}); err == nil {
			t.Fatalf("decoder accepted %s", in)
		}
	}
}
