package schema_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"webrev/internal/schema"
)

func marshalAcc(t testing.TB, a *schema.Accumulator) []byte {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal accumulator: %v", err)
	}
	return b
}

// TestSubtractRestoresAccumulator is the retirement property the delta
// build rests on: folding a document and subtracting it again restores the
// accumulator to a state deep-equal (and JSON-identical) to one that never
// saw the document — for every choice of which document is retired.
func TestSubtractRestoresAccumulator(t *testing.T) {
	docs := convertedCorpus(t, 30, 5)
	for k := range docs {
		base := schema.NewDeltaAccumulator(0)
		mutated := schema.NewDeltaAccumulator(0)
		for i, d := range docs {
			if i == k {
				continue
			}
			base.Add(i, d)
			mutated.Add(i, d)
		}
		mutated.Add(k, docs[k])
		if err := mutated.Subtract(k, docs[k]); err != nil {
			t.Fatalf("subtract doc %d: %v", k, err)
		}
		if !reflect.DeepEqual(mutated, base) {
			t.Fatalf("doc %d: fold+subtract did not restore the accumulator", k)
		}
		if got, want := marshalAcc(t, mutated), marshalAcc(t, base); !bytes.Equal(got, want) {
			t.Fatalf("doc %d: JSON differs after fold+subtract\ngot:  %s\nwant: %s", k, got, want)
		}
	}
}

// TestSubtractToEmpty retires the only folded document and requires the
// result to deep-equal a fresh delta accumulator.
func TestSubtractToEmpty(t *testing.T) {
	docs := convertedCorpus(t, 1, 17)
	acc := schema.NewDeltaAccumulator(0)
	acc.Add(0, docs[0])
	if err := acc.Subtract(0, docs[0]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc, schema.NewDeltaAccumulator(0)) {
		t.Fatal("subtracting the only document did not restore the empty accumulator")
	}
	if err := acc.Subtract(0, docs[0]); err == nil {
		t.Fatal("subtract from empty accumulator succeeded")
	}
}

// TestSubtractRandomInterleaving drives a random fold/subtract sequence and
// requires the surviving state to match a from-scratch accumulator over the
// live document set: identical JSON and an identical mined schema.
func TestSubtractRandomInterleaving(t *testing.T) {
	docs := convertedCorpus(t, 40, 13)
	m := &schema.Miner{SupThreshold: 0.3, RatioThreshold: 0.1}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		acc := schema.NewDeltaAccumulator(0)
		live := make(map[int]bool)
		for op := 0; op < 120; op++ {
			i := rng.Intn(len(docs))
			if live[i] {
				if err := acc.Subtract(i, docs[i]); err != nil {
					t.Fatalf("trial %d: subtract doc %d: %v", trial, i, err)
				}
				delete(live, i)
			} else {
				acc.Add(i, docs[i])
				live[i] = true
			}
		}
		fresh := schema.NewDeltaAccumulator(0)
		for i := range docs {
			if live[i] {
				fresh.Add(i, docs[i])
			}
		}
		if got, want := marshalAcc(t, acc), marshalAcc(t, fresh); !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d live docs): interleaved JSON diverged from from-scratch\ngot:  %s\nwant: %s",
				trial, len(live), got, want)
		}
		if got, want := m.DiscoverStats(acc).String(), m.DiscoverStats(fresh).String(); got != want {
			t.Fatalf("trial %d: mined schema diverged\ngot:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}

// TestSubtractErrors pins the failure modes: unknown paths, and retiring a
// document whose sequence sample a non-delta accumulator compacted away. A
// failed subtract must leave the accumulator untouched.
func TestSubtractErrors(t *testing.T) {
	seqDoc := func(i int) *schema.DocPaths {
		return &schema.DocPaths{
			Paths:     map[string]bool{"r": true, "r/e": true},
			Mult:      map[string]int{"r": 1, "r/e": 4},
			PosSum:    map[string]float64{"r": 0, "r/e": float64(i % 5)},
			PosCount:  map[string]int{"r": 1, "r/e": 1},
			ChildSeqs: map[string][][]string{"r": {{"e", "e"}}},
		}
	}

	// Compaction in a non-delta accumulator drops old samples; subtracting
	// such a document must fail cleanly.
	acc := schema.NewAccumulator(0)
	for i := 0; i < 600; i++ {
		acc.Add(i, seqDoc(i))
	}
	// Doc 300's sample sits past the kept corpus-order prefix at the time
	// compaction fires, so it is gone from the non-delta accumulator.
	before := marshalAcc(t, acc)
	if err := acc.Subtract(300, seqDoc(300)); err == nil {
		t.Fatal("subtract of a compacted-away sample succeeded")
	}
	if after := marshalAcc(t, acc); !bytes.Equal(before, after) {
		t.Fatal("failed subtract mutated the accumulator")
	}

	// A delta accumulator never compacts, so the same retirement succeeds.
	del := schema.NewDeltaAccumulator(0)
	for i := 0; i < 600; i++ {
		del.Add(i, seqDoc(i))
	}
	if err := del.Subtract(300, seqDoc(300)); err != nil {
		t.Fatalf("delta subtract failed: %v", err)
	}

	// Unknown path.
	stranger := &schema.DocPaths{Paths: map[string]bool{"never-folded": true}}
	before = marshalAcc(t, del)
	if err := del.Subtract(0, stranger); err == nil {
		t.Fatal("subtract of an unknown path succeeded")
	}
	if after := marshalAcc(t, del); !bytes.Equal(before, after) {
		t.Fatal("failed subtract mutated the accumulator")
	}
}

// TestSubtractMergeDeltaMismatch rejects merging delta and non-delta
// accumulators: their sequence samples are not comparable (one compacts).
func TestSubtractMergeDeltaMismatch(t *testing.T) {
	a, b := schema.NewDeltaAccumulator(0), schema.NewAccumulator(0)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of delta and non-delta accumulators succeeded")
	}
}

// TestSubtractDeltaJSONRoundTrip requires the delta flag to survive the
// wire format: a restored delta shard must still subtract exactly.
func TestSubtractDeltaJSONRoundTrip(t *testing.T) {
	docs := convertedCorpus(t, 8, 29)
	acc := schema.NewDeltaAccumulator(0)
	for i, d := range docs {
		acc.Add(i, d)
	}
	var restored schema.Accumulator
	if err := json.Unmarshal(marshalAcc(t, acc), &restored); err != nil {
		t.Fatal(err)
	}
	if !restored.Delta() {
		t.Fatal("delta flag lost in JSON round trip")
	}
	if !reflect.DeepEqual(&restored, acc) {
		t.Fatal("restored delta accumulator differs")
	}
	if err := restored.Subtract(3, docs[3]); err != nil {
		t.Fatalf("subtract on restored accumulator: %v", err)
	}
}

// TestSubtractShardedRace mirrors the watch loop's concurrency shape: each
// worker owns one delta shard and folds/retires documents on it
// concurrently with the other workers. Run under -race this pins that
// Subtract shares no hidden state across accumulators; the merged result
// must still match a from-scratch accumulator over the surviving set.
func TestSubtractShardedRace(t *testing.T) {
	docs := convertedCorpus(t, 48, 21)
	const shards = 8
	accs := make([]*schema.Accumulator, shards)
	for i := range accs {
		accs[i] = schema.NewDeltaAccumulator(0)
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(docs); i += shards {
				accs[s].Add(i, docs[i])
			}
			// Retire every other document the shard folded.
			for i := s; i < len(docs); i += 2 * shards {
				if err := accs[s].Subtract(i, docs[i]); err != nil {
					t.Errorf("shard %d: subtract doc %d: %v", s, i, err)
				}
			}
		}(s)
	}
	wg.Wait()
	merged := schema.NewDeltaAccumulator(0)
	for _, a := range accs {
		if err := merged.Merge(a); err != nil {
			t.Fatal(err)
		}
	}
	fresh := schema.NewDeltaAccumulator(0)
	for i := range docs {
		if (i/shards)%2 != 0 {
			fresh.Add(i, docs[i])
		}
	}
	if got, want := marshalAcc(t, merged), marshalAcc(t, fresh); !bytes.Equal(got, want) {
		t.Fatalf("merged shards diverged from from-scratch accumulator\ngot:  %s\nwant: %s", got, want)
	}
}
