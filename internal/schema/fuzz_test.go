package schema

import (
	"math"
	"os"
	"reflect"
	"testing"

	"webrev/internal/htmlparse"
)

// FuzzMinePaths drives the whole extract→fold→freeze→mine chain on fuzzed
// markup: the miner must never panic, supports and ratios must stay in
// range, the discovered paths must be a prefix-closed subset of the
// extracted universe, and the parallel sharded fold must equal the serial
// one exactly.
func FuzzMinePaths(f *testing.F) {
	seeds := []string{
		"",
		"<resume><contact/><education><degree/><date/></education></resume>",
		"<a><b><c/></b><b/></a><a><b/></a>",
		"<ul><li>x<li>y<li>z</ul>",
		"\x00<h1>\xff</h1>",
	}
	if golden, err := os.ReadFile("../../testdata/golden/conformed.xml"); err == nil {
		s := string(golden)
		seeds = append(seeds, s)
		if len(s) > 300 {
			seeds = append(seeds, s[:300], s[len(s)/2:])
		}
	}
	for _, s := range seeds {
		f.Add(s, 0.5, 0.1)
	}
	f.Fuzz(func(t *testing.T, src string, sup, ratio float64) {
		if len(src) > 8192 {
			src = src[:8192]
		}
		if math.IsNaN(sup) || sup < 0 || sup > 1 {
			sup = 0.5
		}
		if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
			ratio = 0.1
		}
		// Carve the input into a few documents so multi-doc statistics
		// (support fractions, merge behavior) are exercised.
		var docs []*DocPaths
		for i := 0; i < 3; i++ {
			part := src[len(src)*i/3:]
			root := htmlparse.Parse(part)
			docs = append(docs, Extract(root))
		}
		serial := (&Miner{SupThreshold: sup, RatioThreshold: ratio}).Discover(docs)
		parallel := (&Miner{SupThreshold: sup, RatioThreshold: ratio, Shards: 3}).Discover(docs)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("parallel miner diverged from serial:\n%s\nvs\n%s", serial, parallel)
		}
		universe := make(map[string]bool)
		for _, d := range docs {
			for p := range d.Paths {
				universe[p] = true
			}
		}
		for _, p := range serial.Paths() {
			if !universe[p] {
				t.Fatalf("discovered path %q not in extracted universe", p)
			}
			if par := ParentPath(p); par != "" && !serial.Contains(par) {
				t.Fatalf("schema not prefix-closed: %q present, parent %q missing", p, par)
			}
		}
		var check func(n *Node)
		check = func(n *Node) {
			if n.Support < 0 || n.Support > 1 || math.IsNaN(n.Support) {
				t.Fatalf("support out of range at %s: %v", n.Path, n.Support)
			}
			if n.Ratio < 0 || math.IsNaN(n.Ratio) {
				t.Fatalf("ratio out of range at %s: %v", n.Path, n.Ratio)
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		for _, r := range serial.Roots {
			check(r)
		}
	})
}
