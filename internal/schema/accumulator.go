package schema

import (
	"fmt"
	"math/big"
	"sort"
)

// Accumulator folds the per-document label-path statistics the miner needs
// into a mergeable summary, so schema discovery can run incrementally: N
// workers each fold their shard of the corpus with Add, the shards combine
// with Merge (an exactly commutative and associative operation), and
// Miner.DiscoverStats mines the combined summary — producing the same
// schema, support and supportRatio values as Miner.Discover over the whole
// corpus in one slice. This is what lets the streaming build (core.
// BuildStream) drop each document's tree as soon as its statistics are
// folded, keeping memory bounded by the summary instead of the corpus.
//
// Exactness is what makes Merge order-free. Document counts are integers;
// per-document average child positions are accumulated as exact rational
// sums (posRat — float addition is not associative, so a float accumulator
// would make the result depend on shard boundaries); child-sequence samples
// are tagged with the document's corpus index so the final sample is the
// same first-N prefix regardless of which shard saw which document.
type Accumulator struct {
	// rep is the sibling-multiplicity threshold (§3.3) repetition counts
	// were folded with; accumulators only merge when they agree.
	rep   int
	docs  int
	paths map[string]*pathAgg
	// delta disables sequence-sample compaction so every folded document's
	// sample survives verbatim and Subtract can retire it exactly. Delta
	// accumulators trade bounded memory for invertibility; see
	// NewDeltaAccumulator.
	delta bool
	// table caches Freeze()'s interned path table; any mutation (Add,
	// Merge, Subtract, UnmarshalJSON) invalidates it.
	table *PathTable
}

// pathAgg aggregates one label path's statistics across the documents a
// shard has seen.
type pathAgg struct {
	docs    int    // documents containing the path (support count)
	posSum  posRat // exact sum of per-document average child positions
	posDocs int    // documents contributing to posSum
	repDocs int    // documents where the path repeats (Mult >= rep)
	seqs    []docSeqs
	nseqs   int // total sequences held across seqs
}

// docSeqs is one document's child-label sequence sample for a path, tagged
// with the document's corpus index so samples stay in corpus order across
// shards.
type docSeqs struct {
	doc  int
	seqs [][]string
}

// NewAccumulator returns an empty accumulator using the given repetition
// threshold (<= 0 selects DefaultRepThreshold).
func NewAccumulator(repThreshold int) *Accumulator {
	if repThreshold <= 0 {
		repThreshold = DefaultRepThreshold
	}
	return &Accumulator{rep: repThreshold, paths: make(map[string]*pathAgg)}
}

// NewDeltaAccumulator returns an empty accumulator whose folds are exactly
// invertible with Subtract. It differs from NewAccumulator in one way:
// sequence samples are never compacted, because compaction irreversibly
// drops the per-document samples Subtract needs to retire. Mining a delta
// accumulator is still byte-identical to mining a compacted one over the
// same document set — the miner samples the same first-maxSeqSamples
// corpus-ordered prefix either way — so the continuous build (the watch
// loop) uses delta accumulators as its persistent shards without changing
// any derived schema or DTD.
func NewDeltaAccumulator(repThreshold int) *Accumulator {
	a := NewAccumulator(repThreshold)
	a.delta = true
	return a
}

// RepThreshold returns the repetition threshold the accumulator folds with.
func (a *Accumulator) RepThreshold() int { return a.rep }

// Delta reports whether the accumulator retains full sequence samples for
// exact retirement (NewDeltaAccumulator).
func (a *Accumulator) Delta() bool { return a.delta }

// Docs returns the number of documents folded in so far.
func (a *Accumulator) Docs() int { return a.docs }

// Add folds one document's path statistics. doc is the document's index in
// the corpus; each index must be folded into exactly one accumulator of a
// merge group, and the combined result is identical to folding every
// document into a single accumulator in index order.
func (a *Accumulator) Add(doc int, d *DocPaths) {
	a.docs++
	a.table = nil
	for p := range d.Paths {
		ag := a.paths[p]
		if ag == nil {
			ag = &pathAgg{}
			a.paths[p] = ag
		}
		ag.docs++
		if n := d.PosCount[p]; n > 0 {
			// Positions are small integers, so PosSum is an exact
			// integer-valued float; the per-document average enters the sum
			// as the exact rational PosSum/PosCount.
			ag.posSum.addFrac(int64(d.PosSum[p]), int64(n))
			ag.posDocs++
		}
		if d.Mult[p] >= a.rep {
			ag.repDocs++
		}
		if seqs := d.ChildSeqs[p]; len(seqs) > 0 {
			ag.seqs = append(ag.seqs, docSeqs{doc: doc, seqs: seqs})
			ag.nseqs += len(seqs)
			if !a.delta {
				ag.compact()
			}
		}
	}
}

// Subtract retires one previously folded document's statistics, exactly
// inverting Add(doc, d): after fold-then-subtract the accumulator is
// deep-equal to its pre-fold state (and marshals to identical JSON). The
// DocPaths must be the same value folded for doc — the caller (the watch
// loop) keeps it alongside the document in its persistent state.
//
// Subtract validates before mutating, so on error the accumulator is
// unchanged. It fails when d references a path or sequence sample the
// accumulator no longer holds — in particular when a non-delta
// accumulator compacted the sample away; continuous builds must fold into
// NewDeltaAccumulator shards.
func (a *Accumulator) Subtract(doc int, d *DocPaths) error {
	if a.docs <= 0 {
		return fmt.Errorf("schema: subtract from empty accumulator")
	}
	for p := range d.Paths {
		ag := a.paths[p]
		if ag == nil || ag.docs <= 0 {
			return fmt.Errorf("schema: subtract of unknown path %q", p)
		}
		if d.PosCount[p] > 0 && ag.posDocs <= 0 {
			return fmt.Errorf("schema: subtract of path %q: no position contributions left", p)
		}
		if d.Mult[p] >= a.rep && ag.repDocs <= 0 {
			return fmt.Errorf("schema: subtract of path %q: no repetition contributions left", p)
		}
		if len(d.ChildSeqs[p]) > 0 && !ag.hasDoc(doc) {
			return fmt.Errorf("schema: subtract of path %q: no sequence sample for document %d (compacted away? continuous shards must use NewDeltaAccumulator)", p, doc)
		}
	}
	a.docs--
	a.table = nil
	for p := range d.Paths {
		ag := a.paths[p]
		ag.docs--
		if ag.docs == 0 {
			delete(a.paths, p)
			continue
		}
		if n := d.PosCount[p]; n > 0 {
			ag.posDocs--
			if ag.posDocs == 0 {
				// Reset to the zero value rather than subtracting down to
				// 0/1, so the "no sum yet" representation matches a fresh
				// aggregate exactly.
				ag.posSum = posRat{}
			} else {
				ag.posSum.subFrac(int64(d.PosSum[p]), int64(n))
			}
		}
		if d.Mult[p] >= a.rep {
			ag.repDocs--
		}
		if len(d.ChildSeqs[p]) > 0 {
			ag.dropDoc(doc)
		}
	}
	return nil
}

// hasDoc reports whether the aggregate still holds doc's sequence sample.
func (g *pathAgg) hasDoc(doc int) bool {
	for _, ds := range g.seqs {
		if ds.doc == doc {
			return true
		}
	}
	return false
}

// dropDoc removes doc's sequence sample, preserving the order of the rest
// and restoring a nil slice when the last sample goes (so fold-then-
// subtract round-trips to deep equality).
func (g *pathAgg) dropDoc(doc int) {
	for i, ds := range g.seqs {
		if ds.doc == doc {
			g.nseqs -= len(ds.seqs)
			g.seqs = append(g.seqs[:i], g.seqs[i+1:]...)
			if len(g.seqs) == 0 {
				g.seqs = nil
			}
			return
		}
	}
}

// Merge folds b into a. It is commutative and associative: any merge tree
// over a set of accumulators yields identical statistics, provided each
// document index was folded exactly once and both sides used the same
// repetition threshold.
func (a *Accumulator) Merge(b *Accumulator) error {
	if a.rep != b.rep {
		return fmt.Errorf("schema: merging accumulators with different repetition thresholds (%d vs %d)", a.rep, b.rep)
	}
	if a.delta != b.delta {
		return fmt.Errorf("schema: merging delta and non-delta accumulators")
	}
	a.docs += b.docs
	a.table = nil
	for p, bg := range b.paths {
		ag := a.paths[p]
		if ag == nil {
			a.paths[p] = bg
			continue
		}
		ag.docs += bg.docs
		ag.posSum.addRat(&bg.posSum)
		ag.posDocs += bg.posDocs
		ag.repDocs += bg.repDocs
		ag.seqs = append(ag.seqs, bg.seqs...)
		ag.nseqs += bg.nseqs
		if !a.delta {
			ag.compact()
		}
	}
	return nil
}

// compact bounds the sequence sample. Only the first maxSeqSamples
// sequences in corpus order can ever be reported, and a document that has
// at least maxSeqSamples sequences from lower-indexed documents ahead of it
// within this accumulator has at least as many ahead of it globally — so
// everything past that point is dropped without affecting the merged
// result. Runs only when the sample has grown well past the cap, keeping
// Add amortized cheap.
func (g *pathAgg) compact() {
	if g.nseqs <= 2*maxSeqSamples {
		return
	}
	sort.Slice(g.seqs, func(i, j int) bool { return g.seqs[i].doc < g.seqs[j].doc })
	kept, total := 0, 0
	for kept < len(g.seqs) && total < maxSeqSamples {
		total += len(g.seqs[kept].seqs)
		kept++
	}
	g.seqs = g.seqs[:kept:kept]
	g.nseqs = total
}

// sample returns up to maxSeqSamples sequences for the path in corpus
// order — the same prefix Miner.Discover collects when it walks documents
// in slice order.
func (g *pathAgg) sample() [][]string {
	sort.Slice(g.seqs, func(i, j int) bool { return g.seqs[i].doc < g.seqs[j].doc })
	var out [][]string
	for _, ds := range g.seqs {
		for _, s := range ds.seqs {
			if len(out) >= maxSeqSamples {
				return out
			}
			out = append(out, s)
		}
	}
	return out
}

// avgPos returns the mean of the per-document average child positions, and
// whether any document contributed one. The quotient runs through big.Rat
// exactly as the pre-posRat implementation did, so the reported float64 is
// bit-identical.
func (g *pathAgg) avgPos() (float64, bool) {
	if g.posDocs == 0 {
		return 0, false
	}
	q := new(big.Rat).Quo(g.posSum.rat(), new(big.Rat).SetInt64(int64(g.posDocs)))
	f, _ := q.Float64()
	return f, true
}
