package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Drift reporting: the continuous build (internal/watch) re-derives the
// majority schema after every recrawl cycle and compares it to the previous
// cycle's. The comparison is a structured, versioned JSON artifact — the
// drift report — naming the frequent paths that appeared, vanished or
// shifted support, the DTD elements whose content models changed, and any
// per-site conformance regression. The schema package owns the report types
// and the pure diff functions; the watch loop fills in the document-delta
// and site rows it alone can observe. The DTD diff operates on rendered DTD
// text because this package must not import internal/dtd (dtd imports
// schema).

// DriftVersion is the version stamped into every drift report. Bump it on
// any incompatible change to the report's JSON shape (see DESIGN.md,
// "Versioned persistent formats").
const DriftVersion = 1

// DefaultMinSupportShift is the support change below which a frequent path
// present in both schemas is not reported as shifted.
const DefaultMinSupportShift = 0.1

// PathSupport names one frequent path and its document support, used for
// paths present in only one of the two schemas being compared.
type PathSupport struct {
	// Path is the Sep-joined label path.
	Path string `json:"path"`
	// Support is the path's document frequency in the schema that contains
	// it (the new schema for appearing paths, the old one for vanished).
	Support float64 `json:"support"`
}

// PathShift records a frequent path present in both schemas whose support
// moved by at least the minimum shift.
type PathShift struct {
	// Path is the Sep-joined label path.
	Path string `json:"path"`
	// OldSupport is the path's support in the previous cycle's schema.
	OldSupport float64 `json:"old_support"`
	// NewSupport is the path's support in the current cycle's schema.
	NewSupport float64 `json:"new_support"`
}

// DTDChange records one element whose declaration changed between cycles.
type DTDChange struct {
	// Element is the element name.
	Element string `json:"element"`
	// Old is the previous cycle's <!ELEMENT> declaration (whitespace
	// normalized).
	Old string `json:"old"`
	// New is the current cycle's declaration.
	New string `json:"new"`
}

// DTDDiff is an element-level diff of two rendered DTDs.
type DTDDiff struct {
	// Added holds declarations of elements only the new DTD declares.
	Added []string `json:"added,omitempty"`
	// Removed holds declarations of elements only the old DTD declares.
	Removed []string `json:"removed,omitempty"`
	// Changed holds elements declared by both whose content models differ.
	Changed []DTDChange `json:"changed,omitempty"`
}

// Empty reports whether the diff records no element-level change.
func (d *DTDDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// DocDelta counts how a recrawl cycle classified the corpus's documents.
type DocDelta struct {
	// Unchanged counts pages revalidated without refetch (HTTP 304 or an
	// identical content hash).
	Unchanged int `json:"unchanged"`
	// Changed counts pages whose content changed and were refolded.
	Changed int `json:"changed"`
	// New counts pages first seen this cycle.
	New int `json:"new"`
	// Vanished counts pages retired this cycle (gone from the site).
	Vanished int `json:"vanished"`
	// Failed counts pages whose refetch or reconversion failed; their
	// previous version is kept (served stale) rather than retired.
	Failed int `json:"failed,omitempty"`
}

// SiteConformance is one site's conformance-rate row across a cycle. The
// watch loop computes one row per source host.
type SiteConformance struct {
	// Site is the source host (or corpus label) the row aggregates.
	Site string `json:"site"`
	// OldDocs counts the site's mapped documents before the cycle.
	OldDocs int `json:"old_docs"`
	// NewDocs counts the site's mapped documents after the cycle.
	NewDocs int `json:"new_docs"`
	// OldRate is the site's mean conformance rate before the cycle.
	OldRate float64 `json:"old_rate"`
	// NewRate is the site's mean conformance rate after the cycle.
	NewRate float64 `json:"new_rate"`
}

// Regressed reports whether the site's conformance rate dropped by at
// least min.
func (s *SiteConformance) Regressed(min float64) bool {
	return s.OldDocs > 0 && s.NewDocs > 0 && s.OldRate-s.NewRate >= min
}

// Drift is the report one watch cycle emits: what the recrawl saw, and how
// the derived schema and DTD moved. It marshals deterministically (all
// slices sorted) so chaos goldens can compare reports byte-for-byte.
type Drift struct {
	// Version is DriftVersion at emit time.
	Version int `json:"version"`
	// Cycle is the watch loop's cycle ordinal (1-based; the first cycle
	// seeds the corpus, so its report diffs against an empty schema).
	Cycle int `json:"cycle"`
	// Docs classifies the cycle's page-level changes.
	Docs DocDelta `json:"docs"`
	// NewPaths lists frequent paths present only in the new schema.
	NewPaths []PathSupport `json:"new_paths,omitempty"`
	// VanishedPaths lists frequent paths present only in the old schema.
	VanishedPaths []PathSupport `json:"vanished_paths,omitempty"`
	// ShiftedPaths lists paths in both schemas whose support moved by at
	// least the configured minimum shift.
	ShiftedPaths []PathShift `json:"shifted_paths,omitempty"`
	// DTD is the element-level diff of the rendered DTDs.
	DTD DTDDiff `json:"dtd"`
	// Sites holds per-site conformance rows, sorted by site.
	Sites []SiteConformance `json:"sites,omitempty"`
}

// Shifted reports whether the cycle moved the derived schema or DTD at
// all — the condition under which the watch loop persists and surfaces the
// report prominently.
func (d *Drift) Shifted() bool {
	return len(d.NewPaths) > 0 || len(d.VanishedPaths) > 0 ||
		len(d.ShiftedPaths) > 0 || !d.DTD.Empty()
}

// Summary renders a one-line human-readable digest of the report.
func (d *Drift) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d unchanged, %d changed, %d new, %d vanished",
		d.Cycle, d.Docs.Unchanged, d.Docs.Changed, d.Docs.New, d.Docs.Vanished)
	if d.Docs.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", d.Docs.Failed)
	}
	if !d.Shifted() {
		b.WriteString("; schema stable")
		return b.String()
	}
	fmt.Fprintf(&b, "; schema drift: +%d/-%d/~%d paths, DTD +%d/-%d/~%d elements",
		len(d.NewPaths), len(d.VanishedPaths), len(d.ShiftedPaths),
		len(d.DTD.Added), len(d.DTD.Removed), len(d.DTD.Changed))
	return b.String()
}

// SupportMap flattens the schema into a path → support map, the input to
// DiffSupports.
func (s *Schema) SupportMap() map[string]float64 {
	out := make(map[string]float64)
	if s == nil {
		return out
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		out[n.Path] = n.Support
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range s.Roots {
		walk(r)
	}
	return out
}

// DiffSupports compares two path → support maps (SupportMap of the old and
// new schemas). Paths present on one side only are reported with their
// support; paths on both sides are reported as shifted when |new-old| >=
// minShift (<= 0 selects DefaultMinSupportShift). All three slices come
// back sorted by path.
func DiffSupports(old, cur map[string]float64, minShift float64) (added, vanished []PathSupport, shifted []PathShift) {
	if minShift <= 0 {
		minShift = DefaultMinSupportShift
	}
	for p, sup := range cur {
		if _, ok := old[p]; !ok {
			added = append(added, PathSupport{Path: p, Support: sup})
		}
	}
	for p, sup := range old {
		ns, ok := cur[p]
		if !ok {
			vanished = append(vanished, PathSupport{Path: p, Support: sup})
			continue
		}
		if diff := ns - sup; diff >= minShift || -diff >= minShift {
			shifted = append(shifted, PathShift{Path: p, OldSupport: sup, NewSupport: ns})
		}
	}
	sort.Slice(added, func(i, j int) bool { return added[i].Path < added[j].Path })
	sort.Slice(vanished, func(i, j int) bool { return vanished[i].Path < vanished[j].Path })
	sort.Slice(shifted, func(i, j int) bool { return shifted[i].Path < shifted[j].Path })
	return added, vanished, shifted
}

// DiffDTDText computes the element-level diff of two rendered DTDs
// (dtd.DTD.Render output). Only <!ELEMENT> declarations participate —
// <!ATTLIST> lines are uniform boilerplate in this system — and runs of
// whitespace collapse before comparison, because Render pads element names
// to the longest name in each DTD and that padding shifts when unrelated
// elements come and go. Output slices are sorted by element name.
func DiffDTDText(oldText, newText string) DTDDiff {
	oldDecls := parseElementDecls(oldText)
	newDecls := parseElementDecls(newText)
	var d DTDDiff
	for name, decl := range newDecls {
		if _, ok := oldDecls[name]; !ok {
			d.Added = append(d.Added, decl)
		}
	}
	for name, decl := range oldDecls {
		nd, ok := newDecls[name]
		if !ok {
			d.Removed = append(d.Removed, decl)
			continue
		}
		if nd != decl {
			d.Changed = append(d.Changed, DTDChange{Element: name, Old: decl, New: nd})
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Element < d.Changed[j].Element })
	return d
}

// parseElementDecls extracts whitespace-normalized <!ELEMENT> declarations
// keyed by element name.
func parseElementDecls(text string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "<!ELEMENT" {
			continue
		}
		out[fields[1]] = strings.Join(fields, " ")
	}
	return out
}
