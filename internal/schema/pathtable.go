package schema

import "sort"

// PathTable is the frozen, interned form of an Accumulator's path universe:
// every path gets a dense int32 id, with parent/child edges, last labels,
// and per-path aggregates resolved once. DiscoverStats mines over the table
// instead of re-deriving a children map and re-concatenating "parent/label"
// string keys per candidate, so repeated mining passes (streaming re-mines,
// drift checks) do no per-path string work at all.
//
// The table is read-only and shares the accumulator's *pathAgg values; it
// is valid until the accumulator is next mutated (Add/Merge/UnmarshalJSON
// drop the cache, and the next Freeze rebuilds it).
type PathTable struct {
	paths    []string    // sorted lexicographically; index is the path id
	labels   []string    // LastLabel per id (substrings of paths — no copies)
	aggs     []*pathAgg  // aggregate per id
	parent   []int32     // parent id, -1 for roots
	children [][]int32   // child ids per id, in label order
	roots    []int32     // root ids, in label order
}

// Len returns the number of interned paths.
func (t *PathTable) Len() int { return len(t.paths) }

// Path returns the path string for an id.
func (t *PathTable) Path(id int32) string { return t.paths[id] }

// Freeze returns the interned path table for the accumulator's current
// contents, building it on first use and caching it until the next
// mutation. Freezing an empty accumulator yields an empty table.
func (a *Accumulator) Freeze() *PathTable {
	if a.table != nil {
		return a.table
	}
	t := &PathTable{
		paths: make([]string, 0, len(a.paths)),
	}
	for p := range a.paths {
		t.paths = append(t.paths, p)
	}
	sort.Strings(t.paths)
	n := len(t.paths)
	t.labels = make([]string, n)
	t.aggs = make([]*pathAgg, n)
	t.parent = make([]int32, n)
	t.children = make([][]int32, n)
	index := make(map[string]int32, n)
	for i, p := range t.paths {
		index[p] = int32(i)
	}
	// Iterating ids in sorted-path order appends each child to its parent
	// after the shared "parent/" prefix, i.e. in last-label order — the
	// same order the unfrozen miner visited (sort.Strings over labels).
	for i, p := range t.paths {
		t.labels[i] = LastLabel(p)
		t.aggs[i] = a.paths[p]
		par := ParentPath(p)
		if par == "" {
			t.parent[i] = -1
			t.roots = append(t.roots, int32(i))
			continue
		}
		pi, ok := index[par]
		if !ok {
			// Orphan path (non-prefix-closed input, e.g. a hand-edited
			// checkpoint): unreachable from any root, same as the unfrozen
			// miner's behavior.
			t.parent[i] = -1
			continue
		}
		t.parent[i] = pi
		t.children[pi] = append(t.children[pi], int32(i))
	}
	a.table = t
	return t
}
