package schema

import (
	"strings"
	"testing"

	"webrev/internal/dom"
)

// variantCorpus yields education entries headed by date in some docs and by
// institution in others — the split Unify repairs.
func variantCorpus() []*DocPaths {
	dateFirst := func() *DocPaths {
		return Extract(el("resume",
			el("education", el("date", el("institution"), el("degree"))),
		))
	}
	instFirst := func() *DocPaths {
		return Extract(el("resume",
			el("education", el("institution", el("degree"), el("date"))),
		))
	}
	return []*DocPaths{dateFirst(), dateFirst(), dateFirst(), instFirst(), instFirst()}
}

func el2(tag string, children ...*dom.Node) *dom.Node { // avoid clash warning
	return dom.Elem(tag, nil, children...)
}

func TestUnifyMergesVariants(t *testing.T) {
	s := (&Miner{SupThreshold: 0.3, RatioThreshold: 0}).Discover(variantCorpus())
	edu := s.Root().Children[0]
	if len(edu.Children) != 2 {
		t.Fatalf("setup: expected 2 variants, got %d\n%s", len(edu.Children), s.String())
	}
	merges := Unify(s, 0.5)
	if merges != 1 {
		t.Fatalf("merges = %d\n%s", merges, s.String())
	}
	if len(edu.Children) != 1 {
		t.Fatalf("variants not merged:\n%s", s.String())
	}
	head := edu.Children[0]
	// date-first dominates (3 of 5 docs).
	if head.Label != "date" {
		t.Fatalf("dominant head = %s", head.Label)
	}
	// Merged support: 3/5 + 2/5 = 1.0.
	if head.Support < 0.99 {
		t.Fatalf("merged support = %v", head.Support)
	}
	// institution and degree both survive under the unified head.
	var labels []string
	for _, c := range head.Children {
		labels = append(labels, c.Label)
	}
	got := strings.Join(labels, " ")
	if !strings.Contains(got, "institution") || !strings.Contains(got, "degree") {
		t.Fatalf("children = %q", got)
	}
	// Paths rewritten consistently.
	if !s.Contains("resume/education/date/institution") {
		t.Fatalf("paths broken:\n%s", s.String())
	}
}

func TestUnifyLeavesDissimilarAlone(t *testing.T) {
	docs := []*DocPaths{
		Extract(el2("resume",
			el2("education", el2("degree")),
			el2("experience", el2("company"), el2("title"), el2("description")),
		)),
		Extract(el2("resume",
			el2("education", el2("degree")),
			el2("experience", el2("company"), el2("title"), el2("description")),
		)),
	}
	s := (&Miner{SupThreshold: 0.5}).Discover(docs)
	before := len(s.Paths())
	if merges := Unify(s, 0.5); merges != 0 {
		t.Fatalf("unexpected merges: %d\n%s", merges, s.String())
	}
	if len(s.Paths()) != before {
		t.Fatal("schema changed without merges")
	}
}

func TestUnifyEmptySchema(t *testing.T) {
	s := (&Miner{SupThreshold: 0.5}).Discover(nil)
	if merges := Unify(s, 0.5); merges != 0 {
		t.Fatalf("merges on empty schema: %d", merges)
	}
}

func TestUnifyThresholdDefaulted(t *testing.T) {
	s := (&Miner{SupThreshold: 0.3, RatioThreshold: 0}).Discover(variantCorpus())
	if merges := Unify(s, -1); merges != 1 {
		t.Fatalf("default threshold should merge: %d", merges)
	}
}

func TestUnifySupportCappedByParent(t *testing.T) {
	s := (&Miner{SupThreshold: 0.3, RatioThreshold: 0}).Discover(variantCorpus())
	Unify(s, 0.5)
	var check func(n *Node, parentSup float64) bool
	check = func(n *Node, parentSup float64) bool {
		if n.Support > parentSup+1e-9 {
			return false
		}
		for _, c := range n.Children {
			if !check(c, n.Support) {
				return false
			}
		}
		return true
	}
	root := s.Root()
	if !check(root, 1.0) {
		t.Fatalf("support exceeds parent after unification:\n%s", s.String())
	}
}
