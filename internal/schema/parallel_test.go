package schema

import (
	"encoding/json"
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"webrev/internal/obs"
)

// bigCorpus replicates the Figure-2 trees into an n-document corpus with
// per-document variation, mirroring BenchmarkDiscover's shape.
func bigCorpus(n int) []*DocPaths {
	base := corpus()
	out := make([]*DocPaths, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, base[i%len(base)])
	}
	return out
}

// TestParallelDiscoverMatchesSerial is the tentpole equivalence proof: for
// every shard width, the parallel sharded fold must produce a schema
// deeply equal — supports, ratios, positions, sequence samples, Explored
// and Pruned counters — to the serial fold.
func TestParallelDiscoverMatchesSerial(t *testing.T) {
	docs := bigCorpus(101)
	serial := (&Miner{SupThreshold: 0.5, RatioThreshold: 0.1}).Discover(docs)
	for _, shards := range []int{2, 3, 7, 8, 16, 200} {
		m := &Miner{SupThreshold: 0.5, RatioThreshold: 0.1, Shards: shards}
		got := m.Discover(docs)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("shards=%d: schema differs from serial\nserial:\n%s\ngot:\n%s",
				shards, serial, got)
		}
		if got.String() != serial.String() {
			t.Fatalf("shards=%d: rendering differs", shards)
		}
	}
}

// TestShardedAccumulatorsMergeExactly checks byte-identical merged wire
// state: folding a corpus through any sharding and merging in any
// association must marshal to exactly the bytes of the serial accumulator.
func TestShardedAccumulatorsMergeExactly(t *testing.T) {
	docs := bigCorpus(60)
	serial := NewAccumulator(0)
	for i, d := range docs {
		serial.Add(i, d)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5, 9} {
		shards := make([]*Accumulator, w)
		for k := range shards {
			shards[k] = NewAccumulator(0)
		}
		for i, d := range docs {
			shards[i%w].Add(i, d)
		}
		// Right-to-left merge order — the opposite association of the
		// miner's left fold.
		acc := shards[w-1]
		for k := w - 2; k >= 0; k-- {
			if err := shards[k].Merge(acc); err != nil {
				t.Fatal(err)
			}
			acc = shards[k]
		}
		got, err := json.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("shards=%d: merged accumulator wire bytes differ from serial", w)
		}
	}
}

// TestMinerShardsCounter checks the mine.shards observability counter and
// the fold span: recorded only on the parallel path, with the effective
// shard count (clamped to the corpus size).
func TestMinerShardsCounter(t *testing.T) {
	docs := bigCorpus(10)
	col := obs.NewCollector()
	m := &Miner{SupThreshold: 0.5, Shards: 4, Tracer: col}
	m.Discover(docs)
	snap := col.Snapshot()
	if got := snap.Counters[obs.CtrMineShards]; got != 4 {
		t.Fatalf("mine.shards = %d, want 4", got)
	}
	if sp, ok := snap.Stages[obs.StageMineFold]; !ok || sp.Count != 1 {
		t.Fatalf("fold span = %+v, want count 1", sp)
	}
	// Shards are clamped to the corpus size.
	col2 := obs.NewCollector()
	m2 := &Miner{SupThreshold: 0.5, Shards: 64, Tracer: col2}
	m2.Discover(docs)
	if got := col2.Snapshot().Counters[obs.CtrMineShards]; got != int64(len(docs)) {
		t.Fatalf("clamped mine.shards = %d, want %d", got, len(docs))
	}
	// Serial path records neither.
	col3 := obs.NewCollector()
	m3 := &Miner{SupThreshold: 0.5, Tracer: col3}
	m3.Discover(docs)
	if got := col3.Snapshot().Counters[obs.CtrMineShards]; got != 0 {
		t.Fatalf("serial mine.shards = %d, want 0", got)
	}
}

// TestFreezeCachedAllocs pins the frozen path table cache: after the first
// Freeze, re-freezing an unmutated accumulator is a pointer return.
func TestFreezeCachedAllocs(t *testing.T) {
	a := NewAccumulator(0)
	for i, d := range corpus() {
		a.Add(i, d)
	}
	first := a.Freeze()
	if allocs := testing.AllocsPerRun(100, func() {
		if a.Freeze() != first {
			t.Fatal("cached Freeze returned a different table")
		}
	}); allocs != 0 {
		t.Errorf("cached Freeze: %v allocs/run, want 0", allocs)
	}
	// Mutation invalidates the cache.
	a.Add(3, Extract(treeA()))
	if a.Freeze() == first {
		t.Fatal("Freeze after Add returned the stale table")
	}
}

// TestFreezeTableShape checks the interned edges against the string-keyed
// ground truth.
func TestFreezeTableShape(t *testing.T) {
	a := NewAccumulator(0)
	for i, d := range corpus() {
		a.Add(i, d)
	}
	tab := a.Freeze()
	if tab.Len() != len(a.paths) {
		t.Fatalf("table len = %d, want %d", tab.Len(), len(a.paths))
	}
	for id := int32(0); id < int32(tab.Len()); id++ {
		p := tab.Path(id)
		if got := tab.labels[id]; got != LastLabel(p) {
			t.Fatalf("label[%s] = %q", p, got)
		}
		if par := tab.parent[id]; par >= 0 {
			if tab.Path(par) != ParentPath(p) {
				t.Fatalf("parent[%s] = %s, want %s", p, tab.Path(par), ParentPath(p))
			}
		} else if ParentPath(p) != "" {
			t.Fatalf("path %s should have a parent", p)
		}
		if tab.aggs[id] != a.paths[p] {
			t.Fatalf("agg[%s] not shared with accumulator", p)
		}
	}
	if len(tab.roots) != 1 || tab.Path(tab.roots[0]) != "resume" {
		t.Fatalf("roots = %v", tab.roots)
	}
}

// TestPosRatExactness drives posRat against a big.Rat reference through
// random fraction streams, including values that force the overflow spill,
// checking the represented rational is identical at every step.
func TestPosRatExactness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var p posRat
		ref := new(big.Rat)
		for step := 0; step < 40; step++ {
			var num, den int64
			if trial%3 == 0 && step%7 == 3 {
				// Huge co-prime-ish terms to force int64 overflow spills.
				num = (1 << 60) + r.Int63n(1000)
				den = (1 << 59) + 2*r.Int63n(1000) + 1
			} else {
				num = r.Int63n(50)
				den = 1 + r.Int63n(12)
			}
			p.addFrac(num, den)
			ref.Add(ref, new(big.Rat).SetFrac64(num, den))
			if p.rat().Cmp(ref) != 0 {
				t.Fatalf("trial %d step %d: posRat %s != ref %s (spilled=%v)",
					trial, step, p.rat(), ref, p.r != nil)
			}
		}
	}
}

// TestPosRatMergePaths checks addRat across all representation pairs
// (small+small, small+big, big+small, big+big) and setRat restore.
func TestPosRatMergePaths(t *testing.T) {
	small := func(n, d int64) *posRat { p := &posRat{}; p.addFrac(n, d); return p }
	spilled := func(n, d int64) *posRat { p := small(n, d); p.spill(); return p }
	cases := []struct{ a, b *posRat }{
		{small(1, 3), small(1, 6)},
		{small(1, 3), spilled(1, 6)},
		{spilled(1, 3), small(1, 6)},
		{spilled(1, 3), spilled(1, 6)},
		{&posRat{}, small(2, 5)},
		{small(2, 5), &posRat{}},
	}
	for i, c := range cases {
		want := new(big.Rat).Add(c.a.rat(), c.b.rat())
		c.a.addRat(c.b)
		if c.a.rat().Cmp(want) != 0 {
			t.Fatalf("case %d: got %s want %s", i, c.a.rat(), want)
		}
	}
	var p posRat
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	p.setRat(huge)
	if p.r == nil || p.rat().Cmp(huge) != 0 {
		t.Fatalf("setRat huge: %s (spilled=%v)", p.rat(), p.r != nil)
	}
	var q posRat
	q.setRat(new(big.Rat).SetFrac64(7, 2))
	if q.r != nil || q.num != 7 || q.den != 2 {
		t.Fatalf("setRat small: %+v", q)
	}
}

// BenchmarkMineParallel measures the sharded fold+mine over a corpus big
// enough for the fan-out to pay (same doc mix as BenchmarkDiscover).
func BenchmarkMineParallel(b *testing.B) {
	docs := bigCorpus(303)
	m := &Miner{SupThreshold: 0.5, RatioThreshold: 0.1, Shards: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Discover(docs)
		if len(s.Roots) == 0 {
			b.Fatal("empty schema")
		}
	}
}
