package schema

import (
	"encoding/json"
	"fmt"
	"math/big"
	"sort"
)

// The accumulator's JSON codec serializes the exact mergeable statistics —
// big.Rat position sums as numerator/denominator strings, sequence samples
// with their corpus-index tags — so a streaming build can snapshot its
// per-worker accumulators to a checkpoint and a resumed build can restore
// them losslessly. Paths marshal in sorted order, making the encoding
// deterministic for golden comparisons.

// accJSON is the wire form of an Accumulator.
type accJSON struct {
	Rep   int        `json:"rep"`
	Docs  int        `json:"docs"`
	Delta bool       `json:"delta,omitempty"`
	Paths []pathJSON `json:"paths,omitempty"`
}

// pathJSON is the wire form of one path's aggregate.
type pathJSON struct {
	Path    string        `json:"path"`
	Docs    int           `json:"docs"`
	PosNum  string        `json:"pos_num,omitempty"`
	PosDen  string        `json:"pos_den,omitempty"`
	PosDocs int           `json:"pos_docs,omitempty"`
	RepDocs int           `json:"rep_docs,omitempty"`
	Seqs    []docSeqsJSON `json:"seqs,omitempty"`
}

// docSeqsJSON is the wire form of one document's sequence sample.
type docSeqsJSON struct {
	Doc  int        `json:"doc"`
	Seqs [][]string `json:"seqs"`
}

// MarshalJSON encodes the accumulator's full state deterministically
// (paths sorted, sequence samples sorted by corpus index).
func (a *Accumulator) MarshalJSON() ([]byte, error) {
	out := accJSON{Rep: a.rep, Docs: a.docs, Delta: a.delta}
	keys := make([]string, 0, len(a.paths))
	for p := range a.paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		g := a.paths[p]
		pj := pathJSON{
			Path:    p,
			Docs:    g.docs,
			PosDocs: g.posDocs,
			RepDocs: g.repDocs,
		}
		if g.posSum.present() {
			r := g.posSum.rat()
			pj.PosNum = r.Num().String()
			pj.PosDen = r.Denom().String()
		}
		seqs := append([]docSeqs(nil), g.seqs...)
		sort.Slice(seqs, func(i, j int) bool { return seqs[i].doc < seqs[j].doc })
		for _, ds := range seqs {
			pj.Seqs = append(pj.Seqs, docSeqsJSON{Doc: ds.doc, Seqs: ds.seqs})
		}
		out.Paths = append(out.Paths, pj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores an accumulator from its MarshalJSON encoding. The
// restored accumulator merges and mines identically to the original.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var in accJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("schema: accumulator decode: %w", err)
	}
	if in.Rep <= 0 {
		return fmt.Errorf("schema: accumulator decode: invalid repetition threshold %d", in.Rep)
	}
	a.rep = in.Rep
	a.docs = in.Docs
	a.delta = in.Delta
	a.table = nil
	a.paths = make(map[string]*pathAgg, len(in.Paths))
	for _, pj := range in.Paths {
		g := &pathAgg{
			docs:    pj.Docs,
			posDocs: pj.PosDocs,
			repDocs: pj.RepDocs,
		}
		if pj.PosNum != "" {
			num, ok := new(big.Int).SetString(pj.PosNum, 10)
			if !ok {
				return fmt.Errorf("schema: accumulator decode: bad position numerator %q", pj.PosNum)
			}
			den, ok := new(big.Int).SetString(pj.PosDen, 10)
			if !ok || den.Sign() == 0 {
				return fmt.Errorf("schema: accumulator decode: bad position denominator %q", pj.PosDen)
			}
			g.posSum.setRat(new(big.Rat).SetFrac(num, den))
		}
		for _, ds := range pj.Seqs {
			g.seqs = append(g.seqs, docSeqs{doc: ds.Doc, seqs: ds.Seqs})
			g.nseqs += len(ds.Seqs)
		}
		a.paths[pj.Path] = g
	}
	return nil
}
