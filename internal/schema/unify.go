package schema

import "sort"

// Unify merges similarly structured sibling components of a discovered
// schema — the optional refinement §3.2 mentions ("similarly structured
// components in a schema discovered by this approach can be further
// unified", detailed in the thesis the paper cites). Heterogeneous
// authoring splits one logical component across variants (an education
// entry headed by its date in some documents and by its institution in
// others); when two sibling subtrees share at least simThreshold of their
// descendant labels (Jaccard similarity), the lower-support variant is
// folded into the higher-support one.
//
// The merge unions child sets recursively, adds supports (capping at the
// parent's support, since document sets may overlap), and keeps the
// dominant variant's label and ordering statistics. Unify returns the
// number of merges performed; the schema is modified in place.
func Unify(s *Schema, simThreshold float64) int {
	if simThreshold <= 0 || simThreshold > 1 {
		simThreshold = 0.5
	}
	merges := 0
	for _, r := range s.Roots {
		merges += unifyNode(r, r.Support, simThreshold)
	}
	return merges
}

func unifyNode(n *Node, parentSup float64, threshold float64) int {
	merges := 0
	// Children first, so similarity is judged on settled subtrees.
	for _, c := range n.Children {
		merges += unifyNode(c, c.Support, threshold)
	}
	for {
		i, j := findSimilarPair(n.Children, threshold)
		if i < 0 {
			break
		}
		a, b := n.Children[i], n.Children[j]
		if b.Support > a.Support {
			a, b = b, a
		}
		mergeInto(a, b, parentSup)
		// Remove b.
		out := n.Children[:0]
		for _, c := range n.Children {
			if c != b {
				out = append(out, c)
			}
		}
		n.Children = out
		merges++
	}
	if merges > 0 {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].AvgPos < n.Children[j].AvgPos
		})
	}
	return merges
}

// findSimilarPair returns the first pair of distinct-label siblings whose
// descendant label sets are at least threshold-similar, or (-1, -1).
// Same-label siblings cannot occur (children are keyed by label).
func findSimilarPair(children []*Node, threshold float64) (int, int) {
	for i := 0; i < len(children); i++ {
		for j := i + 1; j < len(children); j++ {
			if jaccard(labelSet(children[i]), labelSet(children[j])) >= threshold {
				return i, j
			}
		}
	}
	return -1, -1
}

// labelSet collects the labels of a node's descendants plus its own label.
func labelSet(n *Node) map[string]bool {
	set := make(map[string]bool)
	var walk func(m *Node)
	walk = func(m *Node) {
		set[m.Label] = true
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return set
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// mergeInto folds variant b into the dominant variant a.
func mergeInto(a, b *Node, parentSup float64) {
	a.Support += b.Support
	if parentSup > 0 && a.Support > parentSup {
		a.Support = parentSup
	}
	a.Ratio = 1
	if parentSup > 0 {
		a.Ratio = a.Support / parentSup
	}
	if b.RepFrac > a.RepFrac {
		a.RepFrac = b.RepFrac
	}
	for _, bc := range b.Children {
		if bc.Label == a.Label {
			// The variant's head appears as the dominant head's child (the
			// roles were swapped across documents); merge its children up.
			mergeChildren(a, bc)
			continue
		}
		mergeChild(a, bc)
	}
	rewritePaths(a, ParentPath(a.Path))
}

func mergeChildren(a, b *Node) {
	for _, bc := range b.Children {
		if bc.Label == a.Label {
			mergeChildren(a, bc)
			continue
		}
		mergeChild(a, bc)
	}
}

func mergeChild(a *Node, bc *Node) {
	for _, ac := range a.Children {
		if ac.Label == bc.Label {
			ac.Support += bc.Support
			if ac.Support > a.Support {
				ac.Support = a.Support
			}
			ac.Ratio = ac.Support / a.Support
			if bc.RepFrac > ac.RepFrac {
				ac.RepFrac = bc.RepFrac
			}
			mergeChildren(ac, bc)
			return
		}
	}
	a.Children = append(a.Children, bc)
}

// rewritePaths fixes the Path fields of a subtree after re-parenting.
func rewritePaths(n *Node, parent string) {
	if parent == "" {
		n.Path = n.Label
	} else {
		n.Path = parent + Sep + n.Label
	}
	for _, c := range n.Children {
		rewritePaths(c, n.Path)
	}
}
