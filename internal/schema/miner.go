package schema

import (
	"fmt"
	"sort"
	"strings"

	"webrev/internal/concept"
	"webrev/internal/obs"
)

// DefaultRepThreshold is the sibling count above which an element counts as
// repetitive in a document; "empirical studies prove the value 3 to be
// useful" (§3.3, citing the same observation in XTRACT).
const DefaultRepThreshold = 3

// DefaultMultThreshold is the fraction of documents that must show
// repetition for an element to be declared e+ in the DTD (§3.3 uses 0.5).
const DefaultMultThreshold = 0.5

// Miner discovers the majority schema — the set of frequent label paths —
// from a corpus of path-reduced XML documents.
type Miner struct {
	// SupThreshold is the minimum document-frequency support a path must
	// reach to be frequent (§3.2).
	SupThreshold float64
	// RatioThreshold is the minimum supportRatio(p) =
	// support(p)/support(parent(p)); it keeps deep paths whose absolute
	// support naturally decays (§3.2).
	RatioThreshold float64
	// RepThreshold and MultThreshold parameterize the repetition rule used
	// later by DTD derivation; recorded per schema node here because the
	// statistics live in the miner's input. Defaults applied when zero.
	RepThreshold  int
	MultThreshold float64
	// Constraints and Set, when non-nil, prune the path search space before
	// support is even consulted (§4.2).
	Constraints *concept.Constraints
	Set         *concept.Set
	// Tracer, when non-nil, times Discover under obs.StageMine and records
	// the explored/pruned/frequent path counters.
	Tracer obs.Tracer
}

// Node is one node of the discovered majority schema tree TF.
type Node struct {
	Label    string
	Path     string  // Sep-joined path from the root label
	Support  float64 // document frequency of Path
	Ratio    float64 // supportRatio of Path
	AvgPos   float64 // mean child position across documents (ordering rule)
	RepFrac  float64 // fraction of containing docs where the node repeats
	Children []*Node
	// Seqs samples the child-label sequences observed for this node across
	// documents (capped), enabling repetitive group-pattern discovery in
	// DTD derivation.
	Seqs [][]string
}

// maxSeqSamples bounds the per-node sequence sample kept for group-pattern
// detection.
const maxSeqSamples = 256

// Schema is the result of discovery: the majority schema tree plus the
// exploration statistics reported in §4.2.
type Schema struct {
	Roots []*Node // one per distinct root label (normally exactly one)
	// Explored counts candidate paths tested against the corpus (only paths
	// with non-zero support are ever generated, matching the paper's "73
	// nodes explored").
	Explored int
	// Pruned counts candidates rejected by constraints before support
	// testing.
	Pruned int
	// Docs is the corpus size |D_XML|.
	Docs int
}

// Discover mines the majority schema from the corpus. It never fails; an
// empty corpus yields an empty schema.
func (m *Miner) Discover(docs []*DocPaths) *Schema {
	tr := obs.OrNop(m.Tracer)
	sp := tr.StartSpan(obs.StageMine)
	defer sp.End()
	rep := m.RepThreshold
	if rep <= 0 {
		rep = DefaultRepThreshold
	}
	s := &Schema{Docs: len(docs)}
	if len(docs) == 0 {
		return s
	}
	defer func() {
		if tr.Enabled() {
			tr.Add(obs.CtrPathsExplored, int64(s.Explored))
			tr.Add(obs.CtrPathsPruned, int64(s.Pruned))
			tr.Add(obs.CtrPathsFrequent, int64(s.CountNodes()))
		}
	}()
	n := float64(len(docs))

	// Document frequency per path, computed once. DocPaths.Paths is
	// prefix-closed by construction, so freq is antitone along prefixes.
	freq := make(map[string]int)
	for _, d := range docs {
		for p := range d.Paths {
			freq[p]++
		}
	}
	// Child labels per path, from the union trie.
	children := make(map[string]map[string]bool)
	rootLabels := make(map[string]bool)
	for p := range freq {
		parent := ParentPath(p)
		if parent == "" {
			rootLabels[p] = true
			continue
		}
		cs := children[parent]
		if cs == nil {
			cs = make(map[string]bool)
			children[parent] = cs
		}
		cs[LastLabel(p)] = true
	}

	var build func(path string, parentSup float64, depth int) *Node
	build = func(path string, parentSup float64, depth int) *Node {
		if m.Constraints != nil {
			labels := Split(path)
			// The root label (document type, e.g. "resume") is not a
			// concept; constraints apply to the concept path below it.
			if len(labels) > 1 {
				if !m.Constraints.AllowPath(labels[1:], m.Set) {
					s.Pruned++
					return nil
				}
			}
		}
		s.Explored++
		sup := float64(freq[path]) / n
		ratio := 1.0
		if parentSup > 0 {
			ratio = sup / parentSup
		}
		if sup < m.SupThreshold || ratio < m.RatioThreshold {
			return nil
		}
		node := &Node{
			Label:   LastLabel(path),
			Path:    path,
			Support: sup,
			Ratio:   ratio,
		}
		// Aggregate ordering and repetition statistics over containing docs.
		posSum, posN, repDocs, contain := 0.0, 0, 0, 0
		for _, d := range docs {
			if !d.Paths[path] {
				continue
			}
			contain++
			if ap, ok := d.AvgPos(path); ok {
				posSum += ap
				posN++
			}
			if d.Mult[path] >= rep {
				repDocs++
			}
			for _, seq := range d.ChildSeqs[path] {
				if len(node.Seqs) < maxSeqSamples {
					node.Seqs = append(node.Seqs, seq)
				}
			}
		}
		if posN > 0 {
			node.AvgPos = posSum / float64(posN)
		}
		if contain > 0 {
			node.RepFrac = float64(repDocs) / float64(contain)
		}
		var labels []string
		for l := range children[path] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			if c := build(path+Sep+l, sup, depth+1); c != nil {
				node.Children = append(node.Children, c)
			}
		}
		// Ordering rule (§3.3): child elements ordered by average position.
		sort.SliceStable(node.Children, func(i, j int) bool {
			return node.Children[i].AvgPos < node.Children[j].AvgPos
		})
		return node
	}

	var roots []string
	for r := range rootLabels {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		if node := build(r, 0, 0); node != nil {
			s.Roots = append(s.Roots, node)
		}
	}
	return s
}

// Root returns the schema's single root, or nil when the corpus was empty
// or had no frequent root.
func (s *Schema) Root() *Node {
	if len(s.Roots) == 0 {
		return nil
	}
	return s.Roots[0]
}

// Paths returns every frequent path in the schema, sorted.
func (s *Schema) Paths() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Path)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range s.Roots {
		walk(r)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether the schema includes the given path.
func (s *Schema) Contains(path string) bool {
	labels := Split(path)
	for _, r := range s.Roots {
		if r.Label != labels[0] {
			continue
		}
		n := r
		ok := true
		for _, l := range labels[1:] {
			var next *Node
			for _, c := range n.Children {
				if c.Label == l {
					next = c
					break
				}
			}
			if next == nil {
				ok = false
				break
			}
			n = next
		}
		if ok {
			return true
		}
	}
	return false
}

// CountNodes returns the number of nodes in the schema tree.
func (s *Schema) CountNodes() int {
	n := 0
	var walk func(*Node)
	walk = func(x *Node) {
		n++
		for _, c := range x.Children {
			walk(c)
		}
	}
	for _, r := range s.Roots {
		walk(r)
	}
	return n
}

// String renders the schema tree with support annotations.
func (s *Schema) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s (sup=%.2f ratio=%.2f rep=%.2f pos=%.2f)\n",
			strings.Repeat("  ", depth), n.Label, n.Support, n.Ratio, n.RepFrac, n.AvgPos)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range s.Roots {
		walk(r, 0)
	}
	return b.String()
}
