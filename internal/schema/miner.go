package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"webrev/internal/concept"
	"webrev/internal/obs"
)

// DefaultRepThreshold is the sibling count above which an element counts as
// repetitive in a document; "empirical studies prove the value 3 to be
// useful" (§3.3, citing the same observation in XTRACT).
const DefaultRepThreshold = 3

// DefaultMultThreshold is the fraction of documents that must show
// repetition for an element to be declared e+ in the DTD (§3.3 uses 0.5).
const DefaultMultThreshold = 0.5

// Miner discovers the majority schema — the set of frequent label paths —
// from a corpus of path-reduced XML documents.
type Miner struct {
	// SupThreshold is the minimum document-frequency support a path must
	// reach to be frequent (§3.2).
	SupThreshold float64
	// RatioThreshold is the minimum supportRatio(p) =
	// support(p)/support(parent(p)); it keeps deep paths whose absolute
	// support naturally decays (§3.2).
	RatioThreshold float64
	// RepThreshold parameterizes the repetition rule used later by DTD
	// derivation; recorded per schema node here because the statistics live
	// in the miner's input. Default applied when zero.
	RepThreshold int
	// MultThreshold is the fraction of containing documents in which a node
	// must repeat for the repetition rule to mark it (default when zero).
	MultThreshold float64
	// Constraints, when non-nil, prunes the path search space before
	// support is even consulted (§4.2).
	Constraints *concept.Constraints
	// Set, when non-nil, supplies the concept vocabulary Constraints
	// validates against.
	Set *concept.Set
	// Tracer, when non-nil, times Discover under obs.StageMine and records
	// the explored/pruned/frequent path counters.
	Tracer obs.Tracer
	// Shards > 1 makes Discover fold the corpus in parallel: each of
	// Shards workers folds a stride of the document slice into its own
	// Accumulator (the per-worker shard pattern of core.BuildStream), the
	// shards merge in shard order, and the merged summary is mined. Merge
	// is exactly commutative and associative, so the result is
	// byte-identical to the serial fold — pinned by the parallel-miner
	// equivalence tests. Zero or one keeps the serial fold.
	Shards int
}

// Node is one node of the discovered majority schema tree TF.
type Node struct {
	// Label is the node's element label (the last path segment).
	Label   string
	Path    string  // Sep-joined path from the root label
	Support float64 // document frequency of Path
	Ratio   float64 // supportRatio of Path
	AvgPos  float64 // mean child position across documents (ordering rule)
	RepFrac float64 // fraction of containing docs where the node repeats
	// Children holds the node's frequent children, ordered by AvgPos.
	Children []*Node
	// Seqs samples the child-label sequences observed for this node across
	// documents (capped), enabling repetitive group-pattern discovery in
	// DTD derivation.
	Seqs [][]string
}

// maxSeqSamples bounds the per-node sequence sample kept for group-pattern
// detection.
const maxSeqSamples = 256

// Schema is the result of discovery: the majority schema tree plus the
// exploration statistics reported in §4.2.
type Schema struct {
	Roots []*Node // one per distinct root label (normally exactly one)
	// Explored counts candidate paths tested against the corpus (only paths
	// with non-zero support are ever generated, matching the paper's "73
	// nodes explored").
	Explored int
	// Pruned counts candidates rejected by constraints before support
	// testing.
	Pruned int
	// Docs is the corpus size |D_XML|.
	Docs int
}

// Discover mines the majority schema from the corpus. It never fails; an
// empty corpus yields an empty schema. It is equivalent to folding every
// document into one Accumulator in slice order and mining the summary with
// DiscoverStats — which is exactly what it does, so the batch and streaming
// build paths share a single mining implementation.
func (m *Miner) Discover(docs []*DocPaths) *Schema {
	w := m.Shards
	if w > len(docs) {
		w = len(docs)
	}
	if w <= 1 {
		a := NewAccumulator(m.RepThreshold)
		for i, d := range docs {
			a.Add(i, d)
		}
		return m.DiscoverStats(a)
	}
	tr := obs.OrNop(m.Tracer)
	sp := tr.StartSpan(obs.StageMineFold)
	shards := make([]*Accumulator, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			acc := NewAccumulator(m.RepThreshold)
			for i := k; i < len(docs); i += w {
				acc.Add(i, docs[i])
			}
			shards[k] = acc
		}(k)
	}
	wg.Wait()
	a := shards[0]
	for _, b := range shards[1:] {
		if err := a.Merge(b); err != nil {
			// Unreachable: every shard was built with m.RepThreshold.
			panic(err)
		}
	}
	sp.End()
	if tr.Enabled() {
		tr.Add(obs.CtrMineShards, int64(w))
	}
	return m.DiscoverStats(a)
}

// DiscoverStats mines the majority schema from accumulated corpus
// statistics — the summary any merge tree of per-shard Accumulators
// produces. It never fails; an empty accumulator yields an empty schema.
func (m *Miner) DiscoverStats(a *Accumulator) *Schema {
	tr := obs.OrNop(m.Tracer)
	sp := tr.StartSpan(obs.StageMine)
	defer sp.End()
	s := &Schema{Docs: a.Docs()}
	if a.Docs() == 0 {
		return s
	}
	defer func() {
		if tr.Enabled() {
			tr.Add(obs.CtrPathsExplored, int64(s.Explored))
			tr.Add(obs.CtrPathsPruned, int64(s.Pruned))
			tr.Add(obs.CtrPathsFrequent, int64(s.CountNodes()))
		}
	}()
	n := float64(a.Docs())

	// Mine over the frozen interned path table: parent/child edges and
	// last labels are resolved once per accumulator generation instead of
	// rebuilding a children map and "parent/label" keys per call. The
	// candidate order (children in label order, roots in label order) is
	// exactly the unfrozen miner's, so Explored/Pruned and the schema are
	// unchanged. DocPaths.Paths is prefix-closed by construction, so the
	// accumulated document frequency is antitone along prefixes.
	t := a.Freeze()

	// The DFS keeps the label stack of the current path, so constraint
	// checks need no Split allocation. The root label (document type,
	// e.g. "resume") is not a concept; constraints apply to the concept
	// path below it (stack[1:]).
	stack := make([]string, 0, 16)
	var build func(id int32, parentSup float64) *Node
	build = func(id int32, parentSup float64) *Node {
		stack = append(stack, t.labels[id])
		defer func() { stack = stack[:len(stack)-1] }()
		if m.Constraints != nil && len(stack) > 1 {
			if !m.Constraints.AllowPath(stack[1:], m.Set) {
				s.Pruned++
				return nil
			}
		}
		s.Explored++
		ag := t.aggs[id]
		contain := ag.docs
		sup := float64(contain) / n
		ratio := 1.0
		if parentSup > 0 {
			ratio = sup / parentSup
		}
		if sup < m.SupThreshold || ratio < m.RatioThreshold {
			return nil
		}
		node := &Node{
			Label:   t.labels[id],
			Path:    t.paths[id],
			Support: sup,
			Ratio:   ratio,
		}
		// Ordering and repetition statistics were aggregated at fold time.
		if ap, ok := ag.avgPos(); ok {
			node.AvgPos = ap
		}
		if contain > 0 {
			node.RepFrac = float64(ag.repDocs) / float64(contain)
		}
		node.Seqs = ag.sample()
		for _, c := range t.children[id] {
			if cn := build(c, sup); cn != nil {
				node.Children = append(node.Children, cn)
			}
		}
		// Ordering rule (§3.3): child elements ordered by average position.
		sort.SliceStable(node.Children, func(i, j int) bool {
			return node.Children[i].AvgPos < node.Children[j].AvgPos
		})
		return node
	}

	for _, r := range t.roots {
		if node := build(r, 0); node != nil {
			s.Roots = append(s.Roots, node)
		}
	}
	return s
}

// Root returns the schema's single root, or nil when the corpus was empty
// or had no frequent root.
func (s *Schema) Root() *Node {
	if len(s.Roots) == 0 {
		return nil
	}
	return s.Roots[0]
}

// Paths returns every frequent path in the schema, sorted.
func (s *Schema) Paths() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Path)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range s.Roots {
		walk(r)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether the schema includes the given path.
func (s *Schema) Contains(path string) bool {
	labels := Split(path)
	for _, r := range s.Roots {
		if r.Label != labels[0] {
			continue
		}
		n := r
		ok := true
		for _, l := range labels[1:] {
			var next *Node
			for _, c := range n.Children {
				if c.Label == l {
					next = c
					break
				}
			}
			if next == nil {
				ok = false
				break
			}
			n = next
		}
		if ok {
			return true
		}
	}
	return false
}

// CountNodes returns the number of nodes in the schema tree.
func (s *Schema) CountNodes() int {
	n := 0
	var walk func(*Node)
	walk = func(x *Node) {
		n++
		for _, c := range x.Children {
			walk(c)
		}
	}
	for _, r := range s.Roots {
		walk(r)
	}
	return n
}

// String renders the schema tree with support annotations.
func (s *Schema) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s (sup=%.2f ratio=%.2f rep=%.2f pos=%.2f)\n",
			strings.Repeat("  ", depth), n.Label, n.Support, n.Ratio, n.RepFrac, n.AvgPos)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range s.Roots {
		walk(r, 0)
	}
	return b.String()
}
