package schema

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"webrev/internal/concept"
	"webrev/internal/dom"
)

// el builds an element tree tersely.
func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

// The three trees of the paper's Figure 2 (reconstructed).
func treeA() *dom.Node {
	return el("resume",
		el("objective"),
		el("contact"),
		el("education", el("degree"), el("date"), el("institution")),
	)
}

func treeB() *dom.Node {
	return el("resume",
		el("contact"),
		el("education", el("degree"), el("date")),
	)
}

func treeC() *dom.Node {
	return el("resume",
		el("education", el("institution"), el("degree"), el("date"), el("date")),
	)
}

func corpus() []*DocPaths {
	return []*DocPaths{Extract(treeA()), Extract(treeB()), Extract(treeC())}
}

func TestExtractPaths(t *testing.T) {
	d := Extract(treeA())
	want := []string{
		"resume",
		"resume/contact",
		"resume/education",
		"resume/education/date",
		"resume/education/degree",
		"resume/education/institution",
		"resume/objective",
	}
	if got := d.SortedPaths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v", got)
	}
	if d.Nodes != 7 {
		t.Fatalf("nodes = %d", d.Nodes)
	}
}

func TestExtractMultiplicity(t *testing.T) {
	d := Extract(treeC())
	if d.Mult["resume/education/date"] != 2 {
		t.Fatalf("date mult = %d", d.Mult["resume/education/date"])
	}
	if d.Mult["resume/education/degree"] != 1 {
		t.Fatalf("degree mult = %d", d.Mult["resume/education/degree"])
	}
	if d.Mult["resume"] != 1 {
		t.Fatalf("root mult = %d", d.Mult["resume"])
	}
}

func TestExtractPositions(t *testing.T) {
	d := Extract(treeA())
	if p, ok := d.AvgPos("resume/objective"); !ok || p != 0 {
		t.Fatalf("objective pos = %v,%v", p, ok)
	}
	if p, _ := d.AvgPos("resume/education"); p != 2 {
		t.Fatalf("education pos = %v", p)
	}
	if _, ok := d.AvgPos("resume/nothere"); ok {
		t.Fatal("missing path should report !ok")
	}
	// Averaged positions: treeC has two dates at positions 2 and 3.
	c := Extract(treeC())
	if p, _ := c.AvgPos("resume/education/date"); p != 2.5 {
		t.Fatalf("date avg pos = %v", p)
	}
}

func TestPathHelpers(t *testing.T) {
	if ParentPath("a/b/c") != "a/b" || ParentPath("a") != "" {
		t.Fatal("ParentPath broken")
	}
	if LastLabel("a/b/c") != "c" || LastLabel("a") != "a" {
		t.Fatal("LastLabel broken")
	}
	if Join(Split("a/b/c")) != "a/b/c" {
		t.Fatal("Join/Split broken")
	}
}

func TestDiscoverSupports(t *testing.T) {
	m := &Miner{SupThreshold: 0.6, RatioThreshold: 0}
	s := m.Discover(corpus())
	if s.Docs != 3 {
		t.Fatalf("docs = %d", s.Docs)
	}
	root := s.Root()
	if root == nil || root.Label != "resume" || root.Support != 1 {
		t.Fatalf("root = %+v", root)
	}
	want := []string{
		"resume",
		"resume/contact",
		"resume/education",
		"resume/education/date",
		"resume/education/degree",
		"resume/education/institution",
	}
	if got := s.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v", got)
	}
	if s.Contains("resume/objective") {
		t.Fatal("objective (support 1/3) must not be frequent at 0.6")
	}
	// Exact support values.
	var find func(n *Node, path string) *Node
	find = func(n *Node, path string) *Node {
		if n.Path == path {
			return n
		}
		for _, c := range n.Children {
			if f := find(c, path); f != nil {
				return f
			}
		}
		return nil
	}
	inst := find(root, "resume/education/institution")
	if math.Abs(inst.Support-2.0/3.0) > 1e-9 {
		t.Fatalf("institution support = %v", inst.Support)
	}
	if math.Abs(inst.Ratio-2.0/3.0) > 1e-9 {
		t.Fatalf("institution ratio = %v (education support is 1)", inst.Ratio)
	}
}

func TestDiscoverLowThresholdIsDataGuide(t *testing.T) {
	// supThreshold ~ 0 keeps every path: upper-bound behaviour.
	m := &Miner{SupThreshold: 0.0001, RatioThreshold: 0}
	s := m.Discover(corpus())
	if !s.Contains("resume/objective") {
		t.Fatal("low threshold must include rare paths")
	}
	if got := len(s.Paths()); got != 7 {
		t.Fatalf("paths = %d", got)
	}
}

func TestDiscoverThresholdOneIsLowerBound(t *testing.T) {
	m := &Miner{SupThreshold: 1.0, RatioThreshold: 0}
	s := m.Discover(corpus())
	want := []string{
		"resume",
		"resume/education",
		"resume/education/date",
		"resume/education/degree",
	}
	if got := s.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v", got)
	}
}

func TestDiscoverRatioThreshold(t *testing.T) {
	// institution has ratio 2/3 under education; a ratio threshold of 0.7
	// should cut it even at a low support threshold.
	m := &Miner{SupThreshold: 0.1, RatioThreshold: 0.7}
	s := m.Discover(corpus())
	if s.Contains("resume/education/institution") {
		t.Fatal("ratio threshold not applied")
	}
	if !s.Contains("resume/education/degree") {
		t.Fatal("degree (ratio 1) must stay")
	}
}

func TestDiscoverOrderingRule(t *testing.T) {
	m := &Miner{SupThreshold: 0.5, RatioThreshold: 0}
	s := m.Discover(corpus())
	root := s.Root()
	var labels []string
	for _, c := range root.Children {
		labels = append(labels, c.Label)
	}
	// contact precedes education in both docs containing it.
	if got := strings.Join(labels, " "); got != "contact education" {
		t.Fatalf("order = %q", got)
	}
}

func TestDiscoverRepetition(t *testing.T) {
	m := &Miner{SupThreshold: 0.5, RatioThreshold: 0, RepThreshold: 2}
	s := m.Discover(corpus())
	var date *Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Path == "resume/education/date" {
			date = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s.Root())
	if date == nil {
		t.Fatal("date missing")
	}
	if math.Abs(date.RepFrac-1.0/3.0) > 1e-9 {
		t.Fatalf("date rep fraction = %v, want 1/3", date.RepFrac)
	}
}

func TestDiscoverEmptyCorpus(t *testing.T) {
	m := &Miner{SupThreshold: 0.5}
	s := m.Discover(nil)
	if s.Root() != nil || s.CountNodes() != 0 {
		t.Fatalf("empty corpus schema = %+v", s)
	}
}

func TestDiscoverConstraintPruning(t *testing.T) {
	set := concept.MustSet(
		concept.Concept{Name: "education", Role: concept.RoleTitle},
		concept.Concept{Name: "contact", Role: concept.RoleTitle},
		concept.Concept{Name: "objective", Role: concept.RoleTitle},
		concept.Concept{Name: "degree", Role: concept.RoleContent},
		concept.Concept{Name: "date", Role: concept.RoleContent},
		concept.Concept{Name: "institution", Role: concept.RoleContent},
	)
	// Poison the corpus with a doc that nests education under education.
	bad := el("resume", el("education", el("education", el("degree"))))
	docs := append(corpus(), Extract(bad), Extract(bad), Extract(bad))
	unconstrained := (&Miner{SupThreshold: 0.4}).Discover(docs)
	if !unconstrained.Contains("resume/education/education") {
		t.Fatal("setup: nested education should be frequent without constraints")
	}
	m := &Miner{SupThreshold: 0.4, Constraints: concept.ResumeConstraints(), Set: set}
	s := m.Discover(docs)
	if s.Contains("resume/education/education") {
		t.Fatal("constraints must prune repeated concept on path")
	}
	if s.Pruned == 0 {
		t.Fatal("pruning not counted")
	}
	if s.Explored >= unconstrained.Explored {
		t.Fatalf("constraints should reduce exploration: %d vs %d", s.Explored, unconstrained.Explored)
	}
}

func TestExploredCountsOnlyNonZeroSupport(t *testing.T) {
	m := &Miner{SupThreshold: 0.5}
	s := m.Discover(corpus())
	// The union trie has exactly 7 paths; nothing else is ever generated.
	if s.Explored != 7 {
		t.Fatalf("explored = %d, want 7", s.Explored)
	}
}

func TestSchemaString(t *testing.T) {
	s := (&Miner{SupThreshold: 0.5}).Discover(corpus())
	out := s.String()
	for _, want := range []string{"resume", "education", "sup=1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String missing %q:\n%s", want, out)
		}
	}
}

func TestPropertySupportAntitoneAndPrefixClosed(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	gen := func(r *rand.Rand) *dom.Node {
		root := el("resume")
		nodes := []*dom.Node{root}
		for i := 0; i < 3+r.Intn(12); i++ {
			p := nodes[r.Intn(len(nodes))]
			if p.Depth() > 3 {
				continue
			}
			c := el(tags[r.Intn(len(tags))])
			p.AppendChild(c)
			nodes = append(nodes, c)
		}
		return root
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var docs []*DocPaths
		for i := 0; i < 2+r.Intn(6); i++ {
			docs = append(docs, Extract(gen(r)))
		}
		m := &Miner{SupThreshold: 0.3 + r.Float64()*0.5, RatioThreshold: r.Float64() * 0.5}
		s := m.Discover(docs)
		// Frequent path set must be prefix-closed, and support antitone.
		seen := map[string]float64{}
		var walk func(n *Node) bool
		walk = func(n *Node) bool {
			seen[n.Path] = n.Support
			parent := ParentPath(n.Path)
			if parent != "" {
				ps, ok := seen[parent]
				if !ok || n.Support > ps+1e-12 {
					return false
				}
			}
			for _, c := range n.Children {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		for _, root := range s.Roots {
			if !walk(root) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtract(b *testing.B) {
	tr := treeA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(tr)
	}
}

func BenchmarkDiscover(b *testing.B) {
	docs := corpus()
	for i := 0; i < 100; i++ {
		docs = append(docs, Extract(treeA()), Extract(treeB()), Extract(treeC()))
	}
	m := &Miner{SupThreshold: 0.5, RatioThreshold: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Discover(docs)
	}
}

func TestExtractChildSeqs(t *testing.T) {
	d := Extract(treeC())
	seqs := d.ChildSeqs["resume/education"]
	if len(seqs) != 1 {
		t.Fatalf("seqs = %v", seqs)
	}
	want := []string{"institution", "degree", "date", "date"}
	if !reflect.DeepEqual(seqs[0], want) {
		t.Fatalf("seq = %v, want %v", seqs[0], want)
	}
	if len(d.ChildSeqs["resume/education/date"]) != 0 {
		t.Fatal("leaf should record no child sequences")
	}
}

func TestMinerAggregatesSeqs(t *testing.T) {
	m := &Miner{SupThreshold: 0.5}
	s := m.Discover(corpus())
	var edu *Node
	for _, c := range s.Root().Children {
		if c.Label == "education" {
			edu = c
		}
	}
	if edu == nil || len(edu.Seqs) != 3 {
		t.Fatalf("education seqs = %+v", edu)
	}
}
