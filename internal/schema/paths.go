// Package schema implements majority schema discovery over XML documents
// (paper §3): label-path extraction with multiplicity and position
// recording, and the frequent-path miner driven by support and support
// ratio thresholds, optionally pruned by concept constraints.
package schema

import (
	"sort"
	"strings"

	"webrev/internal/dom"
	"webrev/internal/obs"
)

// Sep joins path components in string keys. Concept names never contain it.
const Sep = "/"

// DocPaths is the path representation of one XML document (§3.2): the set
// of label paths emanating from the root, plus the multiplicity ⟨p,num⟩ and
// child-position statistics needed later by the DTD derivation rules.
type DocPaths struct {
	// Paths holds every label path prefix present in the document, keyed by
	// the Sep-joined label sequence including the root label.
	Paths map[string]bool
	// Mult maps a path to the maximum number of like-labeled siblings any
	// node with that label path has (⟨p,num⟩ of §3.2, max over occurrences).
	Mult map[string]int
	// PosSum accumulates the child positions (index among element children
	// of the parent) of nodes with each label path; divided by PosCount it
	// feeds the ordering rule (§3.3).
	PosSum map[string]float64
	// PosCount counts the occurrences PosSum accumulated per path.
	PosCount map[string]int
	// ChildSeqs records, for each path, the child-label sequences of its
	// occurrences — the raw material for discovering repetitive group
	// patterns like (e1,e2)+ (§3.3's closing remark, after XTRACT).
	ChildSeqs map[string][][]string
	// Nodes is the number of element nodes in the document (scalability
	// metric of §4.3).
	Nodes int
}

// AvgPos returns the average child position of nodes with label path p in
// this document, and whether any were recorded.
func (d *DocPaths) AvgPos(p string) (float64, bool) {
	n := d.PosCount[p]
	if n == 0 {
		return 0, false
	}
	return d.PosSum[p] / float64(n), true
}

// Extract reduces an XML document tree to its label-path representation.
// Only element nodes participate; the root's label is the first component
// of every path.
func Extract(root *dom.Node) *DocPaths {
	d := &DocPaths{
		Paths:     make(map[string]bool),
		Mult:      make(map[string]int),
		PosSum:    make(map[string]float64),
		PosCount:  make(map[string]int),
		ChildSeqs: make(map[string][][]string),
	}
	var walk func(n *dom.Node, prefix string, pos int)
	walk = func(n *dom.Node, prefix string, pos int) {
		if n.Type != dom.ElementNode {
			return
		}
		d.Nodes++
		path := n.Tag
		if prefix != "" {
			path = prefix + Sep + n.Tag
		}
		d.Paths[path] = true
		d.PosSum[path] += float64(pos)
		d.PosCount[path]++
		// Sibling multiplicity: number of element siblings sharing the tag
		// (including n itself).
		if n.Parent != nil {
			num := 0
			for _, s := range n.Parent.Children {
				if s.Type == dom.ElementNode && s.Tag == n.Tag {
					num++
				}
			}
			if num > d.Mult[path] {
				d.Mult[path] = num
			}
		} else {
			d.Mult[path] = 1
		}
		var seq []string
		i := 0
		for _, c := range n.Children {
			if c.Type != dom.ElementNode {
				continue
			}
			seq = append(seq, c.Tag)
			walk(c, path, i)
			i++
		}
		if len(seq) > 0 {
			d.ChildSeqs[path] = append(d.ChildSeqs[path], seq)
		}
	}
	walk(root, "", 0)
	return d
}

// ExtractTraced reduces one document to its label-path representation under
// an obs.StageExtract span, counting the label-path prefixes extracted
// (CtrPathsExtracted). tr may be nil. This is the per-document unit both
// the batch and streaming builds share, so extraction happens exactly once
// per document no matter which path mines it or how often.
func ExtractTraced(root *dom.Node, tr obs.Tracer) *DocPaths {
	tr = obs.OrNop(tr)
	sp := tr.StartSpan(obs.StageExtract)
	d := Extract(root)
	sp.End()
	if tr.Enabled() {
		tr.Add(obs.CtrPathsExtracted, int64(len(d.Paths)))
	}
	return d
}

// ExtractAll reduces every document to its label-path representation,
// recording one obs.StageExtract span per document and counting the
// label-path prefixes extracted (CtrPathsExtracted sums over documents).
// tr may be nil.
func ExtractAll(roots []*dom.Node, tr obs.Tracer) []*DocPaths {
	out := make([]*DocPaths, len(roots))
	for i, r := range roots {
		out[i] = ExtractTraced(r, tr)
	}
	return out
}

// SortedPaths returns the document's paths in lexicographic order, mainly
// for tests and diagnostics.
func (d *DocPaths) SortedPaths() []string {
	out := make([]string, 0, len(d.Paths))
	for p := range d.Paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Split breaks a Sep-joined path into its labels.
func Split(path string) []string { return strings.Split(path, Sep) }

// Join builds a Sep-joined path from labels.
func Join(labels []string) string { return strings.Join(labels, Sep) }

// ParentPath returns the path with the last label removed, or "" for a
// single-label path.
func ParentPath(path string) string {
	i := strings.LastIndex(path, Sep)
	if i < 0 {
		return ""
	}
	return path[:i]
}

// LastLabel returns the final label of a path.
func LastLabel(path string) string {
	i := strings.LastIndex(path, Sep)
	if i < 0 {
		return path
	}
	return path[i+1:]
}
