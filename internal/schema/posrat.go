package schema

import "math/big"

// posRat is an exact non-negative rational accumulator for position sums.
// It is the allocation-free replacement for the *big.Rat the accumulator
// used per path: per-document averages are tiny fractions (child position
// sums over child counts), so the running sum almost always fits a reduced
// int64 fraction, and Add folds with zero heap allocations. If a reduced
// intermediate ever overflows int64 the value spills permanently into a
// big.Rat and keeps accumulating exactly — the represented rational is
// identical either way, so avgPos and the JSON wire format are
// bit-for-bit unchanged (pinned by the accumulator equivalence tests).
//
// The zero value represents "no sum yet" (den == 0 and r == nil).
type posRat struct {
	num, den int64    // reduced fraction, den > 0 when set
	r        *big.Rat // overflow spill; authoritative when non-nil
}

// present reports whether any fraction has been folded in.
func (p *posRat) present() bool { return p.r != nil || p.den != 0 }

// addFrac adds num/den (den > 0, num >= 0) to the sum.
func (p *posRat) addFrac(num, den int64) {
	if p.r != nil {
		p.r.Add(p.r, new(big.Rat).SetFrac64(num, den))
		return
	}
	if p.den == 0 {
		g := gcd64(num, den)
		p.num, p.den = num/g, den/g
		return
	}
	// a/b + c/d over the reduced common denominator: with g = gcd(b, d),
	// the sum is (a·(d/g) + c·(b/g)) / (b·(d/g)).
	g := gcd64(p.den, den)
	dg := den / g
	n1, ok1 := mulNonneg(p.num, dg)
	n2, ok2 := mulNonneg(num, p.den/g)
	nd, ok3 := mulNonneg(p.den, dg)
	n := n1 + n2
	if !ok1 || !ok2 || !ok3 || n < n1 {
		p.spill()
		p.addFrac(num, den)
		return
	}
	rg := gcd64(n, nd)
	p.num, p.den = n/rg, nd/rg
}

// addRat adds another posRat to the sum.
func (p *posRat) addRat(q *posRat) {
	if !q.present() {
		return
	}
	if q.r != nil {
		p.spill()
		p.r.Add(p.r, q.r)
		return
	}
	p.addFrac(q.num, q.den)
}

// subFrac subtracts num/den (den > 0, num >= 0) from the sum, exactly
// inverting a prior addFrac of the same fraction. Subtraction runs through
// big.Rat — it is off the fold hot path — and the result is re-normalized
// by setRat, so a value that fits a reduced int64 fraction lands back on
// the small path: retiring the documents that forced a spill un-spills the
// sum, and fold-then-subtract restores the exact pre-fold representation.
func (p *posRat) subFrac(num, den int64) {
	r := new(big.Rat).Sub(p.rat(), new(big.Rat).SetFrac64(num, den))
	p.setRat(r)
}

// setRat replaces the sum with an arbitrary exact rational (JSON restore).
// Values fitting a reduced int64 fraction stay on the small path.
func (p *posRat) setRat(r *big.Rat) {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		p.num, p.den, p.r = r.Num().Int64(), r.Denom().Int64(), nil
		return
	}
	p.num, p.den, p.r = 0, 0, new(big.Rat).Set(r)
}

// rat returns the sum as a big.Rat (a fresh value on the small path; the
// spill itself otherwise — callers must not mutate it).
func (p *posRat) rat() *big.Rat {
	if p.r != nil {
		return p.r
	}
	if p.den == 0 {
		return new(big.Rat)
	}
	return new(big.Rat).SetFrac64(p.num, p.den)
}

// spill converts the small representation into the big.Rat form in place.
func (p *posRat) spill() {
	if p.r != nil {
		return
	}
	if p.den == 0 {
		p.r = new(big.Rat)
	} else {
		p.r = new(big.Rat).SetFrac64(p.num, p.den)
	}
	p.num, p.den = 0, 0
}

// gcd64 returns gcd(a, b) for a >= 0, b > 0 (never zero).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// mulNonneg multiplies two non-negative int64s, reporting overflow.
func mulNonneg(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a || c < 0 {
		return 0, false
	}
	return c, true
}
