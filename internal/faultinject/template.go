package faultinject

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"sync"
)

// Template-mutation injection: the failure mode the watch loop exists to
// detect is not a crash but a silent site redesign — the publisher edits the
// page template and every document's structure shifts under the derived
// schema. The Template injector compresses that into a deterministic,
// seedable transformation of corpus HTML: given the same seed and page key
// it always applies the same mutation, so a chaos sweep that mutates k% of
// templates is exactly reproducible and its drift report can be pinned as a
// golden.

// TemplateOp is one template mutation kind.
type TemplateOp int

const (
	// TemplateNone leaves the page untouched.
	TemplateNone TemplateOp = iota
	// TemplateRenameHeading rewrites a section heading to a phrase outside
	// the concept vocabulary — the redesign that breaks concept tagging.
	TemplateRenameHeading
	// TemplateDropSection deletes one whole section (heading plus content)
	// — frequent paths under it lose support and eventually vanish.
	TemplateDropSection
	// TemplateDuplicateSection repeats one whole section — repetition
	// statistics shift and new starred content models appear.
	TemplateDuplicateSection
	// TemplateWrapBody nests the page body in an extra container div — every
	// label path in the document gains a level.
	TemplateWrapBody
)

// String names the template mutation for reports and test output.
func (o TemplateOp) String() string {
	switch o {
	case TemplateNone:
		return "none"
	case TemplateRenameHeading:
		return "rename-heading"
	case TemplateDropSection:
		return "drop-section"
	case TemplateDuplicateSection:
		return "duplicate-section"
	case TemplateWrapBody:
		return "wrap-body"
	}
	return "unknown"
}

// renamedHeadings are the replacement section titles — deliberately outside
// any concept vocabulary so the mutation reads as structure loss, not a
// relabeling the classifier could absorb.
var renamedHeadings = []string{
	"Miscellany", "Assorted Notes", "Further Particulars", "Addendum",
}

// TemplateConfig parameterizes a Template injector. The zero value mutates
// nothing.
type TemplateConfig struct {
	// Seed makes mutation placement and choice deterministic.
	Seed int64
	// Rate is the fraction of keys mutated, in [0,1].
	Rate float64
	// Ops are the mutation kinds drawn for mutated keys (default: all four).
	Ops []TemplateOp
}

// Template deterministically mutates page HTML to simulate a site redesign.
// A nil *Template is valid and mutates nothing. Safe for concurrent use.
type Template struct {
	cfg TemplateConfig

	mu      sync.Mutex
	applied map[TemplateOp]int
}

// NewTemplate returns a template mutator under cfg.
func NewTemplate(cfg TemplateConfig) *Template {
	if len(cfg.Ops) == 0 {
		cfg.Ops = []TemplateOp{
			TemplateRenameHeading, TemplateDropSection,
			TemplateDuplicateSection, TemplateWrapBody,
		}
	}
	return &Template{cfg: cfg, applied: make(map[TemplateOp]int)}
}

// keyRNG derives a deterministic rng from a seed and a key path — the same
// scheme Stage.Decide uses, so a (seed, key) pair always draws the same
// stream regardless of call order.
func keyRNG(seed int64, parts ...string) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Decide returns the mutation assigned to key — a pure function of the
// configured seed and the key, independent of call history.
func (t *Template) Decide(key string) TemplateOp {
	if t == nil || t.cfg.Rate <= 0 {
		return TemplateNone
	}
	rng := keyRNG(t.cfg.Seed, "template", key)
	if rng.Float64() >= t.cfg.Rate {
		return TemplateNone
	}
	return t.cfg.Ops[rng.Intn(len(t.cfg.Ops))]
}

// Mutate applies key's assigned mutation to html and reports which op ran.
// Unselected keys, nil mutators, and pages without a mutable section come
// back unchanged with TemplateNone. Mutation is idempotent in distribution:
// the same (seed, key, html) always yields the same output.
func (t *Template) Mutate(key, html string) (string, TemplateOp) {
	op := t.Decide(key)
	if op == TemplateNone {
		return html, TemplateNone
	}
	rng := keyRNG(t.cfg.Seed, "template-op", key)
	out, ok := applyTemplateOp(op, html, rng)
	if !ok {
		return html, TemplateNone
	}
	t.mu.Lock()
	t.applied[op]++
	t.mu.Unlock()
	return out, op
}

// Applied returns a copy of the per-op tally of mutations applied so far.
func (t *Template) Applied() map[TemplateOp]int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[TemplateOp]int, len(t.applied))
	for k, n := range t.applied {
		out[k] = n
	}
	return out
}

// sections locates the <h2>-delimited sections of html: each element of the
// result is the [start, end) byte range from a section's opening <h2> to the
// next <h2> or </body>.
func sections(html string) [][2]int {
	var out [][2]int
	lower := strings.ToLower(html)
	end := strings.Index(lower, "</body>")
	if end < 0 {
		end = len(html)
	}
	for at := 0; at < end; {
		i := strings.Index(lower[at:end], "<h2>")
		if i < 0 {
			break
		}
		start := at + i
		next := strings.Index(lower[start+4:end], "<h2>")
		stop := end
		if next >= 0 {
			stop = start + 4 + next
		}
		out = append(out, [2]int{start, stop})
		at = stop
	}
	return out
}

// applyTemplateOp performs one mutation, reporting false when the page has
// no structure the op can attach to.
func applyTemplateOp(op TemplateOp, html string, rng *rand.Rand) (string, bool) {
	if op == TemplateWrapBody {
		lower := strings.ToLower(html)
		open := strings.Index(lower, "<body>")
		close := strings.LastIndex(lower, "</body>")
		if open < 0 || close < 0 || close < open {
			return "", false
		}
		inner := open + len("<body>")
		return html[:inner] + `<div class="redesign">` + html[inner:close] + "</div>" + html[close:], true
	}
	secs := sections(html)
	if len(secs) == 0 {
		return "", false
	}
	sec := secs[rng.Intn(len(secs))]
	body := html[sec[0]:sec[1]]
	switch op {
	case TemplateRenameHeading:
		closeTag := strings.Index(strings.ToLower(body), "</h2>")
		if closeTag < 0 {
			return "", false
		}
		name := renamedHeadings[rng.Intn(len(renamedHeadings))]
		return html[:sec[0]] + "<h2>" + name + body[closeTag:sec[1]-sec[0]] + html[sec[1]:], true
	case TemplateDropSection:
		if len(secs) < 2 {
			return "", false // keep at least one section standing
		}
		return html[:sec[0]] + html[sec[1]:], true
	case TemplateDuplicateSection:
		return html[:sec[1]] + body + html[sec[1]:], true
	}
	return "", false
}
