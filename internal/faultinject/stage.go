package faultinject

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"
)

// StageKind is one failure mode injectable into a pipeline stage.
type StageKind int

const (
	// StageNone leaves the unit of work untouched.
	StageNone StageKind = iota
	// StagePanic panics inside the unit of work — the crash a malformed
	// document triggers in a converter or mapper.
	StagePanic
	// StageError makes the unit of work return an injected error.
	StageError
	// StageDelay stalls the unit of work for Config.Delay — the degenerate
	// input that sends an O(n²) algorithm into minutes of work, compressed
	// to a testable duration.
	StageDelay
)

// String names the stage fault kind for reports and test output.
func (k StageKind) String() string {
	switch k {
	case StageNone:
		return "none"
	case StagePanic:
		return "panic"
	case StageError:
		return "error"
	case StageDelay:
		return "delay"
	}
	return "unknown"
}

// StageConfig parameterizes a Stage injector. The zero value injects
// nothing.
type StageConfig struct {
	// Seed makes fault placement deterministic.
	Seed int64
	// Rate is the fraction of (stage, key) pairs that are faulty, in [0,1].
	Rate float64
	// Kinds are the fault kinds drawn for faulty pairs (default
	// {StagePanic}).
	Kinds []StageKind
	// Stages restricts injection to the named stages (e.g.
	// obs.StageConvert); empty means every stage is eligible.
	Stages []string
	// FaultsPerKey is how many times a faulty (stage, key) pair fires
	// before it behaves normally (default 1). Negative means it never
	// recovers — a permanent fault, the right choice when a retry or a
	// checkpoint resume must observe the same failure again.
	FaultsPerKey int
	// Delay is the stall injected by StageDelay faults (default 10ms).
	Delay time.Duration
}

// Stage injects deterministic faults into per-document pipeline stages. A
// nil *Stage is valid and injects nothing, so production code can call
// Fire unconditionally on an optional injector.
type Stage struct {
	cfg    StageConfig
	stages map[string]bool

	mu       sync.Mutex
	fired    map[string]int // faults already fired, per (stage, key)
	injected map[StageKind]int
}

// NewStage returns a stage injector under cfg.
func NewStage(cfg StageConfig) *Stage {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []StageKind{StagePanic}
	}
	if cfg.FaultsPerKey == 0 {
		cfg.FaultsPerKey = 1
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	s := &Stage{
		cfg:      cfg,
		fired:    make(map[string]int),
		injected: make(map[StageKind]int),
	}
	if len(cfg.Stages) > 0 {
		s.stages = make(map[string]bool, len(cfg.Stages))
		for _, st := range cfg.Stages {
			s.stages[st] = true
		}
	}
	return s
}

// Decide returns the fault assigned to (stage, key) — a pure function of
// the configured seed and the pair, independent of call history.
func (s *Stage) Decide(stage, key string) StageKind {
	if s == nil || s.cfg.Rate <= 0 {
		return StageNone
	}
	if s.stages != nil && !s.stages[stage] {
		return StageNone
	}
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(s.cfg.Seed))
	h.Write(seed[:])
	io.WriteString(h, stage)
	h.Write([]byte{0})
	io.WriteString(h, key)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() >= s.cfg.Rate {
		return StageNone
	}
	return s.cfg.Kinds[rng.Intn(len(s.cfg.Kinds))]
}

// InjectedError is the error type StageError faults return, so tests can
// tell injected failures from real ones.
type InjectedError struct {
	Stage string
	Key   string
}

// Error describes the injected failure.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s for %q", e.Stage, e.Key)
}

// Fire injects the pair's fault while its budget lasts: it panics
// (StagePanic), sleeps and returns nil (StageDelay), or returns an
// *InjectedError (StageError). Healthy pairs and nil injectors return nil
// immediately. Safe for concurrent use.
func (s *Stage) Fire(stage, key string) error {
	kind := s.Decide(stage, key)
	if kind == StageNone {
		return nil
	}
	id := stage + "\x00" + key
	s.mu.Lock()
	if s.cfg.FaultsPerKey >= 0 && s.fired[id] >= s.cfg.FaultsPerKey {
		s.mu.Unlock()
		return nil // fault cleared: transient failure recovers
	}
	s.fired[id]++
	s.injected[kind]++
	s.mu.Unlock()

	switch kind {
	case StagePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s for %q", stage, key))
	case StageDelay:
		time.Sleep(s.cfg.Delay)
		return nil
	case StageError:
		return &InjectedError{Stage: stage, Key: key}
	}
	return nil
}

// Injected returns a copy of the per-kind tally of faults injected so far.
func (s *Stage) Injected() map[StageKind]int {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[StageKind]int, len(s.injected))
	for k, n := range s.injected {
		out[k] = n
	}
	return out
}

// Total returns the number of faults injected so far.
func (s *Stage) Total() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.injected {
		n += c
	}
	return n
}
