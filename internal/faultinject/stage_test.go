package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestStageNilInjectsNothing(t *testing.T) {
	var s *Stage
	if err := s.Fire("convert", "doc-1"); err != nil {
		t.Fatalf("nil injector returned error: %v", err)
	}
	if s.Total() != 0 {
		t.Fatalf("nil injector Total = %d", s.Total())
	}
	if got := s.Decide("convert", "doc-1"); got != StageNone {
		t.Fatalf("nil injector Decide = %v", got)
	}
}

func TestStageDecideDeterministic(t *testing.T) {
	a := NewStage(StageConfig{Seed: 7, Rate: 0.5})
	b := NewStage(StageConfig{Seed: 7, Rate: 0.5})
	faulty := 0
	for i := 0; i < 200; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		ka, kb := a.Decide("convert", key), b.Decide("convert", key)
		if ka != kb {
			t.Fatalf("Decide(%q) differs across equal configs: %v vs %v", key, ka, kb)
		}
		if ka != StageNone {
			faulty++
		}
	}
	if faulty == 0 || faulty == 200 {
		t.Fatalf("rate 0.5 placed %d/200 faults; placement degenerate", faulty)
	}
}

func TestStageDecideVariesByStage(t *testing.T) {
	s := NewStage(StageConfig{Seed: 3, Rate: 0.5})
	same := true
	for i := 0; i < 64 && same; i++ {
		key := string(rune('a' + i))
		if s.Decide("convert", key) != s.Decide("map.conform", key) {
			same = false
		}
	}
	if same {
		t.Fatal("fault placement identical across stages; stage not mixed into the hash")
	}
}

func TestStageStagesFilter(t *testing.T) {
	s := NewStage(StageConfig{Seed: 1, Rate: 1, Stages: []string{"map.conform"}})
	if got := s.Decide("convert", "x"); got != StageNone {
		t.Fatalf("filtered stage fired: %v", got)
	}
	if got := s.Decide("map.conform", "x"); got == StageNone {
		t.Fatal("allowed stage did not fire at rate 1")
	}
}

func TestStagePanicFiresOnceThenRecovers(t *testing.T) {
	s := NewStage(StageConfig{Seed: 1, Rate: 1})
	panicked := func() (p bool) {
		defer func() {
			if recover() != nil {
				p = true
			}
		}()
		s.Fire("convert", "doc")
		return false
	}
	if !panicked() {
		t.Fatal("rate-1 panic injector did not panic")
	}
	if panicked() {
		t.Fatal("transient fault fired twice with FaultsPerKey=1")
	}
	if s.Total() != 1 {
		t.Fatalf("Total = %d, want 1", s.Total())
	}
}

func TestStagePermanentFault(t *testing.T) {
	s := NewStage(StageConfig{Seed: 1, Rate: 1, Kinds: []StageKind{StageError}, FaultsPerKey: -1})
	for i := 0; i < 3; i++ {
		err := s.Fire("convert", "doc")
		var inj *InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("fire %d: got %v, want *InjectedError", i, err)
		}
	}
	if s.Total() != 3 {
		t.Fatalf("Total = %d, want 3", s.Total())
	}
}

func TestStageDelay(t *testing.T) {
	s := NewStage(StageConfig{Seed: 1, Rate: 1, Kinds: []StageKind{StageDelay}, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := s.Fire("convert", "doc"); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay fault did not stall")
	}
	if got := s.Injected()[StageDelay]; got != 1 {
		t.Fatalf("Injected[StageDelay] = %d, want 1", got)
	}
}
