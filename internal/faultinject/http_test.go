package faultinject

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

func get(t *testing.T, client *http.Client, url string, timeout time.Duration) (*http.Response, string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, string(body), err
}

func TestDecideDeterministic(t *testing.T) {
	a := New(okHandler("x"), Config{Seed: 11, Rate: 0.3})
	b := New(okHandler("x"), Config{Seed: 11, Rate: 0.3})
	c := New(okHandler("x"), Config{Seed: 12, Rate: 0.3})
	same, diff := 0, 0
	faulty := 0
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/page/%d.html", i)
		ka, kb, kc := a.Decide(p), b.Decide(p), c.Decide(p)
		if ka != kb {
			t.Fatalf("same seed, different fault for %s: %v vs %v", p, ka, kb)
		}
		if ka != None {
			faulty++
		}
		if ka == kc {
			same++
		} else {
			diff++
		}
	}
	if faulty < 30 || faulty > 90 {
		t.Fatalf("rate 0.3 faulted %d/200 paths", faulty)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault placement")
	}
}

func TestRateZeroInjectsNothing(t *testing.T) {
	in := New(okHandler("clean"), Config{Seed: 1, Rate: 0})
	srv := httptest.NewServer(in)
	defer srv.Close()
	for i := 0; i < 20; i++ {
		resp, body, err := get(t, srv.Client(), fmt.Sprintf("%s/p%d", srv.URL, i), time.Second)
		if err != nil || resp.StatusCode != http.StatusOK || body != "clean" {
			t.Fatalf("request %d: %v %v %q", i, err, resp, body)
		}
	}
	if in.Total() != 0 {
		t.Fatalf("injected %d faults at rate 0", in.Total())
	}
}

// Each fault kind must actually fail the first request and recover on the
// next (FaultsPerPath 1), which is what makes them transient.
func TestEachKindFailsThenRecovers(t *testing.T) {
	for _, kind := range TransientKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			in := New(okHandler("payload-big-enough-to-truncate"), Config{
				Seed:      1,
				Rate:      1, // every path faulty
				Kinds:     []Kind{kind},
				SlowDelay: 10 * time.Millisecond,
			})
			srv := httptest.NewServer(in)
			defer srv.Close()

			resp, body, err := get(t, srv.Client(), srv.URL+"/a.html", 300*time.Millisecond)
			switch kind {
			case Status500:
				if err != nil || resp.StatusCode != http.StatusInternalServerError {
					t.Fatalf("want 500, got %v %v", resp, err)
				}
			case Status429:
				if err != nil || resp.StatusCode != http.StatusTooManyRequests {
					t.Fatalf("want 429, got %v %v", resp, err)
				}
			case Reset, Hang:
				if err == nil {
					t.Fatalf("want transport error, got %v %q", resp, body)
				}
			case Truncate:
				if err == nil {
					t.Fatalf("want body read error, got %q", body)
				}
			case Slow:
				if err != nil || body != "payload-big-enough-to-truncate" {
					t.Fatalf("slow should still serve: %v %q", err, body)
				}
			}
			if in.Total() != 1 {
				t.Fatalf("injected %d, want 1", in.Total())
			}

			// Second request: the fault has cleared.
			resp, body, err = get(t, srv.Client(), srv.URL+"/a.html", time.Second)
			if err != nil || resp.StatusCode != http.StatusOK || body != "payload-big-enough-to-truncate" {
				t.Fatalf("path did not recover: %v %v %q", err, resp, body)
			}
			if in.Total() != 1 {
				t.Fatalf("fault injected again after recovery: %d", in.Total())
			}
		})
	}
}

func TestPermanentFault(t *testing.T) {
	in := New(okHandler("x"), Config{
		Seed: 1, Rate: 1, Kinds: []Kind{Status500}, FaultsPerPath: -1,
	})
	srv := httptest.NewServer(in)
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, _, err := get(t, srv.Client(), srv.URL+"/a.html", time.Second)
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: want persistent 500, got %v %v", i, resp, err)
		}
	}
	if in.Total() != 3 {
		t.Fatalf("injected %d, want 3", in.Total())
	}
}

func TestHangRespectsClientTimeout(t *testing.T) {
	in := New(okHandler("x"), Config{Seed: 1, Rate: 1, Kinds: []Kind{Hang}})
	srv := httptest.NewServer(in)
	defer srv.Close()
	start := time.Now()
	_, _, err := get(t, srv.Client(), srv.URL+"/h.html", 80*time.Millisecond)
	if err == nil {
		t.Fatal("hang served a response")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang did not release on client disconnect: %v", elapsed)
	}
}

func TestInjectedTally(t *testing.T) {
	in := New(okHandler("x"), Config{Seed: 1, Rate: 1, Kinds: []Kind{Status500, Status429}})
	srv := httptest.NewServer(in)
	defer srv.Close()
	for i := 0; i < 10; i++ {
		get(t, srv.Client(), fmt.Sprintf("%s/p%d", srv.URL, i), time.Second)
	}
	tally := in.Injected()
	if tally[Status500]+tally[Status429] != 10 || in.Total() != 10 {
		t.Fatalf("tally = %v, total %d", tally, in.Total())
	}
}
