package faultinject

import (
	"strings"
	"testing"

	"webrev/internal/corpus"
)

func mutatedCount(t *testing.T, tm *Template, pages map[string]string) int {
	t.Helper()
	n := 0
	for key, html := range pages {
		out, op := tm.Mutate(key, html)
		if op == TemplateNone {
			if out != html {
				t.Fatalf("%s: TemplateNone but HTML changed", key)
			}
			continue
		}
		if out == html {
			t.Fatalf("%s: op %v applied but HTML unchanged", key, op)
		}
		n++
	}
	return n
}

func corpusPages(n int, seed int64) map[string]string {
	g := corpus.New(corpus.Options{Seed: seed})
	pages := make(map[string]string)
	for _, r := range g.Corpus(n) {
		pages[r.Name] = r.HTML
	}
	return pages
}

// TestTemplateDeterministic: same seed → identical mutation placement and
// output; different seed → (overwhelmingly) different placement.
func TestTemplateDeterministic(t *testing.T) {
	pages := corpusPages(30, 3)
	a, b := NewTemplate(TemplateConfig{Seed: 1, Rate: 0.5}), NewTemplate(TemplateConfig{Seed: 1, Rate: 0.5})
	for key, html := range pages {
		outA, opA := a.Mutate(key, html)
		outB, opB := b.Mutate(key, html)
		if outA != outB || opA != opB {
			t.Fatalf("%s: same seed diverged (%v vs %v)", key, opA, opB)
		}
	}
	other := NewTemplate(TemplateConfig{Seed: 2, Rate: 0.5})
	same := 0
	for key := range pages {
		if a.Decide(key) == other.Decide(key) {
			same++
		}
	}
	if same == len(pages) {
		t.Fatal("different seeds produced identical placement on every page")
	}
}

// TestTemplateRate: the mutated fraction tracks the configured rate, and a
// zero-rate or nil mutator touches nothing.
func TestTemplateRate(t *testing.T) {
	pages := corpusPages(60, 7)
	tm := NewTemplate(TemplateConfig{Seed: 11, Rate: 0.2})
	n := mutatedCount(t, tm, pages)
	if n < 3 || n > 30 {
		t.Fatalf("rate 0.2 over %d pages mutated %d", len(pages), n)
	}
	if got := mutatedCount(t, NewTemplate(TemplateConfig{Seed: 11}), pages); got != 0 {
		t.Fatalf("zero rate mutated %d pages", got)
	}
	var nilT *Template
	if out, op := nilT.Mutate("k", "<html></html>"); op != TemplateNone || out != "<html></html>" {
		t.Fatal("nil mutator mutated")
	}
	total := 0
	for _, c := range tm.Applied() {
		total += c
	}
	if total != n {
		t.Fatalf("Applied tally %d != mutated %d", total, n)
	}
}

// TestTemplateOps pins each op's structural effect on a representative page.
func TestTemplateOps(t *testing.T) {
	html := "<html><body><h1>T</h1>\n<h2>Education</h2>\n<ul><li>x</li></ul>\n" +
		"<h2>Skills</h2>\n<p>y</p>\n</body></html>"
	rng := keyRNG(1, "t")
	if out, ok := applyTemplateOp(TemplateRenameHeading, html, rng); !ok ||
		strings.Count(out, "<h2>") != 2 || out == html {
		t.Errorf("rename-heading: ok=%v out=%q", ok, out)
	}
	if out, ok := applyTemplateOp(TemplateDropSection, html, rng); !ok || strings.Count(out, "<h2>") != 1 {
		t.Errorf("drop-section: ok=%v h2s=%d", ok, strings.Count(out, "<h2>"))
	}
	if out, ok := applyTemplateOp(TemplateDuplicateSection, html, rng); !ok || strings.Count(out, "<h2>") != 3 {
		t.Errorf("duplicate-section: ok=%v h2s=%d", ok, strings.Count(out, "<h2>"))
	}
	out, ok := applyTemplateOp(TemplateWrapBody, html, rng)
	if !ok || !strings.Contains(out, `<body><div class="redesign">`) || !strings.HasSuffix(out, "</div></body></html>") {
		t.Errorf("wrap-body: ok=%v out=%q", ok, out)
	}
	// Pages with no mutable structure come back untouched as TemplateNone.
	tm := NewTemplate(TemplateConfig{Seed: 0, Rate: 1, Ops: []TemplateOp{TemplateDropSection}})
	bare := "<html><body><h2>Only</h2><p>z</p></body></html>"
	if out, op := tm.Mutate("k", bare); op != TemplateNone || out != bare {
		t.Errorf("last standing section dropped: op=%v", op)
	}
}
