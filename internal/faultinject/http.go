// Package faultinject provides deterministic fault injection for every
// tier of the system, so chaos tests and the fault-tolerance experiments
// can reproduce a hostile environment exactly.
//
// Two injectors live here:
//
//   - Injector (this file) is an http.Handler middleware built to test the
//     crawler's robustness machinery. It wraps a healthy handler (e.g.
//     crawler.Site.Handler()) and, for a seeded subset of request paths,
//     injects the failure modes a live-Web crawl meets: server errors,
//     rate limiting, connection resets, slow responses, truncated bodies,
//     and hangs.
//
//   - Stage (stage.go) injects faults into the pipeline's per-document
//     processing stages (conversion, conformance mapping): panics, delays,
//     and errors, keyed by (stage, document), to exercise the build's
//     per-document fault isolation and quarantine machinery.
//
// Determinism: whether a request path or a (stage, document) pair is
// faulty — and which fault it gets — is a pure function of the seed and
// the key, so a run is reproducible regardless of order or concurrency.
// Faults are transient by default: each faulty key fails its first
// FaultsPerPath (resp. FaultsPerKey) hits and then behaves normally, so
// retrying clients can recover.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Kind is one injectable failure mode.
type Kind int

const (
	// None leaves the request untouched.
	None Kind = iota
	// Status500 answers 500 Internal Server Error.
	Status500
	// Status429 answers 429 Too Many Requests.
	Status429
	// Reset closes the connection without a response (client sees a reset
	// or unexpected EOF).
	Reset
	// Slow delays SlowDelay before serving the real response.
	Slow
	// Truncate declares the full Content-Length but sends only half the
	// body, so the client's read fails mid-stream.
	Truncate
	// Hang never responds; the handler blocks until the client gives up
	// (or HangMax elapses), exercising per-attempt timeouts.
	Hang
)

// String names the fault kind for reports and test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Status500:
		return "status-500"
	case Status429:
		return "status-429"
	case Reset:
		return "reset"
	case Slow:
		return "slow"
	case Truncate:
		return "truncate"
	case Hang:
		return "hang"
	}
	return "unknown"
}

// TransientKinds are the faults a retrying client recovers from when the
// fault clears; it is the default Kinds set.
func TransientKinds() []Kind {
	return []Kind{Status500, Status429, Reset, Slow, Truncate, Hang}
}

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed makes fault placement deterministic.
	Seed int64
	// Rate is the fraction of paths that are faulty, in [0,1].
	Rate float64
	// Kinds are the fault kinds drawn for faulty paths (default
	// TransientKinds).
	Kinds []Kind
	// FaultsPerPath is how many requests to a faulty path fail before it
	// recovers and serves normally (default 1). Negative means the path
	// never recovers — a permanent fault.
	FaultsPerPath int
	// SlowDelay is the latency added by Slow faults (default 50ms).
	SlowDelay time.Duration
	// HangMax caps how long a Hang fault blocks when the client never
	// disconnects (default 30s).
	HangMax time.Duration
}

// Injector is an http.Handler middleware injecting deterministic faults.
type Injector struct {
	next http.Handler
	cfg  Config

	mu       sync.Mutex
	faulted  map[string]int // requests already faulted, per path
	injected map[Kind]int
}

// New wraps next with fault injection under cfg.
func New(next http.Handler, cfg Config) *Injector {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = TransientKinds()
	}
	if cfg.FaultsPerPath == 0 {
		cfg.FaultsPerPath = 1
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 50 * time.Millisecond
	}
	if cfg.HangMax <= 0 {
		cfg.HangMax = 30 * time.Second
	}
	return &Injector{
		next:     next,
		cfg:      cfg,
		faulted:  make(map[string]int),
		injected: make(map[Kind]int),
	}
}

// Decide returns the fault assigned to path — a pure function of the
// configured seed and the path, independent of request history.
func (in *Injector) Decide(path string) Kind {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(in.cfg.Seed))
	h.Write(seed[:])
	io.WriteString(h, path)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() >= in.cfg.Rate {
		return None
	}
	return in.cfg.Kinds[rng.Intn(len(in.cfg.Kinds))]
}

// Injected returns a copy of the per-kind tally of faults injected so far.
func (in *Injector) Injected() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.injected))
	for k, n := range in.injected {
		out[k] = n
	}
	return out
}

// Total returns the number of faults injected so far.
func (in *Injector) Total() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.injected {
		n += c
	}
	return n
}

// ServeHTTP injects the path's fault while its budget lasts, then passes
// through to the wrapped handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	kind := in.Decide(r.URL.Path)
	if kind == None {
		in.next.ServeHTTP(w, r)
		return
	}
	in.mu.Lock()
	if in.cfg.FaultsPerPath >= 0 && in.faulted[r.URL.Path] >= in.cfg.FaultsPerPath {
		in.mu.Unlock()
		in.next.ServeHTTP(w, r) // fault cleared: transient failure recovers
		return
	}
	in.faulted[r.URL.Path]++
	in.injected[kind]++
	in.mu.Unlock()

	switch kind {
	case Status500:
		http.Error(w, "injected server error", http.StatusInternalServerError)
	case Status429:
		http.Error(w, "injected rate limit", http.StatusTooManyRequests)
	case Reset:
		in.reset(w)
	case Slow:
		t := time.NewTimer(in.cfg.SlowDelay)
		defer t.Stop()
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
		in.next.ServeHTTP(w, r)
	case Truncate:
		in.truncate(w, r)
	case Hang:
		t := time.NewTimer(in.cfg.HangMax)
		defer t.Stop()
		select {
		case <-r.Context().Done():
		case <-t.C:
		}
	}
}

// reset drops the connection with no response; with SO_LINGER 0 the client
// sees a TCP reset, otherwise an unexpected EOF.
func (in *Injector) reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Can't drop the connection on this ResponseWriter; degrade to a
		// retryable server error.
		http.Error(w, "injected reset", http.StatusInternalServerError)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		http.Error(w, "injected reset", http.StatusInternalServerError)
		return
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

// truncate serves the real response but declares its full length while
// writing only half, so the client fails reading the body.
func (in *Injector) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &recorder{header: make(http.Header), code: http.StatusOK}
	in.next.ServeHTTP(rec, r)
	body := rec.buf.Bytes()
	if rec.code != http.StatusOK || len(body) < 2 {
		// Nothing meaningful to truncate; drop the connection instead.
		in.reset(w)
		return
	}
	for k, vs := range rec.header {
		w.Header()[k] = vs
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.code)
	w.Write(body[:len(body)/2])
	// Returning with fewer bytes than declared makes net/http close the
	// connection; the client's body read ends in unexpected EOF.
}

// recorder captures the wrapped handler's response for Truncate.
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int)   { r.code = c }
func (r *recorder) Write(b []byte) (int, error) {
	return r.buf.Write(b)
}
