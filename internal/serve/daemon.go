package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// DaemonOptions parameterizes the hardened HTTP front end webrevd runs.
// The zero value applies production defaults — a bare http.Server ships
// with none of these, which is exactly the gap this type closes.
type DaemonOptions struct {
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers (slowloris guard; default 5s).
	ReadHeaderTimeout time.Duration
	// WriteTimeout bounds writing one response (default 30s).
	WriteTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long
	// (default 2m).
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size (default 1 MiB).
	MaxHeaderBytes int
	// DrainTimeout bounds the graceful drain: after BeginDrain flips
	// /readyz, in-flight requests get this long to finish before the
	// listener is torn down hard (default 10s).
	DrainTimeout time.Duration
	// OnDrained, when set, runs after a drain completes (successfully or
	// not) and before Serve returns — webrevd flushes its obs snapshot
	// here so no metrics are lost on SIGTERM.
	OnDrained func()
}

func (o *DaemonOptions) withDefaults() DaemonOptions {
	out := *o
	if out.ReadHeaderTimeout <= 0 {
		out.ReadHeaderTimeout = 5 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 30 * time.Second
	}
	if out.IdleTimeout <= 0 {
		out.IdleTimeout = 2 * time.Minute
	}
	if out.MaxHeaderBytes <= 0 {
		out.MaxHeaderBytes = 1 << 20
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 10 * time.Second
	}
	return out
}

// Daemon couples a Server with a hardened http.Server and a graceful
// lifecycle: Serve blocks until Drain (typically wired to SIGTERM/SIGINT)
// stops the listener, waits for every in-flight request under
// DrainTimeout, runs OnDrained, and lets Serve return nil — so a drained
// daemon exits 0 with no request lost.
type Daemon struct {
	server *Server
	opts   DaemonOptions
	hs     *http.Server

	drainOnce sync.Once
	drained   chan struct{} // closed when the drain sequence finishes
	drainErr  error
}

// NewDaemon wraps s and its handler surface in a hardened listener
// configuration.
func NewDaemon(s *Server, opts DaemonOptions) *Daemon {
	opts = opts.withDefaults()
	d := &Daemon{
		server:  s,
		opts:    opts,
		drained: make(chan struct{}),
	}
	d.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
		MaxHeaderBytes:    opts.MaxHeaderBytes,
	}
	return d
}

// HTTPServer exposes the underlying configured http.Server (read-only use:
// inspecting the applied timeouts).
func (d *Daemon) HTTPServer() *http.Server { return d.hs }

// Serve accepts connections on ln until Drain is called, then returns the
// drain's outcome: nil when every in-flight request finished inside
// DrainTimeout, the shutdown error otherwise. A listener failure before
// any drain returns that failure directly.
func (d *Daemon) Serve(ln net.Listener) error {
	err := d.hs.Serve(ln)
	if err != nil && err != http.ErrServerClosed {
		return err
	}
	// ErrServerClosed means a drain is in progress; report its outcome.
	<-d.drained
	return d.drainErr
}

// Drain gracefully shuts the daemon down: readiness flips to 503 first
// (load balancers stop sending traffic), the listener stops accepting,
// and in-flight requests are given until ctx (capped by DrainTimeout) to
// finish. Idempotent; concurrent calls share the first drain's outcome.
func (d *Daemon) Drain(ctx context.Context) error {
	d.drainOnce.Do(func() {
		defer close(d.drained)
		d.server.BeginDrain()
		dctx, cancel := context.WithTimeout(ctx, d.opts.DrainTimeout)
		defer cancel()
		if err := d.hs.Shutdown(dctx); err != nil {
			d.drainErr = fmt.Errorf("serve: drain: %w", err)
		}
		if d.opts.OnDrained != nil {
			d.opts.OnDrained()
		}
	})
	<-d.drained
	return d.drainErr
}
