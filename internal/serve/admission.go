package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the overload gate in front of the /api handlers: a bounded
// in-flight semaphore with a short bounded wait queue. A request either
// takes an execution slot immediately, waits in the queue for up to
// queueWait for one to free, or is shed. Both bounds are hard, so worker
// goroutines, queue memory and queue delay are all capped no matter how
// much load is offered — the server's latency under overload is bounded
// by construction instead of collapsing under an unbounded backlog.
type admission struct {
	slots     chan struct{} // in-flight execution slots, capacity = MaxInFlight
	queue     chan struct{} // wait-queue occupancy tokens, capacity = MaxQueue
	queueWait time.Duration

	inflight atomic.Int64
	peak     atomic.Int64
	queued   atomic.Int64
	admitted atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *admission {
	a := &admission{
		slots:     make(chan struct{}, maxInFlight),
		queueWait: queueWait,
	}
	if maxQueue > 0 {
		a.queue = make(chan struct{}, maxQueue)
	}
	return a
}

// acquire claims an execution slot, reporting false when the request must
// be shed: the slots are full and the queue is full, the queue wait
// expired, or the client gave up (ctx done) while queued.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case a.slots <- struct{}{}:
		a.noteAdmit()
		return true
	default:
	}
	if a.queue == nil {
		return false
	}
	// Claim a queue position; a full queue sheds immediately.
	select {
	case a.queue <- struct{}{}:
	default:
		return false
	}
	a.queued.Add(1)
	defer func() {
		a.queued.Add(-1)
		<-a.queue
	}()
	t := time.NewTimer(a.queueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.noteAdmit()
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// noteAdmit tracks the in-flight level and its high-water mark.
func (a *admission) noteAdmit() {
	a.admitted.Add(1)
	cur := a.inflight.Add(1)
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// release frees the caller's execution slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}
