package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webrev/internal/repository"
)

// LoadOptions parameterizes LoadTest. The zero value runs 64 clients for
// three seconds against a default mixed workload with no background swaps.
type LoadOptions struct {
	// Clients is the number of concurrent request loops (default 64).
	Clients int
	// Duration is the wall-clock run time (default 3s).
	Duration time.Duration
	// Workload is the list of request paths (with query strings) cycled by
	// each client; empty means every client hits /healthz only. Build a
	// realistic one with Server.DefaultWorkload.
	Workload []string
	// SwapEvery, when nonzero, triggers a background snapshot swap at this
	// interval for the run's duration — the mid-load swap the serving
	// design promises is loss-free. Requires SwapRepo.
	SwapEvery time.Duration
	// SwapRepo produces the repository for each background swap.
	SwapRepo func() *repository.Repository
}

// LoadResult is the outcome of one LoadTest run. Latencies cover every
// completed request, successful or not; Errors counts transport failures
// and non-2xx statuses.
type LoadResult struct {
	Clients    int
	Requests   int64
	Errors     int64
	Swaps      int64
	Duration   time.Duration
	Throughput float64 // requests per second
	Mean       time.Duration
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("clients=%d requests=%d errors=%d swaps=%d rps=%.0f p50=%v p90=%v p99=%v max=%v",
		r.Clients, r.Requests, r.Errors, r.Swaps, r.Throughput, r.P50, r.P90, r.P99, r.Max)
}

// DefaultWorkload derives a mixed request workload from the current
// snapshot: anchored and descendant path queries, counts, concept lookups,
// document and schema fetches — roughly the read mix a repository browser
// generates. n bounds how many distinct query paths are sampled.
func (s *Server) DefaultWorkload(n int) []string {
	ix := s.cur.Load()
	paths := ix.frozen.Paths()
	if n <= 0 || n > len(paths) {
		n = len(paths)
	}
	var w []string
	for _, p := range paths[:n] {
		// Sep is "/", so an indexed path prefixed with "/" is already a
		// valid anchored expression.
		w = append(w,
			"/api/query?q="+url.QueryEscape("/"+p),
			"/api/count?q="+url.QueryEscape("/"+p))
		if i := lastSlash(p); i >= 0 {
			label := p[i+1:]
			w = append(w,
				"/api/query?q="+url.QueryEscape("//"+label)+"&limit=25",
				"/api/concept?name="+url.QueryEscape(label))
		}
	}
	w = append(w, "/api/paths", "/api/docs", "/api/dtd", "/api/stats", "/healthz")
	if len(ix.names) > 0 {
		w = append(w, "/api/doc?i=0", "/api/doc?name="+url.QueryEscape(ix.names[0]))
	}
	return w
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// LoadTest drives opts.Clients concurrent clients against a running server
// at baseURL until opts.Duration elapses, optionally swapping snapshots in
// the background, and reports latency percentiles and throughput.
//
// The server being exercised is the real HTTP stack (typically an
// httptest.Server or a live webrevd); LoadTest is the harness behind both
// `webrevd -bench` and the serve package's race tests.
func LoadTest(s *Server, baseURL string, opts LoadOptions) (*LoadResult, error) {
	if opts.Clients <= 0 {
		opts.Clients = 64
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if len(opts.Workload) == 0 {
		opts.Workload = []string{"/healthz"}
	}
	if opts.SwapEvery > 0 && opts.SwapRepo == nil {
		return nil, fmt.Errorf("serve: SwapEvery set without SwapRepo")
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.Clients * 2,
		MaxIdleConnsPerHost: opts.Clients * 2,
	}}
	defer client.CloseIdleConnections()

	deadline := time.Now().Add(opts.Duration)
	stop := make(chan struct{})
	var swaps int64
	var swapWG sync.WaitGroup
	if opts.SwapEvery > 0 {
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			tick := time.NewTicker(opts.SwapEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s.Swap(opts.SwapRepo())
					atomic.AddInt64(&swaps, 1)
				}
			}
		}()
	}

	lats := make([][]time.Duration, opts.Clients)
	var errs int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for i := c; time.Now().Before(deadline); i++ {
				target := baseURL + opts.Workload[i%len(opts.Workload)]
				t0 := time.Now()
				ok := doRequest(client, target)
				local = append(local, time.Since(t0))
				if !ok {
					atomic.AddInt64(&errs, 1)
				}
			}
			lats[c] = local
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	swapWG.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("serve: load test completed zero requests")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res := &LoadResult{
		Clients:    opts.Clients,
		Requests:   int64(len(all)),
		Errors:     errs,
		Swaps:      atomic.LoadInt64(&swaps),
		Duration:   elapsed,
		Throughput: float64(len(all)) / elapsed.Seconds(),
		Mean:       sum / time.Duration(len(all)),
		P50:        percentile(all, 0.50),
		P90:        percentile(all, 0.90),
		P99:        percentile(all, 0.99),
		Max:        all[len(all)-1],
	}
	return res, nil
}

func doRequest(client *http.Client, target string) bool {
	resp, err := client.Get(target)
	if err != nil {
		return false
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return err == nil && resp.StatusCode < 300
}

// percentile returns the p-quantile of sorted durations by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
