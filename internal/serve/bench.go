package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webrev/internal/repository"
)

// LoadOptions parameterizes LoadTest. The zero value runs 64 clients for
// three seconds against a default mixed workload with no background swaps.
type LoadOptions struct {
	// Clients is the number of concurrent request loops (default 64).
	Clients int
	// Duration is the wall-clock run time (default 3s).
	Duration time.Duration
	// Workload is the list of request paths (with query strings) cycled by
	// each client; empty means every client hits /healthz only. Build a
	// realistic one with Server.DefaultWorkload.
	Workload []string
	// SwapEvery, when nonzero, triggers a background snapshot swap at this
	// interval for the run's duration — the mid-load swap the serving
	// design promises is loss-free. Requires SwapRepo.
	SwapEvery time.Duration
	// SwapRepo produces the repository for each background swap.
	SwapRepo func() *repository.Repository
}

// LoadResult is the outcome of one LoadTest run. Latency percentiles
// cover admitted requests only (2xx — work the server accepted and
// finished): a shed 503 answers in microseconds by design, and folding it
// in would flatter the percentiles exactly when the server is refusing
// work. Shed counts 503s; Errors counts transport failures and non-2xx
// statuses other than 503.
type LoadResult struct {
	Clients    int
	Requests   int64 // every attempt, admitted or shed
	Admitted   int64 // requests the server accepted and answered non-503
	Shed       int64 // 503 responses (admission control refusing work)
	Errors     int64
	Swaps      int64
	Duration   time.Duration
	Throughput float64 // offered requests per second (all attempts)
	Goodput    float64 // admitted requests per second
	Mean       time.Duration
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
}

// ShedRate is the fraction of attempts shed, in [0,1].
func (r *LoadResult) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

func (r *LoadResult) String() string {
	return fmt.Sprintf("clients=%d requests=%d shed=%d errors=%d swaps=%d rps=%.0f goodput=%.0f p50=%v p90=%v p99=%v max=%v",
		r.Clients, r.Requests, r.Shed, r.Errors, r.Swaps, r.Throughput, r.Goodput, r.P50, r.P90, r.P99, r.Max)
}

// DefaultWorkload derives a mixed request workload from the current
// snapshot: anchored and descendant path queries, counts, concept lookups,
// document and schema fetches — roughly the read mix a repository browser
// generates. n bounds how many distinct query paths are sampled.
func (s *Server) DefaultWorkload(n int) []string {
	ix := s.cur.Load()
	if ix == nil {
		return []string{"/healthz"}
	}
	paths := ix.frozen.Paths()
	if n <= 0 || n > len(paths) {
		n = len(paths)
	}
	var w []string
	for _, p := range paths[:n] {
		// Sep is "/", so an indexed path prefixed with "/" is already a
		// valid anchored expression.
		w = append(w,
			"/api/query?q="+url.QueryEscape("/"+p),
			"/api/count?q="+url.QueryEscape("/"+p))
		if i := lastSlash(p); i >= 0 {
			label := p[i+1:]
			w = append(w,
				"/api/query?q="+url.QueryEscape("//"+label)+"&limit=25",
				"/api/concept?name="+url.QueryEscape(label))
		}
	}
	w = append(w, "/api/paths", "/api/docs", "/api/dtd", "/api/stats", "/healthz")
	if len(ix.names) > 0 {
		w = append(w, "/api/doc?i=0", "/api/doc?name="+url.QueryEscape(ix.names[0]))
	}
	return w
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// LoadTest drives opts.Clients concurrent clients against a running server
// at baseURL until opts.Duration elapses, optionally swapping snapshots in
// the background, and reports latency percentiles and throughput.
//
// The server being exercised is the real HTTP stack (typically an
// httptest.Server or a live webrevd); LoadTest is the harness behind both
// `webrevd -bench` and the serve package's race tests.
func LoadTest(s *Server, baseURL string, opts LoadOptions) (*LoadResult, error) {
	if opts.Clients <= 0 {
		opts.Clients = 64
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if len(opts.Workload) == 0 {
		opts.Workload = []string{"/healthz"}
	}
	if opts.SwapEvery > 0 && opts.SwapRepo == nil {
		return nil, fmt.Errorf("serve: SwapEvery set without SwapRepo")
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.Clients * 2,
		MaxIdleConnsPerHost: opts.Clients * 2,
	}}
	defer client.CloseIdleConnections()

	deadline := time.Now().Add(opts.Duration)
	stop := make(chan struct{})
	var swaps int64
	var swapWG sync.WaitGroup
	if opts.SwapEvery > 0 {
		swapWG.Add(1)
		go func() {
			defer swapWG.Done()
			tick := time.NewTicker(opts.SwapEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s.Swap(opts.SwapRepo())
					atomic.AddInt64(&swaps, 1)
				}
			}
		}()
	}

	lats := make([][]time.Duration, opts.Clients)
	var attempts, shed, errs int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for i := c; time.Now().Before(deadline); i++ {
				target := baseURL + opts.Workload[i%len(opts.Workload)]
				t0 := time.Now()
				status := doRequest(client, target)
				d := time.Since(t0)
				atomic.AddInt64(&attempts, 1)
				switch {
				case status == http.StatusServiceUnavailable:
					atomic.AddInt64(&shed, 1)
				case status == 0 || status >= 300:
					atomic.AddInt64(&errs, 1)
				default:
					// Admitted and answered; only these latencies count.
					local = append(local, d)
				}
			}
			lats[c] = local
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	swapWG.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if atomic.LoadInt64(&attempts) == 0 {
		return nil, fmt.Errorf("serve: load test completed zero requests")
	}
	res := &LoadResult{
		Clients:    opts.Clients,
		Requests:   atomic.LoadInt64(&attempts),
		Admitted:   int64(len(all)),
		Shed:       atomic.LoadInt64(&shed),
		Errors:     errs,
		Swaps:      atomic.LoadInt64(&swaps),
		Duration:   elapsed,
		Throughput: float64(attempts) / elapsed.Seconds(),
		Goodput:    float64(len(all)) / elapsed.Seconds(),
	}
	if len(all) == 0 {
		return res, nil // everything shed or failed; percentiles stay zero
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res.Mean = sum / time.Duration(len(all))
	res.P50 = percentile(all, 0.50)
	res.P90 = percentile(all, 0.90)
	res.P99 = percentile(all, 0.99)
	res.Max = all[len(all)-1]
	return res, nil
}

// doRequest performs one workload request and returns the HTTP status, or
// 0 on a transport or body-read failure.
func doRequest(client *http.Client, target string) int {
	resp, err := client.Get(target)
	if err != nil {
		return 0
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0
	}
	return resp.StatusCode
}

// percentile returns the p-quantile of sorted durations by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
