package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/repository"
	"webrev/internal/schema"
)

func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

func elv(tag, val string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, []string{"val", val}, children...)
}

func testDTD() *dtd.DTD {
	mk := func() *schema.DocPaths {
		return schema.Extract(el("resume",
			el("contact"),
			el("education", el("institution"), el("degree")),
			el("education", el("institution"), el("degree")),
		))
	}
	s := (&schema.Miner{SupThreshold: 0.5}).Discover([]*schema.DocPaths{mk(), mk()})
	return dtd.FromSchema(s, dtd.Options{})
}

func testDoc(i int) *dom.Node {
	return el("resume",
		elv("contact", fmt.Sprintf("person-%d", i)),
		el("education",
			elv("institution", fmt.Sprintf("UC %d", i%3)),
			elv("degree", "B.S."),
		),
	)
}

// testRepo builds an n-document repository whose doc i carries values
// derived from i+off, so swapped-in repos are distinguishable.
func testRepo(t testing.TB, n, off int) *repository.Repository {
	t.Helper()
	r := repository.New(testDTD())
	for i := 0; i < n; i++ {
		if err := r.Add(fmt.Sprintf("doc-%03d", i), testDoc(i+off)); err != nil {
			t.Fatalf("add doc %d: %v", i, err)
		}
	}
	return r
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	s := NewServer(testRepo(t, 4, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var qr QueryResponse
	getJSON(t, ts.URL+"/api/query?q="+url.QueryEscape("//institution"), &qr)
	if qr.Total != 4 || len(qr.Results) != 4 || qr.Truncated {
		t.Fatalf("total=%d results=%d truncated=%v", qr.Total, len(qr.Results), qr.Truncated)
	}
	if qr.Results[0].Doc != "doc-000" || qr.Results[0].Path != "resume/education/institution" {
		t.Fatalf("unexpected first result %+v", qr.Results[0])
	}

	// A limit caps rendering but the total stays exact via Count.
	var limited QueryResponse
	getJSON(t, ts.URL+"/api/query?limit=2&q="+url.QueryEscape("//institution"), &limited)
	if limited.Total != 4 || len(limited.Results) != 2 || !limited.Truncated {
		t.Fatalf("limited: total=%d results=%d truncated=%v",
			limited.Total, len(limited.Results), limited.Truncated)
	}

	// Predicate with quoted literal goes through end to end.
	var pred QueryResponse
	getJSON(t, ts.URL+"/api/query?q="+url.QueryEscape(`//institution[@val="UC 1"]`), &pred)
	if pred.Total != 1 { // docs carry UC 0, UC 1, UC 2, UC 0
		t.Fatalf("predicate total = %d, want 1", pred.Total)
	}

	// Repeat request must come from the snapshot's result cache.
	before := s.Stats().ResultHits
	getJSON(t, ts.URL+"/api/query?q="+url.QueryEscape("//institution"), &qr)
	if got := s.Stats().ResultHits; got != before+1 {
		t.Fatalf("result cache hits %d -> %d, want +1", before, got)
	}
}

func TestCountEndpoint(t *testing.T) {
	s := NewServer(testRepo(t, 5, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for expr, want := range map[string]int{
		"//institution":             5,
		"/resume/contact":           5,
		"//*":                       25, // 5 docs x 5 elements
		"/education/institution":    0,  // anchored at root: no match
		`//degree[@val="B.S."]`:     5,
		`//degree[@val="M.S."]`:     0,
		`//institution[@val~"UC "]`: 5,
	} {
		var cr CountResponse
		getJSON(t, ts.URL+"/api/count?q="+url.QueryEscape(expr), &cr)
		if cr.Count != want {
			t.Errorf("count(%s) = %d, want %d", expr, cr.Count, want)
		}
	}
}

func TestConceptEndpoint(t *testing.T) {
	s := NewServer(testRepo(t, 6, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var cr ConceptResponse
	getJSON(t, ts.URL+"/api/concept?name=institution", &cr)
	if cr.Total != 6 || len(cr.Instances) != 3 {
		t.Fatalf("total=%d instances=%d, want 6/3", cr.Total, len(cr.Instances))
	}
	// Values UC 0..UC 2 each appear twice, in two distinct docs.
	for _, inst := range cr.Instances {
		if inst.Count != 2 || inst.Docs != 2 {
			t.Errorf("instance %+v, want count=2 docs=2", inst)
		}
	}

	var one ConceptResponse
	getJSON(t, ts.URL+"/api/concept?name=institution&val=UC+1", &one)
	if one.Total != 2 || len(one.Instances) != 1 || one.Instances[0].Value != "UC 1" {
		t.Fatalf("val filter: %+v", one)
	}

	var sub ConceptResponse
	getJSON(t, ts.URL+"/api/concept?name=institution&val=UC&contains=1", &sub)
	if sub.Total != 6 {
		t.Fatalf("contains filter total = %d, want 6", sub.Total)
	}
}

func TestDocAndSchemaEndpoints(t *testing.T) {
	s := NewServer(testRepo(t, 3, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var docs struct {
		Count int      `json:"count"`
		Names []string `json:"names"`
	}
	getJSON(t, ts.URL+"/api/docs", &docs)
	if docs.Count != 3 || docs.Names[1] != "doc-001" {
		t.Fatalf("docs: %+v", docs)
	}

	for _, target := range []string{"/api/doc?i=1", "/api/doc?name=doc-001"} {
		resp, err := http.Get(ts.URL + target)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != 200 || !strings.Contains(body, "person-1") {
			t.Fatalf("%s: status %d body %q", target, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/api/dtd")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); !strings.Contains(body, "<!ELEMENT resume") {
		t.Fatalf("dtd body %q", body)
	}

	var paths struct {
		Paths []PathInfo `json:"paths"`
	}
	getJSON(t, ts.URL+"/api/paths", &paths)
	if len(paths.Paths) != 5 {
		t.Fatalf("paths = %d, want 5", len(paths.Paths))
	}
	for _, p := range paths.Paths {
		if p.Docs != 3 {
			t.Errorf("path %s docs = %d, want 3", p.Path, p.Docs)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestErrorResponses(t *testing.T) {
	s := NewServer(testRepo(t, 2, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		target string
		want   int
	}{
		{"/api/query", http.StatusBadRequest},
		{"/api/query?q=" + url.QueryEscape("//a[@val=unquoted]"), http.StatusBadRequest},
		{"/api/query?q=%2F%2Finstitution&limit=-1", http.StatusBadRequest},
		{"/api/count", http.StatusBadRequest},
		{"/api/doc", http.StatusBadRequest},
		{"/api/doc?i=99", http.StatusNotFound},
		{"/api/doc?name=nope", http.StatusNotFound},
		{"/api/concept", http.StatusBadRequest},
		{"/api/concept?name=a%2Fb", http.StatusBadRequest},
		{"/api/reload", http.StatusMethodNotAllowed}, // GET
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.target)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d", c.target, resp.StatusCode, c.want)
		}
	}
	if s.Stats().Errors != int64(len(cases)) {
		t.Errorf("error counter = %d, want %d", s.Stats().Errors, len(cases))
	}

	// Reload with no source configured is a server-side error.
	resp, err := http.Post(ts.URL+"/api/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("reload without source = %d, want 500", resp.StatusCode)
	}
}

func TestReloadSwapsGeneration(t *testing.T) {
	n := 0
	s := NewServer(testRepo(t, 2, 0), Options{
		Reload: func() (*repository.Repository, error) {
			n++
			return testRepo(t, 2+n, 100), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if got := s.Snapshot().Gen(); got != 1 {
		t.Fatalf("initial gen = %d, want 1", got)
	}
	resp, err := http.Post(ts.URL+"/api/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Gen uint64 `json:"gen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Gen != 2 || s.Snapshot().Gen() != 2 || s.Snapshot().Docs() != 3 {
		t.Fatalf("after reload: gen=%d docs=%d", s.Snapshot().Gen(), s.Snapshot().Docs())
	}
}

// TestSwapDuringLoad is the serving design's core guarantee under the race
// detector: many clients hammer the query surface while the snapshot is
// swapped out from under them, and every single request succeeds — no
// torn reads, no errors, no lost requests.
func TestSwapDuringLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s := NewServer(testRepo(t, 8, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clients := 64
	gen := 0
	res, err := LoadTest(s, ts.URL, LoadOptions{
		Clients:   clients,
		Duration:  1500 * time.Millisecond,
		Workload:  s.DefaultWorkload(8),
		SwapEvery: 20 * time.Millisecond,
		SwapRepo: func() *repository.Repository {
			gen++
			return testRepo(t, 8, gen)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %s", res)
	if res.Errors != 0 {
		t.Fatalf("%d of %d requests failed during swap-under-load", res.Errors, res.Requests)
	}
	if res.Requests < int64(clients) {
		t.Fatalf("only %d requests completed with %d clients", res.Requests, clients)
	}
	if res.Swaps == 0 {
		t.Fatal("no background swaps happened; the test exercised nothing")
	}
	if got := s.Stats().Requests; got != res.Requests {
		t.Fatalf("server counted %d requests, harness counted %d — lost requests", got, res.Requests)
	}
	if s.Snapshot().Gen() != uint64(res.Swaps)+1 {
		t.Fatalf("gen = %d after %d swaps", s.Snapshot().Gen(), res.Swaps)
	}
}

// TestConcurrentSnapshotReads races direct (no-HTTP) snapshot reads
// against continuous swaps — the in-process half of the swap guarantee.
func TestConcurrentSnapshotReads(t *testing.T) {
	s := NewServer(testRepo(t, 4, 0), Options{})
	stop := make(chan struct{})
	var swapped atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Swap(testRepo(t, 4, i))
			swapped.Add(1)
		}
	}()
	q, err := s.compile("//institution")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ix := s.Snapshot()
				if got := q.Count(ix.Frozen()); got != 4 {
					t.Errorf("count = %d, want 4", got)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if swapped.Load() == 0 {
		t.Fatal("no swaps completed")
	}
}

func TestDefaultWorkloadAllValid(t *testing.T) {
	s := NewServer(testRepo(t, 3, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	w := s.DefaultWorkload(0)
	if len(w) < 10 {
		t.Fatalf("workload too small: %d", len(w))
	}
	for _, target := range w {
		resp, err := http.Get(ts.URL + target)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("workload target %s = %d", target, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := NewServer(testRepo(t, 2, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	expr := url.QueryEscape("//contact")
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/api/query?q=" + expr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var st Stats
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Gen != 1 || st.Docs != 2 || st.Paths != 5 {
		t.Fatalf("stats identity: %+v", st)
	}
	if st.QueryEvals != 1 || st.ResultHits != 2 {
		t.Fatalf("stats caching: evals=%d resultHits=%d, want 1/2", st.QueryEvals, st.ResultHits)
	}
	if st.ResultCache.Hits != 2 || st.ResultCache.Entries != 1 {
		t.Fatalf("result cache stats: %+v", st.ResultCache)
	}
}

func BenchmarkServeQueryHot(b *testing.B) {
	s := NewServer(testRepo(b, 32, 0), Options{})
	req := httptest.NewRequest("GET", "/api/query?q="+url.QueryEscape("//institution"), nil)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatal(w.Code)
		}
	}
}

func BenchmarkServeCount(b *testing.B) {
	s := NewServer(testRepo(b, 32, 0), Options{})
	req := httptest.NewRequest("GET", "/api/count?q="+url.QueryEscape("//institution"), nil)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatal(w.Code)
		}
	}
}

func TestDriftEndpoint(t *testing.T) {
	s := NewServer(testRepo(t, 2, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before a watch cycle publishes anything the endpoint is a 404.
	resp, err := http.Get(ts.URL + "/api/drift")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/drift before publish = %d, want 404", resp.StatusCode)
	}

	want := &schema.Drift{
		Version: schema.DriftVersion,
		Cycle:   3,
		Docs:    schema.DocDelta{Unchanged: 7, Changed: 2},
		ShiftedPaths: []schema.PathShift{
			{Path: "resume/contact", OldSupport: 1, NewSupport: 0.8},
		},
	}
	s.SetDrift(want)
	var got schema.Drift
	if resp := getJSON(t, ts.URL+"/api/drift", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/drift = %d, want 200", resp.StatusCode)
	}
	if got.Cycle != want.Cycle || got.Version != want.Version ||
		got.Docs != want.Docs || len(got.ShiftedPaths) != 1 ||
		got.ShiftedPaths[0] != want.ShiftedPaths[0] {
		t.Fatalf("drift round-trip mismatch: %+v", got)
	}

	// A newer report replaces the old one atomically.
	s.SetDrift(&schema.Drift{Version: schema.DriftVersion, Cycle: 4})
	getJSON(t, ts.URL+"/api/drift", &got)
	if got.Cycle != 4 {
		t.Fatalf("drift cycle after swap = %d, want 4", got.Cycle)
	}
}
