// Package serve implements webrevd's serving layer: an immutable,
// read-optimized snapshot of an XML repository (Index) behind an
// atomic.Pointer swap, so heavy concurrent read traffic never takes a lock
// and a background rebuild or reload replaces the whole dataset without
// dropping a request — the bayes.Frozen pattern applied to the repository
// itself.
//
// Every request loads the current snapshot once and answers entirely from
// it; a swap installs the next snapshot for subsequent requests while
// in-flight ones finish on the old generation. Two caches cut repeated
// work: a compiled-query cache on the Server (query compilation is
// data-independent, so it survives swaps) and a rendered-response cache on
// each Index (results depend on the data, so the cache dies with its
// snapshot — swap is the invalidation).
//
// Around that read path sits an overload-and-failure hardening layer (see
// ARCHITECTURE.md, "Overload & drain"): admission control sheds excess
// load with 503 + Retry-After instead of queueing unboundedly, every
// request carries a deadline that aborts slow scans mid-walk, a recover
// boundary converts handler panics into structured 500s, reloads validate
// the candidate snapshot and keep the last good generation on any failure,
// and Daemon drains in-flight requests before exit.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webrev/internal/dtd"
	"webrev/internal/faultinject"
	"webrev/internal/memo"
	"webrev/internal/obs"
	"webrev/internal/pathindex"
	"webrev/internal/query"
	"webrev/internal/repository"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// maxQueryLen bounds the accepted query-expression length; longer
// expressions are rejected 400 before compilation touches them.
const maxQueryLen = 4096

// Index is one immutable serving snapshot: the repository's documents and
// DTD, the frozen path index, and this generation's rendered-response
// cache. All fields are read-only after construction; any number of
// requests may share an Index without synchronization.
type Index struct {
	gen     uint64
	repo    *repository.Repository
	names   []string
	byName  map[string]int
	frozen  *pathindex.Frozen
	dtdText string
	results *memo.Cache[[]byte] // rendered query responses; dies with the snapshot
}

// Gen returns the snapshot's generation number (1 for the initial load,
// incremented by every swap).
func (ix *Index) Gen() uint64 { return ix.gen }

// Docs returns the number of documents in the snapshot.
func (ix *Index) Docs() int { return len(ix.names) }

// Frozen returns the snapshot's read-only path index.
func (ix *Index) Frozen() *pathindex.Frozen { return ix.frozen }

// Repo returns the repository the snapshot serves. The repository is
// immutable once inside an Index; callers may share it with another
// server (e.g. the bench harness's overload pass).
func (ix *Index) Repo() *repository.Repository { return ix.repo }

func newIndex(gen uint64, repo *repository.Repository, resultCap int) *Index {
	names := repo.Names()
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	return &Index{
		gen:     gen,
		repo:    repo,
		names:   names,
		byName:  byName,
		frozen:  repo.Index().Freeze(),
		dtdText: repo.DTD().Render(),
		results: memo.New[[]byte](resultCap),
	}
}

// Options parameterizes NewServer. The zero value serves with defaults:
// no admission limit, a 30s request deadline, and no reload source.
type Options struct {
	// Tracer records serve-stage spans and counters; nil means the no-op
	// tracer.
	Tracer obs.Tracer
	// QueryCacheSize bounds the compiled-query cache (default 1024; the
	// cache survives snapshot swaps).
	QueryCacheSize int
	// ResultCacheSize bounds each snapshot's rendered-response cache
	// (default 4096; invalidated wholesale by a swap).
	ResultCacheSize int
	// MaxResults caps the matches rendered for one query request; Count
	// remains exact beyond it (default 1000).
	MaxResults int
	// MaxInFlight bounds the /api requests executing concurrently; excess
	// requests wait briefly in a bounded queue and are then shed with a
	// 503 + Retry-After. 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds the requests waiting for an in-flight slot (default
	// MaxInFlight when admission is enabled; negative means no queue).
	MaxQueue int
	// QueueWait caps how long a queued request waits for a slot before
	// being shed (default 100ms).
	QueueWait time.Duration
	// RequestTimeout is the default per-request deadline propagated via
	// context through query evaluation (default 30s; negative disables).
	RequestTimeout time.Duration
	// MaxRequestTimeout caps the ?timeout= override a client may request
	// (default 1m).
	MaxRequestTimeout time.Duration
	// RetryAfter is the Retry-After value, in seconds, advertised on shed
	// responses (default 1).
	RetryAfter int
	// Faults, when set, fires a seeded fault injector at the top of every
	// /api request (stage obs.ServeEndpointStage(endpoint), key the request
	// URI) — the chaos harness's hook for handler panics, errors and
	// delays. Nil in production.
	Faults *faultinject.Stage
	// Reload, when set, backs POST /api/reload: it produces the next
	// repository (reloading a directory, rebuilding a corpus) and the
	// server swaps to it atomically — but only after the candidate passes
	// ValidateSnapshot; a failing, panicking, or corrupt reload leaves the
	// current generation serving.
	Reload func() (*repository.Repository, error)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.QueryCacheSize == 0 {
		out.QueryCacheSize = 1024
	}
	if out.ResultCacheSize == 0 {
		out.ResultCacheSize = 4096
	}
	if out.MaxResults <= 0 {
		out.MaxResults = 1000
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = out.MaxInFlight
	} else if out.MaxQueue < 0 {
		out.MaxQueue = 0
	}
	if out.QueueWait <= 0 {
		out.QueueWait = 100 * time.Millisecond
	}
	if out.RequestTimeout == 0 {
		out.RequestTimeout = 30 * time.Second
	}
	if out.MaxRequestTimeout <= 0 {
		out.MaxRequestTimeout = time.Minute
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = 1
	}
	return out
}

// endpointNames is the fixed set of endpoint labels the per-endpoint
// latency histograms track.
var endpointNames = []string{
	"healthz", "readyz", "query", "count", "paths", "docs", "doc",
	"dtd", "concept", "stats", "drift", "reload",
}

// Server answers repository queries over HTTP from the current snapshot.
// Create with NewServer; swap in new data with Swap or Reload. Server is
// safe for concurrent use — the handlers are read-only against whichever
// snapshot they load first.
type Server struct {
	cur     atomic.Pointer[Index]
	gen     atomic.Uint64
	drift   atomic.Pointer[schema.Drift]
	queries *memo.Cache[*query.Query]
	tr      obs.Tracer
	opts    Options
	mux     *http.ServeMux
	adm     *admission                // nil when admission control is off
	hist    map[string]*obs.Histogram // per-endpoint latency; fixed keys

	reloadMu sync.Mutex // serializes Reload; Swap itself is lock-free
	draining atomic.Bool

	// Serving totals, mirrored to the tracer's counters when one is
	// attached; kept as atomics so /api/stats never needs the collector.
	requests       atomic.Int64
	errors         atomic.Int64
	queryEvals     atomic.Int64
	resultHits     atomic.Int64
	compileHits    atomic.Int64
	swaps          atomic.Int64
	shed           atomic.Int64
	timeouts       atomic.Int64
	panics         atomic.Int64
	reloadRejected atomic.Int64

	lastReloadErr atomic.Pointer[string]

	panicMu  sync.Mutex
	panicLog []PanicRecord // most recent panicLogCap records
}

// panicLogCap bounds the panic records retained for /api/stats.
const panicLogCap = 8

// NewServer builds a server over the initial repository snapshot. A nil
// repo starts the server pending: /healthz answers (the process is live)
// but /readyz and every /api endpoint return 503 until the first valid
// snapshot is installed via Swap, Reload, or Follow — the boot shape of
// follow mode, where the reload source may not exist yet.
func NewServer(repo *repository.Repository, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		queries: memo.New[*query.Query](opts.QueryCacheSize),
		tr:      obs.OrNop(opts.Tracer),
		opts:    opts,
		hist:    make(map[string]*obs.Histogram, len(endpointNames)),
	}
	for _, name := range endpointNames {
		s.hist[name] = &obs.Histogram{}
	}
	if opts.MaxInFlight > 0 {
		s.adm = newAdmission(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait)
	}
	if repo != nil {
		s.install(repo)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.wrap("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.wrap("readyz", false, s.handleReadyz))
	s.mux.HandleFunc("/api/query", s.wrap("query", true, s.handleQuery))
	s.mux.HandleFunc("/api/count", s.wrap("count", true, s.handleCount))
	s.mux.HandleFunc("/api/paths", s.wrap("paths", true, s.handlePaths))
	s.mux.HandleFunc("/api/docs", s.wrap("docs", true, s.handleDocs))
	s.mux.HandleFunc("/api/doc", s.wrap("doc", true, s.handleDoc))
	s.mux.HandleFunc("/api/dtd", s.wrap("dtd", true, s.handleDTD))
	s.mux.HandleFunc("/api/concept", s.wrap("concept", true, s.handleConcept))
	s.mux.HandleFunc("/api/stats", s.wrap("stats", true, s.handleStats))
	s.mux.HandleFunc("/api/drift", s.wrap("drift", true, s.handleDrift))
	s.mux.HandleFunc("/api/reload", s.wrap("reload", true, s.handleReload))
	return s
}

// SetDrift publishes the latest schema-drift report; GET /api/drift serves
// it. The watch loop calls this after every cycle, typically alongside a
// Swap of the cycle's repository. A nil report clears the endpoint back to
// 404.
func (s *Server) SetDrift(d *schema.Drift) { s.drift.Store(d) }

// Drift returns the currently published drift report, or nil.
func (s *Server) Drift() *schema.Drift { return s.drift.Load() }

// handleDrift answers GET /api/drift with the latest published report.
func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request) {
	d := s.drift.Load()
	if d == nil {
		s.httpError(w, http.StatusNotFound, "no drift report published")
		return
	}
	writeJSON(w, d)
}

// install builds the next-generation snapshot and publishes it.
func (s *Server) install(repo *repository.Repository) uint64 {
	gen := s.gen.Add(1)
	ix := newIndex(gen, repo, s.opts.ResultCacheSize)
	s.cur.Store(ix)
	s.swaps.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeSwaps, 1)
	}
	return gen
}

// Swap atomically replaces the serving snapshot with one built from repo
// and returns the new generation. Readers in flight keep the snapshot they
// started with; no request is blocked or dropped. Swap trusts its caller —
// untrusted sources (reload, follow mode) go through Reload or TrySwap,
// which validate first.
func (s *Server) Swap(repo *repository.Repository) uint64 {
	sp := s.tr.StartSpan(obs.StageServeSwap)
	defer sp.End()
	return s.install(repo)
}

// ValidateSnapshot decides whether a candidate repository is fit to serve:
// non-nil, non-empty, with a parseable DTD and a non-empty path index. A
// reload source mid-write or corrupt on disk fails here and the server
// keeps answering from the last good generation.
func ValidateSnapshot(repo *repository.Repository) error {
	if repo == nil {
		return fmt.Errorf("candidate snapshot is nil")
	}
	if repo.DTD() == nil {
		return fmt.Errorf("candidate snapshot has no DTD")
	}
	if _, err := dtd.Parse(repo.DTD().Render()); err != nil {
		return fmt.Errorf("candidate DTD does not re-parse: %w", err)
	}
	if repo.Len() == 0 {
		return fmt.Errorf("candidate snapshot is empty")
	}
	if len(repo.Index().Paths()) == 0 {
		return fmt.Errorf("candidate snapshot has an empty path index")
	}
	return nil
}

// TrySwap validates the candidate and swaps to it; on validation failure
// the current generation keeps serving, the rejection is counted
// (serve.reload_rejected) and surfaced on /api/stats, and the error is
// returned. This is the swap follow mode and /api/reload share.
func (s *Server) TrySwap(repo *repository.Repository) (uint64, error) {
	if err := ValidateSnapshot(repo); err != nil {
		s.rejectReload(err)
		return 0, err
	}
	gen := s.Swap(repo)
	s.clearReloadErr()
	return gen, nil
}

// safeReload invokes the configured reload source with a recover boundary:
// a panicking loader becomes an error, never a dead process.
func safeReload(load func() (*repository.Repository, error)) (repo *repository.Repository, err error) {
	defer func() {
		if v := recover(); v != nil {
			repo, err = nil, fmt.Errorf("reload source panicked: %v", v)
		}
	}()
	return load()
}

// rejectReload records one rejected reload: counter, tracer, and the error
// text /api/stats surfaces until a reload succeeds.
func (s *Server) rejectReload(err error) {
	s.reloadRejected.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeReloadRejected, 1)
	}
	msg := err.Error()
	s.lastReloadErr.Store(&msg)
}

func (s *Server) clearReloadErr() { s.lastReloadErr.Store(nil) }

// LastReloadError returns the most recent reload failure, or "" when the
// last reload succeeded (or none was attempted).
func (s *Server) LastReloadError() string {
	if p := s.lastReloadErr.Load(); p != nil {
		return *p
	}
	return ""
}

// Reload produces the next repository via Options.Reload, validates it,
// and swaps to it. A loader error or panic, or a candidate that fails
// ValidateSnapshot, leaves the current generation serving and is recorded
// as a rejected reload. Concurrent reloads are serialized; reads are never
// blocked.
func (s *Server) Reload() (uint64, error) {
	if s.opts.Reload == nil {
		return 0, fmt.Errorf("serve: no reload source configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	repo, err := safeReload(s.opts.Reload)
	if err != nil {
		err = fmt.Errorf("serve: reload: %w", err)
		s.rejectReload(err)
		return 0, err
	}
	gen, err := s.TrySwap(repo)
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	return gen, nil
}

// Snapshot returns the current serving snapshot, or nil when none has been
// installed yet (a pending follow-mode server).
func (s *Server) Snapshot() *Index { return s.cur.Load() }

// Ready reports whether the server has a snapshot installed and is not
// draining — the /readyz condition.
func (s *Server) Ready() bool { return s.cur.Load() != nil && !s.draining.Load() }

// BeginDrain marks the server draining: /readyz flips to 503 so load
// balancers stop routing new traffic, while in-flight and straggler
// requests still answer normally. Called by Daemon on SIGTERM; idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) && s.tr.Enabled() {
		s.tr.Add(obs.CtrServeDrains, 1)
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP surface: the /api routes plus /healthz and
// /readyz.
func (s *Server) Handler() http.Handler { return s.mux }

// Mux exposes the underlying mux so callers can mount extra routes (the
// obs debug surface) on the same listener.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// snapshot loads the current snapshot for a handler, answering 503 (and
// returning nil) when none is installed yet.
func (s *Server) snapshot(w http.ResponseWriter) *Index {
	ix := s.cur.Load()
	if ix == nil {
		s.httpError(w, http.StatusServiceUnavailable, "no snapshot installed yet")
	}
	return ix
}

// requestTimeout resolves the deadline for one request: the server default
// overridden by a well-formed ?timeout= duration, capped at
// MaxRequestTimeout. A malformed or non-positive override is an error the
// handler answers 400.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	d := s.opts.RequestTimeout
	if d < 0 {
		d = 0
	}
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		td, err := time.ParseDuration(raw)
		if err != nil || td <= 0 {
			return 0, fmt.Errorf("bad timeout %q (want a positive Go duration like 250ms)", raw)
		}
		d = td
	}
	if d > s.opts.MaxRequestTimeout {
		d = s.opts.MaxRequestTimeout
	}
	return d, nil
}

// wrap is the per-request envelope, outermost first: panic recovery (a
// handler panic becomes a structured 500, never a dead process), the
// request counter and latency span/histogram, admission control for /api
// endpoints, deadline propagation, and the chaos harness's fault injector.
func (s *Server) wrap(endpoint string, admit bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	hist := s.hist[endpoint]
	stage := obs.ServeEndpointStage(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sp := s.tr.StartSpan(obs.StageServe)
		s.requests.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeRequests, 1)
		}
		sw := &statusWriter{ResponseWriter: w}
		uri := r.URL.RequestURI()
		t0 := time.Now()
		defer func() {
			if v := recover(); v != nil {
				s.recordPanic(stage, uri, v, sw)
			}
			d := time.Since(t0)
			hist.Observe(d)
			if s.tr.Enabled() {
				s.tr.Observe(stage, d)
			}
			sp.End()
		}()
		if admit {
			if s.adm != nil {
				if !s.adm.acquire(r.Context()) {
					s.shedRequest(sw)
					return
				}
				defer s.release()
				s.noteInFlight()
			}
			d, err := s.requestTimeout(r)
			if err != nil {
				s.httpError(sw, http.StatusBadRequest, "%v", err)
				return
			}
			if d > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), d)
				defer cancel()
				r = r.WithContext(ctx)
			}
			if s.opts.Faults != nil {
				if err := s.opts.Faults.Fire(stage, uri); err != nil {
					s.httpError(sw, http.StatusInternalServerError, "%v", err)
					return
				}
			}
		}
		h(sw, r)
	}
}

// noteInFlight mirrors the admission gauges into the tracer after a
// successful acquire.
func (s *Server) noteInFlight() {
	if s.adm == nil || !s.tr.Enabled() {
		return
	}
	cur := s.adm.inflight.Load()
	s.tr.Set(obs.GaugeServeInFlight, cur)
	s.tr.Set(obs.GaugeServeQueueDepth, s.adm.queued.Load())
	if c, ok := s.tr.(*obs.Collector); ok {
		c.SetMax(obs.GaugeServeInFlightPeak, cur)
	}
}

// release returns this request's admission slot.
func (s *Server) release() {
	s.adm.release()
	if s.tr.Enabled() {
		s.tr.Set(obs.GaugeServeInFlight, s.adm.inflight.Load())
		s.tr.Set(obs.GaugeServeQueueDepth, s.adm.queued.Load())
	}
}

// shedRequest answers an unadmitted request: 503 with a Retry-After so
// well-behaved clients back off, counted separately from handler errors.
func (s *Server) shedRequest(w http.ResponseWriter) {
	s.shed.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeShed, 1)
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfter))
	s.httpError(w, http.StatusServiceUnavailable, "overloaded, retry after %ds", s.opts.RetryAfter)
}

// timeoutError answers a request whose propagated deadline fired during
// evaluation.
func (s *Server) timeoutError(w http.ResponseWriter, err error) {
	s.timeouts.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeTimeouts, 1)
	}
	s.httpError(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", err)
}

// PanicRecord is the structured trace of one recovered handler panic — the
// serving layer's mirror of the build pipeline's per-document
// FailureRecord: which endpoint, which request, what blew up, and where.
type PanicRecord struct {
	// Stage is the per-endpoint obs stage name
	// (obs.ServeEndpointStage(endpoint)).
	Stage string `json:"stage"`
	// URL is the request URI that triggered the panic.
	URL string `json:"url"`
	// Kind is always "panic"; the field keeps the record shape aligned
	// with core.FailureRecord.
	Kind string `json:"kind"`
	// Err is the panic value.
	Err string `json:"err"`
	// Stack is the goroutine stack at the recovery point.
	Stack string `json:"stack,omitempty"`
}

// recordPanic converts a recovered handler panic into a 500 (when the
// response has not started), a counter, and a retained PanicRecord.
func (s *Server) recordPanic(stage, uri string, v any, sw *statusWriter) {
	s.panics.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServePanics, 1)
	}
	rec := PanicRecord{
		Stage: stage,
		URL:   uri,
		Kind:  "panic",
		Err:   fmt.Sprint(v),
		Stack: string(debug.Stack()),
	}
	s.panicMu.Lock()
	s.panicLog = append(s.panicLog, rec)
	if len(s.panicLog) > panicLogCap {
		s.panicLog = s.panicLog[len(s.panicLog)-panicLogCap:]
	}
	s.panicMu.Unlock()
	if !sw.wrote {
		s.httpError(sw, http.StatusInternalServerError, "internal error: %v", v)
	}
}

// Panics returns a copy of the retained panic records, newest last.
func (s *Server) Panics() []PanicRecord {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	out := make([]PanicRecord, len(s.panicLog))
	copy(out, s.panicLog)
	// Stacks are for /api/stats consumers; trim trailing newline noise.
	for i := range out {
		out[i].Stack = strings.TrimRight(out[i].Stack, "\n")
	}
	return out
}

// statusWriter tracks whether a handler already started its response, so
// the recover boundary knows when a 500 can still be written, and what
// status was sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.status = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.status = true, http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeErrors, 1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// compile returns the compiled form of expr, consulting the
// swap-surviving query cache.
func (s *Server) compile(expr string) (*query.Query, error) {
	if len(expr) > maxQueryLen {
		return nil, fmt.Errorf("query too long: %d bytes (limit %d)", len(expr), maxQueryLen)
	}
	if q, ok := s.queries.Get(expr); ok {
		s.compileHits.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeCompileHits, 1)
		}
		return q, nil
	}
	q, err := query.Compile(expr)
	if err != nil {
		return nil, err
	}
	s.queries.Add(strings.Clone(expr), q)
	return q, nil
}

// Match is one rendered query result.
type Match struct {
	Doc  string `json:"doc"`
	Path string `json:"path"`
	Val  string `json:"val,omitempty"`
	Pos  int    `json:"pos"`
}

// QueryResponse is the /api/query payload.
type QueryResponse struct {
	Query     string  `json:"query"`
	Gen       uint64  `json:"gen"`
	Total     int     `json:"total"`
	Truncated bool    `json:"truncated,omitempty"`
	Results   []Match `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit := s.opts.MaxResults
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
		if n < limit {
			limit = n
		}
	}
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	key := "q\x00" + expr + "\x00" + strconv.Itoa(limit)
	if body, ok := ix.results.Get(key); ok {
		s.resultHits.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeResultHits, 1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.countQueryEval()
	ctx := r.Context()
	resp := QueryResponse{Query: expr, Gen: ix.gen, Results: []Match{}}
	err = q.EachContext(ctx, ix.frozen, func(path string, ref pathindex.Ref) bool {
		if len(resp.Results) >= limit {
			resp.Truncated = true
			return false
		}
		resp.Results = append(resp.Results, Match{
			Doc:  ix.names[ref.Doc],
			Path: path,
			Val:  ref.Node.Val(),
			Pos:  ref.Pos,
		})
		return true
	})
	if err != nil {
		s.timeoutError(w, err)
		return
	}
	if resp.Truncated {
		// The counting path is allocation-free, so an exact total stays
		// cheap even when rendering is capped.
		if resp.Total, err = q.CountContext(ctx, ix.frozen); err != nil {
			s.timeoutError(w, err)
			return
		}
	} else {
		resp.Total = len(resp.Results)
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	ix.results.Add(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) countQueryEval() {
	s.queryEvals.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeQueries, 1)
	}
}

// CountResponse is the /api/count payload.
type CountResponse struct {
	Query string `json:"query"`
	Gen   uint64 `json:"gen"`
	Count int    `json:"count"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	s.countQueryEval()
	// Query.Count never materializes the matches — the endpoint stays
	// allocation-free however many nodes the expression touches.
	n, err := q.CountContext(r.Context(), ix.frozen)
	if err != nil {
		s.timeoutError(w, err)
		return
	}
	writeJSON(w, CountResponse{Query: expr, Gen: ix.gen, Count: n})
}

// PathInfo is one row of the /api/paths payload.
type PathInfo struct {
	Path        string  `json:"path"`
	Docs        int     `json:"docs"`
	Occurrences int     `json:"occurrences"`
	AvgPosition float64 `json:"avg_position"`
}

func (s *Server) handlePaths(w http.ResponseWriter, _ *http.Request) {
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	paths := ix.frozen.Paths()
	out := make([]PathInfo, 0, len(paths))
	for _, p := range paths {
		avg, _ := ix.frozen.AvgPosition(p)
		out = append(out, PathInfo{
			Path:        p,
			Docs:        ix.frozen.DocFrequency(p),
			Occurrences: len(ix.frozen.Lookup(p)),
			AvgPosition: avg,
		})
	}
	writeJSON(w, map[string]any{"gen": ix.gen, "paths": out})
}

func (s *Server) handleDocs(w http.ResponseWriter, _ *http.Request) {
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	writeJSON(w, map[string]any{"gen": ix.gen, "count": len(ix.names), "names": ix.names})
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	var i int
	switch {
	case r.URL.Query().Get("name") != "":
		name := r.URL.Query().Get("name")
		idx, ok := ix.byName[name]
		if !ok {
			s.httpError(w, http.StatusNotFound, "no document named %q", name)
			return
		}
		i = idx
	case r.URL.Query().Get("i") != "":
		n, err := strconv.Atoi(r.URL.Query().Get("i"))
		if err != nil || n < 0 || n >= len(ix.names) {
			s.httpError(w, http.StatusNotFound, "document index out of range")
			return
		}
		i = n
	default:
		s.httpError(w, http.StatusBadRequest, "missing name or i parameter")
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("X-Webrev-Doc", ix.names[i])
	fmt.Fprint(w, xmlout.Marshal(ix.repo.Doc(i)))
}

func (s *Server) handleDTD(w http.ResponseWriter, _ *http.Request) {
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, ix.dtdText)
}

// Instance is one distinct value of a concept in the /api/concept payload.
type Instance struct {
	Value string `json:"value"`
	Count int    `json:"count"`
	Docs  int    `json:"docs"`
}

// ConceptResponse is the /api/concept payload: the concept/instance view
// of the repository (paper §2's concept vocabulary served back).
type ConceptResponse struct {
	Concept   string     `json:"concept"`
	Gen       uint64     `json:"gen"`
	Total     int        `json:"total"`
	Instances []Instance `json:"instances"`
}

func (s *Server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" || strings.ContainsAny(name, "/[]* \t") {
		s.httpError(w, http.StatusBadRequest, "missing or malformed concept name")
		return
	}
	expr := "//" + name
	if val := r.URL.Query().Get("val"); val != "" {
		op := "="
		if r.URL.Query().Get("contains") != "" {
			op = "~"
		}
		expr += "[@val" + op + quoteValue(val) + "]"
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ix := s.snapshot(w)
	if ix == nil {
		return
	}
	s.countQueryEval()
	type agg struct {
		count int
		// Distinct docs need a set: a concept can live under several
		// label paths, so refs are not globally doc-ordered.
		docs map[int]struct{}
	}
	byVal := make(map[string]*agg)
	order := []string{}
	total := 0
	err = q.EachContext(r.Context(), ix.frozen, func(_ string, ref pathindex.Ref) bool {
		total++
		v := ref.Node.Val()
		a := byVal[v]
		if a == nil {
			a = &agg{docs: make(map[int]struct{}, 1)}
			byVal[v] = a
			order = append(order, v)
		}
		a.count++
		a.docs[ref.Doc] = struct{}{}
		return true
	})
	if err != nil {
		s.timeoutError(w, err)
		return
	}
	sort.Strings(order)
	resp := ConceptResponse{Concept: name, Gen: ix.gen, Total: total, Instances: []Instance{}}
	for _, v := range order {
		if len(resp.Instances) >= s.opts.MaxResults {
			break
		}
		a := byVal[v]
		resp.Instances = append(resp.Instances, Instance{Value: v, Count: a.count, Docs: len(a.docs)})
	}
	writeJSON(w, resp)
}

// quoteValue renders v as a query-language string literal.
func quoteValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return `"` + v + `"`
}

// Stats is the /api/stats payload.
type Stats struct {
	Gen      uint64 `json:"gen"`
	Docs     int    `json:"docs"`
	Paths    int    `json:"paths"`
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`

	Requests    int64 `json:"requests"`
	Errors      int64 `json:"errors"`
	QueryEvals  int64 `json:"query_evals"`
	ResultHits  int64 `json:"result_cache_hits"`
	CompileHits int64 `json:"compile_cache_hits"`
	Swaps       int64 `json:"swaps"`

	// Overload & failure hardening totals.
	Shed           int64  `json:"shed"`
	Timeouts       int64  `json:"timeouts"`
	Panics         int64  `json:"panics"`
	ReloadRejected int64  `json:"reload_rejected"`
	LastReloadErr  string `json:"last_reload_error,omitempty"`
	InFlight       int64  `json:"in_flight"`
	InFlightPeak   int64  `json:"in_flight_peak"`
	QueueDepth     int64  `json:"queue_depth"`

	QueryCache  memo.Stats `json:"query_cache"`
	ResultCache memo.Stats `json:"result_cache"`

	// Endpoints carries the per-endpoint latency histograms.
	Endpoints map[string]obs.HistStats `json:"endpoints,omitempty"`

	// PanicLog is the tail of recovered handler panics (stacks trimmed).
	PanicLog []PanicRecord `json:"panic_log,omitempty"`
}

// Stats returns the server's current serving totals. It works on a pending
// server too (zero snapshot identity, live counters).
func (s *Server) Stats() Stats {
	st := Stats{
		Ready:          s.Ready(),
		Draining:       s.draining.Load(),
		Requests:       s.requests.Load(),
		Errors:         s.errors.Load(),
		QueryEvals:     s.queryEvals.Load(),
		ResultHits:     s.resultHits.Load(),
		CompileHits:    s.compileHits.Load(),
		Swaps:          s.swaps.Load(),
		Shed:           s.shed.Load(),
		Timeouts:       s.timeouts.Load(),
		Panics:         s.panics.Load(),
		ReloadRejected: s.reloadRejected.Load(),
		LastReloadErr:  s.LastReloadError(),
		QueryCache:     s.queries.Stats(),
	}
	if s.adm != nil {
		st.InFlight = s.adm.inflight.Load()
		st.InFlightPeak = s.adm.peak.Load()
		st.QueueDepth = s.adm.queued.Load()
	}
	if ix := s.cur.Load(); ix != nil {
		st.Gen = ix.gen
		st.Docs = len(ix.names)
		st.Paths = len(ix.frozen.Paths())
		st.ResultCache = ix.results.Stats()
	}
	st.Endpoints = make(map[string]obs.HistStats, len(s.hist))
	for name, h := range s.hist {
		if hs := h.Snapshot(); hs.Count > 0 {
			st.Endpoints[name] = hs
		}
	}
	st.PanicLog = s.Panics()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleHealthz is liveness: the process is up and answering, snapshot or
// not. Load balancers wanting routability ask /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var gen uint64
	docs := 0
	if ix := s.cur.Load(); ix != nil {
		gen, docs = ix.gen, len(ix.names)
	}
	writeJSON(w, map[string]any{"status": "ok", "gen": gen, "docs": docs})
}

// handleReadyz is readiness: 503 until the first snapshot is installed and
// again from BeginDrain onward, 200 in between.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		s.httpError(w, http.StatusServiceUnavailable, "draining")
	case s.cur.Load() == nil:
		s.httpError(w, http.StatusServiceUnavailable, "no snapshot installed yet")
	default:
		ix := s.cur.Load()
		writeJSON(w, map[string]any{"status": "ready", "gen": ix.gen, "docs": len(ix.names)})
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "reload requires POST")
		return
	}
	gen, err := s.Reload()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"status": "reloaded", "gen": gen})
}
