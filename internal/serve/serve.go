// Package serve implements webrevd's serving layer: an immutable,
// read-optimized snapshot of an XML repository (Index) behind an
// atomic.Pointer swap, so heavy concurrent read traffic never takes a lock
// and a background rebuild or reload replaces the whole dataset without
// dropping a request — the bayes.Frozen pattern applied to the repository
// itself.
//
// Every request loads the current snapshot once and answers entirely from
// it; a swap installs the next snapshot for subsequent requests while
// in-flight ones finish on the old generation. Two caches cut repeated
// work: a compiled-query cache on the Server (query compilation is
// data-independent, so it survives swaps) and a rendered-response cache on
// each Index (results depend on the data, so the cache dies with its
// snapshot — swap is the invalidation).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"webrev/internal/memo"
	"webrev/internal/obs"
	"webrev/internal/pathindex"
	"webrev/internal/query"
	"webrev/internal/repository"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// Index is one immutable serving snapshot: the repository's documents and
// DTD, the frozen path index, and this generation's rendered-response
// cache. All fields are read-only after construction; any number of
// requests may share an Index without synchronization.
type Index struct {
	gen     uint64
	repo    *repository.Repository
	names   []string
	byName  map[string]int
	frozen  *pathindex.Frozen
	dtdText string
	results *memo.Cache[[]byte] // rendered query responses; dies with the snapshot
}

// Gen returns the snapshot's generation number (1 for the initial load,
// incremented by every swap).
func (ix *Index) Gen() uint64 { return ix.gen }

// Docs returns the number of documents in the snapshot.
func (ix *Index) Docs() int { return len(ix.names) }

// Frozen returns the snapshot's read-only path index.
func (ix *Index) Frozen() *pathindex.Frozen { return ix.frozen }

func newIndex(gen uint64, repo *repository.Repository, resultCap int) *Index {
	names := repo.Names()
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	return &Index{
		gen:     gen,
		repo:    repo,
		names:   names,
		byName:  byName,
		frozen:  repo.Index().Freeze(),
		dtdText: repo.DTD().Render(),
		results: memo.New[[]byte](resultCap),
	}
}

// Options parameterizes NewServer. The zero value serves with defaults.
type Options struct {
	// Tracer records serve-stage spans and counters; nil means the no-op
	// tracer.
	Tracer obs.Tracer
	// QueryCacheSize bounds the compiled-query cache (default 1024; the
	// cache survives snapshot swaps).
	QueryCacheSize int
	// ResultCacheSize bounds each snapshot's rendered-response cache
	// (default 4096; invalidated wholesale by a swap).
	ResultCacheSize int
	// MaxResults caps the matches rendered for one query request; Count
	// remains exact beyond it (default 1000).
	MaxResults int
	// Reload, when set, backs POST /api/reload: it produces the next
	// repository (reloading a directory, rebuilding a corpus) and the
	// server swaps to it atomically.
	Reload func() (*repository.Repository, error)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.QueryCacheSize == 0 {
		out.QueryCacheSize = 1024
	}
	if out.ResultCacheSize == 0 {
		out.ResultCacheSize = 4096
	}
	if out.MaxResults <= 0 {
		out.MaxResults = 1000
	}
	return out
}

// Server answers repository queries over HTTP from the current snapshot.
// Create with NewServer; swap in new data with Swap or Reload. Server is
// safe for concurrent use — the handlers are read-only against whichever
// snapshot they load first.
type Server struct {
	cur     atomic.Pointer[Index]
	gen     atomic.Uint64
	drift   atomic.Pointer[schema.Drift]
	queries *memo.Cache[*query.Query]
	tr      obs.Tracer
	opts    Options
	mux     *http.ServeMux

	reloadMu sync.Mutex // serializes Reload; Swap itself is lock-free

	// Serving totals, mirrored to the tracer's counters when one is
	// attached; kept as atomics so /api/stats never needs the collector.
	requests    atomic.Int64
	errors      atomic.Int64
	queryEvals  atomic.Int64
	resultHits  atomic.Int64
	compileHits atomic.Int64
	swaps       atomic.Int64
}

// NewServer builds a server over the initial repository snapshot.
func NewServer(repo *repository.Repository, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		queries: memo.New[*query.Query](opts.QueryCacheSize),
		tr:      obs.OrNop(opts.Tracer),
		opts:    opts,
	}
	s.install(repo)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.wrap(s.handleHealthz))
	s.mux.HandleFunc("/api/query", s.wrap(s.handleQuery))
	s.mux.HandleFunc("/api/count", s.wrap(s.handleCount))
	s.mux.HandleFunc("/api/paths", s.wrap(s.handlePaths))
	s.mux.HandleFunc("/api/docs", s.wrap(s.handleDocs))
	s.mux.HandleFunc("/api/doc", s.wrap(s.handleDoc))
	s.mux.HandleFunc("/api/dtd", s.wrap(s.handleDTD))
	s.mux.HandleFunc("/api/concept", s.wrap(s.handleConcept))
	s.mux.HandleFunc("/api/stats", s.wrap(s.handleStats))
	s.mux.HandleFunc("/api/drift", s.wrap(s.handleDrift))
	s.mux.HandleFunc("/api/reload", s.wrap(s.handleReload))
	return s
}

// SetDrift publishes the latest schema-drift report; GET /api/drift serves
// it. The watch loop calls this after every cycle, typically alongside a
// Swap of the cycle's repository. A nil report clears the endpoint back to
// 404.
func (s *Server) SetDrift(d *schema.Drift) { s.drift.Store(d) }

// Drift returns the currently published drift report, or nil.
func (s *Server) Drift() *schema.Drift { return s.drift.Load() }

// handleDrift answers GET /api/drift with the latest published report.
func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request) {
	d := s.drift.Load()
	if d == nil {
		s.httpError(w, http.StatusNotFound, "no drift report published")
		return
	}
	writeJSON(w, d)
}

// install builds the next-generation snapshot and publishes it.
func (s *Server) install(repo *repository.Repository) uint64 {
	gen := s.gen.Add(1)
	ix := newIndex(gen, repo, s.opts.ResultCacheSize)
	s.cur.Store(ix)
	s.swaps.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeSwaps, 1)
	}
	return gen
}

// Swap atomically replaces the serving snapshot with one built from repo
// and returns the new generation. Readers in flight keep the snapshot they
// started with; no request is blocked or dropped.
func (s *Server) Swap(repo *repository.Repository) uint64 {
	sp := s.tr.StartSpan(obs.StageServeSwap)
	defer sp.End()
	return s.install(repo)
}

// Reload produces the next repository via Options.Reload and swaps to it.
// Concurrent reloads are serialized; reads are never blocked.
func (s *Server) Reload() (uint64, error) {
	if s.opts.Reload == nil {
		return 0, fmt.Errorf("serve: no reload source configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	repo, err := s.opts.Reload()
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	return s.Swap(repo), nil
}

// Snapshot returns the current serving snapshot.
func (s *Server) Snapshot() *Index { return s.cur.Load() }

// Handler returns the HTTP surface: the /api routes plus /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Mux exposes the underlying mux so callers can mount extra routes (the
// obs debug surface) on the same listener.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// wrap is the per-request envelope: span, request counter, and the error
// counter fed by httpError via the response wrapper.
func (s *Server) wrap(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := s.tr.StartSpan(obs.StageServe)
		s.requests.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeRequests, 1)
		}
		h(w, r)
		sp.End()
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeErrors, 1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// compile returns the compiled form of expr, consulting the
// swap-surviving query cache.
func (s *Server) compile(expr string) (*query.Query, error) {
	if q, ok := s.queries.Get(expr); ok {
		s.compileHits.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeCompileHits, 1)
		}
		return q, nil
	}
	q, err := query.Compile(expr)
	if err != nil {
		return nil, err
	}
	s.queries.Add(strings.Clone(expr), q)
	return q, nil
}

// Match is one rendered query result.
type Match struct {
	Doc  string `json:"doc"`
	Path string `json:"path"`
	Val  string `json:"val,omitempty"`
	Pos  int    `json:"pos"`
}

// QueryResponse is the /api/query payload.
type QueryResponse struct {
	Query     string  `json:"query"`
	Gen       uint64  `json:"gen"`
	Total     int     `json:"total"`
	Truncated bool    `json:"truncated,omitempty"`
	Results   []Match `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit := s.opts.MaxResults
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
		if n < limit {
			limit = n
		}
	}
	ix := s.cur.Load()
	key := "q\x00" + expr + "\x00" + strconv.Itoa(limit)
	if body, ok := ix.results.Get(key); ok {
		s.resultHits.Add(1)
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrServeResultHits, 1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.countQueryEval()
	resp := QueryResponse{Query: expr, Gen: ix.gen, Results: []Match{}}
	q.Each(ix.frozen, func(path string, ref pathindex.Ref) bool {
		if len(resp.Results) >= limit {
			resp.Truncated = true
			return false
		}
		resp.Results = append(resp.Results, Match{
			Doc:  ix.names[ref.Doc],
			Path: path,
			Val:  ref.Node.Val(),
			Pos:  ref.Pos,
		})
		return true
	})
	if resp.Truncated {
		// The counting path is allocation-free, so an exact total stays
		// cheap even when rendering is capped.
		resp.Total = q.Count(ix.frozen)
	} else {
		resp.Total = len(resp.Results)
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	ix.results.Add(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) countQueryEval() {
	s.queryEvals.Add(1)
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrServeQueries, 1)
	}
}

// CountResponse is the /api/count payload.
type CountResponse struct {
	Query string `json:"query"`
	Gen   uint64 `json:"gen"`
	Count int    `json:"count"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		s.httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ix := s.cur.Load()
	s.countQueryEval()
	// Query.Count never materializes the matches — the endpoint stays
	// allocation-free however many nodes the expression touches.
	writeJSON(w, CountResponse{Query: expr, Gen: ix.gen, Count: q.Count(ix.frozen)})
}

// PathInfo is one row of the /api/paths payload.
type PathInfo struct {
	Path        string  `json:"path"`
	Docs        int     `json:"docs"`
	Occurrences int     `json:"occurrences"`
	AvgPosition float64 `json:"avg_position"`
}

func (s *Server) handlePaths(w http.ResponseWriter, _ *http.Request) {
	ix := s.cur.Load()
	paths := ix.frozen.Paths()
	out := make([]PathInfo, 0, len(paths))
	for _, p := range paths {
		avg, _ := ix.frozen.AvgPosition(p)
		out = append(out, PathInfo{
			Path:        p,
			Docs:        ix.frozen.DocFrequency(p),
			Occurrences: len(ix.frozen.Lookup(p)),
			AvgPosition: avg,
		})
	}
	writeJSON(w, map[string]any{"gen": ix.gen, "paths": out})
}

func (s *Server) handleDocs(w http.ResponseWriter, _ *http.Request) {
	ix := s.cur.Load()
	writeJSON(w, map[string]any{"gen": ix.gen, "count": len(ix.names), "names": ix.names})
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	ix := s.cur.Load()
	var i int
	switch {
	case r.URL.Query().Get("name") != "":
		name := r.URL.Query().Get("name")
		idx, ok := ix.byName[name]
		if !ok {
			s.httpError(w, http.StatusNotFound, "no document named %q", name)
			return
		}
		i = idx
	case r.URL.Query().Get("i") != "":
		n, err := strconv.Atoi(r.URL.Query().Get("i"))
		if err != nil || n < 0 || n >= len(ix.names) {
			s.httpError(w, http.StatusNotFound, "document index out of range")
			return
		}
		i = n
	default:
		s.httpError(w, http.StatusBadRequest, "missing name or i parameter")
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("X-Webrev-Doc", ix.names[i])
	fmt.Fprint(w, xmlout.Marshal(ix.repo.Doc(i)))
}

func (s *Server) handleDTD(w http.ResponseWriter, _ *http.Request) {
	ix := s.cur.Load()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, ix.dtdText)
}

// Instance is one distinct value of a concept in the /api/concept payload.
type Instance struct {
	Value string `json:"value"`
	Count int    `json:"count"`
	Docs  int    `json:"docs"`
}

// ConceptResponse is the /api/concept payload: the concept/instance view
// of the repository (paper §2's concept vocabulary served back).
type ConceptResponse struct {
	Concept   string     `json:"concept"`
	Gen       uint64     `json:"gen"`
	Total     int        `json:"total"`
	Instances []Instance `json:"instances"`
}

func (s *Server) handleConcept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" || strings.ContainsAny(name, "/[]* \t") {
		s.httpError(w, http.StatusBadRequest, "missing or malformed concept name")
		return
	}
	expr := "//" + name
	if val := r.URL.Query().Get("val"); val != "" {
		op := "="
		if r.URL.Query().Get("contains") != "" {
			op = "~"
		}
		expr += "[@val" + op + quoteValue(val) + "]"
	}
	q, err := s.compile(expr)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ix := s.cur.Load()
	s.countQueryEval()
	type agg struct {
		count int
		// Distinct docs need a set: a concept can live under several
		// label paths, so refs are not globally doc-ordered.
		docs map[int]struct{}
	}
	byVal := make(map[string]*agg)
	order := []string{}
	total := 0
	q.Each(ix.frozen, func(_ string, ref pathindex.Ref) bool {
		total++
		v := ref.Node.Val()
		a := byVal[v]
		if a == nil {
			a = &agg{docs: make(map[int]struct{}, 1)}
			byVal[v] = a
			order = append(order, v)
		}
		a.count++
		a.docs[ref.Doc] = struct{}{}
		return true
	})
	sort.Strings(order)
	resp := ConceptResponse{Concept: name, Gen: ix.gen, Total: total, Instances: []Instance{}}
	for _, v := range order {
		if len(resp.Instances) >= s.opts.MaxResults {
			break
		}
		a := byVal[v]
		resp.Instances = append(resp.Instances, Instance{Value: v, Count: a.count, Docs: len(a.docs)})
	}
	writeJSON(w, resp)
}

// quoteValue renders v as a query-language string literal.
func quoteValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return `"` + v + `"`
}

// Stats is the /api/stats payload.
type Stats struct {
	Gen         uint64     `json:"gen"`
	Docs        int        `json:"docs"`
	Paths       int        `json:"paths"`
	Requests    int64      `json:"requests"`
	Errors      int64      `json:"errors"`
	QueryEvals  int64      `json:"query_evals"`
	ResultHits  int64      `json:"result_cache_hits"`
	CompileHits int64      `json:"compile_cache_hits"`
	Swaps       int64      `json:"swaps"`
	QueryCache  memo.Stats `json:"query_cache"`
	ResultCache memo.Stats `json:"result_cache"`
}

// Stats returns the server's current serving totals.
func (s *Server) Stats() Stats {
	ix := s.cur.Load()
	return Stats{
		Gen:         ix.gen,
		Docs:        len(ix.names),
		Paths:       len(ix.frozen.Paths()),
		Requests:    s.requests.Load(),
		Errors:      s.errors.Load(),
		QueryEvals:  s.queryEvals.Load(),
		ResultHits:  s.resultHits.Load(),
		CompileHits: s.compileHits.Load(),
		Swaps:       s.swaps.Load(),
		QueryCache:  s.queries.Stats(),
		ResultCache: ix.results.Stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ix := s.cur.Load()
	writeJSON(w, map[string]any{"status": "ok", "gen": ix.gen, "docs": len(ix.names)})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "reload requires POST")
		return
	}
	gen, err := s.Reload()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"status": "reloaded", "gen": gen})
}
