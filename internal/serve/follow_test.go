package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webrev/internal/repository"
)

// TestFollowInstallsHealsAndRecovers walks the whole follow-mode
// lifecycle against a real checkpoint directory: pending until the source
// exists, ready after the first valid checkpoint, unharmed by a corrupt
// rewrite, and swapped forward when the source is repaired.
func TestFollowInstallsHealsAndRecovers(t *testing.T) {
	dir := t.TempDir() // exists but empty: the first loads must fail
	s := NewServer(nil, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- s.Follow(ctx, FollowOptions{
			Load:        func() (*repository.Repository, error) { return repository.Load(dir) },
			Fingerprint: func() (string, error) { return DirFingerprint(dir) },
			Interval:    5 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
		})
	}()

	// Empty source: the server stays pending while rejections accumulate.
	waitFor(t, 2*time.Second, "rejected reloads from the empty source", func() bool {
		return s.Stats().ReloadRejected >= 1
	})
	if s.Ready() {
		t.Fatal("server became ready with no checkpoint on disk")
	}

	// First valid checkpoint appears: the pending server flips ready.
	if err := testRepo(t, 3, 0).Save(dir); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "the first snapshot to install", s.Ready)
	if st := s.Stats(); st.Gen != 1 || st.Docs != 3 {
		t.Fatalf("after first install: gen=%d docs=%d, want gen 1 docs 3", st.Gen, st.Docs)
	}

	// Corrupt rewrite (garbage DTD): fingerprint changes, the load is
	// rejected, and the last good generation keeps serving.
	rejectedBefore := s.Stats().ReloadRejected
	if err := os.WriteFile(filepath.Join(dir, "schema.dtd"), []byte("<!NOT A DTD"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "the corrupt rewrite to be rejected", func() bool {
		return s.Stats().ReloadRejected > rejectedBefore
	})
	if st := s.Stats(); !st.Ready || st.Gen != 1 || st.Docs != 3 {
		t.Fatalf("after corrupt rewrite: ready=%v gen=%d docs=%d, want the retained gen 1", st.Ready, st.Gen, st.Docs)
	}
	if s.LastReloadError() == "" {
		t.Fatal("corrupt rewrite left no surfaced reload error")
	}

	// Repair with a bigger repository: follow installs gen 2 and clears
	// the surfaced error.
	if err := testRepo(t, 5, 100).Save(dir); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "the repaired checkpoint to install", func() bool {
		st := s.Stats()
		return st.Gen == 2 && st.Docs == 5
	})
	if got := s.LastReloadError(); got != "" {
		t.Fatalf("reload error still surfaced after recovery: %q", got)
	}

	// Healthy and unchanged: the fingerprint short-circuits, so neither
	// swaps nor rejections move.
	st0 := s.Stats()
	time.Sleep(50 * time.Millisecond)
	if st := s.Stats(); st.Swaps != st0.Swaps || st.ReloadRejected != st0.ReloadRejected {
		t.Fatalf("idle follow kept working: swaps %d->%d rejected %d->%d",
			st0.Swaps, st.Swaps, st0.ReloadRejected, st.ReloadRejected)
	}

	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Follow returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Follow did not return after cancel")
	}
}

// TestFollowRequiresLoad asserts the option contract.
func TestFollowRequiresLoad(t *testing.T) {
	s := NewServer(nil, Options{})
	if err := s.Follow(context.Background(), FollowOptions{}); err == nil {
		t.Fatal("Follow accepted a nil Load")
	}
}

// TestDirFingerprint asserts stability on an untouched checkpoint and
// sensitivity to both manifest-visible and torn (size-only) changes.
func TestDirFingerprint(t *testing.T) {
	dir := t.TempDir()
	if err := testRepo(t, 3, 0).Save(dir); err != nil {
		t.Fatal(err)
	}
	fp1, err := DirFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := DirFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint unstable on an untouched dir: %s vs %s", fp1, fp2)
	}

	// A torn doc rewrite — same manifest, different file size — must still
	// change the fingerprint.
	docs, err := filepath.Glob(filepath.Join(dir, "doc-*.xml"))
	if err != nil || len(docs) == 0 {
		t.Fatalf("no doc files in checkpoint (err=%v)", err)
	}
	f, err := os.OpenFile(docs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("  ")
	f.Close()
	fp3, err := DirFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("fingerprint blind to a doc-file size change")
	}

	if _, err := DirFingerprint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("fingerprint of a missing directory did not error")
	}
}

// TestBackoffDoubling pins the failure-backoff schedule.
func TestBackoffDoubling(t *testing.T) {
	base, max := 10*time.Millisecond, time.Second
	cases := map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		5: 160 * time.Millisecond,
		8: time.Second, // 1280ms capped
	}
	for n, want := range cases {
		if got := backoff(base, n, max); got != want {
			t.Errorf("backoff(%v, %d, %v) = %v, want %v", base, n, max, got, want)
		}
	}
	if got := backoff(2*time.Second, 1, time.Second); got != time.Second {
		t.Errorf("backoff base beyond max = %v, want capped at 1s", got)
	}
}
