package serve

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"webrev/internal/repository"
)

// TestErrorPathsHardening is the table of abuse-shaped inputs the serving
// layer must answer with a clean 4xx/5xx (never a panic, never a hang):
// malformed deadlines, oversized queries, unknown documents, and a reload
// with no source behind it.
func TestErrorPathsHardening(t *testing.T) {
	s := NewServer(testRepo(t, 3, 0), Options{}) // no Options.Reload
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	oversized := "//" + strings.Repeat("a", maxQueryLen)
	cases := []struct {
		name   string
		method string
		path   string
		want   int
	}{
		{"malformed timeout", "GET", "/api/query?q=" + url.QueryEscape("//institution") + "&timeout=banana", http.StatusBadRequest},
		{"negative timeout", "GET", "/api/query?q=" + url.QueryEscape("//institution") + "&timeout=-5s", http.StatusBadRequest},
		{"zero timeout", "GET", "/api/count?q=" + url.QueryEscape("//institution") + "&timeout=0s", http.StatusBadRequest},
		{"oversized query", "GET", "/api/query?q=" + url.QueryEscape(oversized), http.StatusBadRequest},
		{"oversized count", "GET", "/api/count?q=" + url.QueryEscape(oversized), http.StatusBadRequest},
		{"unknown doc name", "GET", "/api/doc?name=no-such-doc", http.StatusNotFound},
		{"doc index out of range", "GET", "/api/doc?i=999", http.StatusNotFound},
		{"reload without a source", "POST", "/api/reload", http.StatusInternalServerError},
		{"reload wrong method", "GET", "/api/reload", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
	if got := s.Stats().Errors; got != int64(len(cases)) {
		t.Fatalf("errors counter = %d, want %d (one per rejected request)", got, len(cases))
	}
}

// TestRequestDeadlineAnswers504 asserts an already-expired client deadline
// aborts evaluation and is answered 504 with the timeout counted.
func TestRequestDeadlineAnswers504(t *testing.T) {
	s := NewServer(testRepo(t, 4, 0), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/api/query?q=" + url.QueryEscape("//institution") + "&timeout=1ns",
		"/api/count?q=" + url.QueryEscape("//degree") + "&timeout=1ns",
		"/api/concept?name=institution&timeout=1ns",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("GET %s = %d, want 504", path, resp.StatusCode)
		}
	}
	if got := s.Stats().Timeouts; got != 3 {
		t.Fatalf("timeouts counter = %d, want 3", got)
	}

	// The same queries without the poisoned deadline still answer fine —
	// a timeout poisons one request, not the cached compilation.
	var cr CountResponse
	getJSON(t, ts.URL+"/api/count?q="+url.QueryEscape("//degree"), &cr)
	if cr.Count != 4 {
		t.Fatalf("count after timeouts = %d, want 4", cr.Count)
	}
}

// TestRequestTimeoutClamped asserts ?timeout= cannot exceed
// MaxRequestTimeout.
func TestRequestTimeoutClamped(t *testing.T) {
	s := NewServer(testRepo(t, 1, 0), Options{
		RequestTimeout:    time.Second,
		MaxRequestTimeout: 2 * time.Second,
	})
	req := httptest.NewRequest("GET", "/api/query?q=//x&timeout=10m", nil)
	d, err := s.requestTimeout(req)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2*time.Second {
		t.Fatalf("timeout clamped to %v, want 2s", d)
	}
	req = httptest.NewRequest("GET", "/api/query?q=//x", nil)
	if d, _ := s.requestTimeout(req); d != time.Second {
		t.Fatalf("default timeout = %v, want 1s", d)
	}
}

// TestReloadPanicRegression pins the satellite regression: a panicking
// Options.Reload leaves the generation unchanged, keeps the server
// answering, and surfaces the failure on /api/stats.
func TestReloadPanicRegression(t *testing.T) {
	s := NewServer(testRepo(t, 2, 0), Options{
		Reload: func() (*repository.Repository, error) { panic("loader exploded") },
	})
	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "loader exploded") {
		t.Fatalf("Reload error = %v, want the recovered panic", err)
	}
	st := s.Stats()
	if st.Gen != 1 || st.Docs != 2 {
		t.Fatalf("generation moved after panicking reload: gen=%d docs=%d", st.Gen, st.Docs)
	}
	if st.ReloadRejected != 1 || !strings.Contains(st.LastReloadErr, "loader exploded") {
		t.Fatalf("rejection not surfaced: rejected=%d lastErr=%q", st.ReloadRejected, st.LastReloadErr)
	}
	// Still serving.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var cr CountResponse
	getJSON(t, ts.URL+"/api/count?q="+url.QueryEscape("//institution"), &cr)
	if cr.Count != 2 {
		t.Fatalf("count after panicking reload = %d, want 2", cr.Count)
	}
}
