package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"webrev/internal/repository"
)

// FollowOptions parameterizes Server.Follow, the self-healing reload loop
// behind `webrevd -follow`. The zero value polls every 2s with failure
// backoff capped at 1m.
type FollowOptions struct {
	// Load produces a candidate repository from the followed source
	// (required). It runs under the same recover boundary as /api/reload:
	// a panic is a rejected reload, not a dead process.
	Load func() (*repository.Repository, error)
	// Fingerprint cheaply identifies the source's current content; Follow
	// only calls Load when the fingerprint differs from the last
	// successfully installed one. Nil means every poll attempts a load. A
	// fingerprint error counts as "changed" (the source may be mid-write —
	// exactly when validation must arbitrate).
	Fingerprint func() (string, error)
	// Interval is the poll cadence while healthy (default 2s).
	Interval time.Duration
	// MaxBackoff caps the exponential backoff applied after consecutive
	// failed reloads (default 1m). Backoff starts at Interval and doubles.
	MaxBackoff time.Duration
	// OnSwap, when set, observes each successful install (new generation,
	// fingerprint). For logs.
	OnSwap func(gen uint64, fingerprint string)
	// OnReject, when set, observes each rejected reload. For logs.
	OnReject func(err error)
}

func (o *FollowOptions) withDefaults() FollowOptions {
	out := *o
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = time.Minute
	}
	return out
}

// Follow polls a reload source until ctx is done, installing each changed,
// valid snapshot and surviving everything else: a missing source, a
// mid-write or corrupt checkpoint, a panicking loader. On any failure the
// current generation keeps serving, serve.reload_rejected is counted, and
// the next attempt backs off exponentially (reset by the next success).
// The first successful install also flips a pending server ready.
//
// Follow is the continuous-operation consumer of PR 8's watch loop: point
// it at the repository directory `webrev watch -out DIR` rewrites each
// cycle and webrevd tracks the watcher's schema without restarts.
func (s *Server) Follow(ctx context.Context, opts FollowOptions) error {
	if opts.Load == nil {
		return fmt.Errorf("serve: follow: Load is required")
	}
	opts = opts.withDefaults()

	lastGood := "" // fingerprint of the installed generation
	failures := 0  // consecutive rejected reloads
	first := true  // attempt an immediate load before the first sleep
	for {
		if !first {
			delay := opts.Interval
			if failures > 0 {
				delay = backoff(opts.Interval, failures, opts.MaxBackoff)
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		first = false

		fp := ""
		if opts.Fingerprint != nil {
			v, err := opts.Fingerprint()
			if err == nil {
				fp = v
				if fp == lastGood && failures == 0 {
					continue // source unchanged, nothing to do
				}
			}
			// A fingerprint error falls through to a load attempt: the
			// source may be appearing or mid-write.
		}

		repo, err := safeReload(opts.Load)
		if err == nil {
			var gen uint64
			gen, err = s.TrySwap(repo)
			if err == nil {
				lastGood = fp
				failures = 0
				if opts.OnSwap != nil {
					opts.OnSwap(gen, fp)
				}
				continue
			}
		} else {
			s.rejectReload(err)
		}
		failures++
		if opts.OnReject != nil {
			opts.OnReject(err)
		}
	}
}

// backoff returns the delay after n consecutive failures: base doubled
// n-1 times, capped at max.
func backoff(base time.Duration, n int, max time.Duration) time.Duration {
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// DirFingerprint summarizes a repository checkpoint directory (the
// `repository.Save` layout: schema.dtd + manifest.txt + doc files) into a
// cheap content fingerprint: an FNV-1a hash over the DTD and manifest
// bytes plus each listed document's size. Any rewrite of the checkpoint —
// including a partial one — changes the fingerprint, which is what
// triggers a follow-mode reload attempt; validation then decides whether
// the new state is servable.
func DirFingerprint(dir string) (string, error) {
	h := fnv.New64a()
	for _, name := range []string{"schema.dtd", "manifest.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		h.Write(data)
		h.Write([]byte{0})
	}
	// Fold in doc-file sizes so a torn doc rewrite (same manifest) still
	// changes the fingerprint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		fmt.Fprintf(h, "%s:%d\x00", e.Name(), info.Size())
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
