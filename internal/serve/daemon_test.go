package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDaemonAppliesListenerHardening asserts the configured (and
// defaulted) timeouts land on the underlying http.Server — the settings a
// bare http.Serve never gets.
func TestDaemonAppliesListenerHardening(t *testing.T) {
	s := NewServer(testRepo(t, 1, 0), Options{})
	d := NewDaemon(s, DaemonOptions{
		ReadHeaderTimeout: 7 * time.Second,
		MaxHeaderBytes:    4096,
	})
	hs := d.HTTPServer()
	if hs.ReadHeaderTimeout != 7*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 7s", hs.ReadHeaderTimeout)
	}
	if hs.MaxHeaderBytes != 4096 {
		t.Errorf("MaxHeaderBytes = %d, want 4096", hs.MaxHeaderBytes)
	}
	// Unset fields get the production defaults, not Go's zero (= unlimited).
	if hs.WriteTimeout != 30*time.Second {
		t.Errorf("default WriteTimeout = %v, want 30s", hs.WriteTimeout)
	}
	if hs.IdleTimeout != 2*time.Minute {
		t.Errorf("default IdleTimeout = %v, want 2m", hs.IdleTimeout)
	}
}

// TestDaemonDrainIdempotent drains a daemon twice (concurrently with
// nothing in flight) and asserts both calls agree, the server is marked
// draining, and OnDrained ran exactly once.
func TestDaemonDrainIdempotent(t *testing.T) {
	s := NewServer(testRepo(t, 1, 0), Options{})
	drained := 0
	d := NewDaemon(s, DaemonOptions{OnDrained: func() { drained++ }})
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if drained != 1 {
		t.Fatalf("OnDrained ran %d times, want 1", drained)
	}
	if !s.Draining() || s.Ready() {
		t.Fatalf("after drain: draining=%v ready=%v, want draining and not ready", s.Draining(), s.Ready())
	}
}

// TestReadyzLifecycle walks /healthz and /readyz through the three server
// states: pending (no snapshot yet), serving, draining. Liveness holds
// throughout; readiness is 503 at both ends.
func TestReadyzLifecycle(t *testing.T) {
	s := NewServer(nil, Options{}) // pending: follow mode before the source exists
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Pending: live but not ready, and the API refuses with 503 rather
	// than panicking on the missing snapshot.
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("pending /healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("pending /readyz = %d, want 503", got)
	}
	if got := status("/api/paths"); got != http.StatusServiceUnavailable {
		t.Fatalf("pending /api/paths = %d, want 503", got)
	}
	if got := status("/api/stats"); got != http.StatusOK {
		t.Fatalf("pending /api/stats = %d, want 200 (stats work before the first snapshot)", got)
	}

	// First snapshot: ready.
	s.Swap(testRepo(t, 2, 0))
	var ready map[string]any
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("serving /readyz = %d, want 200", resp.StatusCode)
	}
	if ready["status"] != "ready" {
		t.Fatalf("/readyz body = %v, want status ready", ready)
	}

	// Draining: readiness drops first so load balancers stop routing, but
	// liveness and the API keep answering stragglers.
	s.BeginDrain()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200", got)
	}
	if got := status("/api/paths"); got != http.StatusOK {
		t.Fatalf("draining /api/paths = %d, want 200 for stragglers", got)
	}
}
