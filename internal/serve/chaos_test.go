package serve

// Chaos harness for the serving layer (run via `make chaos-serve`, always
// under -race): overload that must shed instead of queue unboundedly,
// injected handler panics that must not kill the process, corrupt reloads
// that must not lose the serving generation, and a drain that must not
// lose an in-flight request.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webrev/internal/faultinject"
	"webrev/internal/obs"
	"webrev/internal/repository"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestChaosOverloadShedsBoundedP99 drives roughly 4x the server's admitted
// capacity into a tight in-flight limit with slowed (delay-injected)
// handlers. Admission control must shed the excess with 503s while the
// requests it does admit keep a bounded p99 — the in-flight cap, not the
// offered load, sets the latency.
func TestChaosOverloadShedsBoundedP99(t *testing.T) {
	const maxInFlight = 4
	faults := faultinject.NewStage(faultinject.StageConfig{
		Seed:         1,
		Rate:         1,
		Kinds:        []faultinject.StageKind{faultinject.StageDelay},
		FaultsPerKey: -1,
		Delay:        2 * time.Millisecond,
	})
	s := NewServer(testRepo(t, 8, 0), Options{
		MaxInFlight: maxInFlight,
		MaxQueue:    maxInFlight,
		QueueWait:   20 * time.Millisecond,
		Faults:      faults,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := LoadTest(s, ts.URL, LoadOptions{
		// 4x the full admitted concurrency (slots + queue positions).
		Clients:  4 * (maxInFlight + maxInFlight),
		Duration: 600 * time.Millisecond,
		Workload: []string{"/api/count?q=" + url.QueryEscape("//institution")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("4x overload shed nothing: %s", res)
	}
	if res.Admitted == 0 {
		t.Fatalf("overload admitted nothing: %s", res)
	}
	if res.Errors != 0 {
		t.Fatalf("overload produced %d non-shed errors: %s", res.Errors, res)
	}
	// Admitted latency is bounded by queue wait + injected delay + handler
	// work; 250ms is an order of magnitude of slack over that, and far
	// below what unbounded queueing at this load would produce.
	if res.P99 > 250*time.Millisecond {
		t.Fatalf("admitted p99 = %v, want bounded under overload: %s", res.P99, res)
	}
	st := s.Stats()
	if st.InFlightPeak > maxInFlight {
		t.Fatalf("in-flight peak %d exceeded the cap %d", st.InFlightPeak, maxInFlight)
	}
	if st.Shed != res.Shed {
		t.Fatalf("stats shed %d != load result shed %d", st.Shed, res.Shed)
	}
}

// TestChaosShedCarriesRetryAfter saturates a one-slot server with a slow
// in-flight request and asserts the shed response is a 503 with a
// Retry-After header.
func TestChaosShedCarriesRetryAfter(t *testing.T) {
	faults := faultinject.NewStage(faultinject.StageConfig{
		Seed:         1,
		Rate:         1,
		Kinds:        []faultinject.StageKind{faultinject.StageDelay},
		FaultsPerKey: -1,
		Delay:        400 * time.Millisecond,
	})
	s := NewServer(testRepo(t, 2, 0), Options{
		MaxInFlight: 1,
		MaxQueue:    -1, // no queue: the second request sheds immediately
		Faults:      faults,
		RetryAfter:  7,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		http.Get(ts.URL + "/api/paths")
	}()
	waitFor(t, time.Second, "the slow request to occupy the slot", func() bool {
		return s.Stats().InFlight == 1
	})

	resp, err := http.Get(ts.URL + "/api/docs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q", got, "7")
	}
	<-done
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

// TestChaosPanicInjectionIsolated fires injected panics on every query
// request and asserts the blast radius is one 500 per request: the process
// stays up, other endpoints keep answering, and each panic leaves a
// structured record on /api/stats.
func TestChaosPanicInjectionIsolated(t *testing.T) {
	faults := faultinject.NewStage(faultinject.StageConfig{
		Seed:         1,
		Rate:         1,
		Kinds:        []faultinject.StageKind{faultinject.StagePanic},
		FaultsPerKey: -1,
		Stages:       []string{obs.ServeEndpointStage("query")},
	})
	s := NewServer(testRepo(t, 4, 0), Options{Faults: faults})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 5
	for i := 0; i < n; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/api/query?q=%s&limit=%d",
			ts.URL, url.QueryEscape("//institution"), i+1))
		if err != nil {
			t.Fatalf("query %d: transport error (dead server?): %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("query %d status = %d, want 500", i, resp.StatusCode)
		}
	}

	// The panicking endpoint took the hit; the rest of the surface is fine.
	var cr CountResponse
	if resp := getJSON(t, ts.URL+"/api/count?q="+url.QueryEscape("//institution"), &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("count after panics = %d, want 200", resp.StatusCode)
	}
	if cr.Count != 4 {
		t.Fatalf("count after panics = %d, want 4", cr.Count)
	}

	var st Stats
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Panics != n {
		t.Fatalf("stats panics = %d, want %d", st.Panics, n)
	}
	if len(st.PanicLog) != n {
		t.Fatalf("panic log has %d records, want %d", len(st.PanicLog), n)
	}
	rec := st.PanicLog[0]
	if rec.Kind != "panic" || rec.Stage != obs.ServeEndpointStage("query") ||
		!strings.Contains(rec.Err, "injected panic") {
		t.Fatalf("unexpected panic record %+v", rec)
	}
}

// TestChaosCorruptReloadKeepsGeneration exercises every reload failure
// mode over HTTP — an empty candidate, a panicking loader, a nil
// repository, an erroring loader — and asserts none of them loses the
// serving generation or stops the server answering; a subsequent good
// reload installs gen 2 and clears the surfaced error.
func TestChaosCorruptReloadKeepsGeneration(t *testing.T) {
	var mode atomic.Int32
	s := NewServer(testRepo(t, 3, 0), Options{
		Reload: func() (*repository.Repository, error) {
			switch mode.Load() {
			case 0: // fails ValidateSnapshot: no documents
				return repository.New(testDTD()), nil
			case 1:
				panic("loader blew up")
			case 2:
				return nil, nil
			case 3:
				return nil, fmt.Errorf("source unreadable")
			default:
				return testRepo(t, 5, 100), nil
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wantErr := []string{"empty", "panicked", "nil", "unreadable"}
	for i, want := range wantErr {
		mode.Store(int32(i))
		resp, err := http.Post(ts.URL+"/api/reload", "", nil)
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("reload %d status = %d, want 500", i, resp.StatusCode)
		}
		var st Stats
		getJSON(t, ts.URL+"/api/stats", &st)
		if st.Gen != 1 || st.Docs != 3 {
			t.Fatalf("reload %d: generation moved to %d (docs %d), want gen 1 docs 3", i, st.Gen, st.Docs)
		}
		if st.ReloadRejected != int64(i+1) {
			t.Fatalf("reload %d: rejected = %d, want %d", i, st.ReloadRejected, i+1)
		}
		if !strings.Contains(st.LastReloadErr, want) {
			t.Fatalf("reload %d: last error %q does not mention %q", i, st.LastReloadErr, want)
		}
		// Still serving the old generation between failures.
		var cr CountResponse
		getJSON(t, ts.URL+"/api/count?q="+url.QueryEscape("//institution"), &cr)
		if cr.Count != 3 {
			t.Fatalf("reload %d: count = %d, want 3 from the retained snapshot", i, cr.Count)
		}
	}

	mode.Store(4)
	resp, err := http.Post(ts.URL+"/api/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good reload status = %d, want 200", resp.StatusCode)
	}
	var st Stats
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Gen != 2 || st.Docs != 5 || st.LastReloadErr != "" {
		t.Fatalf("after good reload: gen=%d docs=%d lastErr=%q, want gen 2, docs 5, no error",
			st.Gen, st.Docs, st.LastReloadErr)
	}
}

// TestChaosDrainNoRequestLost puts a slow request in flight on a real
// daemon listener, drains, and asserts the request completes with its full
// response while the drained daemon exits cleanly and refuses new
// connections.
func TestChaosDrainNoRequestLost(t *testing.T) {
	faults := faultinject.NewStage(faultinject.StageConfig{
		Seed:         1,
		Rate:         1,
		Kinds:        []faultinject.StageKind{faultinject.StageDelay},
		FaultsPerKey: -1,
		Delay:        300 * time.Millisecond,
		Stages:       []string{obs.ServeEndpointStage("query")},
	})
	s := NewServer(testRepo(t, 4, 0), Options{Faults: faults})
	d := NewDaemon(s, DaemonOptions{DrainTimeout: 5 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		total  int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		var qr QueryResponse
		resp, err := http.Get(base + "/api/query?q=" + url.QueryEscape("//institution"))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		if err := jsonDecode(resp, &qr); err != nil {
			inflight <- result{status: resp.StatusCode, err: err}
			return
		}
		inflight <- result{status: resp.StatusCode, total: qr.Total}
	}()
	waitFor(t, 2*time.Second, "the slow query to be in flight", func() bool {
		return s.Stats().Requests >= 1
	})

	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight request lost to the drain: %v", got.err)
	}
	if got.status != http.StatusOK || got.total != 4 {
		t.Fatalf("in-flight request answered status=%d total=%d, want a complete 200 with 4 results",
			got.status, got.total)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("daemon exit = %v, want nil after a clean drain", err)
	}
	if !s.Draining() {
		t.Fatal("server not marked draining after Drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}
}

// TestChaosMixedFaultsUnderLoad runs the full mixed workload under random
// panic/error/delay injection and background snapshot swaps: the invariant
// is zero transport-level failures (every request gets an HTTP answer)
// and a live, consistent server afterwards.
func TestChaosMixedFaultsUnderLoad(t *testing.T) {
	faults := faultinject.NewStage(faultinject.StageConfig{
		Seed: 42,
		Rate: 0.2,
		Kinds: []faultinject.StageKind{
			faultinject.StagePanic, faultinject.StageError, faultinject.StageDelay,
		},
		FaultsPerKey: -1,
		Delay:        time.Millisecond,
	})
	s := NewServer(testRepo(t, 6, 0), Options{
		MaxInFlight: 8,
		QueueWait:   20 * time.Millisecond,
		Faults:      faults,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	swapN := 0
	res, err := LoadTest(s, ts.URL, LoadOptions{
		Clients:   16,
		Duration:  600 * time.Millisecond,
		Workload:  s.DefaultWorkload(8),
		SwapEvery: 50 * time.Millisecond,
		SwapRepo: func() *repository.Repository {
			swapN++
			return testRepo(t, 6, swapN)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injected panics and errors answer 500 (counted in Errors); what must
	// never happen is a transport failure — a connection dying because the
	// process did.
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	var st Stats
	getJSON(t, ts.URL+"/api/stats", &st)
	if !st.Ready {
		t.Fatalf("server not ready after chaos run: %+v", st)
	}
	if st.Gen != uint64(1+res.Swaps) {
		t.Fatalf("gen = %d after %d swaps, want %d", st.Gen, res.Swaps, 1+res.Swaps)
	}
	if faults.Injected()[faultinject.StagePanic] > 0 && st.Panics == 0 {
		t.Fatal("panics were injected but none recorded")
	}
}

// jsonDecode decodes resp's body into v (helper for goroutines that cannot
// call t.Fatal).
func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
