package xmlout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
)

func sample() *dom.Node {
	edu := dom.Elem("education", []string{"val", "Education"},
		dom.Elem("date", []string{"val", "June 1996"},
			dom.Elem("institution", []string{"val", "UC Davis"}),
			dom.Elem("degree", []string{"val", "B.S."}),
		),
	)
	return dom.Elem("resume", nil, edu)
}

func TestMarshalCompact(t *testing.T) {
	got := MarshalCompact(sample())
	want := `<resume><education val="Education"><date val="June 1996"><institution val="UC Davis"/><degree val="B.S."/></date></education></resume>`
	if got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

func TestMarshalIndented(t *testing.T) {
	got := Marshal(sample())
	if !strings.HasPrefix(got, `<?xml version="1.0"`) {
		t.Fatalf("missing declaration: %s", got)
	}
	if !strings.Contains(got, "\n  <education") {
		t.Fatalf("not indented:\n%s", got)
	}
}

func TestMarshalEscaping(t *testing.T) {
	n := dom.Elem("x", []string{"val", `a<b>&"c`}, dom.NewText("1 < 2 & 3"))
	got := MarshalCompact(n)
	want := `<x val="a&lt;b>&amp;&quot;c">1 &lt; 2 &amp; 3</x>`
	if got != want {
		t.Fatalf("got %s", got)
	}
}

func TestMarshalCommentAndDoctype(t *testing.T) {
	doc := dom.NewDocument()
	doc.AppendChild(&dom.Node{Type: dom.DoctypeNode, Text: "resume SYSTEM \"resume.dtd\""})
	doc.AppendChild(dom.NewComment("a--b"))
	doc.AppendChild(dom.NewElement("resume"))
	got := MarshalCompact(doc)
	if !strings.Contains(got, "<!DOCTYPE resume") || !strings.Contains(got, "<!--a- -b-->") {
		t.Fatalf("got %s", got)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sample()
	parsed, err := UnmarshalElement(Marshal(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(parsed) {
		t.Fatalf("round trip mismatch:\norig   %s\nparsed %s", orig.String(), parsed.String())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, bad := range []string{
		`<a><b></a></b>`, `<a>`, `</a>`, `<a/><b/>`, ``, `text only`,
	} {
		if _, err := UnmarshalElement(bad); err == nil {
			t.Errorf("UnmarshalElement(%q) should fail", bad)
		}
	}
}

func TestUnmarshalKeepsTextAndComments(t *testing.T) {
	doc, err := Unmarshal(`<r><!--c-->hello<e val="x"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	r := doc.FindElement("r")
	if len(r.Children) != 3 {
		t.Fatalf("children = %d: %s", len(r.Children), r.String())
	}
	if r.Children[0].Type != dom.CommentNode || r.Children[1].Text != "hello" {
		t.Fatalf("structure: %s", r.String())
	}
}

// randomXMLTree builds trees with concept-like names and val attributes.
func randomXMLTree(r *rand.Rand, budget int) *dom.Node {
	tags := []string{"resume", "education", "degree", "date", "skills", "contact"}
	vals := []string{"", "UC Davis", "a & b", `quote " inside`, "<tag>", "June 1996"}
	root := dom.NewElement("root")
	nodes := []*dom.Node{root}
	for i := 0; i < budget; i++ {
		p := nodes[r.Intn(len(nodes))]
		c := dom.NewElement(tags[r.Intn(len(tags))])
		if v := vals[r.Intn(len(vals))]; v != "" {
			c.SetVal(v)
		}
		if r.Intn(5) == 0 {
			c.AppendChild(dom.NewText(vals[1+r.Intn(len(vals)-1)]))
		}
		p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return root
}

func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomXMLTree(r, int(size%40))
		parsed, err := UnmarshalElement(Marshal(orig))
		if err != nil {
			return false
		}
		return orig.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	n := randomXMLTree(rand.New(rand.NewSource(1)), 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(n)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	src := Marshal(randomXMLTree(rand.New(rand.NewSource(1)), 100))
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMarshalToMatchesMarshal(t *testing.T) {
	n := sample()
	var buf strings.Builder
	if err := MarshalTo(&buf, n); err != nil {
		t.Fatal(err)
	}
	if buf.String() != Marshal(n) {
		t.Fatalf("MarshalTo differs:\n%s\n---\n%s", buf.String(), Marshal(n))
	}
}

// TestMarshalAllocs pins the pooled-buffer serialization path: once the
// pool is warm, marshalling allocates only the returned string (plus
// occasional pool churn under GC pressure).
func TestMarshalAllocs(t *testing.T) {
	n := sample()
	Marshal(n) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		_ = Marshal(n)
	})
	if allocs > 2 {
		t.Errorf("Marshal: %v allocs/run, want <= 2", allocs)
	}
}
