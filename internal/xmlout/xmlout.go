// Package xmlout serializes dom trees as XML documents and parses XML back
// into dom trees, giving the pipeline a durable on-disk representation for
// the XML repository the paper's system feeds (§1, §5).
package xmlout

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"webrev/internal/dom"
	"webrev/internal/entity"
)

// Marshal renders the subtree rooted at n as indented XML, with a standard
// declaration header when n is an element or document.
func Marshal(n *dom.Node) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	writeNode(&b, n, 0, true)
	return b.String()
}

// MarshalTo streams the indented XML rendering of n to w — the
// allocation-friendly path for writing large repositories. Errors are
// reported once, after the final flush.
func MarshalTo(w io.Writer, n *dom.Node) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	writeNode(bw, n, 0, true)
	return bw.Flush()
}

// xmlWriter is satisfied by both strings.Builder and bufio.Writer.
type xmlWriter interface {
	io.Writer
	WriteString(string) (int, error)
	WriteByte(byte) error
}

// MarshalCompact renders the subtree without the declaration, indentation or
// newlines — the canonical single-line form used in tests.
func MarshalCompact(n *dom.Node) string {
	var b strings.Builder
	writeNode(&b, n, 0, false)
	return b.String()
}

func writeNode(b xmlWriter, n *dom.Node, depth int, indent bool) {
	pad := ""
	if indent {
		pad = strings.Repeat("  ", depth)
	}
	switch n.Type {
	case dom.DocumentNode:
		for _, c := range n.Children {
			writeNode(b, c, depth, indent)
		}
		return
	case dom.TextNode:
		if t := strings.TrimSpace(n.Text); t != "" {
			b.WriteString(pad)
			b.WriteString(entity.EscapeText(t))
			if indent {
				b.WriteByte('\n')
			}
		}
		return
	case dom.CommentNode:
		b.WriteString(pad)
		b.WriteString("<!--")
		b.WriteString(strings.ReplaceAll(n.Text, "--", "- -"))
		b.WriteString("-->")
		if indent {
			b.WriteByte('\n')
		}
		return
	case dom.DoctypeNode:
		b.WriteString(pad)
		fmt.Fprintf(b, "<!DOCTYPE %s>", n.Text)
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, ` %s="%s"`, a.Name, entity.EscapeAttr(a.Value))
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	b.WriteByte('>')
	if indent {
		b.WriteByte('\n')
	}
	for _, c := range n.Children {
		writeNode(b, c, depth+1, indent)
	}
	b.WriteString(pad)
	fmt.Fprintf(b, "</%s>", n.Tag)
	if indent {
		b.WriteByte('\n')
	}
}

// Unmarshal parses an XML document into a dom tree rooted at a DocumentNode.
// It uses the stdlib decoder, so the input must be well-formed XML (unlike
// the tolerant HTML parser in internal/htmlparse).
func Unmarshal(src string) (*dom.Node, error) {
	return UnmarshalReader(strings.NewReader(src))
}

// UnmarshalReader parses XML from r into a dom tree.
func UnmarshalReader(r io.Reader) (*dom.Node, error) {
	dec := xml.NewDecoder(r)
	doc := dom.NewDocument()
	cur := doc
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlout: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := dom.NewElement(t.Name.Local)
			for _, a := range t.Attr {
				el.SetAttr(a.Name.Local, a.Value)
			}
			cur.AppendChild(el)
			cur = el
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xmlout: unbalanced end element </%s>", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if txt := string(t); strings.TrimSpace(txt) != "" {
				cur.AppendChild(dom.NewText(strings.TrimSpace(txt)))
			}
		case xml.Comment:
			cur.AppendChild(dom.NewComment(string(t)))
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmlout: unclosed element <%s>", cur.Tag)
	}
	return doc, nil
}

// UnmarshalElement parses XML and returns the single root element.
func UnmarshalElement(src string) (*dom.Node, error) {
	doc, err := Unmarshal(src)
	if err != nil {
		return nil, err
	}
	var root *dom.Node
	for _, c := range doc.Children {
		if c.Type == dom.ElementNode {
			if root != nil {
				return nil, fmt.Errorf("xmlout: multiple root elements")
			}
			root = c
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlout: no root element")
	}
	root.Detach()
	return root, nil
}
