// Package xmlout serializes dom trees as XML documents and parses XML back
// into dom trees, giving the pipeline a durable on-disk representation for
// the XML repository the paper's system feeds (§1, §5).
package xmlout

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"

	"webrev/internal/dom"
	"webrev/internal/entity"
)

// bufPool recycles the serialization buffers behind Marshal and
// MarshalCompact. The buffer is returned to the pool before the call
// returns; callers only ever see the copied-out string, so no pooled
// memory escapes. See ARCHITECTURE.md, "Performance model".
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const xmlHeader = `<?xml version="1.0" encoding="UTF-8"?>` + "\n"

// Marshal renders the subtree rooted at n as indented XML, with a standard
// declaration header when n is an element or document.
func Marshal(n *dom.Node) string {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	b.WriteString(xmlHeader)
	writeNode(b, n, 0, true)
	s := b.String()
	bufPool.Put(b)
	return s
}

// MarshalTo streams the indented XML rendering of n to w — the
// allocation-friendly path for writing large repositories. Errors are
// reported once, after the final flush.
func MarshalTo(w io.Writer, n *dom.Node) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(xmlHeader)
	writeNode(bw, n, 0, true)
	return bw.Flush()
}

// xmlWriter is satisfied by strings.Builder, bytes.Buffer and bufio.Writer.
// It is a superset of entity.Writer, so escape output streams straight into
// the same sink.
type xmlWriter interface {
	io.Writer
	WriteString(string) (int, error)
	WriteByte(byte) error
}

// MarshalCompact renders the subtree without the declaration, indentation or
// newlines — the canonical single-line form used in tests.
func MarshalCompact(n *dom.Node) string {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	writeNode(b, n, 0, false)
	s := b.String()
	bufPool.Put(b)
	return s
}

// indentPad holds two-space indentation for the first maxPad depths; deeper
// nodes fall back to writing it out level by level.
const maxPad = 64

var indentPad = strings.Repeat("  ", maxPad)

func writePad(b xmlWriter, depth int) {
	for depth > maxPad {
		b.WriteString(indentPad)
		depth -= maxPad
	}
	b.WriteString(indentPad[:2*depth])
}

func writeNode(b xmlWriter, n *dom.Node, depth int, indent bool) {
	switch n.Type {
	case dom.DocumentNode:
		for _, c := range n.Children {
			writeNode(b, c, depth, indent)
		}
		return
	case dom.TextNode:
		if t := strings.TrimSpace(n.Text); t != "" {
			if indent {
				writePad(b, depth)
			}
			entity.WriteText(b, t)
			if indent {
				b.WriteByte('\n')
			}
		}
		return
	case dom.CommentNode:
		if indent {
			writePad(b, depth)
		}
		b.WriteString("<!--")
		if strings.Contains(n.Text, "--") {
			b.WriteString(strings.ReplaceAll(n.Text, "--", "- -"))
		} else {
			b.WriteString(n.Text)
		}
		b.WriteString("-->")
		if indent {
			b.WriteByte('\n')
		}
		return
	case dom.DoctypeNode:
		if indent {
			writePad(b, depth)
		}
		b.WriteString("<!DOCTYPE ")
		b.WriteString(n.Text)
		b.WriteByte('>')
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	if indent {
		writePad(b, depth)
	}
	b.WriteByte('<')
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		entity.WriteAttr(b, a.Value)
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		if indent {
			b.WriteByte('\n')
		}
		return
	}
	b.WriteByte('>')
	if indent {
		b.WriteByte('\n')
	}
	for _, c := range n.Children {
		writeNode(b, c, depth+1, indent)
	}
	if indent {
		writePad(b, depth)
	}
	b.WriteString("</")
	b.WriteString(n.Tag)
	b.WriteByte('>')
	if indent {
		b.WriteByte('\n')
	}
}

// Unmarshal parses an XML document into a dom tree rooted at a DocumentNode.
// It uses the stdlib decoder, so the input must be well-formed XML (unlike
// the tolerant HTML parser in internal/htmlparse).
func Unmarshal(src string) (*dom.Node, error) {
	return UnmarshalReader(strings.NewReader(src))
}

// UnmarshalReader parses XML from r into a dom tree.
func UnmarshalReader(r io.Reader) (*dom.Node, error) {
	dec := xml.NewDecoder(r)
	doc := dom.NewDocument()
	cur := doc
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlout: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := dom.NewElement(t.Name.Local)
			for _, a := range t.Attr {
				el.SetAttr(a.Name.Local, a.Value)
			}
			cur.AppendChild(el)
			cur = el
		case xml.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("xmlout: unbalanced end element </%s>", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if txt := string(t); strings.TrimSpace(txt) != "" {
				cur.AppendChild(dom.NewText(strings.TrimSpace(txt)))
			}
		case xml.Comment:
			cur.AppendChild(dom.NewComment(string(t)))
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmlout: unclosed element <%s>", cur.Tag)
	}
	return doc, nil
}

// UnmarshalElement parses XML and returns the single root element.
func UnmarshalElement(src string) (*dom.Node, error) {
	doc, err := Unmarshal(src)
	if err != nil {
		return nil, err
	}
	var root *dom.Node
	for _, c := range doc.Children {
		if c.Type == dom.ElementNode {
			if root != nil {
				return nil, fmt.Errorf("xmlout: multiple root elements")
			}
			root = c
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlout: no root element")
	}
	root.Detach()
	return root, nil
}
