// Package repository implements the XML document repository the pipeline
// feeds (paper §1: "integration of topic specific HTML documents into a
// repository of XML documents"). A repository couples a derived DTD with
// the conformant documents, persists both to disk, loads them back, and
// answers label-path queries through the path index.
package repository

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/pathindex"
	"webrev/internal/query"
	"webrev/internal/xmlout"
)

// Repository is a set of DTD-conformant XML documents.
type Repository struct {
	dtd   *dtd.DTD
	names []string
	docs  []*dom.Node
	index *pathindex.Index // built lazily, invalidated by Add
}

// New returns an empty repository governed by the given DTD.
func New(d *dtd.DTD) *Repository { return &Repository{dtd: d} }

// DTD returns the governing DTD.
func (r *Repository) DTD() *dtd.DTD { return r.dtd }

// Len returns the number of stored documents.
func (r *Repository) Len() int { return len(r.docs) }

// Names returns the stored document names in insertion order.
func (r *Repository) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Doc returns the i-th document.
func (r *Repository) Doc(i int) *dom.Node { return r.docs[i] }

// Add validates doc against the DTD and stores it. Non-conforming
// documents are rejected — map them first (internal/mapping.Conform).
func (r *Repository) Add(name string, doc *dom.Node) error {
	if errs := r.dtd.Validate(doc); len(errs) > 0 {
		return fmt.Errorf("repository: %q does not conform: %v", name, errs[0])
	}
	r.names = append(r.names, name)
	r.docs = append(r.docs, doc)
	r.index = nil
	return nil
}

// Index returns the label-path index over the stored documents, building
// it on first use.
func (r *Repository) Index() *pathindex.Index {
	if r.index == nil {
		r.index = pathindex.Build(r.docs)
	}
	return r.index
}

// Query compiles and evaluates a label-path query (see internal/query for
// the syntax) against the repository.
func (r *Repository) Query(expr string) ([]pathindex.Ref, error) {
	q, err := query.Compile(expr)
	if err != nil {
		return nil, err
	}
	return q.Evaluate(r.Index()), nil
}

// Count compiles expr and returns the number of matches without
// materializing them (query.Query.Count streams through the index).
func (r *Repository) Count(expr string) (int, error) {
	q, err := query.Compile(expr)
	if err != nil {
		return 0, err
	}
	return q.Count(r.Index()), nil
}

const (
	dtdFile      = "schema.dtd"
	manifestFile = "manifest.txt"
)

// Save writes the repository to dir: schema.dtd, one XML file per document,
// and a manifest mapping files to original names.
func (r *Repository) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, dtdFile), []byte(r.dtd.Render()), 0o644); err != nil {
		return err
	}
	var manifest strings.Builder
	for i, doc := range r.docs {
		file := fmt.Sprintf("doc-%05d.xml", i)
		if err := writeDoc(filepath.Join(dir, file), doc); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s\t%s\n", file, r.names[i])
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), []byte(manifest.String()), 0o644)
}

func writeDoc(path string, doc *dom.Node) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xmlout.MarshalTo(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a repository previously written by Save. Every document is
// re-validated against the loaded DTD.
func Load(dir string) (*Repository, error) {
	dtdText, err := os.ReadFile(filepath.Join(dir, dtdFile))
	if err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	d, err := dtd.Parse(string(dtdText))
	if err != nil {
		return nil, err
	}
	r := New(d)
	manifest, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	sort.SliceStable(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		if line == "" {
			continue
		}
		file, name, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("repository: malformed manifest line %q", line)
		}
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			return nil, fmt.Errorf("repository: %w", err)
		}
		doc, err := xmlout.UnmarshalElement(string(data))
		if err != nil {
			return nil, fmt.Errorf("repository: %s: %w", file, err)
		}
		if err := r.Add(name, doc); err != nil {
			return nil, err
		}
	}
	return r, nil
}
