// Package repository implements the XML document repository the pipeline
// feeds (paper §1: "integration of topic specific HTML documents into a
// repository of XML documents"). A repository couples a derived DTD with
// the conformant documents, persists both to disk, loads them back, and
// answers label-path queries through the path index. Documents live behind
// the Store interface, so a repository can keep them fully in memory
// (MemStore) or disk-backed with a bounded resident set (DiskStore).
package repository

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/pathindex"
	"webrev/internal/query"
	"webrev/internal/xmlout"
)

// Repository is a set of DTD-conformant XML documents.
type Repository struct {
	dtd   *dtd.DTD
	store Store
	index *pathindex.Index // built lazily, invalidated by Add
}

// New returns an empty in-memory repository governed by the given DTD.
func New(d *dtd.DTD) *Repository { return NewWithStore(d, NewMemStore()) }

// NewWithStore returns a repository governed by the given DTD whose
// documents live in s. The store may already hold documents (e.g. a
// DiskStore produced by a sharded build); they are trusted to conform.
func NewWithStore(d *dtd.DTD, s Store) *Repository {
	return &Repository{dtd: d, store: s}
}

// DTD returns the governing DTD.
func (r *Repository) DTD() *dtd.DTD { return r.dtd }

// Store returns the backing document store.
func (r *Repository) Store() Store { return r.store }

// Len returns the number of stored documents.
func (r *Repository) Len() int { return r.store.Len() }

// Names returns the stored document names in insertion order.
func (r *Repository) Names() []string {
	out := make([]string, r.store.Len())
	for i := range out {
		out[i] = r.store.Name(i)
	}
	return out
}

// Doc returns the i-th document. On a disk-backed store a read failure
// (torn file, out-of-range index) returns nil; callers that need the error
// read through Store().Doc directly.
func (r *Repository) Doc(i int) *dom.Node {
	d, err := r.store.Doc(i)
	if err != nil {
		return nil
	}
	return d
}

// Add validates doc against the DTD and stores it. Non-conforming
// documents are rejected — map them first (internal/mapping.Conform).
func (r *Repository) Add(name string, doc *dom.Node) error {
	if errs := r.dtd.Validate(doc); len(errs) > 0 {
		return fmt.Errorf("repository: %q does not conform: %v", name, errs[0])
	}
	if err := r.store.Append(name, doc); err != nil {
		return err
	}
	r.index = nil
	return nil
}

// Index returns the label-path index over the stored documents, building
// it on first use. Building decodes every document once; with a disk
// store the trees stream through the bounded LRU rather than staying
// resident (the index itself holds only label paths and refs).
func (r *Repository) Index() *pathindex.Index {
	if r.index == nil {
		docs := make([]*dom.Node, r.store.Len())
		for i := range docs {
			docs[i], _ = r.store.Doc(i)
		}
		r.index = pathindex.Build(docs)
	}
	return r.index
}

// Query compiles and evaluates a label-path query (see internal/query for
// the syntax) against the repository.
func (r *Repository) Query(expr string) ([]pathindex.Ref, error) {
	q, err := query.Compile(expr)
	if err != nil {
		return nil, err
	}
	return q.Evaluate(r.Index()), nil
}

// Count compiles expr and returns the number of matches without
// materializing them (query.Query.Count streams through the index).
func (r *Repository) Count(expr string) (int, error) {
	q, err := query.Compile(expr)
	if err != nil {
		return 0, err
	}
	return q.Count(r.Index()), nil
}

const (
	dtdFile      = "schema.dtd"
	manifestFile = "manifest.txt"
)

// Save writes the repository to dir: schema.dtd, one XML file per document,
// and a manifest mapping files to original names. Documents are copied out
// as their canonical XML bytes, so saving a disk-backed repository never
// decodes them.
func (r *Repository) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, dtdFile), []byte(r.dtd.Render()), 0o644); err != nil {
		return err
	}
	var manifest strings.Builder
	for i := 0; i < r.store.Len(); i++ {
		file := fmt.Sprintf("doc-%05d.xml", i)
		xml, err := r.store.XML(i)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, file), xml, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s\t%s\n", file, r.store.Name(i))
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), []byte(manifest.String()), 0o644)
}

// SaveDTDFile writes the rendered DTD into dir under the standard
// schema.dtd name, making a disk store's directory a self-contained
// repository for LoadDisk. The sharded build (core.BuildSharded) calls
// this on its final segment directory.
func SaveDTDFile(dir string, d *dtd.DTD) error {
	return os.WriteFile(filepath.Join(dir, dtdFile), []byte(d.Render()), 0o644)
}

// LoadDisk opens a disk-backed repository: the DTD from dir/schema.dtd and
// the documents from the disk store (index.log + segment.blob) in the same
// directory. Documents are not re-validated — they were validated when the
// store was built — so opening is O(index size), independent of corpus
// volume.
func LoadDisk(dir string, opts DiskOptions) (*Repository, error) {
	dtdText, err := os.ReadFile(filepath.Join(dir, dtdFile))
	if err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	d, err := dtd.Parse(string(dtdText))
	if err != nil {
		return nil, err
	}
	s, err := OpenDiskStore(dir, opts)
	if err != nil {
		return nil, err
	}
	return NewWithStore(d, s), nil
}

// Load reads a repository previously written by Save. Every document is
// re-validated against the loaded DTD.
func Load(dir string) (*Repository, error) {
	dtdText, err := os.ReadFile(filepath.Join(dir, dtdFile))
	if err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	d, err := dtd.Parse(string(dtdText))
	if err != nil {
		return nil, err
	}
	r := New(d)
	manifest, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	sort.SliceStable(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		if line == "" {
			continue
		}
		file, name, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("repository: malformed manifest line %q", line)
		}
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			return nil, fmt.Errorf("repository: %w", err)
		}
		doc, err := xmlout.UnmarshalElement(string(data))
		if err != nil {
			return nil, fmt.Errorf("repository: %s: %w", file, err)
		}
		if err := r.Add(name, doc); err != nil {
			return nil, err
		}
	}
	return r, nil
}
