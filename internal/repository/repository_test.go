package repository

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webrev/internal/dom"
	"webrev/internal/dtd"
	"webrev/internal/mapping"
	"webrev/internal/schema"
)

func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

func elv(tag, val string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, []string{"val", val}, children...)
}

func testDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	mk := func() *schema.DocPaths {
		return schema.Extract(el("resume",
			el("contact"),
			el("education", el("institution"), el("degree")),
			el("education", el("institution"), el("degree")),
			el("education", el("institution"), el("degree")),
		))
	}
	s := (&schema.Miner{SupThreshold: 0.5}).Discover([]*schema.DocPaths{mk(), mk()})
	return dtd.FromSchema(s, dtd.Options{})
}

func conformingDoc(val string) *dom.Node {
	return el("resume",
		elv("contact", val),
		el("education", elv("institution", "UC "+val), el("degree")),
	)
}

func TestAddValidates(t *testing.T) {
	r := New(testDTD(t))
	if err := r.Add("good", conformingDoc("a")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Names()[0] != "good" {
		t.Fatalf("len=%d names=%v", r.Len(), r.Names())
	}
	bad := el("resume", el("zzz"))
	if err := r.Add("bad", bad); err == nil {
		t.Fatal("non-conforming doc accepted")
	}
	if r.Len() != 1 {
		t.Fatal("rejected doc stored")
	}
}

func TestAddAfterConform(t *testing.T) {
	d := testDTD(t)
	r := New(d)
	messy := el("resume", el("education", el("degree"), el("institution")), el("junk"))
	fixed, _ := mapping.Conform(messy, d)
	if err := r.Add("fixed", fixed); err != nil {
		t.Fatal(err)
	}
}

func TestQuery(t *testing.T) {
	r := New(testDTD(t))
	for _, v := range []string{"alpha", "beta", "gamma"} {
		if err := r.Add(v, conformingDoc(v)); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := r.Query(`//institution[@val~"beta"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].Node.Val() != "UC beta" {
		t.Fatalf("refs = %+v", refs)
	}
	all, err := r.Query("/resume/education/institution")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("matches = %d", len(all))
	}
	if _, err := r.Query("not a query"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestCount(t *testing.T) {
	r := New(testDTD(t))
	for _, v := range []string{"alpha", "beta", "gamma"} {
		if err := r.Add(v, conformingDoc(v)); err != nil {
			t.Fatal(err)
		}
	}
	for expr, want := range map[string]int{
		"/resume/education/institution": 3,
		`//institution[@val~"beta"]`:    1,
		"//nope":                        0,
	} {
		got, err := r.Count(expr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Count(%s) = %d, want %d", expr, got, want)
		}
	}
	if _, err := r.Count("not a query"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestIndexInvalidatedByAdd(t *testing.T) {
	r := New(testDTD(t))
	r.Add("a", conformingDoc("a"))
	before := r.Index().Docs()
	r.Add("b", conformingDoc("b"))
	if got := r.Index().Docs(); got != before+1 {
		t.Fatalf("index not rebuilt: %d docs", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New(testDTD(t))
	for _, v := range []string{"one", "two"} {
		if err := r.Add(v+".html", conformingDoc(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d docs", loaded.Len())
	}
	if got := strings.Join(loaded.Names(), ","); got != "one.html,two.html" {
		t.Fatalf("names = %q", got)
	}
	for i := 0; i < r.Len(); i++ {
		if !r.Doc(i).Equal(loaded.Doc(i)) {
			t.Fatalf("doc %d differs:\n%s\n%s", i, r.Doc(i).String(), loaded.Doc(i).String())
		}
	}
	if loaded.DTD().Len() != r.DTD().Len() {
		t.Fatal("DTD lost declarations")
	}
	// Queries work on the loaded repository.
	refs, err := loaded.Query(`//contact[@val="one"]`)
	if err != nil || len(refs) != 1 {
		t.Fatalf("query on loaded repo: %v, %d refs", err, len(refs))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir should fail")
	}
	// Corrupt DTD.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "schema.dtd"), []byte("<!GARBAGE>"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt DTD should fail")
	}
	// Valid DTD but missing manifest.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "schema.dtd"), []byte("<!ELEMENT r (#PCDATA)>"), 0o644)
	if _, err := Load(dir2); err == nil {
		t.Fatal("missing manifest should fail")
	}
	// Manifest referencing a missing file.
	dir3 := t.TempDir()
	os.WriteFile(filepath.Join(dir3, "schema.dtd"), []byte("<!ELEMENT r (#PCDATA)>"), 0o644)
	os.WriteFile(filepath.Join(dir3, "manifest.txt"), []byte("doc-00000.xml\tx\n"), 0o644)
	if _, err := Load(dir3); err == nil {
		t.Fatal("missing doc file should fail")
	}
	// Malformed manifest line.
	dir4 := t.TempDir()
	os.WriteFile(filepath.Join(dir4, "schema.dtd"), []byte("<!ELEMENT r (#PCDATA)>"), 0o644)
	os.WriteFile(filepath.Join(dir4, "manifest.txt"), []byte("no-tab-here\n"), 0o644)
	if _, err := Load(dir4); err == nil {
		t.Fatal("malformed manifest should fail")
	}
}

func TestLoadRevalidates(t *testing.T) {
	// Hand-craft a repository directory whose document violates the DTD.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "schema.dtd"),
		[]byte("<!ELEMENT r ((#PCDATA), a)>\n<!ELEMENT a (#PCDATA)>"), 0o644)
	os.WriteFile(filepath.Join(dir, "doc-00000.xml"), []byte("<r><b/></r>"), 0o644)
	os.WriteFile(filepath.Join(dir, "manifest.txt"), []byte("doc-00000.xml\tx\n"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("invalid stored document should fail validation on load")
	}
}
