package repository

import (
	"fmt"

	"webrev/internal/dom"
	"webrev/internal/xmlout"
)

// Store abstracts how a repository holds its documents, so builds can
// choose between the in-memory form (MemStore — every decoded DOM
// resident, the historical behavior) and the disk-backed form (DiskStore —
// content-addressed XML blobs with a bounded cache of decoded DOMs). The
// pipeline's sharded build (core.BuildSharded) writes through this
// interface so a million-document corpus never has to be resident at once.
//
// Contract:
//
//   - Documents are append-only and positional: Append assigns the next
//     index, and Name/Doc/XML address documents by that index in insertion
//     order. Implementations never reorder or drop documents.
//   - XML(i) returns the canonical serialization of document i — exactly
//     the bytes xmlout.Marshal produces for its tree. AppendXML callers
//     must only hand over bytes produced that way; Append enforces it by
//     marshaling itself. This is what makes byte-identity checks between
//     store implementations (and between sharded and single-process
//     builds) meaningful without decoding.
//   - Doc(i) returns the decoded tree. Implementations may cache decoded
//     trees and may return a tree shared with other callers; callers must
//     not mutate it.
//   - Reads (Len, Name, Doc, XML) must be safe to call concurrently.
//     Appends are single-writer: callers serialize Append against both
//     other appends and reads, matching how builds (one writer, readers
//     only after completion) and serving snapshots (read-only) use stores.
//     DiskStore additionally locks internally, so it tolerates concurrent
//     use outright.
type Store interface {
	// Len returns the number of stored documents.
	Len() int
	// Name returns the i-th document's name (its source identifier).
	Name(i int) string
	// Doc returns the i-th document's decoded tree.
	Doc(i int) (*dom.Node, error)
	// XML returns the i-th document's canonical XML serialization.
	XML(i int) ([]byte, error)
	// Append stores doc under name at the next index.
	Append(name string, doc *dom.Node) error
	// Close releases any resources held by the store. A closed store must
	// not be used further.
	Close() error
}

// MemStore is the in-memory Store: every document's decoded tree stays
// resident. It is the default backing of Repository and the right choice
// for corpora that comfortably fit in memory (serving snapshots, tests,
// small builds).
type MemStore struct {
	names []string
	docs  []*dom.Node
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Len returns the number of stored documents.
func (s *MemStore) Len() int { return len(s.docs) }

// Name returns the i-th document's name.
func (s *MemStore) Name(i int) string { return s.names[i] }

// Doc returns the i-th document's tree.
func (s *MemStore) Doc(i int) (*dom.Node, error) {
	if i < 0 || i >= len(s.docs) {
		return nil, fmt.Errorf("repository: document %d out of range [0,%d)", i, len(s.docs))
	}
	return s.docs[i], nil
}

// XML serializes the i-th document on demand.
func (s *MemStore) XML(i int) ([]byte, error) {
	d, err := s.Doc(i)
	if err != nil {
		return nil, err
	}
	return []byte(xmlout.Marshal(d)), nil
}

// Append stores doc under name.
func (s *MemStore) Append(name string, doc *dom.Node) error {
	s.names = append(s.names, name)
	s.docs = append(s.docs, doc)
	return nil
}

// Close is a no-op for the in-memory store.
func (s *MemStore) Close() error { return nil }
