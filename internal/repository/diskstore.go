package repository

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"webrev/internal/dom"
	"webrev/internal/obs"
	"webrev/internal/xmlout"
)

// DiskStore is the disk-backed Store: documents live as content-addressed
// XML blobs in one append-only segment file, addressed by an append-only
// index of JSON lines, with a bounded LRU of decoded DOMs in front. It is
// what lets a build hold a million-document repository with RSS bounded by
// MaxResidentDocs instead of the corpus size.
//
// On-disk layout (format "webrev-diskstore", version 1 — see DESIGN.md §8
// for the bump policy):
//
//	index.log    — header line `webrev-diskstore v1`, then one JSON line
//	               per document: {"name":…,"sha":hex,"off":N,"len":N}.
//	               Lines only ever append; off/len address segment.blob.
//	segment.blob — the XML blob bytes, back to back. A blob is written
//	               before its index line, so every complete index line
//	               points at complete data.
//
// Blobs are content-addressed by SHA-256: appending a document whose
// canonical XML matches an existing blob writes only an index line (the
// "store.deduped" counter), never duplicate segment bytes.
//
// Crash safety: Open scans the index, drops a torn trailing line, and
// ignores segment bytes past the last indexed extent, so a store killed
// mid-append reopens at its last complete document. The sharded build
// additionally truncates to its checkpoint watermark (TruncateDocs).
//
// All methods are safe for concurrent use; blob reads use pread
// (File.ReadAt) so readers never contend on a shared file offset.
type DiskStore struct {
	dir string
	tr  obs.Tracer

	maxResident int
	dedupeCap   int

	mu      sync.Mutex
	idx     *os.File    // index.log, append handle
	seg     *os.File    // segment.blob, O_RDWR: appends at segSize, pread anywhere
	entries []diskEntry // one per document, insertion order
	segSize int64
	dedupe  map[[sha256.Size]byte]blobRef
	lru     lruCache
	idxW    *bufio.Writer
	closed  bool
}

// diskEntry locates one document in the segment.
type diskEntry struct {
	name string
	sum  [sha256.Size]byte
	off  int64
	n    int32
}

// blobRef is a dedupe-map value: where an already-written blob lives.
type blobRef struct {
	off int64
	n   int32
}

// DiskOptions tunes a DiskStore.
type DiskOptions struct {
	// MaxResidentDocs bounds the decoded-DOM LRU: at most this many parsed
	// documents stay resident; further Doc reads evict the least recently
	// used. 0 selects DefaultMaxResidentDocs; negative disables caching
	// entirely (every Doc read decodes from disk).
	MaxResidentDocs int
	// DedupeCap bounds the in-memory content-address map. Once the store
	// holds this many distinct blobs, new unique content is still stored
	// but no longer joins the map (so later identical appends of it write
	// their own bytes). 0 selects DefaultDedupeCap. The bound keeps writer
	// memory independent of corpus size.
	DedupeCap int
	// Tracer records the store.hits / store.misses / store.evictions /
	// store.deduped counters. Nil means the no-op tracer.
	Tracer obs.Tracer
}

// DefaultMaxResidentDocs is the decoded-DOM LRU bound when
// DiskOptions.MaxResidentDocs is 0.
const DefaultMaxResidentDocs = 256

// DefaultDedupeCap is the content-address map bound when
// DiskOptions.DedupeCap is 0.
const DefaultDedupeCap = 1 << 20

const (
	diskIndexFile   = "index.log"
	diskSegmentFile = "segment.blob"
	diskHeader      = "webrev-diskstore v1"
)

// diskLine is the JSON wire form of one index entry.
type diskLine struct {
	Name string `json:"name"`
	Sha  string `json:"sha"`
	Off  int64  `json:"off"`
	Len  int32  `json:"len"`
}

// CreateDiskStore creates (or truncates) a disk store in dir.
func CreateDiskStore(dir string, opts DiskOptions) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	idx, err := os.OpenFile(filepath.Join(dir, diskIndexFile), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	seg, err := os.OpenFile(filepath.Join(dir, diskSegmentFile), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		idx.Close()
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	s := newDiskStore(dir, idx, seg, opts)
	if _, err := s.idxW.WriteString(diskHeader + "\n"); err != nil {
		s.Close()
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	return s, nil
}

// OpenDiskStore opens an existing disk store in dir for reading and further
// appends. A torn tail (a crash mid-append) is healed: incomplete trailing
// index lines and unindexed segment bytes are discarded.
func OpenDiskStore(dir string, opts DiskOptions) (*DiskStore, error) {
	data, err := os.ReadFile(filepath.Join(dir, diskIndexFile))
	if err != nil {
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	seg, err := os.OpenFile(filepath.Join(dir, diskSegmentFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	segInfo, err := seg.Stat()
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	segSize := segInfo.Size()

	header, rest, _ := bytes.Cut(data, []byte("\n"))
	if string(header) != diskHeader {
		seg.Close()
		return nil, fmt.Errorf("repository: disk store: unsupported index header %q (want %q)", header, diskHeader)
	}
	var (
		entries  []diskEntry
		goodEnd  = int64(len(header)) + 1 // byte offset of the last complete, valid line's end
		dataSize int64                    // high-water mark of indexed segment extents
		pos      = goodEnd
	)
	for len(rest) > 0 {
		line, tail, hasNL := bytes.Cut(rest, []byte("\n"))
		if !hasNL {
			break // torn trailing line: drop it
		}
		lineEnd := pos + int64(len(line)) + 1
		var dl diskLine
		if err := json.Unmarshal(line, &dl); err != nil {
			break // corrupt tail: everything from here on is dropped
		}
		sum, err := hex.DecodeString(dl.Sha)
		if err != nil || len(sum) != sha256.Size || dl.Off < 0 || dl.Len < 0 || dl.Off+int64(dl.Len) > segSize {
			break
		}
		e := diskEntry{name: dl.Name, off: dl.Off, n: dl.Len}
		copy(e.sum[:], sum)
		entries = append(entries, e)
		if end := dl.Off + int64(dl.Len); end > dataSize {
			dataSize = end
		}
		goodEnd = lineEnd
		pos = lineEnd
		rest = tail
	}
	// Heal: truncate the index to the last good line and the segment to
	// the last indexed byte, so the next append continues from a
	// consistent pair.
	if goodEnd < int64(len(data)) {
		if err := os.Truncate(filepath.Join(dir, diskIndexFile), goodEnd); err != nil {
			seg.Close()
			return nil, fmt.Errorf("repository: disk store heal: %w", err)
		}
	}
	if dataSize < segSize {
		if err := seg.Truncate(dataSize); err != nil {
			seg.Close()
			return nil, fmt.Errorf("repository: disk store heal: %w", err)
		}
	}
	idx, err := os.OpenFile(filepath.Join(dir, diskIndexFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("repository: disk store: %w", err)
	}
	s := newDiskStore(dir, idx, seg, opts)
	s.entries = entries
	s.segSize = dataSize
	for _, e := range entries {
		if len(s.dedupe) >= s.dedupeCap {
			break
		}
		if _, ok := s.dedupe[e.sum]; !ok {
			s.dedupe[e.sum] = blobRef{off: e.off, n: e.n}
		}
	}
	return s, nil
}

func newDiskStore(dir string, idx, seg *os.File, opts DiskOptions) *DiskStore {
	maxResident := opts.MaxResidentDocs
	if maxResident == 0 {
		maxResident = DefaultMaxResidentDocs
	}
	dedupeCap := opts.DedupeCap
	if dedupeCap <= 0 {
		dedupeCap = DefaultDedupeCap
	}
	return &DiskStore{
		dir:         dir,
		tr:          obs.OrNop(opts.Tracer),
		maxResident: maxResident,
		dedupeCap:   dedupeCap,
		idx:         idx,
		seg:         seg,
		idxW:        bufio.NewWriter(idx),
		dedupe:      make(map[[sha256.Size]byte]blobRef),
		lru:         lruCache{byIdx: make(map[int]*list.Element)},
	}
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

// Len returns the number of stored documents.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Name returns the i-th document's name.
func (s *DiskStore) Name(i int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[i].name
}

// Append marshals doc canonically and stores it under name.
func (s *DiskStore) Append(name string, doc *dom.Node) error {
	return s.AppendXML(name, []byte(xmlout.Marshal(doc)))
}

// AppendXML stores one document's canonical XML bytes (as produced by
// xmlout.Marshal) under name. Identical content is deduplicated against
// already-stored blobs.
func (s *DiskStore) AppendXML(name string, xml []byte) error {
	sum := sha256.Sum256(xml)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("repository: disk store: append on closed store")
	}
	ref, dup := s.dedupe[sum]
	if !dup {
		if _, err := s.seg.WriteAt(xml, s.segSize); err != nil {
			return fmt.Errorf("repository: disk store append: %w", err)
		}
		ref = blobRef{off: s.segSize, n: int32(len(xml))}
		s.segSize += int64(len(xml))
		if len(s.dedupe) < s.dedupeCap {
			s.dedupe[sum] = ref
		}
	} else if s.tr.Enabled() {
		s.tr.Add(obs.CtrStoreDeduped, 1)
	}
	line, err := json.Marshal(diskLine{Name: name, Sha: hex.EncodeToString(sum[:]), Off: ref.off, Len: ref.n})
	if err != nil {
		return fmt.Errorf("repository: disk store append: %w", err)
	}
	if _, err := s.idxW.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("repository: disk store append: %w", err)
	}
	e := diskEntry{name: name, off: ref.off, n: ref.n, sum: sum}
	s.entries = append(s.entries, e)
	return nil
}

// Flush pushes buffered index lines to the OS. A flushed store reopens
// with every appended document visible (module an OS crash; Flush does not
// fsync).
func (s *DiskStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idxW.Flush()
}

// XML returns the i-th document's canonical XML bytes, read straight from
// the segment (no cache: callers stream these once, or hash them).
func (s *DiskStore) XML(i int) ([]byte, error) {
	s.mu.Lock()
	if i < 0 || i >= len(s.entries) {
		n := len(s.entries)
		s.mu.Unlock()
		return nil, fmt.Errorf("repository: document %d out of range [0,%d)", i, n)
	}
	e := s.entries[i]
	s.mu.Unlock()
	buf := make([]byte, e.n)
	if _, err := s.seg.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("repository: disk store read %d: %w", i, err)
	}
	return buf, nil
}

// Doc returns the i-th document's decoded tree, serving repeats from the
// bounded LRU. The returned tree is shared across callers and must not be
// mutated.
func (s *DiskStore) Doc(i int) (*dom.Node, error) {
	s.mu.Lock()
	if d, ok := s.lru.get(i); ok {
		s.mu.Unlock()
		if s.tr.Enabled() {
			s.tr.Add(obs.CtrStoreHits, 1)
		}
		return d, nil
	}
	s.mu.Unlock()
	if s.tr.Enabled() {
		s.tr.Add(obs.CtrStoreMisses, 1)
	}
	xml, err := s.XML(i)
	if err != nil {
		return nil, err
	}
	d, err := xmlout.UnmarshalElement(string(xml))
	if err != nil {
		return nil, fmt.Errorf("repository: disk store decode %d: %w", i, err)
	}
	if s.maxResident > 0 {
		s.mu.Lock()
		evicted := s.lru.put(i, d, s.maxResident)
		s.mu.Unlock()
		if evicted > 0 && s.tr.Enabled() {
			s.tr.Add(obs.CtrStoreEvictions, int64(evicted))
		}
	}
	return d, nil
}

// TruncateDocs drops every document at index >= n, rewinding the store to
// its first n appends — the resume primitive of the sharded build: a
// restarted shard truncates its segment store to the last checkpoint's
// watermark before re-processing. Blob bytes past the kept entries'
// high-water mark are discarded.
func (s *DiskStore) TruncateDocs(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 || n > len(s.entries) {
		return fmt.Errorf("repository: truncate to %d out of range [0,%d]", n, len(s.entries))
	}
	if n == len(s.entries) {
		return nil
	}
	if err := s.idxW.Flush(); err != nil {
		return err
	}
	s.entries = s.entries[:n]
	var dataSize int64
	rewrite := bytes.NewBuffer(make([]byte, 0, 64*(n+1)))
	rewrite.WriteString(diskHeader + "\n")
	for _, e := range s.entries {
		if end := e.off + int64(e.n); end > dataSize {
			dataSize = end
		}
		line, err := json.Marshal(diskLine{Name: e.name, Sha: hex.EncodeToString(e.sum[:]), Off: e.off, Len: e.n})
		if err != nil {
			return err
		}
		rewrite.Write(line)
		rewrite.WriteByte('\n')
	}
	tmp := filepath.Join(s.dir, diskIndexFile+".tmp")
	if err := os.WriteFile(tmp, rewrite.Bytes(), 0o644); err != nil {
		return fmt.Errorf("repository: disk store truncate: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, diskIndexFile)); err != nil {
		return fmt.Errorf("repository: disk store truncate: %w", err)
	}
	s.idx.Close()
	idx, err := os.OpenFile(filepath.Join(s.dir, diskIndexFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("repository: disk store truncate: %w", err)
	}
	s.idx = idx
	s.idxW = bufio.NewWriter(idx)
	if err := s.seg.Truncate(dataSize); err != nil {
		return fmt.Errorf("repository: disk store truncate: %w", err)
	}
	s.segSize = dataSize
	// Rebuild the dedupe map and drop cached decodes of removed entries.
	s.dedupe = make(map[[sha256.Size]byte]blobRef)
	for _, e := range s.entries {
		if len(s.dedupe) >= s.dedupeCap {
			break
		}
		if _, ok := s.dedupe[e.sum]; !ok {
			s.dedupe[e.sum] = blobRef{off: e.off, n: e.n}
		}
	}
	s.lru.clear()
	return nil
}

// BytesOnDisk returns the store's current footprint: segment bytes plus
// flushed index bytes.
func (s *DiskStore) BytesOnDisk() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idxW.Flush()
	var total int64 = s.segSize
	if fi, err := os.Stat(filepath.Join(s.dir, diskIndexFile)); err == nil {
		total += fi.Size()
	}
	return total
}

// Close flushes the index and releases both file handles.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.idxW.Flush()
	if e := s.idx.Close(); err == nil {
		err = e
	}
	if e := s.seg.Close(); err == nil {
		err = e
	}
	s.lru.clear()
	return err
}

// lruCache is the decoded-DOM LRU: index → tree, evicting least recently
// used past the bound. Callers hold the store mutex.
type lruCache struct {
	order list.List // front = most recent; values are *lruEntry
	byIdx map[int]*list.Element
}

// lruEntry is one cached decode.
type lruEntry struct {
	idx int
	doc *dom.Node
}

func (c *lruCache) get(i int) (*dom.Node, bool) {
	el, ok := c.byIdx[i]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).doc, true
}

func (c *lruCache) put(i int, d *dom.Node, max int) (evicted int) {
	if el, ok := c.byIdx[i]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).doc = d
		return 0
	}
	c.byIdx[i] = c.order.PushFront(&lruEntry{idx: i, doc: d})
	for c.order.Len() > max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byIdx, back.Value.(*lruEntry).idx)
		evicted++
	}
	return evicted
}

func (c *lruCache) clear() {
	c.order.Init()
	if len(c.byIdx) > 0 {
		c.byIdx = make(map[int]*list.Element)
	}
}
