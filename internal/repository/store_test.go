package repository

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"webrev/internal/obs"
	"webrev/internal/xmlout"
)

// testDoc builds a small canonical document tree by round-tripping a
// literal XML string through xmlout, so its Marshal form is exact.
func testDoc(t *testing.T, xml string) (tree []byte, n int) {
	t.Helper()
	root, err := xmlout.UnmarshalElement(xml)
	if err != nil {
		t.Fatalf("testDoc %q: %v", xml, err)
	}
	return []byte(xmlout.Marshal(root)), 0
}

// storeDocs is a varied set of canonical documents for store tests.
func storeDocs(t *testing.T) [][]byte {
	t.Helper()
	var out [][]byte
	for _, src := range []string{
		"<resume><name val=\"Ada\"/></resume>",
		"<resume><name val=\"Grace\"/><education><degree val=\"PhD\"/></education></resume>",
		"<resume><skills><skill val=\"go\"/><skill val=\"sql\"/></skills></resume>",
		"<resume><name val=\"Ada\"/></resume>", // duplicate of doc 0, for dedupe
	} {
		xml, _ := testDoc(t, src)
		out = append(out, xml)
	}
	return out
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore()
	docs := storeDocs(t)
	for i, xml := range docs {
		root, err := xmlout.UnmarshalElement(string(xml))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(fmt.Sprintf("doc-%d", i), root); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(docs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(docs))
	}
	for i, want := range docs {
		got, err := s.XML(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("doc %d XML mismatch", i)
		}
		if s.Name(i) != fmt.Sprintf("doc-%d", i) {
			t.Fatalf("doc %d name %q", i, s.Name(i))
		}
	}
	if _, err := s.Doc(len(docs)); err == nil {
		t.Fatal("out-of-range Doc should error")
	}
	if _, err := s.Doc(-1); err == nil {
		t.Fatal("negative Doc should error")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := storeDocs(t)
	s, err := CreateDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, xml := range docs {
		if err := s.AppendXML(fmt.Sprintf("doc-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *DiskStore) {
		t.Helper()
		if s.Len() != len(docs) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(docs))
		}
		for i, want := range docs {
			got, err := s.XML(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("doc %d XML mismatch after disk round trip", i)
			}
			root, err := s.Doc(i)
			if err != nil {
				t.Fatal(err)
			}
			if remarshaled := xmlout.Marshal(root); remarshaled != string(want) {
				t.Fatalf("doc %d decode+marshal not byte-identical", i)
			}
			if s.Name(i) != fmt.Sprintf("doc-%d", i) {
				t.Fatalf("doc %d name %q", i, s.Name(i))
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything must survive the close/open cycle byte-identically.
	s, err = OpenDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check(s)
	if _, err := s.XML(len(docs)); err == nil {
		t.Fatal("out-of-range XML should error")
	}
}

func TestDiskStoreDedupe(t *testing.T) {
	dir := t.TempDir()
	coll := obs.NewCollector()
	s, err := CreateDiskStore(dir, DiskOptions{Tracer: coll})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	xml, _ := testDoc(t, "<resume><name val=\"Ada\"/></resume>")
	if err := s.AppendXML("a", xml); err != nil {
		t.Fatal(err)
	}
	segSize := func() int64 {
		fi, err := os.Stat(filepath.Join(dir, "segment.blob"))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	size1 := segSize()
	for i := 0; i < 5; i++ {
		if err := s.AppendXML(fmt.Sprintf("dup-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	// Identical content costs only index lines, never new segment bytes.
	if grew := segSize() - size1; grew != 0 {
		t.Fatalf("dedupe ineffective: segment grew %d bytes for 5 duplicate docs", grew)
	}
	if got := coll.Snapshot().Counters[obs.CtrStoreDeduped]; got != 5 {
		t.Fatalf("store.deduped = %d, want 5", got)
	}
	for i := 0; i < s.Len(); i++ {
		got, err := s.XML(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, xml) {
			t.Fatalf("deduped doc %d corrupted", i)
		}
	}
}

func TestDiskStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	coll := obs.NewCollector()
	s, err := CreateDiskStore(dir, DiskOptions{MaxResidentDocs: 1, Tracer: coll})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	docs := storeDocs(t)
	for i, xml := range docs[:3] {
		if err := s.AppendXML(fmt.Sprintf("doc-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	// Alternating reads under a 1-doc cap: every switch evicts and decodes
	// anew; a repeat of the resident doc hits.
	for _, i := range []int{0, 1, 1, 0, 2} {
		root, err := s.Doc(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := xmlout.Marshal(root); got != string(docs[i]) {
			t.Fatalf("doc %d wrong under eviction", i)
		}
	}
	snap := coll.Snapshot()
	if snap.Counters[obs.CtrStoreHits] != 1 {
		t.Fatalf("store.hits = %d, want 1", snap.Counters[obs.CtrStoreHits])
	}
	if snap.Counters[obs.CtrStoreMisses] != 4 {
		t.Fatalf("store.misses = %d, want 4", snap.Counters[obs.CtrStoreMisses])
	}
	if snap.Counters[obs.CtrStoreEvictions] != 3 {
		t.Fatalf("store.evictions = %d, want 3", snap.Counters[obs.CtrStoreEvictions])
	}
}

// TestDiskStoreSelfHealingOpen corrupts the tail of a store the way a
// crash mid-append would — a torn index line, unindexed segment bytes —
// and checks Open recovers every complete document and discards the rest.
func TestDiskStoreSelfHealingOpen(t *testing.T) {
	dir := t.TempDir()
	docs := storeDocs(t)
	s, err := CreateDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, xml := range docs[:3] {
		if err := s.AppendXML(fmt.Sprintf("doc-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: half an index line and dangling segment bytes.
	idx := filepath.Join(dir, "index.log")
	seg := filepath.Join(dir, "segment.blob")
	appendBytes := func(path string, b []byte) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendBytes(seg, []byte("<resume><name val=\"half-written"))
	appendBytes(idx, []byte(`{"name":"torn","sha":"ab`)) // no trailing newline

	s, err = OpenDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("healed store has %d docs, want 3", s.Len())
	}
	for i, want := range docs[:3] {
		got, err := s.XML(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("doc %d corrupted by heal", i)
		}
	}
	// The healed store accepts appends and round-trips them.
	if err := s.AppendXML("doc-3", docs[3]); err != nil {
		t.Fatal(err)
	}
	got, err := s.XML(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, docs[3]) {
		t.Fatal("append after heal corrupted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A corrupt (non-JSON) complete line also truncates the tail.
	appendBytes(idx, []byte("not json at all\n"))
	s, err = OpenDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 4 {
		t.Fatalf("store has %d docs after corrupt-line heal, want 4", s.Len())
	}
}

func TestDiskStoreTruncateDocs(t *testing.T) {
	dir := t.TempDir()
	docs := storeDocs(t)
	s, err := CreateDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, xml := range docs[:3] {
		if err := s.AppendXML(fmt.Sprintf("doc-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateDocs(5); err == nil {
		t.Fatal("truncate beyond length should error")
	}
	if err := s.TruncateDocs(1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after truncate, want 1", s.Len())
	}
	// Appends continue after the truncation point, and the whole store
	// survives a reopen.
	if err := s.AppendXML("replacement", docs[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenDiskStore(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("Len = %d after reopen, want 2", s.Len())
	}
	for i, want := range [][]byte{docs[0], docs[2]} {
		got, err := s.XML(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("doc %d wrong after truncate+append+reopen", i)
		}
	}
	if s.Name(1) != "replacement" {
		t.Fatalf("name after truncate = %q", s.Name(1))
	}
}

func TestRepositoryOnDiskStore(t *testing.T) {
	// A repository over a DiskStore must behave like one over a MemStore:
	// same names, docs, and saved form.
	dir := t.TempDir()
	s, err := CreateDiskStore(filepath.Join(dir, "store"), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := storeDocs(t)
	for i, xml := range docs[:3] {
		if err := s.AppendXML(fmt.Sprintf("doc-%d", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	r := NewWithStore(nil, s)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	names := r.Names()
	if len(names) != 3 || names[2] != "doc-2" {
		t.Fatalf("Names = %v", names)
	}
	for i := range docs[:3] {
		if d := r.Doc(i); d == nil {
			t.Fatalf("Doc(%d) = nil", i)
		}
	}
	if got := r.Doc(99); got != nil {
		t.Fatal("out-of-range Doc should be nil")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
