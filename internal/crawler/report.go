package crawler

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"webrev/internal/obs"
)

// Report is the structured account of one crawl: what was fetched, what
// failed and why, and how the failure policy was exercised. A crawl that
// degrades — error budget exhausted, context canceled, page cap hit —
// still returns the pages it got plus a Report, so no loss is silent.
type Report struct {
	// Fetched counts pages retrieved successfully (after any retries).
	Fetched int
	// Failed counts URLs that failed permanently: a non-retryable error,
	// or a transient one that survived every retry.
	Failed int
	// Retried counts retry attempts across all URLs (attempts beyond each
	// URL's first).
	Retried int
	// Skipped counts URLs discovered but never fetched because the crawl
	// stopped early (page cap, error budget, depth cap, cancellation).
	Skipped int
	// Truncated counts pages whose bodies were clipped at
	// FetchPolicy.MaxBodyBytes.
	Truncated int
	// NotModified counts conditional refetches answered 304 (recrawls
	// only): pages revalidated without a body transfer.
	NotModified int
	// Vanished counts records retired by a completed recrawl (see
	// Crawler.RecrawlTo).
	Vanished int
	// Bytes is the total body bytes kept.
	Bytes int64
	// Wall is the crawl's wall-clock duration.
	Wall time.Duration
	// ErrorClasses tallies permanent failures by error class (ClassNetwork,
	// ClassTimeout, ClassHTTP5xx, ...).
	ErrorClasses map[string]int
	// BudgetExhausted is set when the crawl stopped because Failed reached
	// Crawler.MaxFailures.
	BudgetExhausted bool
	// Canceled is set when the crawl's context ended before completion.
	Canceled bool
	// Errors lists each permanently failed URL with its error class, in
	// fetch order — the recrawl's vanished classification needs to tell a
	// 404 (retire the record) from a timeout (keep serving the stale copy),
	// and operators need to know which URLs are failing, not just how many.
	Errors []FetchError
}

// FetchError records one URL's permanent fetch failure.
type FetchError struct {
	// URL is the failed URL.
	URL string `json:"url"`
	// Class is the error class (ClassNetwork, ClassHTTP4xx, ...).
	Class string `json:"class"`
	// Attempts is how many fetch attempts were made, retries included.
	Attempts int `json:"attempts"`
	// Err is the final attempt's error text.
	Err string `json:"err"`
}

// Record bridges the report into the pipeline's metrics model: the crawl's
// wall clock becomes the obs.StageCrawl timing and the tallies become the
// crawl.* counters (error classes under "crawl.errors.<class>"). tr may be
// nil. Crawler.CrawlContext calls this automatically when the crawler has
// a Tracer; it is exported for callers that run crawls outside a Crawler.
func (r *Report) Record(tr obs.Tracer) {
	tr = obs.OrNop(tr)
	if !tr.Enabled() {
		return
	}
	tr.Observe(obs.StageCrawl, r.Wall)
	tr.Add(obs.CtrCrawlFetched, int64(r.Fetched))
	tr.Add(obs.CtrCrawlFailed, int64(r.Failed))
	tr.Add(obs.CtrCrawlRetried, int64(r.Retried))
	tr.Add(obs.CtrCrawlSkipped, int64(r.Skipped))
	tr.Add(obs.CtrCrawlTruncated, int64(r.Truncated))
	tr.Add(obs.CtrCrawlNotModified, int64(r.NotModified))
	tr.Add(obs.CtrCrawlVanished, int64(r.Vanished))
	tr.Add(obs.CtrCrawlBytes, r.Bytes)
	for class, n := range r.ErrorClasses {
		tr.Add("crawl.errors."+class, int64(n))
	}
}

// String renders the report as a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fetched %d, failed %d, retried %d, skipped %d",
		r.Fetched, r.Failed, r.Retried, r.Skipped)
	if r.Truncated > 0 {
		fmt.Fprintf(&b, ", truncated %d", r.Truncated)
	}
	if r.NotModified > 0 {
		fmt.Fprintf(&b, ", not-modified %d", r.NotModified)
	}
	if r.Vanished > 0 {
		fmt.Fprintf(&b, ", vanished %d", r.Vanished)
	}
	fmt.Fprintf(&b, "; %d bytes in %v", r.Bytes, r.Wall.Round(time.Millisecond))
	if len(r.ErrorClasses) > 0 {
		classes := make([]string, 0, len(r.ErrorClasses))
		for c := range r.ErrorClasses {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, len(classes))
		for i, c := range classes {
			parts[i] = fmt.Sprintf("%s:%d", c, r.ErrorClasses[c])
		}
		fmt.Fprintf(&b, "; errors [%s]", strings.Join(parts, " "))
	}
	if r.BudgetExhausted {
		b.WriteString("; error budget exhausted")
	}
	if r.Canceled {
		b.WriteString("; canceled")
	}
	return b.String()
}
