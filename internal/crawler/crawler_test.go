package crawler

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"webrev/internal/corpus"
)

func testSite(t *testing.T, nResumes, nDistractors int) (*Site, *httptest.Server) {
	t.Helper()
	g := corpus.New(corpus.Options{Seed: 9})
	site := BuildSite(g.Corpus(nResumes), distractors(g, nDistractors))
	srv := httptest.NewServer(site.Handler())
	t.Cleanup(srv.Close)
	return site, srv
}

func distractors(g *corpus.Generator, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Distractor()
	}
	return out
}

func TestBuildSiteLayout(t *testing.T) {
	site, _ := testSite(t, 10, 3)
	// 10 resumes + 3 distractors + root + letter indexes.
	if site.PageCount() < 14 {
		t.Fatalf("pages = %d", site.PageCount())
	}
	if _, ok := site.pages["/"]; !ok {
		t.Fatal("no root page")
	}
	if _, ok := site.pages["/resumes/1.html"]; !ok {
		t.Fatal("no resume page")
	}
}

func TestExtractLinks(t *testing.T) {
	html := `<body><a href="/a.html">a</a><a name="anchor">no href</a>
<p><a href="b.html">b</a></p><a href="">empty</a></body>`
	got := ExtractLinks(html)
	want := []string{"/a.html", "b.html"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("links = %v", got)
	}
}

func TestCrawlFindsAllPages(t *testing.T) {
	site, srv := testSite(t, 12, 4)
	c := &Crawler{Filter: ResumeFilter(3), Workers: 4}
	pages, err := c.Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != site.PageCount() {
		t.Fatalf("fetched %d of %d pages", len(pages), site.PageCount())
	}
	onTopic := 0
	for _, p := range pages {
		if p.OnTopic {
			onTopic++
			if !strings.Contains(p.URL, "/resumes/") {
				t.Errorf("false positive: %s", p.URL)
			}
		} else if strings.Contains(p.URL, "/resumes/") {
			t.Errorf("false negative: %s", p.URL)
		}
	}
	if onTopic != 12 {
		t.Fatalf("on-topic = %d, want 12", onTopic)
	}
}

func TestCrawlMaxPages(t *testing.T) {
	_, srv := testSite(t, 20, 0)
	c := &Crawler{MaxPages: 5}
	pages, err := c.Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) > 5 {
		t.Fatalf("fetched %d, cap 5", len(pages))
	}
}

func TestCrawlMaxDepth(t *testing.T) {
	_, srv := testSite(t, 10, 0)
	c := &Crawler{MaxDepth: 1} // root + letter indexes only
	pages, err := c.Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if strings.Contains(p.URL, "/resumes/") {
			t.Fatalf("depth cap violated: %s", p.URL)
		}
	}
}

func TestCrawlSkipsDeadLinks(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<a href="/dead.html">x</a><a href="/live.html">y</a>`))
	})
	mux.HandleFunc("/live.html", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`alive`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &Crawler{}
	pages, err := c.Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	// dead.html handler matches "/" mux pattern... use explicit 404 check:
	// the mux serves "/" for unknown paths, so every link resolves; just
	// assert the crawl terminated and found live.html.
	found := false
	for _, p := range pages {
		if strings.HasSuffix(p.URL, "/live.html") {
			found = true
		}
	}
	if !found {
		t.Fatal("live.html not crawled")
	}
}

func TestCrawlStaysOnHost(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<a href="http://offsite.invalid/x.html">off</a>`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &Crawler{}
	pages, err := c.Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d (offsite link must not be followed)", len(pages))
	}
}

func TestCrawlBadSeed(t *testing.T) {
	c := &Crawler{}
	if _, err := c.Crawl("://not a url"); err == nil {
		t.Fatal("expected error")
	}
}

func TestResumeFilter(t *testing.T) {
	f := ResumeFilter(3)
	resume := `<h2>Education</h2><h2>Experience</h2><h2>Skills</h2>`
	if !f("", resume) {
		t.Fatal("resume rejected")
	}
	if f("", "<p>gardening tips</p>") {
		t.Fatal("distractor accepted")
	}
}
