package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Error classes used as keys in Report.ErrorClasses and for retry
// classification. Transient classes (network, timeout, body, http-5xx,
// http-429) are retried under FetchPolicy; permanent classes are not.
const (
	ClassNetwork  = "network"  // dial/reset/refused and other transport errors
	ClassTimeout  = "timeout"  // per-attempt deadline exceeded or net timeout
	ClassBody     = "body"     // response body read failed mid-stream
	ClassHTTP4xx  = "http-4xx" // permanent client error (404, 410, ...)
	ClassHTTP5xx  = "http-5xx" // transient server error
	ClassHTTP429  = "http-429" // rate limited
	ClassCanceled = "canceled" // the crawl's own context was canceled
)

// Retryable reports whether an error class is transient, i.e. worth
// retrying under the fetch policy.
func Retryable(class string) bool {
	switch class {
	case ClassNetwork, ClassTimeout, ClassBody, ClassHTTP5xx, ClassHTTP429:
		return true
	}
	return false
}

// FetchPolicy governs how each URL is fetched: a per-attempt timeout,
// bounded retries with exponential backoff plus jitter for transient
// failures, and a body-size cap. The zero value selects production
// defaults; a hung server costs at most Timeout per attempt instead of
// stalling the crawl forever.
type FetchPolicy struct {
	// Timeout bounds one fetch attempt end to end, including reading the
	// body (default 10s).
	Timeout time.Duration
	// MaxRetries is how many times a transient failure (see Retryable) is
	// retried after the first attempt (default 2). Permanent failures —
	// 404s, non-429 4xx — are never retried. Negative disables retries.
	MaxRetries int
	// BackoffBase is the delay before the first retry; it doubles each
	// further attempt (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// MaxBodyBytes caps how much of a response body is kept (default
	// 1MiB). Larger bodies are clipped and flagged as truncated in the
	// fetch result and crawl report, never silently.
	MaxBodyBytes int64
	// JitterSeed seeds the deterministic jitter source added to backoff
	// delays (default 1). Crawls with the same seed and the same fetch
	// outcomes back off identically, which keeps tests reproducible.
	JitterSeed int64
	// Revalidate enables conditional refetching: when a recrawl
	// (Crawler.RecrawlTo) holds a prior PageRecord for a URL, its ETag and
	// Last-Modified validators are sent as If-None-Match/If-Modified-Since
	// and a 304 response classifies the page as unchanged without a body
	// transfer. Content hashing still detects changes when the server
	// ignores the validators, so Revalidate is purely a bandwidth
	// optimization and safe to leave on.
	Revalidate bool
}

func (p FetchPolicy) withDefaults() FetchPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.MaxBodyBytes <= 0 {
		p.MaxBodyBytes = 1 << 20
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

// condValidators carries the cached HTTP validators a conditional refetch
// presents to the server.
type condValidators struct {
	etag         string // sent as If-None-Match
	lastModified string // sent as If-Modified-Since
}

// fetchResult is the outcome of fetching one URL, successful or not.
type fetchResult struct {
	url       string
	body      string
	bytes     int64
	truncated bool
	attempts  int
	// notModified is set when a conditional request came back 304: the
	// cached copy is current and body is empty.
	notModified bool
	// etag and lastModified capture the response validators of a 200, for
	// the next cycle's conditional request.
	etag         string
	lastModified string
	err          error
	class        string // error class, set when err != nil
}

// fetch retrieves u under the policy: up to 1+MaxRetries attempts, each
// bounded by Timeout, with backoff between attempts for transient errors.
// The policy must already have defaults applied.
func (p FetchPolicy) fetch(ctx context.Context, client *http.Client, u string, rng *lockedRand, cond condValidators) fetchResult {
	res := fetchResult{url: u}
	for attempt := 0; ; attempt++ {
		res.attempts = attempt + 1
		a := p.attempt(ctx, client, u, cond)
		if a.err == nil {
			res.body, res.bytes, res.truncated = a.body, a.n, a.truncated
			res.notModified = a.notModified
			res.etag, res.lastModified = a.etag, a.lastModified
			res.err, res.class = nil, ""
			return res
		}
		class, err := a.class, a.err
		if ctx.Err() != nil {
			// The crawl itself was canceled or timed out; don't misreport
			// that as a fetch failure of this URL.
			res.err, res.class = ctx.Err(), ClassCanceled
			return res
		}
		res.err, res.class = err, class
		if attempt >= p.MaxRetries || !Retryable(class) {
			return res
		}
		if !sleepCtx(ctx, p.backoff(attempt, rng)) {
			res.err, res.class = ctx.Err(), ClassCanceled
			return res
		}
	}
}

// attemptResult is the outcome of one bounded request.
type attemptResult struct {
	body         string
	n            int64
	truncated    bool
	notModified  bool
	etag         string
	lastModified string
	class        string
	err          error
}

// attempt performs a single bounded request and classifies any error. When
// the policy revalidates and cond carries validators, the request is
// conditional and a 304 comes back as notModified instead of a body.
func (p FetchPolicy) attempt(ctx context.Context, client *http.Client, u string, cond condValidators) attemptResult {
	actx, cancel := context.WithTimeout(ctx, p.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return attemptResult{class: ClassNetwork, err: err}
	}
	conditional := false
	if p.Revalidate {
		if cond.etag != "" {
			req.Header.Set("If-None-Match", cond.etag)
			conditional = true
		}
		if cond.lastModified != "" {
			req.Header.Set("If-Modified-Since", cond.lastModified)
			conditional = true
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return attemptResult{class: classifyTransport(err), err: err}
	}
	defer resp.Body.Close()
	if conditional && resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return attemptResult{notModified: true}
	}
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return attemptResult{class: classifyStatus(resp.StatusCode),
			err: fmt.Errorf("status %d", resp.StatusCode)}
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, p.MaxBodyBytes+1))
	if err != nil {
		if c := classifyTransport(err); c == ClassTimeout {
			return attemptResult{class: c, err: fmt.Errorf("reading body: %w", err)}
		}
		return attemptResult{class: ClassBody, err: fmt.Errorf("reading body: %w", err)}
	}
	truncated := false
	if int64(len(buf)) > p.MaxBodyBytes {
		buf = buf[:p.MaxBodyBytes]
		truncated = true
	}
	return attemptResult{body: string(buf), n: int64(len(buf)), truncated: truncated,
		etag: resp.Header.Get("ETag"), lastModified: resp.Header.Get("Last-Modified")}
}

func classifyStatus(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return ClassHTTP429
	case code >= 500:
		return ClassHTTP5xx
	default:
		return ClassHTTP4xx
	}
}

func classifyTransport(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassNetwork
}

// backoff returns the delay before retry number attempt+1: exponential in
// the attempt, capped at BackoffMax, with up to +50% deterministic jitter.
func (p FetchPolicy) backoff(attempt int, rng *lockedRand) time.Duration {
	d := p.BackoffBase << uint(attempt)
	if d <= 0 || d > p.BackoffMax {
		d = p.BackoffMax
	}
	if rng != nil {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// sleepCtx sleeps d, returning false early if ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// lockedRand is a mutex-guarded rand.Rand shared by concurrent fetch
// workers for backoff jitter.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
