package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Error classes used as keys in Report.ErrorClasses and for retry
// classification. Transient classes (network, timeout, body, http-5xx,
// http-429) are retried under FetchPolicy; permanent classes are not.
const (
	ClassNetwork  = "network"  // dial/reset/refused and other transport errors
	ClassTimeout  = "timeout"  // per-attempt deadline exceeded or net timeout
	ClassBody     = "body"     // response body read failed mid-stream
	ClassHTTP4xx  = "http-4xx" // permanent client error (404, 410, ...)
	ClassHTTP5xx  = "http-5xx" // transient server error
	ClassHTTP429  = "http-429" // rate limited
	ClassCanceled = "canceled" // the crawl's own context was canceled
)

// Retryable reports whether an error class is transient, i.e. worth
// retrying under the fetch policy.
func Retryable(class string) bool {
	switch class {
	case ClassNetwork, ClassTimeout, ClassBody, ClassHTTP5xx, ClassHTTP429:
		return true
	}
	return false
}

// FetchPolicy governs how each URL is fetched: a per-attempt timeout,
// bounded retries with exponential backoff plus jitter for transient
// failures, and a body-size cap. The zero value selects production
// defaults; a hung server costs at most Timeout per attempt instead of
// stalling the crawl forever.
type FetchPolicy struct {
	// Timeout bounds one fetch attempt end to end, including reading the
	// body (default 10s).
	Timeout time.Duration
	// MaxRetries is how many times a transient failure (see Retryable) is
	// retried after the first attempt (default 2). Permanent failures —
	// 404s, non-429 4xx — are never retried. Negative disables retries.
	MaxRetries int
	// BackoffBase is the delay before the first retry; it doubles each
	// further attempt (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// MaxBodyBytes caps how much of a response body is kept (default
	// 1MiB). Larger bodies are clipped and flagged as truncated in the
	// fetch result and crawl report, never silently.
	MaxBodyBytes int64
	// JitterSeed seeds the deterministic jitter source added to backoff
	// delays (default 1). Crawls with the same seed and the same fetch
	// outcomes back off identically, which keeps tests reproducible.
	JitterSeed int64
}

func (p FetchPolicy) withDefaults() FetchPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.MaxBodyBytes <= 0 {
		p.MaxBodyBytes = 1 << 20
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

// fetchResult is the outcome of fetching one URL, successful or not.
type fetchResult struct {
	url       string
	body      string
	bytes     int64
	truncated bool
	attempts  int
	err       error
	class     string // error class, set when err != nil
}

// fetch retrieves u under the policy: up to 1+MaxRetries attempts, each
// bounded by Timeout, with backoff between attempts for transient errors.
// The policy must already have defaults applied.
func (p FetchPolicy) fetch(ctx context.Context, client *http.Client, u string, rng *lockedRand) fetchResult {
	res := fetchResult{url: u}
	for attempt := 0; ; attempt++ {
		res.attempts = attempt + 1
		body, n, truncated, class, err := p.attempt(ctx, client, u)
		if err == nil {
			res.body, res.bytes, res.truncated = body, n, truncated
			res.err, res.class = nil, ""
			return res
		}
		if ctx.Err() != nil {
			// The crawl itself was canceled or timed out; don't misreport
			// that as a fetch failure of this URL.
			res.err, res.class = ctx.Err(), ClassCanceled
			return res
		}
		res.err, res.class = err, class
		if attempt >= p.MaxRetries || !Retryable(class) {
			return res
		}
		if !sleepCtx(ctx, p.backoff(attempt, rng)) {
			res.err, res.class = ctx.Err(), ClassCanceled
			return res
		}
	}
}

// attempt performs a single bounded request and classifies any error.
func (p FetchPolicy) attempt(ctx context.Context, client *http.Client, u string) (body string, n int64, truncated bool, class string, err error) {
	actx, cancel := context.WithTimeout(ctx, p.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		return "", 0, false, ClassNetwork, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, false, classifyTransport(err), err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return "", 0, false, classifyStatus(resp.StatusCode),
			fmt.Errorf("status %d", resp.StatusCode)
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, p.MaxBodyBytes+1))
	if err != nil {
		if c := classifyTransport(err); c == ClassTimeout {
			return "", 0, false, c, fmt.Errorf("reading body: %w", err)
		}
		return "", 0, false, ClassBody, fmt.Errorf("reading body: %w", err)
	}
	if int64(len(buf)) > p.MaxBodyBytes {
		buf = buf[:p.MaxBodyBytes]
		truncated = true
	}
	return string(buf), int64(len(buf)), truncated, "", nil
}

func classifyStatus(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return ClassHTTP429
	case code >= 500:
		return ClassHTTP5xx
	default:
		return ClassHTTP4xx
	}
}

func classifyTransport(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassNetwork
}

// backoff returns the delay before retry number attempt+1: exponential in
// the attempt, capped at BackoffMax, with up to +50% deterministic jitter.
func (p FetchPolicy) backoff(attempt int, rng *lockedRand) time.Duration {
	d := p.BackoffBase << uint(attempt)
	if d <= 0 || d > p.BackoffMax {
		d = p.BackoffMax
	}
	if rng != nil {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// sleepCtx sleeps d, returning false early if ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// lockedRand is a mutex-guarded rand.Rand shared by concurrent fetch
// workers for backoff jitter.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
