// Package faultinject is the original home of the HTTP fault-injection
// middleware, kept as a thin forwarding shim so existing imports keep
// compiling.
//
// Deprecated: the injector now lives in webrev/internal/faultinject
// alongside the pipeline stage injector; import that package instead.
package faultinject

import "webrev/internal/faultinject"

// Forwarded types; see webrev/internal/faultinject.
type (
	// Kind is one injectable failure mode.
	Kind = faultinject.Kind
	// Config parameterizes an Injector.
	Config = faultinject.Config
	// Injector is an http.Handler middleware injecting deterministic
	// faults.
	Injector = faultinject.Injector
)

// Forwarded fault kinds; see webrev/internal/faultinject.
const (
	None      = faultinject.None
	Status500 = faultinject.Status500
	Status429 = faultinject.Status429
	Reset     = faultinject.Reset
	Slow      = faultinject.Slow
	Truncate  = faultinject.Truncate
	Hang      = faultinject.Hang
)

// New wraps next with fault injection under cfg.
var New = faultinject.New

// TransientKinds are the faults a retrying client recovers from when the
// fault clears.
var TransientKinds = faultinject.TransientKinds
