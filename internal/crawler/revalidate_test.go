package crawler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webrev/internal/corpus"
)

func recrawl(t *testing.T, c *Crawler, seed string, state *CrawlState) (map[string]Change, *Report) {
	t.Helper()
	changes := make(map[string]Change)
	rep, err := c.RecrawlTo(context.Background(), seed, state, func(p Page) {
		changes[p.URL] = p.Change
	})
	if err != nil {
		t.Fatalf("recrawl: %v", err)
	}
	return changes, rep
}

func countChanges(m map[string]Change) map[Change]int {
	out := make(map[Change]int)
	for _, c := range m {
		out[c]++
	}
	return out
}

// TestRecrawlClassification drives the full unchanged/changed/new/vanished
// lifecycle against a mutating in-memory site with real conditional
// requests.
func TestRecrawlClassification(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 5})
	site := BuildSite(g.Corpus(8), []string{g.Distractor()})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := &Crawler{Client: srv.Client(), Filter: ResumeFilter(3),
		Fetch: FetchPolicy{Revalidate: true, MaxRetries: -1}}
	state := NewCrawlState()

	// Cycle 1: empty state — everything is new.
	changes, rep := recrawl(t, c, srv.URL+"/", state)
	n := len(changes)
	if n == 0 || countChanges(changes)[ChangeNew] != n {
		t.Fatalf("first cycle: want all %d pages new, got %v", n, countChanges(changes))
	}
	if rep.NotModified != 0 {
		t.Fatalf("first cycle reported %d not-modified", rep.NotModified)
	}
	if state.Len() != n {
		t.Fatalf("state has %d records, crawl saw %d pages", state.Len(), n)
	}

	// Cycle 2: nothing moved — everything revalidates via 304, no bodies.
	changes, rep = recrawl(t, c, srv.URL+"/", state)
	if countChanges(changes)[ChangeUnchanged] != n {
		t.Fatalf("second cycle: want all %d unchanged, got %v", n, countChanges(changes))
	}
	if rep.NotModified != n || rep.Fetched != 0 || rep.Bytes != 0 {
		t.Fatalf("second cycle: want %d 304s and no transfers, got not-modified %d fetched %d bytes %d",
			n, rep.NotModified, rep.Fetched, rep.Bytes)
	}

	// Cycle 3: one page mutated, one removed (404s), one added and linked
	// from the root.
	mutated := srv.URL + "/resumes/1.html"
	body, ok := site.Page("/resumes/1.html")
	if !ok {
		t.Fatal("resume 1 missing from site")
	}
	site.SetPage("/resumes/1.html", strings.Replace(body, "<body>", "<body><h1>Revised</h1>", 1))
	site.RemovePage("/resumes/2.html")
	site.SetPage("/extra.html", "<html><body><h1>Extra</h1></body></html>")
	root, _ := site.Page("/")
	site.SetPage("/", strings.Replace(root, "</ul>", `<li><a href="/extra.html">extra</a></li></ul>`, 1))

	changes, rep = recrawl(t, c, srv.URL+"/", state)
	if got := changes[mutated]; got != ChangeChanged {
		t.Errorf("mutated page classified %v, want changed", got)
	}
	if got := changes[srv.URL+"/extra.html"]; got != ChangeNew {
		t.Errorf("added page classified %v, want new", got)
	}
	if got := changes[srv.URL+"/resumes/2.html"]; got != ChangeVanished {
		t.Errorf("removed page classified %v, want vanished", got)
	}
	// The root changed too (its link list did).
	if got := changes[srv.URL+"/"]; got != ChangeChanged {
		t.Errorf("root classified %v, want changed", got)
	}
	if rep.Vanished != 1 {
		t.Errorf("report vanished = %d, want 1", rep.Vanished)
	}
	if _, ok := state.Pages[srv.URL+"/resumes/2.html"]; ok {
		t.Error("vanished page still recorded in state")
	}
	if _, ok := state.Pages[srv.URL+"/extra.html"]; !ok {
		t.Error("new page not recorded in state")
	}
}

// TestRecrawlHashFallback disables revalidation: every page refetches, but
// identical content still classifies as unchanged via the content hash.
func TestRecrawlHashFallback(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 7})
	site := BuildSite(g.Corpus(5), nil)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := &Crawler{Client: srv.Client(), Fetch: FetchPolicy{Revalidate: false, MaxRetries: -1}}
	state := NewCrawlState()
	recrawl(t, c, srv.URL+"/", state)
	changes, rep := recrawl(t, c, srv.URL+"/", state)
	if rep.NotModified != 0 {
		t.Fatalf("revalidation disabled but %d 304s reported", rep.NotModified)
	}
	if rep.Fetched == 0 {
		t.Fatal("no pages refetched")
	}
	if got := countChanges(changes); got[ChangeUnchanged] != len(changes) {
		t.Fatalf("want all unchanged via hash, got %v", got)
	}
	for u, p := range state.Pages {
		if p.Hash == "" {
			t.Fatalf("record %s has no content hash", u)
		}
	}
}

// TestRecrawlTransientFailureKeepsRecord: a URL failing with a 5xx is not
// vanished — its stale record survives for the next cycle — while the
// failure is itemized in Report.Errors.
func TestRecrawlTransientFailureKeepsRecord(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 9})
	site := BuildSite(g.Corpus(4), nil)
	broken := ""
	h := site.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == broken {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := &Crawler{Client: srv.Client(), Fetch: FetchPolicy{Revalidate: true, MaxRetries: -1}}
	state := NewCrawlState()
	recrawl(t, c, srv.URL+"/", state)

	broken = "/resumes/1.html"
	changes, rep := recrawl(t, c, srv.URL+"/", state)
	if got, ok := changes[srv.URL+broken]; ok {
		t.Errorf("transiently failing page emitted as %v", got)
	}
	if _, ok := state.Pages[srv.URL+broken]; !ok {
		t.Error("transiently failing page lost its record")
	}
	if rep.Vanished != 0 {
		t.Errorf("report vanished = %d, want 0", rep.Vanished)
	}
	found := false
	for _, fe := range rep.Errors {
		if fe.URL == srv.URL+broken && fe.Class == ClassHTTP5xx && fe.Err != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("Report.Errors missing the failed URL: %+v", rep.Errors)
	}
}

// TestRecrawlIncompleteCrawlRetiresNothing: a crawl stopped by the page cap
// must not classify unreached records as vanished.
func TestRecrawlIncompleteCrawlRetiresNothing(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 11})
	site := BuildSite(g.Corpus(10), nil)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	full := &Crawler{Client: srv.Client(), Fetch: FetchPolicy{MaxRetries: -1}}
	state := NewCrawlState()
	recrawl(t, full, srv.URL+"/", state)
	before := state.Len()

	capped := &Crawler{Client: srv.Client(), MaxPages: 2,
		Fetch: FetchPolicy{Revalidate: false, MaxRetries: -1}}
	changes, rep := recrawl(t, capped, srv.URL+"/", state)
	if rep.Skipped == 0 {
		t.Fatalf("page cap did not truncate the crawl: %+v", rep)
	}
	if rep.Vanished != 0 || countChanges(changes)[ChangeVanished] != 0 {
		t.Fatalf("incomplete crawl retired records: %v", countChanges(changes))
	}
	if state.Len() != before {
		t.Fatalf("state shrank from %d to %d on an incomplete crawl", before, state.Len())
	}
}

// TestCrawlStateJSONRoundTrip: a state serialized and restored drives the
// next cycle identically (all pages revalidate unchanged).
func TestCrawlStateJSONRoundTrip(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 13})
	site := BuildSite(g.Corpus(6), nil)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := &Crawler{Client: srv.Client(), Fetch: FetchPolicy{Revalidate: true, MaxRetries: -1}}
	state := NewCrawlState()
	recrawl(t, c, srv.URL+"/", state)

	blob, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewCrawlState()
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != state.Len() {
		t.Fatalf("round trip lost records: %d vs %d", restored.Len(), state.Len())
	}
	changes, rep := recrawl(t, c, srv.URL+"/", restored)
	if got := countChanges(changes); got[ChangeUnchanged] != len(changes) || len(changes) == 0 {
		t.Fatalf("restored state did not revalidate cleanly: %v", got)
	}
	if rep.NotModified == 0 {
		t.Fatal("restored validators produced no 304s")
	}
}

// TestSiteConditionalServing pins the in-memory site's ETag behavior the
// recrawl tests rely on.
func TestSiteConditionalServing(t *testing.T) {
	site := BuildSite(nil, []string{"<html><body>x</body></html>"})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	get := func(etag string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/misc/0.html", nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	first := get("")
	if first.StatusCode != http.StatusOK || first.Header.Get("ETag") == "" {
		t.Fatalf("plain GET: status %d, etag %q", first.StatusCode, first.Header.Get("ETag"))
	}
	etag := first.Header.Get("ETag")
	if got := get(etag); got.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with current etag: status %d, want 304", got.StatusCode)
	}
	site.SetPage("/misc/0.html", "<html><body>y</body></html>")
	if got := get(etag); got.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after mutation: status %d, want 200", got.StatusCode)
	}
}
