package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testPolicy keeps retry timing negligible in tests.
func testPolicy() FetchPolicy {
	return FetchPolicy{
		Timeout:     2 * time.Second,
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}.withDefaults()
}

func TestFetchRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	res := testPolicy().fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err != nil {
		t.Fatalf("fetch failed: %v (class %s)", res.err, res.class)
	}
	if res.body != "ok" || res.attempts != 3 {
		t.Fatalf("body %q attempts %d, want ok/3", res.body, res.attempts)
	}
}

func TestFetchRetries429(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	res := testPolicy().fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err != nil || res.attempts != 2 {
		t.Fatalf("err %v attempts %d", res.err, res.attempts)
	}
}

func TestFetchDoesNotRetryPermanent4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	res := testPolicy().fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err == nil || res.class != ClassHTTP4xx {
		t.Fatalf("err %v class %s, want http-4xx", res.err, res.class)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried %d times", calls.Load()-1)
	}
}

func TestFetchGivesUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	p := testPolicy()
	res := p.fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err == nil || res.class != ClassHTTP5xx {
		t.Fatalf("err %v class %s, want http-5xx", res.err, res.class)
	}
	if got, want := calls.Load(), int32(p.MaxRetries+1); got != want {
		t.Fatalf("attempts %d, want %d", got, want)
	}
}

func TestFetchTimeoutOnHangingServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer srv.Close()
	p := FetchPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}.withDefaults()
	start := time.Now()
	res := p.fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err == nil || res.class != ClassTimeout {
		t.Fatalf("err %v class %s, want timeout", res.err, res.class)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hanging fetch took %v, budget ~2×50ms", elapsed)
	}
	if res.attempts != 2 {
		t.Fatalf("attempts %d, want 2", res.attempts)
	}
}

func TestFetchNetworkErrorClass(t *testing.T) {
	// A closed server: connection refused is a retryable network error.
	srv := httptest.NewServer(http.NotFoundHandler())
	u := srv.URL
	srv.Close()
	p := testPolicy()
	res := p.fetch(context.Background(), http.DefaultClient, u, newLockedRand(1), condValidators{})
	if res.err == nil || res.class != ClassNetwork {
		t.Fatalf("err %v class %s, want network", res.err, res.class)
	}
	if res.attempts != p.MaxRetries+1 {
		t.Fatalf("network error not retried: attempts %d", res.attempts)
	}
}

func TestFetchTruncatesOversizedBody(t *testing.T) {
	big := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(big))
	}))
	defer srv.Close()
	p := testPolicy()
	p.MaxBodyBytes = 1024
	res := p.fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.truncated || len(res.body) != 1024 {
		t.Fatalf("truncated=%v len=%d, want clipped to 1024 and flagged", res.truncated, len(res.body))
	}

	// Under the cap: not flagged.
	p.MaxBodyBytes = int64(len(big))
	res = p.fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err != nil || res.truncated {
		t.Fatalf("err %v truncated=%v for body exactly at cap", res.err, res.truncated)
	}
}

func TestFetchRetriesTruncatedBodyRead(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", strconv.Itoa(100))
			w.Write([]byte("only-half-of-it")) // under-write → client read fails
			return
		}
		w.Write([]byte("complete"))
	}))
	defer srv.Close()
	res := testPolicy().fetch(context.Background(), srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.err != nil {
		t.Fatalf("fetch failed: %v (class %s)", res.err, res.class)
	}
	if res.body != "complete" || res.attempts < 2 {
		t.Fatalf("body %q attempts %d", res.body, res.attempts)
	}
}

func TestFetchCanceledContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res := testPolicy().fetch(ctx, srv.Client(), srv.URL, newLockedRand(1), condValidators{})
	if res.class != ClassCanceled {
		t.Fatalf("class %s, want canceled", res.class)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := FetchPolicy{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond}.withDefaults()
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := p.backoff(attempt, nil)
		if d < prev/2 {
			t.Fatalf("backoff shrank: attempt %d = %v (prev %v)", attempt, d, prev)
		}
		if d > p.BackoffMax {
			t.Fatalf("backoff %v exceeds cap %v", d, p.BackoffMax)
		}
		prev = d
	}
	// Jitter stays within +50%.
	rng := newLockedRand(7)
	for i := 0; i < 100; i++ {
		if d := p.backoff(1, rng); d > p.BackoffBase*3 {
			t.Fatalf("jittered backoff %v out of range", d)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, c := range []string{ClassNetwork, ClassTimeout, ClassBody, ClassHTTP5xx, ClassHTTP429} {
		if !Retryable(c) {
			t.Errorf("%s should be retryable", c)
		}
	}
	for _, c := range []string{ClassHTTP4xx, ClassCanceled, "other"} {
		if Retryable(c) {
			t.Errorf("%s should not be retryable", c)
		}
	}
}
