// Package crawler substitutes for the topic-specific Web crawler the paper
// used to gather its resume corpus (§4, ref [20]). It provides an in-memory
// web site serving a generated corpus over net/http and a concurrent
// breadth-first crawler with a keyword-based topical filter, so the
// acquisition path — fetch, filter, collect — is exercised end to end
// without live Web access.
//
// The crawler is built for an unreliable Web: every fetch runs under a
// FetchPolicy (per-attempt timeout, bounded retries with exponential
// backoff and jitter for transient failures), the crawl is cancelable via
// context.Context, and every crawl returns a Report accounting for each
// URL — fetched, failed by error class, retried, skipped, or truncated —
// so degradation is structured rather than silent. The companion package
// faultinject provides a deterministic fault-injection middleware for
// testing this machinery.
package crawler

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"webrev/internal/corpus"
	"webrev/internal/dom"
	"webrev/internal/htmlparse"
	"webrev/internal/obs"
)

// Site is an in-memory website. Paths map to HTML bodies. Pages may be
// mutated while the site is being served (SetPage/RemovePage are
// goroutine-safe), which is how chaos tests shift templates under a running
// watch loop; the handler serves strong ETags derived from each body and
// honors If-None-Match, so conditional recrawls exercise real 304s.
type Site struct {
	mu    sync.RWMutex
	pages map[string]string
}

// BuildSite lays out resumes and distractor pages under a linked index
// hierarchy: / links to per-letter index pages, which link to the documents.
func BuildSite(resumes []*corpus.Resume, distractors []string) *Site {
	s := &Site{pages: make(map[string]string)}
	byLetter := make(map[byte][]string)
	for _, r := range resumes {
		path := fmt.Sprintf("/resumes/%d.html", r.ID)
		s.pages[path] = r.HTML
		name := r.Name
		if name == "" {
			// Real crawls meet anonymous documents; file them under a
			// placeholder letter instead of panicking on Name[0].
			name = fmt.Sprintf("Unnamed %d", r.ID)
		}
		l := name[0]
		byLetter[l] = append(byLetter[l], fmt.Sprintf(`<li><a href="%s">%s</a></li>`, path, name))
	}
	var letters []byte
	for l := range byLetter {
		letters = append(letters, l)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })

	var rootLinks []string
	for _, l := range letters {
		idx := fmt.Sprintf("/index-%c.html", l)
		s.pages[idx] = fmt.Sprintf(
			"<html><body><h1>People %c</h1><ul>%s</ul><a href=\"/\">home</a></body></html>",
			l, strings.Join(byLetter[l], "\n"))
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Index %c</a></li>`, idx, l))
	}
	for i, d := range distractors {
		path := fmt.Sprintf("/misc/%d.html", i)
		s.pages[path] = d
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Page %d</a></li>`, path, i))
	}
	s.pages["/"] = "<html><body><h1>Directory</h1><ul>" +
		strings.Join(rootLinks, "\n") + "</ul></body></html>"
	return s
}

// PageCount returns the number of pages the site serves.
func (s *Site) PageCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Page returns the body served at path, if any.
func (s *Site) Page(path string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	body, ok := s.pages[path]
	return body, ok
}

// SetPage installs or replaces the body served at path. Safe to call while
// the site is being served; the page's ETag changes with the body.
func (s *Site) SetPage(path, body string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[path] = body
}

// RemovePage deletes the page served at path, so subsequent fetches 404 —
// how tests make documents vanish mid-watch.
func (s *Site) RemovePage(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pages, path)
}

// Paths returns every served path in sorted order.
func (s *Site) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for p := range s.pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// siteETag derives the strong entity tag the site serves for a body.
func siteETag(body string) string {
	sum := sha256.Sum256([]byte(body))
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// Handler serves the site with conditional-request support: every page
// carries a strong content-derived ETag and a matching If-None-Match comes
// back 304 without a body.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		body, ok := s.pages[r.URL.Path]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		etag := siteETag(body)
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, body)
	})
}

// Page is one fetched document.
type Page struct {
	URL     string
	HTML    string
	OnTopic bool
	// Truncated is set when the body was clipped at
	// FetchPolicy.MaxBodyBytes.
	Truncated bool
	// Change classifies the page against the previous cycle's CrawlState.
	// Plain crawls (CrawlTo/CrawlContext) always report ChangeFetched;
	// recrawls (RecrawlTo) report unchanged/changed/new/vanished. Unchanged
	// and vanished pages carry no HTML.
	Change Change
}

// Crawler is a breadth-first, level-parallel crawler with a topical filter.
// The zero value needs at least Filter; other fields default sensibly.
type Crawler struct {
	// Client performs fetches (http.DefaultClient when nil); per-attempt
	// timeouts come from Fetch, not the client.
	Client *http.Client
	// Workers is the fixed worker-pool size for concurrent fetches
	// (default 8). A level with 10k URLs still uses only Workers
	// goroutines.
	Workers int
	// MaxPages stops the crawl after this many successfully fetched pages
	// (default 10000). Failed fetches do not consume the budget.
	MaxPages int
	// MaxDepth bounds link distance from the seed (default 10).
	MaxDepth int
	// MaxFailures is the error budget: when this many URLs have failed
	// permanently the crawl stops and returns partial results with
	// Report.BudgetExhausted set. Zero or negative means unlimited.
	MaxFailures int
	// Fetch is the per-URL fetch policy (timeouts, retries, backoff, body
	// cap). The zero value selects production defaults.
	Fetch FetchPolicy
	// Filter classifies a fetched page as on-topic. Off-topic pages still
	// have their links followed (index pages are off-topic but lead to
	// resumes). Nil keeps everything.
	Filter func(url, html string) bool
	// Tracer, when non-nil, receives the finished crawl's Report as the
	// obs.StageCrawl timing and crawl.* counters (see Report.Record).
	Tracer obs.Tracer
}

// Crawl fetches breadth-first from seed and returns every fetched page in a
// deterministic (URL-sorted per level) order. It is CrawlContext without
// cancellation, discarding the report.
func (c *Crawler) Crawl(seed string) ([]Page, error) {
	pages, _, err := c.CrawlContext(context.Background(), seed)
	return pages, err
}

// CrawlContext fetches breadth-first from seed until the frontier is
// exhausted, MaxPages pages have been fetched, MaxDepth is reached, the
// error budget is spent, or ctx ends. It always returns the pages fetched
// so far plus a Report; the error is non-nil only for an unusable seed or
// a canceled/expired context (partial pages are still returned then).
func (c *Crawler) CrawlContext(ctx context.Context, seed string) ([]Page, *Report, error) {
	var pages []Page
	rep, err := c.CrawlTo(ctx, seed, func(p Page) { pages = append(pages, p) })
	return pages, rep, err
}

// CrawlTo is the streaming form of CrawlContext: emit receives each fetched
// page as soon as its fetch completes, in the same deterministic order
// CrawlContext returns, instead of the pages accumulating until the crawl
// ends. emit runs synchronously on the crawl loop, so a slow consumer —
// e.g. a streaming build at its in-flight cap — backpressures the crawl
// itself; no unbounded page buffer forms anywhere. The crawl-and-build path
// (AcquireStream + BuildStream in core) is built on this.
func (c *Crawler) CrawlTo(ctx context.Context, seed string, emit func(Page)) (*Report, error) {
	return c.crawl(ctx, seed, nil, emit)
}

// RecrawlTo revisits a site against the previous cycle's CrawlState,
// classifying every page instead of just fetching it. Pages with a prior
// PageRecord are refetched conditionally (when the fetch policy
// revalidates) and compared by content hash: a 304 or an identical hash
// emits ChangeUnchanged with no body, a different body emits ChangeChanged,
// and unrecorded URLs emit ChangeNew. Unchanged pages reuse the recorded
// link set to keep driving the breadth-first frontier, and the recorded
// topical verdict (the filter never sees a body that was not transferred).
//
// After a crawl that ran to completion — not canceled, not stopped by the
// error budget, page cap or depth cap — recorded URLs that were neither
// revisited nor merely skipped are retired: removed from state and emitted
// as ChangeVanished (sorted by URL, after all fetched pages). A URL whose
// refetch failed transiently keeps its record and is NOT retired; only a
// permanent http-4xx retires early. state is mutated in place to describe
// the new cycle; the caller persists it between cycles.
func (c *Crawler) RecrawlTo(ctx context.Context, seed string, state *CrawlState, emit func(Page)) (*Report, error) {
	if state == nil {
		state = NewCrawlState()
	}
	return c.crawl(ctx, seed, state, emit)
}

// crawl is the breadth-first loop behind CrawlTo (state == nil) and
// RecrawlTo (state != nil).
func (c *Crawler) crawl(ctx context.Context, seed string, state *CrawlState, emit func(Page)) (*Report, error) {
	start := time.Now()
	workers := c.Workers
	if workers <= 0 {
		workers = 8
	}
	client := c.Client
	if client == nil {
		// http.DefaultClient keeps only two idle connections per host, so a
		// worker pool hammering one site re-dials most fetches every wave.
		// Give the pool one reusable connection per worker instead; the
		// idle connections are torn down when the crawl ends.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = workers
		defer t.CloseIdleConnections()
		client = &http.Client{Transport: t}
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = 10000
	}
	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 10
	}
	policy := c.Fetch.withDefaults()
	rng := newLockedRand(policy.JitterSeed)
	rep := &Report{ErrorClasses: make(map[string]int)}

	// Recrawl bookkeeping: which recorded URLs were revisited this cycle,
	// and how the rest failed — the inputs to the vanished classification.
	var seen map[string]bool
	var failedClass map[string]string
	if state != nil {
		seen = make(map[string]bool)
		failedClass = make(map[string]string)
	}

	seedURL, err := url.Parse(seed)
	if err != nil {
		rep.Wall = time.Since(start)
		rep.Record(c.Tracer)
		return rep, fmt.Errorf("crawler: bad seed: %w", err)
	}

	visited := map[string]bool{seedURL.String(): true}
	frontier := []string{seedURL.String()}

	// One fixed worker pool serves the whole crawl (the ConvertAll
	// pattern): a 10k-URL level costs Workers goroutines, not 10k.
	jobs := make(chan fetchJob)
	defer close(jobs)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				*j.res = policy.fetch(ctx, client, j.url, rng, j.cond)
				j.wg.Done()
			}
		}()
	}
	// Windows bound how many URLs are in flight between budget checks, so
	// the page cap and error budget are enforced with tight granularity.
	window := workers * 4
	if window < 8 {
		window = 8
	}

	// Emission is deferred by one window: a window's pages are handed to
	// emit only after the next window's first wave of requests is on the
	// wire, so a synchronous consumer (a streaming build converting each
	// page) does its CPU work while the crawler is waiting on the network,
	// not between a window finishing and the next one being dispatched.
	// Emission order is unchanged — pages still leave in fetch order — and
	// the buffer never holds more than one window of pages.
	var pending []Page
	flush := func() {
		for _, p := range pending {
			emit(p)
		}
		pending = pending[:0]
	}

	stop := false
	for depth := 0; depth <= maxDepth && len(frontier) > 0 && !stop; depth++ {
		var next []string
		// Fetch the level in budget-sized windows: failed fetches do not
		// consume the page budget, so the next window picks up the URLs a
		// naive pre-truncation would have dropped.
		for len(frontier) > 0 && !stop {
			if ctx.Err() != nil {
				rep.Canceled = true
				stop = true
				break
			}
			budget := maxPages - rep.Fetched
			if budget <= 0 {
				stop = true
				break
			}
			if c.MaxFailures > 0 && rep.Failed >= c.MaxFailures {
				rep.BudgetExhausted = true
				stop = true
				break
			}
			take := budget
			if take > len(frontier) {
				take = len(frontier)
			}
			if take > window {
				take = window
			}
			batch := frontier[:take]
			frontier = frontier[take:]
			results := make([]fetchResult, len(batch))
			var wwg sync.WaitGroup
			wwg.Add(len(batch))
			for i, u := range batch {
				var cond condValidators
				if state != nil {
					if rec := state.Pages[u]; rec != nil {
						cond = condValidators{etag: rec.ETag, lastModified: rec.LastModified}
					}
				}
				jobs <- fetchJob{res: &results[i], url: u, cond: cond, wg: &wwg}
				if i == workers-1 {
					// The first wave of this window is in flight; deliver
					// the previous window's pages while it fetches. Later
					// sends block until a worker frees up, which paces the
					// rest of the window anyway.
					flush()
				}
			}
			flush()
			wwg.Wait()
			for _, res := range results {
				rep.Retried += res.attempts - 1
				if res.err != nil {
					if res.class == ClassCanceled {
						rep.Canceled = true
						rep.Skipped++
						delete(visited, res.url)
						continue
					}
					rep.Failed++
					rep.ErrorClasses[res.class]++
					rep.Errors = append(rep.Errors, FetchError{
						URL: res.url, Class: res.class,
						Attempts: res.attempts, Err: res.err.Error()})
					if failedClass != nil {
						failedClass[res.url] = res.class
					}
					continue
				}
				if res.notModified {
					// Validators are only sent for recorded pages, so the
					// record exists; the cached copy is current. The filter
					// never sees a body that was not transferred — the
					// recorded verdict stands.
					rec := state.Pages[res.url]
					rep.NotModified++
					seen[res.url] = true
					pending = append(pending, Page{URL: res.url, OnTopic: rec.OnTopic,
						Truncated: rec.Truncated, Change: ChangeUnchanged})
					for _, u := range rec.Links {
						if !visited[u] {
							visited[u] = true
							next = append(next, u)
						}
					}
					continue
				}
				rep.Fetched++
				rep.Bytes += res.bytes
				if res.truncated {
					rep.Truncated++
				}
				p := Page{URL: res.url, HTML: res.body, Truncated: res.truncated}
				if c.Filter != nil {
					p.OnTopic = c.Filter(res.url, res.body)
				} else {
					p.OnTopic = true
				}
				var links []string
				if base, err := url.Parse(res.url); err == nil {
					links = resolveLinks(base, seedURL, ExtractLinks(res.body))
				}
				if state != nil {
					sum := sha256.Sum256([]byte(res.body))
					hash := hex.EncodeToString(sum[:])
					seen[res.url] = true
					if rec := state.Pages[res.url]; rec == nil {
						p.Change = ChangeNew
					} else if rec.Hash == hash {
						// The server refetched (no validators, or it ignored
						// them) but the content is identical: still
						// unchanged, and the caller's copy is current.
						p.Change = ChangeUnchanged
						p.HTML = ""
					} else {
						p.Change = ChangeChanged
					}
					state.Pages[res.url] = &PageRecord{URL: res.url,
						ETag: res.etag, LastModified: res.lastModified,
						Hash: hash, OnTopic: p.OnTopic,
						Truncated: res.truncated, Links: links}
				}
				pending = append(pending, p)
				for _, u := range links {
					if !visited[u] {
						visited[u] = true
						next = append(next, u)
					}
				}
			}
		}
		// URLs left in the frontier were never fetched; un-mark them so
		// they are dropped, not silently "visited", and account for them.
		for _, u := range frontier {
			delete(visited, u)
		}
		rep.Skipped += len(frontier)
		sort.Strings(next)
		frontier = next
	}
	// The next level that was never attempted (depth cap or early stop).
	rep.Skipped += len(frontier)
	// Deliver the last window's pages; every successfully fetched page is
	// emitted even when the crawl stopped early.
	flush()
	// Vanished detection runs only when the crawl ran to completion: a
	// canceled, budget-stopped or cap-truncated crawl cannot distinguish "no
	// longer reachable" from "never reached this cycle", and must not retire
	// anything. Transient failures keep their records (the stale copy keeps
	// being served); only a permanent http-4xx, a page no index links to
	// anymore, or a page unreachable from the seed retires a record.
	if state != nil && !rep.Canceled && !rep.BudgetExhausted && rep.Skipped == 0 {
		var gone []string
		for u := range state.Pages {
			if seen[u] {
				continue
			}
			if class, ok := failedClass[u]; ok && class != ClassHTTP4xx {
				continue
			}
			gone = append(gone, u)
		}
		sort.Strings(gone)
		for _, u := range gone {
			delete(state.Pages, u)
			rep.Vanished++
			emit(Page{URL: u, Change: ChangeVanished})
		}
	}
	rep.Wall = time.Since(start)
	rep.Record(c.Tracer)
	if rep.Canceled {
		return rep, ctx.Err()
	}
	return rep, nil
}

// fetchJob is one unit of work for the crawl's fixed worker pool.
type fetchJob struct {
	res  *fetchResult
	url  string
	cond condValidators
	wg   *sync.WaitGroup
}

// resolveLinks resolves a page's hrefs against its own URL and keeps the
// same-site ones (the topical crawler never leaves the seed's host), in
// document order, deduplicated. The result both drives the breadth-first
// frontier and is recorded per page so a 304'd index page can still expand
// the frontier on the next cycle.
func resolveLinks(base, seedURL *url.URL, hrefs []string) []string {
	var out []string
	dedup := make(map[string]bool, len(hrefs))
	for _, link := range hrefs {
		ref, err := url.Parse(link)
		if err != nil {
			continue
		}
		abs := base.ResolveReference(ref)
		if abs.Host != seedURL.Host || abs.Scheme != seedURL.Scheme {
			continue
		}
		abs.Fragment = ""
		u := abs.String()
		if !dedup[u] {
			dedup[u] = true
			out = append(out, u)
		}
	}
	return out
}

// ExtractLinks returns the href values of anchor elements in document order.
func ExtractLinks(html string) []string {
	doc := htmlparse.Parse(html)
	var out []string
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.Tag == "a" {
			if href, ok := n.Attr("href"); ok && href != "" {
				out = append(out, href)
			}
		}
		return true
	})
	return out
}

// ResumeFilter returns a topical filter that scores a page by occurrences of
// resume-section keywords and accepts it at minHits or more — the "looked
// like resumes" heuristic of the paper's crawler.
func ResumeFilter(minHits int) func(string, string) bool {
	keywords := []string{
		"education", "experience", "employment", "objective", "skills",
		"references", "resume", "curriculum vitae", "gpa", "coursework",
		"university", "college", "institute", "b.s.", "m.s.", "b.a.",
		"mba", "ph.d.", "engineer", "qualifications",
	}
	return func(_, html string) bool {
		low := strings.ToLower(html)
		hits := 0
		for _, k := range keywords {
			if strings.Contains(low, k) {
				hits++
			}
		}
		return hits >= minHits
	}
}
