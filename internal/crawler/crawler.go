// Package crawler substitutes for the topic-specific Web crawler the paper
// used to gather its resume corpus (§4, ref [20]). It provides an in-memory
// web site serving a generated corpus over net/http and a concurrent
// breadth-first crawler with a keyword-based topical filter, so the
// acquisition path — fetch, filter, collect — is exercised end to end
// without live Web access.
//
// The crawler is built for an unreliable Web: every fetch runs under a
// FetchPolicy (per-attempt timeout, bounded retries with exponential
// backoff and jitter for transient failures), the crawl is cancelable via
// context.Context, and every crawl returns a Report accounting for each
// URL — fetched, failed by error class, retried, skipped, or truncated —
// so degradation is structured rather than silent. The companion package
// faultinject provides a deterministic fault-injection middleware for
// testing this machinery.
package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"webrev/internal/corpus"
	"webrev/internal/dom"
	"webrev/internal/htmlparse"
	"webrev/internal/obs"
)

// Site is an in-memory website. Paths map to HTML bodies.
type Site struct {
	pages map[string]string
}

// BuildSite lays out resumes and distractor pages under a linked index
// hierarchy: / links to per-letter index pages, which link to the documents.
func BuildSite(resumes []*corpus.Resume, distractors []string) *Site {
	s := &Site{pages: make(map[string]string)}
	byLetter := make(map[byte][]string)
	for _, r := range resumes {
		path := fmt.Sprintf("/resumes/%d.html", r.ID)
		s.pages[path] = r.HTML
		name := r.Name
		if name == "" {
			// Real crawls meet anonymous documents; file them under a
			// placeholder letter instead of panicking on Name[0].
			name = fmt.Sprintf("Unnamed %d", r.ID)
		}
		l := name[0]
		byLetter[l] = append(byLetter[l], fmt.Sprintf(`<li><a href="%s">%s</a></li>`, path, name))
	}
	var letters []byte
	for l := range byLetter {
		letters = append(letters, l)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })

	var rootLinks []string
	for _, l := range letters {
		idx := fmt.Sprintf("/index-%c.html", l)
		s.pages[idx] = fmt.Sprintf(
			"<html><body><h1>People %c</h1><ul>%s</ul><a href=\"/\">home</a></body></html>",
			l, strings.Join(byLetter[l], "\n"))
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Index %c</a></li>`, idx, l))
	}
	for i, d := range distractors {
		path := fmt.Sprintf("/misc/%d.html", i)
		s.pages[path] = d
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Page %d</a></li>`, path, i))
	}
	s.pages["/"] = "<html><body><h1>Directory</h1><ul>" +
		strings.Join(rootLinks, "\n") + "</ul></body></html>"
	return s
}

// PageCount returns the number of pages the site serves.
func (s *Site) PageCount() int { return len(s.pages) }

// Handler serves the site.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := s.pages[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, body)
	})
}

// Page is one fetched document.
type Page struct {
	URL     string
	HTML    string
	OnTopic bool
	// Truncated is set when the body was clipped at
	// FetchPolicy.MaxBodyBytes.
	Truncated bool
}

// Crawler is a breadth-first, level-parallel crawler with a topical filter.
// The zero value needs at least Filter; other fields default sensibly.
type Crawler struct {
	// Client performs fetches (http.DefaultClient when nil); per-attempt
	// timeouts come from Fetch, not the client.
	Client *http.Client
	// Workers is the fixed worker-pool size for concurrent fetches
	// (default 8). A level with 10k URLs still uses only Workers
	// goroutines.
	Workers int
	// MaxPages stops the crawl after this many successfully fetched pages
	// (default 10000). Failed fetches do not consume the budget.
	MaxPages int
	// MaxDepth bounds link distance from the seed (default 10).
	MaxDepth int
	// MaxFailures is the error budget: when this many URLs have failed
	// permanently the crawl stops and returns partial results with
	// Report.BudgetExhausted set. Zero or negative means unlimited.
	MaxFailures int
	// Fetch is the per-URL fetch policy (timeouts, retries, backoff, body
	// cap). The zero value selects production defaults.
	Fetch FetchPolicy
	// Filter classifies a fetched page as on-topic. Off-topic pages still
	// have their links followed (index pages are off-topic but lead to
	// resumes). Nil keeps everything.
	Filter func(url, html string) bool
	// Tracer, when non-nil, receives the finished crawl's Report as the
	// obs.StageCrawl timing and crawl.* counters (see Report.Record).
	Tracer obs.Tracer
}

// Crawl fetches breadth-first from seed and returns every fetched page in a
// deterministic (URL-sorted per level) order. It is CrawlContext without
// cancellation, discarding the report.
func (c *Crawler) Crawl(seed string) ([]Page, error) {
	pages, _, err := c.CrawlContext(context.Background(), seed)
	return pages, err
}

// CrawlContext fetches breadth-first from seed until the frontier is
// exhausted, MaxPages pages have been fetched, MaxDepth is reached, the
// error budget is spent, or ctx ends. It always returns the pages fetched
// so far plus a Report; the error is non-nil only for an unusable seed or
// a canceled/expired context (partial pages are still returned then).
func (c *Crawler) CrawlContext(ctx context.Context, seed string) ([]Page, *Report, error) {
	var pages []Page
	rep, err := c.CrawlTo(ctx, seed, func(p Page) { pages = append(pages, p) })
	return pages, rep, err
}

// CrawlTo is the streaming form of CrawlContext: emit receives each fetched
// page as soon as its fetch completes, in the same deterministic order
// CrawlContext returns, instead of the pages accumulating until the crawl
// ends. emit runs synchronously on the crawl loop, so a slow consumer —
// e.g. a streaming build at its in-flight cap — backpressures the crawl
// itself; no unbounded page buffer forms anywhere. The crawl-and-build path
// (AcquireStream + BuildStream in core) is built on this.
func (c *Crawler) CrawlTo(ctx context.Context, seed string, emit func(Page)) (*Report, error) {
	start := time.Now()
	workers := c.Workers
	if workers <= 0 {
		workers = 8
	}
	client := c.Client
	if client == nil {
		// http.DefaultClient keeps only two idle connections per host, so a
		// worker pool hammering one site re-dials most fetches every wave.
		// Give the pool one reusable connection per worker instead; the
		// idle connections are torn down when the crawl ends.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = workers
		defer t.CloseIdleConnections()
		client = &http.Client{Transport: t}
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = 10000
	}
	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 10
	}
	policy := c.Fetch.withDefaults()
	rng := newLockedRand(policy.JitterSeed)
	rep := &Report{ErrorClasses: make(map[string]int)}

	seedURL, err := url.Parse(seed)
	if err != nil {
		rep.Wall = time.Since(start)
		rep.Record(c.Tracer)
		return rep, fmt.Errorf("crawler: bad seed: %w", err)
	}

	visited := map[string]bool{seedURL.String(): true}
	frontier := []string{seedURL.String()}

	// One fixed worker pool serves the whole crawl (the ConvertAll
	// pattern): a 10k-URL level costs Workers goroutines, not 10k.
	jobs := make(chan fetchJob)
	defer close(jobs)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				*j.res = policy.fetch(ctx, client, j.url, rng)
				j.wg.Done()
			}
		}()
	}
	// Windows bound how many URLs are in flight between budget checks, so
	// the page cap and error budget are enforced with tight granularity.
	window := workers * 4
	if window < 8 {
		window = 8
	}

	// Emission is deferred by one window: a window's pages are handed to
	// emit only after the next window's first wave of requests is on the
	// wire, so a synchronous consumer (a streaming build converting each
	// page) does its CPU work while the crawler is waiting on the network,
	// not between a window finishing and the next one being dispatched.
	// Emission order is unchanged — pages still leave in fetch order — and
	// the buffer never holds more than one window of pages.
	var pending []Page
	flush := func() {
		for _, p := range pending {
			emit(p)
		}
		pending = pending[:0]
	}

	stop := false
	for depth := 0; depth <= maxDepth && len(frontier) > 0 && !stop; depth++ {
		var next []string
		// Fetch the level in budget-sized windows: failed fetches do not
		// consume the page budget, so the next window picks up the URLs a
		// naive pre-truncation would have dropped.
		for len(frontier) > 0 && !stop {
			if ctx.Err() != nil {
				rep.Canceled = true
				stop = true
				break
			}
			budget := maxPages - rep.Fetched
			if budget <= 0 {
				stop = true
				break
			}
			if c.MaxFailures > 0 && rep.Failed >= c.MaxFailures {
				rep.BudgetExhausted = true
				stop = true
				break
			}
			take := budget
			if take > len(frontier) {
				take = len(frontier)
			}
			if take > window {
				take = window
			}
			batch := frontier[:take]
			frontier = frontier[take:]
			results := make([]fetchResult, len(batch))
			var wwg sync.WaitGroup
			wwg.Add(len(batch))
			for i, u := range batch {
				jobs <- fetchJob{res: &results[i], url: u, wg: &wwg}
				if i == workers-1 {
					// The first wave of this window is in flight; deliver
					// the previous window's pages while it fetches. Later
					// sends block until a worker frees up, which paces the
					// rest of the window anyway.
					flush()
				}
			}
			flush()
			wwg.Wait()
			for _, res := range results {
				rep.Retried += res.attempts - 1
				if res.err != nil {
					if res.class == ClassCanceled {
						rep.Canceled = true
						rep.Skipped++
						delete(visited, res.url)
						continue
					}
					rep.Failed++
					rep.ErrorClasses[res.class]++
					continue
				}
				rep.Fetched++
				rep.Bytes += res.bytes
				if res.truncated {
					rep.Truncated++
				}
				p := Page{URL: res.url, HTML: res.body, Truncated: res.truncated}
				if c.Filter != nil {
					p.OnTopic = c.Filter(res.url, res.body)
				} else {
					p.OnTopic = true
				}
				pending = append(pending, p)
				base, err := url.Parse(res.url)
				if err != nil {
					continue
				}
				for _, link := range ExtractLinks(res.body) {
					ref, err := url.Parse(link)
					if err != nil {
						continue
					}
					abs := base.ResolveReference(ref)
					if abs.Host != seedURL.Host || abs.Scheme != seedURL.Scheme {
						continue // stay on site, like the topical crawler
					}
					abs.Fragment = ""
					u := abs.String()
					if !visited[u] {
						visited[u] = true
						next = append(next, u)
					}
				}
			}
		}
		// URLs left in the frontier were never fetched; un-mark them so
		// they are dropped, not silently "visited", and account for them.
		for _, u := range frontier {
			delete(visited, u)
		}
		rep.Skipped += len(frontier)
		sort.Strings(next)
		frontier = next
	}
	// The next level that was never attempted (depth cap or early stop).
	rep.Skipped += len(frontier)
	// Deliver the last window's pages; every successfully fetched page is
	// emitted even when the crawl stopped early.
	flush()
	rep.Wall = time.Since(start)
	rep.Record(c.Tracer)
	if rep.Canceled {
		return rep, ctx.Err()
	}
	return rep, nil
}

// fetchJob is one unit of work for the crawl's fixed worker pool.
type fetchJob struct {
	res *fetchResult
	url string
	wg  *sync.WaitGroup
}

// ExtractLinks returns the href values of anchor elements in document order.
func ExtractLinks(html string) []string {
	doc := htmlparse.Parse(html)
	var out []string
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.Tag == "a" {
			if href, ok := n.Attr("href"); ok && href != "" {
				out = append(out, href)
			}
		}
		return true
	})
	return out
}

// ResumeFilter returns a topical filter that scores a page by occurrences of
// resume-section keywords and accepts it at minHits or more — the "looked
// like resumes" heuristic of the paper's crawler.
func ResumeFilter(minHits int) func(string, string) bool {
	keywords := []string{
		"education", "experience", "employment", "objective", "skills",
		"references", "resume", "curriculum vitae", "gpa", "coursework",
		"university", "college", "institute", "b.s.", "m.s.", "b.a.",
		"mba", "ph.d.", "engineer", "qualifications",
	}
	return func(_, html string) bool {
		low := strings.ToLower(html)
		hits := 0
		for _, k := range keywords {
			if strings.Contains(low, k) {
				hits++
			}
		}
		return hits >= minHits
	}
}
