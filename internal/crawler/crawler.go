// Package crawler substitutes for the topic-specific Web crawler the paper
// used to gather its resume corpus (§4, ref [20]). It provides an in-memory
// web site serving a generated corpus over net/http and a concurrent
// breadth-first crawler with a keyword-based topical filter, so the
// acquisition path — fetch, filter, collect — is exercised end to end
// without live Web access.
package crawler

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"

	"webrev/internal/corpus"
	"webrev/internal/dom"
	"webrev/internal/htmlparse"
)

// Site is an in-memory website. Paths map to HTML bodies.
type Site struct {
	pages map[string]string
}

// BuildSite lays out resumes and distractor pages under a linked index
// hierarchy: / links to per-letter index pages, which link to the documents.
func BuildSite(resumes []*corpus.Resume, distractors []string) *Site {
	s := &Site{pages: make(map[string]string)}
	byLetter := make(map[byte][]string)
	for _, r := range resumes {
		path := fmt.Sprintf("/resumes/%d.html", r.ID)
		s.pages[path] = r.HTML
		l := r.Name[0]
		byLetter[l] = append(byLetter[l], fmt.Sprintf(`<li><a href="%s">%s</a></li>`, path, r.Name))
	}
	var letters []byte
	for l := range byLetter {
		letters = append(letters, l)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })

	var rootLinks []string
	for _, l := range letters {
		idx := fmt.Sprintf("/index-%c.html", l)
		s.pages[idx] = fmt.Sprintf(
			"<html><body><h1>People %c</h1><ul>%s</ul><a href=\"/\">home</a></body></html>",
			l, strings.Join(byLetter[l], "\n"))
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Index %c</a></li>`, idx, l))
	}
	for i, d := range distractors {
		path := fmt.Sprintf("/misc/%d.html", i)
		s.pages[path] = d
		rootLinks = append(rootLinks, fmt.Sprintf(`<li><a href="%s">Page %d</a></li>`, path, i))
	}
	s.pages["/"] = "<html><body><h1>Directory</h1><ul>" +
		strings.Join(rootLinks, "\n") + "</ul></body></html>"
	return s
}

// PageCount returns the number of pages the site serves.
func (s *Site) PageCount() int { return len(s.pages) }

// Handler serves the site.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := s.pages[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, body)
	})
}

// Page is one fetched document.
type Page struct {
	URL     string
	HTML    string
	OnTopic bool
}

// Crawler is a breadth-first, level-parallel crawler with a topical filter.
// The zero value needs at least Filter; other fields default sensibly.
type Crawler struct {
	// Client performs fetches (http.DefaultClient when nil).
	Client *http.Client
	// Workers bounds per-level fetch concurrency (default 8).
	Workers int
	// MaxPages stops the crawl after this many fetched pages (default 10000).
	MaxPages int
	// MaxDepth bounds link distance from the seed (default 10).
	MaxDepth int
	// Filter classifies a fetched page as on-topic. Off-topic pages still
	// have their links followed (index pages are off-topic but lead to
	// resumes). Nil keeps everything.
	Filter func(url, html string) bool
}

// Crawl fetches breadth-first from seed and returns every fetched page in a
// deterministic (URL-sorted per level) order.
func (c *Crawler) Crawl(seed string) ([]Page, error) {
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 8
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = 10000
	}
	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 10
	}
	seedURL, err := url.Parse(seed)
	if err != nil {
		return nil, fmt.Errorf("crawler: bad seed: %w", err)
	}

	visited := map[string]bool{seedURL.String(): true}
	frontier := []string{seedURL.String()}
	var pages []Page

	for depth := 0; depth <= maxDepth && len(frontier) > 0 && len(pages) < maxPages; depth++ {
		if len(pages)+len(frontier) > maxPages {
			frontier = frontier[:maxPages-len(pages)]
		}
		results := make([]fetchResult, len(frontier))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, u := range frontier {
			wg.Add(1)
			go func(i int, u string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = fetch(client, u)
			}(i, u)
		}
		wg.Wait()

		var next []string
		for _, res := range results {
			if res.err != nil {
				continue // unreachable pages are skipped, not fatal
			}
			p := Page{URL: res.url, HTML: res.body}
			if c.Filter != nil {
				p.OnTopic = c.Filter(res.url, res.body)
			} else {
				p.OnTopic = true
			}
			pages = append(pages, p)
			base, err := url.Parse(res.url)
			if err != nil {
				continue
			}
			for _, link := range ExtractLinks(res.body) {
				ref, err := url.Parse(link)
				if err != nil {
					continue
				}
				abs := base.ResolveReference(ref)
				if abs.Host != seedURL.Host || abs.Scheme != seedURL.Scheme {
					continue // stay on site, like the topical crawler
				}
				abs.Fragment = ""
				u := abs.String()
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
				}
			}
		}
		sort.Strings(next)
		frontier = next
	}
	return pages, nil
}

type fetchResult struct {
	url  string
	body string
	err  error
}

func fetch(client *http.Client, u string) fetchResult {
	resp, err := client.Get(u)
	if err != nil {
		return fetchResult{url: u, err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fetchResult{url: u, err: fmt.Errorf("status %d", resp.StatusCode)}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fetchResult{url: u, err: err}
	}
	return fetchResult{url: u, body: string(body)}
}

// ExtractLinks returns the href values of anchor elements in document order.
func ExtractLinks(html string) []string {
	doc := htmlparse.Parse(html)
	var out []string
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.Tag == "a" {
			if href, ok := n.Attr("href"); ok && href != "" {
				out = append(out, href)
			}
		}
		return true
	})
	return out
}

// ResumeFilter returns a topical filter that scores a page by occurrences of
// resume-section keywords and accepts it at minHits or more — the "looked
// like resumes" heuristic of the paper's crawler.
func ResumeFilter(minHits int) func(string, string) bool {
	keywords := []string{
		"education", "experience", "employment", "objective", "skills",
		"references", "resume", "curriculum vitae", "gpa", "coursework",
		"university", "college", "institute", "b.s.", "m.s.", "b.a.",
		"mba", "ph.d.", "engineer", "qualifications",
	}
	return func(_, html string) bool {
		low := strings.ToLower(html)
		hits := 0
		for _, k := range keywords {
			if strings.Contains(low, k) {
				hits++
			}
		}
		return hits >= minHits
	}
}
