package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"webrev/internal/corpus"
	"webrev/internal/crawler/faultinject"
)

// fastPolicy keeps retries snappy for tests.
func fastPolicy() FetchPolicy {
	return FetchPolicy{
		Timeout:     time.Second,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

func pathsOf(pages []Page) []string {
	out := make([]string, 0, len(pages))
	for _, p := range pages {
		u, err := url.Parse(p.URL)
		if err != nil {
			continue
		}
		out = append(out, u.Path)
	}
	sort.Strings(out)
	return out
}

// Regression for the page-budget bug: failed fetches must not consume the
// MaxPages budget. The old code truncated the frontier before fetching, so
// dead links ate the budget and live pages were lost forever.
func TestCrawlMaxPagesNotConsumedByFailures(t *testing.T) {
	mux := http.NewServeMux()
	var links []string
	for i := 0; i < 5; i++ {
		links = append(links, fmt.Sprintf(`<a href="/dead/%d.html">d</a>`, i))
	}
	for i := 0; i < 10; i++ {
		links = append(links, fmt.Sprintf(`<a href="/live/%d.html">l</a>`, i))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, strings.Join(links, "\n"))
	})
	mux.HandleFunc("/dead/", func(w http.ResponseWriter, r *http.Request) { http.NotFound(w, r) })
	mux.HandleFunc("/live/", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "alive") })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Budget of 8: root + 7 more. Sorted level-1 frontier puts the 5 dead
	// URLs first, so pre-truncation would cap the crawl at 3 pages.
	c := &Crawler{MaxPages: 8, Fetch: fastPolicy()}
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 8 {
		t.Fatalf("fetched %d pages, want the full budget of 8 (report: %s)", len(pages), rep)
	}
	if rep.Fetched != 8 || rep.Failed != 5 {
		t.Fatalf("report fetched=%d failed=%d, want 8/5", rep.Fetched, rep.Failed)
	}
	if rep.ErrorClasses[ClassHTTP4xx] != 5 {
		t.Fatalf("error classes = %v, want 5×http-4xx", rep.ErrorClasses)
	}
	if rep.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3 live URLs dropped at the cap", rep.Skipped)
	}
}

func TestBuildSiteEmptyName(t *testing.T) {
	resumes := []*corpus.Resume{
		{ID: 1, Name: "", HTML: "<html><body>anon</body></html>"},
		{ID: 2, Name: "Bob", HTML: "<html><body>bob</body></html>"},
	}
	site := BuildSite(resumes, nil) // must not panic on Name[0]
	if _, ok := site.pages["/resumes/1.html"]; !ok {
		t.Fatal("anonymous resume not served")
	}
	// The anonymous resume is reachable from the root via its index page.
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()
	pages, err := (&Crawler{Fetch: fastPolicy()}).Crawl(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pages {
		if strings.HasSuffix(p.URL, "/resumes/1.html") {
			found = true
		}
	}
	if !found {
		t.Fatal("anonymous resume unreachable from root")
	}
}

func TestCrawlReportHealthy(t *testing.T) {
	site, srv := testSite(t, 8, 2)
	c := &Crawler{Fetch: fastPolicy()}
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fetched != site.PageCount() || len(pages) != site.PageCount() {
		t.Fatalf("fetched %d of %d", rep.Fetched, site.PageCount())
	}
	if rep.Failed != 0 || rep.Retried != 0 || rep.Skipped != 0 || rep.Truncated != 0 {
		t.Fatalf("healthy crawl report has failures: %s", rep)
	}
	if rep.Bytes <= 0 || rep.Wall <= 0 {
		t.Fatalf("bytes=%d wall=%v", rep.Bytes, rep.Wall)
	}
	if rep.BudgetExhausted || rep.Canceled {
		t.Fatalf("unexpected degradation flags: %s", rep)
	}
}

func TestCrawlErrorBudget(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		for i := 0; i < 20; i++ {
			fmt.Fprintf(w, `<a href="/gone/%d.html">x</a>`, i)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Crawler{MaxFailures: 3, Workers: 1, Fetch: fastPolicy()}
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BudgetExhausted {
		t.Fatalf("budget not reported exhausted: %s", rep)
	}
	if len(pages) != 1 {
		t.Fatalf("partial results = %d pages, want the root", len(pages))
	}
	if rep.Failed < 3 || rep.Skipped == 0 {
		t.Fatalf("failed=%d skipped=%d, want ≥3 failures and some skips", rep.Failed, rep.Skipped)
	}
}

func TestCrawlCancellationMidCrawl(t *testing.T) {
	site, _ := testSite(t, 20, 5)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(30 * time.Millisecond):
		}
		site.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(slow)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // let the root land, then pull the plug
		cancel()
	}()
	start := time.Now()
	pages, rep, err := (&Crawler{Workers: 2, Fetch: fastPolicy()}).CrawlContext(ctx, srv.URL+"/")
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !rep.Canceled {
		t.Fatalf("report not marked canceled: %s", rep)
	}
	if len(pages) >= site.PageCount() {
		t.Fatalf("crawl finished all %d pages despite cancellation", len(pages))
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}

// A hanging endpoint must cost at most the per-attempt timeout budget, not
// stall the crawl forever.
func TestCrawlHangingEndpointBoundedByTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<a href="/hang.html">h</a><a href="/ok.html">o</a>`)
	})
	mux.HandleFunc("/hang.html", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	mux.HandleFunc("/ok.html", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Crawler{Fetch: FetchPolicy{
		Timeout: 100 * time.Millisecond, MaxRetries: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}}
	start := time.Now()
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("crawl took %v against a hanging endpoint", elapsed)
	}
	if got := pathsOf(pages); !reflect.DeepEqual(got, []string{"/", "/ok.html"}) {
		t.Fatalf("pages = %v", got)
	}
	if rep.Failed != 1 || rep.ErrorClasses[ClassTimeout] != 1 {
		t.Fatalf("hang not accounted as timeout: %s", rep)
	}
}

// The acceptance-criterion test: with seeded fault injection at a 20%
// transient failure rate, the crawl recovers exactly the page set a
// fault-free crawl returns.
func TestCrawlRecoversUnderFaultInjection(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 42})
	site := BuildSite(g.Corpus(20), distractors(g, 5))

	clean := httptest.NewServer(site.Handler())
	defer clean.Close()
	inj := faultinject.New(site.Handler(), faultinject.Config{
		Seed:      7,
		Rate:      0.2,
		SlowDelay: 5 * time.Millisecond,
	})
	faulty := httptest.NewServer(inj)
	defer faulty.Close()

	mk := func() *Crawler {
		return &Crawler{Workers: 4, Filter: ResumeFilter(3), Fetch: FetchPolicy{
			Timeout: 250 * time.Millisecond, MaxRetries: 3,
			BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
		}}
	}
	wantPages, cleanRep, err := mk().CrawlContext(context.Background(), clean.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if cleanRep.Fetched != site.PageCount() {
		t.Fatalf("clean crawl fetched %d of %d", cleanRep.Fetched, site.PageCount())
	}
	gotPages, rep, err := mk().CrawlContext(context.Background(), faulty.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Total() == 0 {
		t.Fatal("no faults injected; the test is vacuous — change the seed")
	}
	want, got := pathsOf(wantPages), pathsOf(gotPages)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("faulty crawl recovered %d pages, clean crawl %d\n got: %v\nwant: %v\nreport: %s\ninjected: %v",
			len(got), len(want), got, want, rep, inj.Injected())
	}
	if rep.Retried == 0 {
		t.Fatalf("faults injected (%v) but nothing retried: %s", inj.Injected(), rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("transient faults became permanent failures: %s", rep)
	}
	// Determinism: the same seed injects the same faults.
	inj2 := faultinject.New(site.Handler(), faultinject.Config{Seed: 7, Rate: 0.2})
	for path := range site.pages {
		if inj.Decide(path) != inj2.Decide(path) {
			t.Fatalf("fault decision for %s not deterministic", path)
		}
	}
}

// Permanent faults (a path that never recovers) land in the failure
// tallies instead of blocking the crawl.
func TestCrawlSurvivesPermanentFaults(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 5})
	site := BuildSite(g.Corpus(12), distractors(g, 3))
	inj := faultinject.New(site.Handler(), faultinject.Config{
		Seed:          3,
		Rate:          0.2,
		Kinds:         []faultinject.Kind{faultinject.Status500},
		FaultsPerPath: -1, // never recovers
	})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	c := &Crawler{Fetch: FetchPolicy{
		Timeout: 250 * time.Millisecond, MaxRetries: 2,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	}}
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Skip("seed faulted no reachable path; adjust the seed")
	}
	if rep.ErrorClasses[ClassHTTP5xx] != rep.Failed {
		t.Fatalf("failures not classified as http-5xx: %s", rep)
	}
	if len(pages)+rep.Failed < site.PageCount() {
		// Failed index pages hide their subtrees; at minimum every fetched
		// or failed URL is accounted for.
		t.Logf("note: %d pages unreachable behind failed indexes", site.PageCount()-len(pages)-rep.Failed)
	}
	if rep.Fetched != len(pages) {
		t.Fatalf("report fetched=%d but %d pages returned", rep.Fetched, len(pages))
	}
}

func TestCrawlTruncationSurfacesInReport(t *testing.T) {
	site, srv := testSite(t, 5, 0)
	c := &Crawler{Fetch: fastPolicy()}
	c.Fetch.MaxBodyBytes = 256 // every generated page is bigger than this
	pages, rep, err := c.CrawlContext(context.Background(), srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated == 0 {
		t.Fatalf("no truncation reported over %d pages at a 256-byte cap", site.PageCount())
	}
	n := 0
	for _, p := range pages {
		if p.Truncated {
			n++
			if len(p.HTML) != 256 {
				t.Fatalf("truncated page has %d bytes, cap 256", len(p.HTML))
			}
		}
	}
	if n != rep.Truncated {
		t.Fatalf("report truncated=%d, pages flagged=%d", rep.Truncated, n)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		Fetched: 10, Failed: 2, Retried: 3, Skipped: 1, Truncated: 1,
		Bytes: 4096, Wall: 120 * time.Millisecond,
		ErrorClasses:    map[string]int{ClassTimeout: 1, ClassHTTP5xx: 1},
		BudgetExhausted: true,
	}
	s := r.String()
	for _, want := range []string{"fetched 10", "failed 2", "retried 3", "truncated 1",
		"timeout:1", "http-5xx:1", "error budget exhausted"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}
