package crawler

// Conditional-recrawl state: the watch loop (internal/watch) revisits a
// site every cycle, and the crawler classifies each page against the
// previous cycle instead of refetching the world. The per-URL PageRecord
// holds the HTTP validators (ETag, Last-Modified) for conditional requests,
// a content hash as the server-independent fallback, the recorded topical
// verdict, and the page's outgoing links so a 304'd index page still drives
// the breadth-first frontier. CrawlState is plain JSON and is embedded in
// the watch loop's versioned state manifest.

// Change classifies one page of a recrawl cycle against the previous
// cycle's CrawlState.
type Change int

const (
	// ChangeFetched is the zero value: a plain crawl with no prior state.
	ChangeFetched Change = iota
	// ChangeUnchanged means the cached copy is current — the server
	// answered 304, or the refetched body hashed identically. The page
	// carries no HTML.
	ChangeUnchanged
	// ChangeChanged means the page's content differs from the recorded
	// hash; the new body is attached.
	ChangeChanged
	// ChangeNew means the URL had no record — first seen this cycle.
	ChangeNew
	// ChangeVanished means a recorded URL is gone: permanently 4xx, no
	// longer linked, or unreachable — emitted only by recrawls that ran to
	// completion. The page carries no HTML.
	ChangeVanished
)

// String names the classification for reports and logs.
func (c Change) String() string {
	switch c {
	case ChangeFetched:
		return "fetched"
	case ChangeUnchanged:
		return "unchanged"
	case ChangeChanged:
		return "changed"
	case ChangeNew:
		return "new"
	case ChangeVanished:
		return "vanished"
	}
	return "unknown"
}

// PageRecord is the per-URL state one recrawl cycle hands the next.
type PageRecord struct {
	// URL is the page's absolute URL.
	URL string `json:"url"`
	// ETag is the entity tag of the last 200 response, sent back as
	// If-None-Match when the fetch policy revalidates.
	ETag string `json:"etag,omitempty"`
	// LastModified is the Last-Modified header of the last 200 response,
	// sent back as If-Modified-Since.
	LastModified string `json:"last_modified,omitempty"`
	// Hash is the hex SHA-256 of the last transferred body — the change
	// detector of last resort when the server has no usable validators.
	Hash string `json:"hash"`
	// OnTopic is the topical filter's verdict on the last transferred
	// body; reused for 304s, which carry no body to re-classify.
	OnTopic bool `json:"on_topic,omitempty"`
	// Truncated records whether the last transferred body was clipped at
	// FetchPolicy.MaxBodyBytes.
	Truncated bool `json:"truncated,omitempty"`
	// Links holds the page's outgoing same-site absolute URLs in document
	// order, so an unchanged page still expands the frontier.
	Links []string `json:"links,omitempty"`
}

// CrawlState is the persistent between-cycles state of a recrawled site:
// one PageRecord per known URL. It marshals deterministically (JSON object
// keys sort) and is mutated in place by RecrawlTo.
type CrawlState struct {
	// Pages maps each known URL to its record.
	Pages map[string]*PageRecord `json:"pages"`
}

// NewCrawlState returns an empty crawl state; the first recrawl against it
// classifies every page as new.
func NewCrawlState() *CrawlState {
	return &CrawlState{Pages: make(map[string]*PageRecord)}
}

// Len returns the number of recorded URLs.
func (s *CrawlState) Len() int { return len(s.Pages) }
