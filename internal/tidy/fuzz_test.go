package tidy_test

import (
	"testing"

	"webrev/internal/corpus"
	"webrev/internal/htmlparse"
	"webrev/internal/tidy"
)

// FuzzTidy checks that cleansing any parsed tree — however malformed the
// source HTML — never panics and preserves structural validity.
func FuzzTidy(f *testing.F) {
	g := corpus.New(corpus.Options{Seed: 7})
	seeds := []string{
		"",
		"<p>   collapse \t\n  me   </p>",
		"<script>drop()</script><style>p{}</style><p>keep</p>",
		"<!-- comment --><p>a</p><!-- unterminated",
		"<p></p><div></div>", // empty elements
		"<h3>promoted</h3>",  // heading repair path
		"<p>a</p>text<p>b",   // mixed text runs
		"\x00<td>stray cell</td>\xff",
	}
	for _, r := range g.Corpus(2) {
		seeds = append(seeds, r.HTML)
	}
	seeds = append(seeds, g.Distractor())
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root := htmlparse.Parse(src)
		clean := tidy.Clean(root)
		if clean == nil {
			t.Fatal("Clean returned nil")
		}
		if err := clean.Validate(); err != nil {
			t.Fatalf("Clean produced an invalid tree: %v", err)
		}
		// The aggressive variant exercises the remaining option paths.
		aggr := tidy.CleanWith(htmlparse.Parse(src), tidy.Options{
			KeepComments:  true,
			KeepScripts:   true,
			KeepEmptyText: true,
		})
		if err := aggr.Validate(); err != nil {
			t.Fatalf("CleanWith produced an invalid tree: %v", err)
		}
	})
}
