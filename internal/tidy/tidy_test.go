package tidy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
	"webrev/internal/htmlparse"
)

func TestCleanRemovesScriptsStyleHead(t *testing.T) {
	doc := htmlparse.Parse(`<html><head><title>t</title><style>p{}</style></head><body><script>x()</script><p>keep</p></body></html>`)
	Clean(doc)
	if doc.FindElement("script") != nil || doc.FindElement("style") != nil || doc.FindElement("head") != nil {
		t.Fatalf("non-content survived: %s", doc.String())
	}
	if got := doc.InnerText(); got != "keep" {
		t.Fatalf("text = %q", got)
	}
}

func TestCleanRemovesComments(t *testing.T) {
	doc := htmlparse.Parse(`<!doctype html><p>a<!-- x -->b</p>`)
	Clean(doc)
	if doc.Find(func(n *dom.Node) bool { return n.Type == dom.CommentNode || n.Type == dom.DoctypeNode }) != nil {
		t.Fatal("comment/doctype survived")
	}
}

func TestCleanKeepOptions(t *testing.T) {
	doc := htmlparse.Parse(`<p>a<!-- x --></p><script>s</script>`)
	CleanWith(doc, Options{KeepComments: true, KeepScripts: true})
	if doc.Find(func(n *dom.Node) bool { return n.Type == dom.CommentNode }) == nil {
		t.Fatal("comment should be kept")
	}
	if doc.FindElement("script") == nil {
		t.Fatal("script should be kept")
	}
}

func TestWhitespaceNormalization(t *testing.T) {
	doc := htmlparse.Parse("<p>  hello \n\t world  </p><div>   </div>")
	Clean(doc)
	p := doc.FindElement("p")
	if got := p.Children[0].Text; got != " hello world " {
		t.Fatalf("text = %q", got)
	}
	div := doc.FindElement("div")
	if len(div.Children) != 0 {
		t.Fatalf("whitespace-only text survived: %s", div.String())
	}
}

func TestPreWhitespacePreserved(t *testing.T) {
	doc := htmlparse.Parse("<body><pre>  line one\n    indented\n</pre><p>  normal   text </p></body>")
	Clean(doc)
	pre := doc.FindElement("pre")
	if got := pre.Children[0].Text; got != "  line one\n    indented\n" {
		t.Fatalf("pre text mangled: %q", got)
	}
	p := doc.FindElement("p")
	if got := p.Children[0].Text; got != " normal text " {
		t.Fatalf("p text = %q", got)
	}
}

func TestMergeTextRuns(t *testing.T) {
	p := dom.NewElement("p")
	p.AppendChild(dom.NewText("a "))
	p.AppendChild(dom.NewText(" b"))
	p.AppendChild(dom.NewElement("br"))
	p.AppendChild(dom.NewText("c"))
	p.AppendChild(dom.NewText("d"))
	mergeTextRuns(p)
	if len(p.Children) != 3 {
		t.Fatalf("children = %d: %s", len(p.Children), p.String())
	}
	if p.Children[0].Text != "a b" {
		t.Fatalf("merged = %q", p.Children[0].Text)
	}
	if p.Children[2].Text != "cd" {
		t.Fatalf("merged = %q", p.Children[2].Text)
	}
}

func TestRepairHeadings(t *testing.T) {
	// <h1>Title<p>para</p></h1> — p moved out after h1.
	doc := htmlparse.Parse(`<body><h1>Title<p>para</body>`)
	Clean(doc)
	h1 := doc.FindElement("h1")
	if h1.FindElement("p") != nil {
		t.Fatalf("p still nested: %s", doc.String())
	}
	body := doc.FindElement("body")
	if len(body.Children) != 2 || body.Children[1].Tag != "p" {
		t.Fatalf("p not moved to sibling: %s", body.String())
	}
	if got := doc.InnerText(); got != "Title para" {
		t.Fatalf("text order = %q", got)
	}
}

func TestRepairHeadingsCascade(t *testing.T) {
	// h2 nested inside h1 via missing end tags unwinds fully.
	doc := htmlparse.Parse(`<body><h1>A<h2>B<p>c</body>`)
	Clean(doc)
	body := doc.FindElement("body")
	var tags []string
	for _, c := range body.Children {
		tags = append(tags, c.Tag)
	}
	if got := strings.Join(tags, " "); got != "h1 h2 p" {
		t.Fatalf("top-level = %q (%s)", got, body.String())
	}
}

func TestHeadingInlineContentStays(t *testing.T) {
	doc := htmlparse.Parse(`<h2><b>Edu</b>cation</h2>`)
	Clean(doc)
	h2 := doc.FindElement("h2")
	if got := h2.InnerText(); got != "Edu cation" && got != "Education" {
		t.Fatalf("heading text = %q", got)
	}
	if h2.FindElement("b") == nil {
		t.Fatal("inline content must stay inside heading")
	}
}

func TestCleanIdempotent(t *testing.T) {
	doc := htmlparse.Parse(`<body><h1>T<p>a</p></h1><script>s</script><p>  x  y </p></body>`)
	Clean(doc)
	once := doc.String()
	Clean(doc)
	if doc.String() != once {
		t.Fatalf("not idempotent:\n%s\n%s", once, doc.String())
	}
}

func TestPropertyCleanValidAndTextPreserved(t *testing.T) {
	pieces := []string{
		"<p>", "</p>", "<ul>", "<li>item ", "</ul>", "<h1>", "</h1>",
		"<h2>", "word ", "<b>", "</b>", "<br>", "<script>junk</script>",
		"<!--c-->", "<table><tr><td>cell", "</table>", "more text ",
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(n%24); i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
		}
		doc := htmlparse.Parse(b.String())
		// Text content outside scripts/comments must survive cleaning.
		CleanWith(doc, Options{}) // default
		if doc.Validate() != nil {
			return false
		}
		txt := doc.InnerText()
		return !strings.Contains(txt, "junk")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
