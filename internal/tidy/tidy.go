// Package tidy cleanses parsed HTML trees before document conversion.
//
// The paper (§2.4) observes that "applying HTML cleansing tools (such as
// HTML Tidy) can improve the accuracy of resulting XML documents". This
// package implements the cleansing passes that matter for the restructuring
// rules: dropping non-content nodes, whitespace normalization, merging text
// runs, repairing heading nesting, and unwrapping purely presentational
// containers.
package tidy

import (
	"strings"

	"webrev/internal/dom"
)

// Options configures the cleansing passes. The zero value applies every
// pass; use a field to switch one off.
type Options struct {
	KeepComments    bool // retain comment nodes
	KeepScripts     bool // retain script/style/head content
	KeepEmptyText   bool // retain whitespace-only text nodes
	KeepHeadingNest bool // do not repair content nested inside headings
}

// nonContentTags are elements whose entire subtree carries no document
// information for conversion purposes.
var nonContentTags = map[string]bool{
	"script": true, "style": true, "head": true, "meta": true,
	"link": true, "base": true, "noscript": true, "object": true,
	"applet": true, "iframe": true, "map": true, "area": true,
}

// headingTags in rank order.
var headingTags = map[string]bool{
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
}

// Clean applies the default cleansing passes in place and returns n for
// chaining.
func Clean(n *dom.Node) *dom.Node { return CleanWith(n, Options{}) }

// CleanWith applies the cleansing passes selected by opts in place.
func CleanWith(n *dom.Node, opts Options) *dom.Node {
	if !opts.KeepScripts {
		removeNonContent(n)
	}
	if !opts.KeepComments {
		removeComments(n)
	}
	normalizeWhitespace(n, opts.KeepEmptyText)
	mergeTextRuns(n)
	if !opts.KeepHeadingNest {
		repairHeadings(n)
	}
	return n
}

func removeNonContent(root *dom.Node) {
	for {
		victim := root.Find(func(m *dom.Node) bool {
			return m.Type == dom.ElementNode && nonContentTags[m.Tag] && m.Parent != nil
		})
		if victim == nil {
			return
		}
		victim.Detach()
	}
}

func removeComments(root *dom.Node) {
	for {
		victim := root.Find(func(m *dom.Node) bool {
			return (m.Type == dom.CommentNode || m.Type == dom.DoctypeNode) && m.Parent != nil
		})
		if victim == nil {
			return
		}
		victim.Detach()
	}
}

// normalizeWhitespace collapses runs of whitespace inside text nodes to
// single spaces and removes whitespace-only text nodes (unless kept).
// Text inside <pre> keeps its authored whitespace.
func normalizeWhitespace(root *dom.Node, keepEmpty bool) {
	var empties []*dom.Node
	root.Walk(func(m *dom.Node) bool {
		if m.Type == dom.ElementNode && m.Tag == "pre" {
			return false // preformatted: leave the subtree untouched
		}
		if m.Type != dom.TextNode {
			return true
		}
		m.Text = collapseSpace(m.Text)
		if !keepEmpty && strings.TrimSpace(m.Text) == "" && m.Parent != nil {
			empties = append(empties, m)
		}
		return true
	})
	for _, e := range empties {
		e.Detach()
	}
}

// collapseSpace reduces all whitespace runs to a single space, preserving a
// single leading/trailing space where the original had whitespace there so
// word boundaries across inline elements survive.
func collapseSpace(s string) string {
	if s == "" {
		return s
	}
	fields := strings.Fields(s)
	out := strings.Join(fields, " ")
	if out == "" {
		return " "
	}
	if isSpace(s[0]) {
		out = " " + out
	}
	if isSpace(s[len(s)-1]) {
		out = out + " "
	}
	return out
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// mergeTextRuns joins adjacent sibling text nodes into one node.
func mergeTextRuns(root *dom.Node) {
	root.Walk(func(m *dom.Node) bool {
		if len(m.Children) < 2 {
			return true
		}
		out := m.Children[:0]
		for _, c := range m.Children {
			if c.Type == dom.TextNode && len(out) > 0 && out[len(out)-1].Type == dom.TextNode {
				prev := out[len(out)-1]
				prev.Text = joinText(prev.Text, c.Text)
				c.Parent = nil
				continue
			}
			out = append(out, c)
		}
		m.Children = out
		return true
	})
}

func joinText(a, b string) string {
	if strings.HasSuffix(a, " ") || strings.HasPrefix(b, " ") {
		return strings.TrimRight(a, " ") + " " + strings.TrimLeft(b, " ")
	}
	return a + b
}

// repairHeadings fixes the common authoring error where block content is
// nested inside a heading because the end tag was omitted: everything after
// the heading's first block-level child is moved out to become the heading's
// following siblings.
func repairHeadings(root *dom.Node) {
	blockTags := map[string]bool{
		"p": true, "div": true, "ul": true, "ol": true, "dl": true,
		"table": true, "pre": true, "blockquote": true, "hr": true,
		"form": true, "h1": true, "h2": true, "h3": true, "h4": true,
		"h5": true, "h6": true, "center": true, "address": true,
	}
	for {
		changed := false
		root.Walk(func(m *dom.Node) bool {
			if m.Type != dom.ElementNode || !headingTags[m.Tag] || m.Parent == nil {
				return true
			}
			cut := -1
			for i, c := range m.Children {
				if c.Type == dom.ElementNode && blockTags[c.Tag] {
					cut = i
					break
				}
			}
			if cut < 0 {
				return true
			}
			parent := m.Parent
			at := parent.ChildIndex(m) + 1
			moved := make([]*dom.Node, len(m.Children)-cut)
			copy(moved, m.Children[cut:])
			for _, mv := range moved {
				mv.Detach()
				parent.InsertChildAt(at, mv)
				at++
			}
			changed = true
			return false
		})
		if !changed {
			return
		}
	}
}
