package discover

import (
	"reflect"
	"testing"

	"webrev/internal/concept"
	"webrev/internal/convert"
	"webrev/internal/corpus"
	"webrev/internal/dom"
)

func elv(tag, val string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, []string{"val", val}, children...)
}

func smallSet() *concept.Set {
	return concept.MustSet(
		concept.Concept{Name: "education", Role: concept.RoleTitle},
		concept.Concept{Name: "institution", Role: concept.RoleContent, Instances: []string{"college"}},
	)
}

func TestSuggestInstancesBasic(t *testing.T) {
	set := smallSet()
	// "university" is unknown to the set and recurs in education vals.
	var docs []*dom.Node
	for i := 0; i < 4; i++ {
		docs = append(docs, elv("resume", "",
			elv("education", "University of Somewhere"),
		))
	}
	got := SuggestInstances(docs, set, Options{MinDocs: 3})
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	found := false
	for _, s := range got {
		if s.Concept == "education" && s.Instance == "university" {
			found = true
			if s.Docs != 4 {
				t.Fatalf("docs = %d", s.Docs)
			}
			if len(s.Examples) == 0 {
				t.Fatal("no examples recorded")
			}
		}
		if s.Instance == "college" {
			t.Fatal("already-covered word suggested")
		}
		if s.Instance == "of" {
			t.Fatal("stopword suggested")
		}
	}
	if !found {
		t.Fatalf("university not suggested: %+v", got)
	}
}

func TestSuggestRequiresMinDocs(t *testing.T) {
	set := smallSet()
	docs := []*dom.Node{
		elv("resume", "", elv("education", "Polytechnic of X")),
		elv("resume", "", elv("education", "Polytechnic of Y")),
	}
	if got := SuggestInstances(docs, set, Options{MinDocs: 3}); len(got) != 0 {
		t.Fatalf("below-threshold suggestion: %+v", got)
	}
	if got := SuggestInstances(docs, set, Options{MinDocs: 2}); len(got) == 0 {
		t.Fatal("at-threshold suggestion missing")
	}
}

func TestSuggestCapsPerConcept(t *testing.T) {
	set := smallSet()
	var docs []*dom.Node
	for i := 0; i < 3; i++ {
		docs = append(docs, elv("resume", "",
			elv("education", "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda moo"),
		))
	}
	got := SuggestInstances(docs, set, Options{MinDocs: 3, MaxPerConcept: 5})
	if len(got) != 5 {
		t.Fatalf("cap not applied: %d suggestions", len(got))
	}
}

func TestSuggestDeterministicOrder(t *testing.T) {
	set := smallSet()
	docs := []*dom.Node{
		elv("resume", "", elv("education", "zebra apple")),
		elv("resume", "", elv("education", "zebra apple")),
		elv("resume", "", elv("education", "zebra apple")),
	}
	a := SuggestInstances(docs, set, Options{MinDocs: 2})
	b := SuggestInstances(docs, set, Options{MinDocs: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("non-deterministic output")
	}
	if a[0].Instance > a[1].Instance {
		t.Fatalf("tie-break order wrong: %+v", a)
	}
}

func TestCandidateWords(t *testing.T) {
	got := candidateWords("The University of California, 1996! x and Davis")
	want := []string{"university", "california", "davis"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("words = %v", got)
	}
}

// End to end with the real pipeline: drop "university" from the vocabulary,
// convert a corpus, and verify the discovery recovers it as a candidate.
func TestSuggestRecoversDroppedInstance(t *testing.T) {
	var reduced []concept.Concept
	for _, c := range concept.ResumeConcepts() {
		if c.Name == "institution" {
			var kept []string
			for _, in := range c.Instances {
				if in != "university" && in != "state university" && in != "univ" {
					kept = append(kept, in)
				}
			}
			c.Instances = kept
		}
		reduced = append(reduced, c)
	}
	set := concept.MustSet(reduced...)
	conv := convert.New(set, convert.Options{
		RootName:    "resume",
		Constraints: concept.ResumeConstraints(),
	})
	g := corpus.New(corpus.Options{Seed: 55})
	var docs []*dom.Node
	for _, r := range g.Corpus(40) {
		x, _ := conv.Convert(r.HTML)
		docs = append(docs, x)
	}
	got := SuggestInstances(docs, set, Options{MinDocs: 5})
	for _, s := range got {
		if s.Instance == "university" {
			return // recovered
		}
	}
	t.Fatalf("dropped instance not recovered; suggestions: %+v", got)
}
