// Package discover implements the paper's stated future work (§5): "we are
// developing different methods to automatically extract concept instances
// from a training set of HTML documents and thus to further automate the
// process."
//
// The method mines the val attributes of converted XML documents: val text
// is exactly what the concept instance rule could NOT identify, folded to
// the nearest concept ancestor. Words that recur in the unidentified text
// of the same concept context across many documents are strong instance
// candidates for that context, ranked for user review — the paper keeps the
// user in the loop ("a feedback to the user who … associates more concept
// instances with concepts", §2.3.1).
package discover

import (
	"sort"
	"strings"
	"unicode"

	"webrev/internal/concept"
	"webrev/internal/dom"
)

// Suggestion is one candidate concept instance.
type Suggestion struct {
	Concept  string   // the context concept whose val contained the word
	Instance string   // the candidate instance (lowercase)
	Docs     int      // number of documents supporting the suggestion
	Examples []string // up to three val snippets containing the word
}

// Options tunes suggestion mining.
type Options struct {
	// MinDocs is the document-frequency floor for a suggestion (default 3).
	MinDocs int
	// MaxPerConcept caps suggestions per concept (default 10).
	MaxPerConcept int
}

// stopwords excluded from candidates: function words and generic filler
// that carries no concept signal.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "at": true, "by": true, "for": true,
	"from": true, "in": true, "of": true, "on": true, "or": true, "the": true,
	"to": true, "with": true, "is": true, "was": true, "are": true,
	"were": true, "as": true, "my": true, "i": true, "we": true,
}

// SuggestInstances mines converted documents for instance candidates. set
// is the current vocabulary; words already covered by any concept instance
// are never suggested.
func SuggestInstances(docs []*dom.Node, set *concept.Set, opts Options) []Suggestion {
	if opts.MinDocs <= 0 {
		opts.MinDocs = 3
	}
	if opts.MaxPerConcept <= 0 {
		opts.MaxPerConcept = 10
	}

	type key struct{ concept, word string }
	docsFor := make(map[key]map[int]bool)
	examples := make(map[key][]string)

	for di, doc := range docs {
		doc.Walk(func(n *dom.Node) bool {
			// Every element's val is mined: concept elements give a concept
			// context, and the document root collects the text no concept
			// claimed at all (context = the root's own tag).
			if n.Type != dom.ElementNode {
				return true
			}
			if !set.Has(n.Tag) && n.Parent != nil {
				return true
			}
			val := n.Val()
			if val == "" {
				return true
			}
			for _, w := range candidateWords(val) {
				if covered(set, w) {
					continue
				}
				k := key{n.Tag, w}
				seen := docsFor[k]
				if seen == nil {
					seen = make(map[int]bool)
					docsFor[k] = seen
				}
				if !seen[di] {
					seen[di] = true
					if len(examples[k]) < 3 {
						examples[k] = append(examples[k], snippet(val))
					}
				}
			}
			return true
		})
	}

	perConcept := make(map[string][]Suggestion)
	for k, seen := range docsFor {
		if len(seen) < opts.MinDocs {
			continue
		}
		perConcept[k.concept] = append(perConcept[k.concept], Suggestion{
			Concept:  k.concept,
			Instance: k.word,
			Docs:     len(seen),
			Examples: examples[k],
		})
	}
	var out []Suggestion
	for _, ss := range perConcept {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Docs != ss[j].Docs {
				return ss[i].Docs > ss[j].Docs
			}
			return ss[i].Instance < ss[j].Instance
		})
		if len(ss) > opts.MaxPerConcept {
			ss = ss[:opts.MaxPerConcept]
		}
		out = append(out, ss...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Concept != out[j].Concept {
			return out[i].Concept < out[j].Concept
		}
		if out[i].Docs != out[j].Docs {
			return out[i].Docs > out[j].Docs
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// candidateWords extracts lowercase alphabetic words of length ≥ 3,
// excluding stopwords and pure numbers.
func candidateWords(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		w := cur.String()
		cur.Reset()
		if len(w) < 3 || stopwords[w] {
			return
		}
		out = append(out, w)
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// covered reports whether word already appears in any concept instance.
func covered(set *concept.Set, word string) bool {
	ms := set.FindAll(word)
	return len(ms) > 0
}

func snippet(val string) string {
	if len(val) > 60 {
		return val[:60] + "…"
	}
	return val
}
