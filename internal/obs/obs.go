// Package obs is the pipeline's observability layer: named spans around
// every stage, monotonic stage timers, and typed counters/gauges for the
// quantities the paper's evaluation (§4) measures — documents converted,
// tokens classified, paths extracted and kept, edit operations per
// document, bytes in and out.
//
// The layer has two implementations of the Tracer interface. Nop() is the
// default everywhere: its methods are empty, its spans are zero-sized, and
// calls through it compile to near-zero overhead (no allocation, no lock),
// so instrumented code pays nothing when observability is off. NewCollector
// returns the recording implementation: a mutex-protected registry of stage
// timings and counters that any number of goroutines may feed concurrently.
// Snapshot freezes a Collector into a serializable value with a JSON writer
// (the BENCH_pipeline.json format), a human-readable summary table, and an
// expvar/pprof debug endpoint (see ServeDebug).
//
// Stage and counter names are declared here as constants so producers
// (core, convert, schema, mapping, crawler) and consumers (CLIs, the
// experiment harness, golden tests) agree on the vocabulary.
package obs

import (
	"fmt"
	"time"
)

// Span is one in-flight timed region. End stops it; End on the zero span or
// a span from the no-op tracer does nothing, so spans can be ended
// unconditionally (usually via defer).
type Span interface {
	End()
}

// Tracer is the instrumentation interface threaded through the pipeline.
// Implementations must be safe for concurrent use.
type Tracer interface {
	// StartSpan begins a named timed region; the span's End records its
	// duration under name as a stage timing.
	StartSpan(name string) Span
	// Observe records an externally measured duration under name — the
	// bridge for subsystems that already track their own wall clock (the
	// crawler's Report).
	Observe(name string, d time.Duration)
	// Add increments the named counter by delta.
	Add(name string, delta int64)
	// Set sets the named gauge to v.
	Set(name string, v int64)
	// Enabled reports whether events are recorded. Instrumented code uses
	// it to gate work done only to feed metrics (e.g. measuring output
	// bytes).
	Enabled() bool
}

// Canonical stage names. Every pipeline stage times itself under one of
// these, so sinks and tests can enumerate them.
const (
	StageConvert = "pipeline.convert" // HTML → concept-tagged XML, per document
	StageExtract = "schema.extract"   // XML → label-path representation
	StageMine    = "schema.mine"      // frequent-path discovery
	// StageMineFold times the parallel per-shard accumulator fold that
	// precedes frequent-path discovery when the miner runs sharded.
	StageMineFold = "schema.mine.fold"
	StageDerive   = "dtd.derive"   // schema → DTD
	StageMap      = "map.conform"  // DTD-guided document mapping, per document
	StageCrawl    = "crawl"        // acquisition crawl (bridged from crawler.Report)
	StageMerge    = "schema.merge" // merging per-shard schema accumulators (streaming build)
	// StageCheckpoint times each snapshot of the streaming build's
	// accumulator state to the checkpoint directory.
	StageCheckpoint = "checkpoint.write"
	// StageServe times one served repository request in webrevd (all
	// endpoints; the serve counters below split the traffic).
	StageServe = "serve.request"
	// StageServeSwap times building and atomically installing a new
	// serving snapshot (internal/serve.Server.Swap).
	StageServeSwap = "serve.swap"
	// StageWatch times one full continuous-operation cycle (conditional
	// recrawl, delta fold, incremental re-derive, drift report) of the
	// watch loop (internal/watch).
	StageWatch = "watch.cycle"
	// StageShardConvert times one shard worker's whole convert+fold pass
	// over its source range in a sharded build (core.BuildSharded). The
	// per-shard span names come from ShardStage.
	StageShardConvert = "shard.convert"
	// StageShardMap times one shard worker's whole DTD-guided mapping pass
	// over its converted segment in a sharded build.
	StageShardMap = "shard.map"
	// StageShardMerge times folding the per-shard conformed segments into
	// the final content-addressed store of a sharded build.
	StageShardMerge = "shard.merge"
)

// ShardStage returns the per-shard stage name under which one shard
// worker's phase is timed, e.g. ShardStage(StageShardConvert, 3) ==
// "shard.convert.003". The unsuffixed phase constants aggregate across
// shards.
func ShardStage(phase string, shard int) string {
	return fmt.Sprintf("%s.%03d", phase, shard)
}

// PipelineStages lists the stages a full Build exercises, in order.
var PipelineStages = []string{StageConvert, StageExtract, StageMine, StageDerive, StageMap}

// Canonical counter names.
const (
	CtrDocsConverted   = "docs.converted"      // documents through conversion
	CtrBytesIn         = "bytes.in"            // HTML bytes entering conversion
	CtrBytesOut        = "bytes.out"           // XML bytes of conformed output
	CtrTokens          = "tokens.total"        // tokens from the tokenization rule
	CtrTokensIdent     = "tokens.identified"   // tokens related to a concept
	CtrTokensUnident   = "tokens.unidentified" // tokens folded into parent val
	CtrClassifierHits  = "tokens.classified"   // tokens identified by the Bayes classifier
	CtrConceptNodes    = "concepts.nodes"      // concept elements produced
	CtrPathsExtracted  = "paths.extracted"     // distinct label paths across documents
	CtrPathsExplored   = "paths.explored"      // candidate paths tested by the miner
	CtrPathsPruned     = "paths.pruned"        // candidates rejected by constraints
	CtrPathsFrequent   = "paths.frequent"      // paths kept in the majority schema
	CtrDTDElements     = "dtd.elements"        // element declarations derived
	CtrMapEdits        = "map.edits"           // total edit operations across documents
	CtrMapDocs         = "map.docs"            // documents through conformance mapping
	CtrMapMemoHits     = "map.memo_hits"       // Conform calls reusing the precompiled DTD index
	CtrMineShards      = "mine.shards"         // accumulator shards folded by the parallel miner
	CtrDocsQuarantined = "docs.quarantined"    // documents dropped by per-document fault isolation
	CtrDocsDegraded    = "docs.degraded"       // documents kept but truncated or identity-mapped by limits
	CtrDocsRestored    = "docs.restored"       // documents restored from a streaming-build checkpoint
	CtrCheckpoints     = "checkpoint.writes"   // checkpoint snapshots written by the streaming build
	CtrCrawlFetched    = "crawl.fetched"
	CtrCrawlFailed     = "crawl.failed"
	CtrCrawlRetried    = "crawl.retried"
	CtrCrawlSkipped    = "crawl.skipped"
	CtrCrawlTruncated  = "crawl.truncated"
	// CtrCrawlNotModified counts conditional refetches answered 304 — pages
	// revalidated without a body transfer (recrawl cycles only).
	CtrCrawlNotModified = "crawl.not_modified"
	// CtrCrawlVanished counts page records retired by completed recrawls.
	CtrCrawlVanished = "crawl.vanished"
	CtrCrawlBytes    = "crawl.bytes"
	// Continuous-operation (watch loop) counters.
	CtrWatchCycles        = "watch.cycles"               // completed watch cycles
	CtrWatchDocsUnchanged = "watch.docs.unchanged"       // pages revalidated as current across cycles
	CtrWatchDocsChanged   = "watch.docs.changed"         // pages refolded after a content change
	CtrWatchDocsNew       = "watch.docs.new"             // pages first seen by a cycle
	CtrWatchDocsVanished  = "watch.docs.vanished"        // pages retired by a cycle
	CtrWatchDriftNew      = "watch.drift.paths.new"      // frequent paths appearing in drift reports
	CtrWatchDriftVanished = "watch.drift.paths.vanished" // frequent paths vanishing in drift reports
	// Serving-layer counters (webrevd / internal/serve).
	CtrServeRequests    = "serve.requests"     // requests served, all endpoints
	CtrServeErrors      = "serve.errors"       // requests answered with a 4xx/5xx
	CtrServeQueries     = "serve.queries"      // label-path query evaluations
	CtrServeResultHits  = "serve.result.hits"  // query responses served from the result cache
	CtrServeCompileHits = "serve.compile.hits" // queries served a cached compilation
	CtrServeSwaps       = "serve.swaps"        // serving snapshots installed (initial load included)
	// CtrServeShed counts requests rejected 503 by admission control
	// (in-flight semaphore saturated and the wait queue full or timed out).
	CtrServeShed = "serve.shed"
	// CtrServeTimeouts counts requests aborted by their propagated deadline
	// (server default or ?timeout= cap) and answered 504.
	CtrServeTimeouts = "serve.timeouts"
	// CtrServePanics counts handler panics converted to 500s by the
	// per-request recover boundary; the process never dies with the request.
	CtrServePanics = "serve.panics"
	// CtrServeReloadRejected counts reload attempts whose candidate snapshot
	// failed validation (or whose loader errored/panicked); the previous
	// generation keeps serving.
	CtrServeReloadRejected = "serve.reload_rejected"
	// CtrServeDrains counts graceful-drain sequences started (SIGTERM or an
	// explicit Daemon.Drain).
	CtrServeDrains = "serve.drains"
	// Disk-backed document store counters (internal/repository.DiskStore).
	// CtrStoreHits counts decoded-DOM reads served from the store's LRU.
	CtrStoreHits = "store.hits"
	// CtrStoreMisses counts decoded-DOM reads that had to load and parse
	// the XML blob from disk.
	CtrStoreMisses = "store.misses"
	// CtrStoreEvictions counts decoded DOMs dropped from the LRU to stay
	// under the MaxResidentDocs bound.
	CtrStoreEvictions = "store.evictions"
	// CtrStoreDeduped counts appended documents whose content hash matched
	// an existing blob, so no new segment bytes were written.
	CtrStoreDeduped = "store.deduped"
	// CtrShardsResumed counts shard workers of a sharded build that resumed
	// from a previous run's checkpoint instead of starting fresh.
	CtrShardsResumed = "shard.resumed"
)

// Canonical gauge names. Gauges record point-in-time levels (Set), not
// accumulating totals (Add).
const (
	// GaugeStreamInFlight is the number of documents currently inside the
	// streaming build — accepted from the input channel but not yet folded
	// into the schema statistics. Bounded by the configured in-flight cap.
	GaugeStreamInFlight = "stream.inflight"
	// GaugeStreamInFlightPeak is the high-water mark of
	// GaugeStreamInFlight over a whole streaming build; the bounded-memory
	// guarantee is peak <= cap.
	GaugeStreamInFlightPeak = "stream.inflight.peak"
	// GaugeStreamShards is the number of per-worker schema accumulators the
	// streaming build merged.
	GaugeStreamShards = "stream.shards"
	// GaugeServeInFlight is the number of requests currently admitted and
	// executing in the serving layer.
	GaugeServeInFlight = "serve.inflight"
	// GaugeServeInFlightPeak is the high-water mark of GaugeServeInFlight
	// over the server's lifetime; admission control guarantees peak <= cap.
	GaugeServeInFlightPeak = "serve.inflight.peak"
	// GaugeServeQueueDepth is the number of requests waiting in the
	// admission queue for an in-flight slot.
	GaugeServeQueueDepth = "serve.queue.depth"
)

// ServeEndpointStage returns the stage name under which one webrevd
// endpoint's latency is recorded, e.g. ServeEndpointStage("query") ==
// "serve.endpoint.query". The per-endpoint stages complement StageServe
// (which aggregates all endpoints) so overload investigations can tell a
// slow scan surface from a cheap health probe.
func ServeEndpointStage(endpoint string) string { return "serve.endpoint." + endpoint }

// MapOpCounter returns the counter name for one conformance-mapping edit
// kind, e.g. MapOpCounter("insert") == "map.ops.insert".
func MapOpCounter(kind string) string { return "map.ops." + kind }

// nop is the disabled tracer. All methods are empty; StartSpan returns a
// zero-sized span, so the interface conversions allocate nothing.
type nop struct{}

type nopSpan struct{}

func (nopSpan) End() {}

func (nop) StartSpan(string) Span         { return nopSpan{} }
func (nop) Observe(string, time.Duration) {}
func (nop) Add(string, int64)             {}
func (nop) Set(string, int64)             {}
func (nop) Enabled() bool                 { return false }

// Nop returns the shared no-op tracer.
func Nop() Tracer { return nop{} }

// OrNop returns t, or the no-op tracer when t is nil, so optional Tracer
// fields can be used without nil checks at every call site.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop()
	}
	return t
}
