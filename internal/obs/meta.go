package obs

import (
	"os/exec"
	"runtime"
	"strings"
)

// Meta identifies the build that produced a metrics snapshot, so a
// BENCH_*.json pulled from CI artifacts is traceable to a commit and
// platform. Commit and Date come from git; the rest from the runtime.
type Meta struct {
	Commit    string `json:"commit,omitempty"`
	Date      string `json:"date,omitempty"` // HEAD commit date, RFC 3339
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"goversion"`
}

// CollectMeta gathers snapshot provenance for the checkout at dir. The git
// fields stay empty when dir is not a git work tree or git is unavailable;
// the runtime fields are always populated.
func CollectMeta(dir string) *Meta {
	m := &Meta{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
	}
	out, err := exec.Command("git", "-C", dir, "log", "-1", "--format=%H %cI").Output()
	if err == nil {
		if fields := strings.Fields(string(out)); len(fields) == 2 {
			m.Commit, m.Date = fields[0], fields[1]
		}
	}
	return m
}
