package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 9 medium, 1 slow: p50 lands in the fast band,
	// p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(1 * time.Second)

	st := h.Snapshot()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.P50 < time.Microsecond || st.P50 > 4*time.Microsecond {
		t.Errorf("p50 = %v, want ~1-2µs bucket bound", st.P50)
	}
	if st.P90 > 4*time.Microsecond {
		t.Errorf("p90 = %v, want within the fast band (rank 89 of 100)", st.P90)
	}
	// Nearest-rank p99 of 100 samples is the 99th observation — the top of
	// the 1ms band, not the lone 1s outlier (that one is Max).
	if st.P99 < time.Millisecond || st.P99 >= time.Second {
		t.Errorf("p99 = %v, want in the 1ms band", st.P99)
	}
	if st.Max != time.Second {
		t.Errorf("max = %v, want 1s", st.Max)
	}
	if st.Mean <= 0 {
		t.Errorf("mean = %v, want > 0", st.Mean)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	if st := h.Snapshot(); st.Count != 0 || st.P99 != 0 || st.Mean != 0 {
		t.Fatalf("empty histogram snapshot = %+v", st)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped, never panics
	if st := h.Snapshot(); st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if st := h.Snapshot(); st.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*per)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for ns, want := range cases {
		if got := bucketOf(ns); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", ns, got, want)
		}
	}
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Errorf("bucketOf(huge) = %d, want clamped to %d", got, histBuckets-1)
	}
}
