package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets a Histogram
// tracks. Bucket i covers durations in [2^i, 2^(i+1)) nanoseconds, so 48
// buckets span sub-microsecond handler times through multi-minute stalls.
const histBuckets = 48

// Histogram is a lock-free latency histogram with power-of-two buckets,
// built for the serving hot path: Observe is a single atomic increment, so
// any number of request goroutines may feed one Histogram concurrently
// without a mutex. Quantiles are estimated from the bucket counts (each
// bucket reports its upper bound), which is exact enough for overload
// dashboards and regression gates while costing nothing per request.
//
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// bucketOf maps a nanosecond latency to its power-of-two bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistStats is a frozen summary of a Histogram, shaped for JSON surfaces
// (webrevd's /api/stats). Quantiles are bucket upper bounds — conservative
// (never under-reported) estimates.
type HistStats struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot summarizes the histogram's current state. Concurrent Observe
// calls may or may not be included; the summary is internally consistent
// enough for monitoring (counts are read once per bucket).
func (h *Histogram) Snapshot() HistStats {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	st := HistStats{Count: total, Max: time.Duration(h.max.Load())}
	if total == 0 {
		return st
	}
	st.Mean = time.Duration(h.sum.Load() / total)
	st.P50 = histQuantile(&counts, total, 0.50)
	st.P90 = histQuantile(&counts, total, 0.90)
	st.P99 = histQuantile(&counts, total, 0.99)
	return st
}

// histQuantile returns the upper bound of the bucket holding the
// q-quantile observation.
func histQuantile(counts *[histBuckets]int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total-1))
	var seen int64
	for i, c := range counts {
		seen += c
		if c > 0 && seen > rank {
			return time.Duration(int64(1)<<(i+1) - 1)
		}
	}
	return time.Duration(int64(1)<<histBuckets - 1)
}
