package obs

import (
	"sync"
	"time"
)

// StageStats aggregates the recorded durations of one named stage.
type StageStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Avg returns the mean duration per recorded span.
func (s StageStats) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// add folds one duration into the aggregate.
func (s *StageStats) add(d time.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Count++
	s.Total += d
}

// Collector is the recording Tracer: a registry of stage timings, counters
// and gauges. Safe for concurrent use; a single mutex suffices because
// recorded events are coarse (per stage or per document, not per node).
type Collector struct {
	mu       sync.Mutex
	stages   map[string]*StageStats
	counters map[string]int64
	gauges   map[string]int64
}

// NewCollector returns an empty recording tracer.
func NewCollector() *Collector {
	return &Collector{
		stages:   make(map[string]*StageStats),
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
	}
}

// span is one in-flight Collector timing; monotonic because time.Now
// carries Go's monotonic clock reading.
type span struct {
	c     *Collector
	name  string
	start time.Time
}

func (s *span) End() {
	if s == nil || s.c == nil {
		return
	}
	s.c.Observe(s.name, time.Since(s.start))
	s.c = nil // idempotent: double End records once
}

// StartSpan begins a named timed region.
func (c *Collector) StartSpan(name string) Span {
	return &span{c: c, name: name, start: time.Now()}
}

// Observe folds an externally measured duration into the named stage.
func (c *Collector) Observe(name string, d time.Duration) {
	c.mu.Lock()
	st := c.stages[name]
	if st == nil {
		st = &StageStats{}
		c.stages[name] = st
	}
	st.add(d)
	c.mu.Unlock()
}

// Add increments the named counter.
func (c *Collector) Add(name string, delta int64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Set sets the named gauge.
func (c *Collector) Set(name string, v int64) {
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Enabled reports that this tracer records.
func (c *Collector) Enabled() bool { return true }

// Stage returns a copy of the named stage's aggregate and whether it was
// ever recorded.
func (c *Collector) Stage(name string) (StageStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stages[name]
	if !ok {
		return StageStats{}, false
	}
	return *st, true
}

// Counter returns the named counter's value (0 when never incremented).
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Gauge returns the named gauge's value (0 when never set).
func (c *Collector) Gauge(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gauges[name]
}

// SetMax raises the named gauge to v if v is larger — the high-water-mark
// update used by the streaming build's peak in-flight gauge. Atomic under
// the collector's lock, so concurrent workers cannot lose a peak.
func (c *Collector) SetMax(name string, v int64) {
	c.mu.Lock()
	if v > c.gauges[name] {
		c.gauges[name] = v
	}
	c.mu.Unlock()
}

// Reset clears all recorded stages, counters and gauges.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.stages = make(map[string]*StageStats)
	c.counters = make(map[string]int64)
	c.gauges = make(map[string]int64)
	c.mu.Unlock()
}

// StagesOf extracts the per-stage aggregates from a tracer when it is a
// recording Collector, and nil otherwise — how the pipeline surfaces
// StageStats on its Repository without forcing collection on.
func StagesOf(t Tracer) map[string]StageStats {
	c, ok := t.(*Collector)
	if !ok {
		return nil
	}
	return c.Snapshot().Stages
}
