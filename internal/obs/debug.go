package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published guards expvar.Publish, which panics on duplicate names; the
// same collector name may be wired more than once across tests or repeated
// CLI invocations in one process.
var published sync.Map // name -> *Collector holder

type collectorHolder struct {
	mu sync.Mutex
	c  *Collector
}

// PublishExpvar exposes the collector's live snapshot as the named expvar
// (visible under /debug/vars). Publishing a second collector under the same
// name rebinds the variable instead of panicking.
func (c *Collector) PublishExpvar(name string) {
	h, loaded := published.LoadOrStore(name, &collectorHolder{c: c})
	holder := h.(*collectorHolder)
	holder.mu.Lock()
	holder.c = c
	holder.mu.Unlock()
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			holder.mu.Lock()
			cur := holder.c
			holder.mu.Unlock()
			return cur.Snapshot()
		}))
	}
}

// DebugServer is a running metrics/profiling endpoint.
type DebugServer struct {
	// Addr is the bound address, e.g. "127.0.0.1:6060".
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the server down.
func (d *DebugServer) Close() error {
	d.srv.Close()
	return nil
}

// RegisterDebug mounts the debug surface on an existing mux:
//
//	/debug/vars         expvar JSON, including the published collector
//	/debug/pprof/...    the standard pprof profiles
//	/metrics            the collector's snapshot (the WriteJSON format)
//	/metrics/summary    the human-readable stage summary
//
// The collector is also published as the expvar "webrev". ServeDebug uses
// it with a private mux; webrevd mounts the same surface next to its API
// routes so one listener serves both.
func RegisterDebug(mux *http.ServeMux, c *Collector) {
	c.PublishExpvar("webrev")
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		c.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/metrics/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(c.Snapshot().Summary()))
	})
}

// ServeDebug starts an HTTP debug endpoint on addr (":0" picks a free
// port) serving the RegisterDebug surface on its own mux, so it composes
// with any application server. Callers own the returned server and should
// Close it when done.
func ServeDebug(addr string, c *Collector) (*DebugServer, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, c)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln)
	return d, nil
}
