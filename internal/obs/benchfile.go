package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchResult is one benchmark measurement in a BENCH_*.json snapshot:
// the best (minimum ns/op) run across repeats when parsed from `go test
// -bench` output, or a directly measured statistic (webrevd's load-test
// percentiles land here as ns_per_op, so cmd/benchdiff's compare mode
// gates them like any other latency).
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	Iterations  int64   `json:"iterations,omitempty"`
}

// BenchFile is the on-disk shape of every committed BENCH_*.json: build
// provenance plus named measurements. cmd/benchdiff produces and compares
// this form; webrevd's bench mode writes it directly.
type BenchFile struct {
	Meta       *Meta                  `json:"meta,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// WriteFile writes the snapshot as indented JSON to path.
func (f *BenchFile) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile loads a BENCH_*.json snapshot.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
