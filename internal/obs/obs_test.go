package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopIsFree(t *testing.T) {
	tr := Nop()
	if tr.Enabled() {
		t.Fatal("nop tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartSpan(StageConvert)
		tr.Add(CtrTokens, 3)
		tr.Set("g", 1)
		tr.Observe(StageCrawl, time.Second)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nop tracer allocates: %v allocs/op", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil).Enabled() {
		t.Fatal("OrNop(nil) must be disabled")
	}
	c := NewCollector()
	if OrNop(c) != Tracer(c) {
		t.Fatal("OrNop must pass a non-nil tracer through")
	}
}

func TestCollectorRecords(t *testing.T) {
	c := NewCollector()
	sp := c.StartSpan(StageMine)
	sp.End()
	sp.End() // idempotent: second End must not record again
	c.Observe(StageMine, 5*time.Millisecond)
	c.Add(CtrPathsFrequent, 7)
	c.Add(CtrPathsFrequent, 3)
	c.Set("workers", 8)

	st, ok := c.Stage(StageMine)
	if !ok {
		t.Fatal("stage not recorded")
	}
	if st.Count != 2 {
		t.Fatalf("stage count = %d, want 2 (span + observe)", st.Count)
	}
	if st.Max < 5*time.Millisecond || st.Total < st.Max || st.Min > st.Max {
		t.Fatalf("implausible aggregate: %+v", st)
	}
	if got := c.Counter(CtrPathsFrequent); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if avg := st.Avg(); avg <= 0 || avg > st.Max {
		t.Fatalf("avg = %v out of range", avg)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := c.StartSpan(StageConvert)
				c.Add(CtrDocsConverted, 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	st, _ := c.Stage(StageConvert)
	if st.Count != 1600 {
		t.Fatalf("span count = %d, want 1600", st.Count)
	}
	if got := c.Counter(CtrDocsConverted); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}

func TestSnapshotRoundTripAndNormalize(t *testing.T) {
	c := NewCollector()
	c.Observe(StageDerive, 3*time.Millisecond)
	c.Add(CtrDTDElements, 20)
	c.Set("workers", 4)

	var buf bytes.Buffer
	if err := c.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stages[StageDerive].Total != 3*time.Millisecond {
		t.Fatalf("round trip lost timing: %+v", back.Stages[StageDerive])
	}
	if back.Counters[CtrDTDElements] != 20 || back.Gauges["workers"] != 4 {
		t.Fatalf("round trip lost counters/gauges: %+v", back)
	}

	norm := back.Normalize()
	if st := norm.Stages[StageDerive]; st.Total != 0 || st.Count != 1 {
		t.Fatalf("normalize: want timings zeroed, count kept; got %+v", st)
	}
	if norm.Counters[CtrDTDElements] != 20 {
		t.Fatal("normalize dropped counters")
	}
	// Normalized snapshots are byte-stable across runs.
	a, _ := json.Marshal(norm)
	b, _ := json.Marshal(back.Normalize())
	if !bytes.Equal(a, b) {
		t.Fatal("normalized snapshots differ across calls")
	}
}

func TestSummary(t *testing.T) {
	c := NewCollector()
	c.Observe(StageConvert, 2*time.Millisecond)
	c.Add(CtrTokens, 42)
	s := c.Snapshot().Summary()
	for _, want := range []string{StageConvert, CtrTokens, "42", "count"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestStagesOf(t *testing.T) {
	if StagesOf(Nop()) != nil {
		t.Fatal("StagesOf(Nop) must be nil")
	}
	c := NewCollector()
	c.Observe(StageMap, time.Millisecond)
	stages := StagesOf(c)
	if stages == nil || stages[StageMap].Count != 1 {
		t.Fatalf("StagesOf(collector) = %+v", stages)
	}
}

func TestServeDebug(t *testing.T) {
	c := NewCollector()
	c.Observe(StageCrawl, 7*time.Millisecond)
	c.Add(CtrCrawlFetched, 12)
	d, err := ServeDebug("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, CtrCrawlFetched) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics/summary"); !strings.Contains(body, StageCrawl) {
		t.Fatalf("/metrics/summary missing stage:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "webrev") {
		t.Fatalf("/debug/vars missing published collector:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ not serving index:\n%s", body)
	}

	// Publishing a second collector under the same name must rebind, not
	// panic.
	c2 := NewCollector()
	c2.Add("rebound", 1)
	c2.PublishExpvar("webrev")
	if body := get("/debug/vars"); !strings.Contains(body, "rebound") {
		t.Fatalf("expvar did not rebind to the new collector:\n%s", body)
	}
}
