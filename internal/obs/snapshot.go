package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Snapshot is a frozen, serializable view of a Collector — the
// machine-readable metrics format (BENCH_pipeline.json) and the source of
// the human-readable stage summary.
type Snapshot struct {
	Meta     *Meta                 `json:"meta,omitempty"`
	Stages   map[string]StageStats `json:"stages"`
	Counters map[string]int64      `json:"counters"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
}

// Snapshot freezes the collector's current state.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{
		Stages:   make(map[string]StageStats, len(c.stages)),
		Counters: make(map[string]int64, len(c.counters)),
	}
	for name, st := range c.stages {
		s.Stages[name] = *st
	}
	for name, v := range c.counters {
		s.Counters[name] = v
	}
	if len(c.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(c.gauges))
		for name, v := range c.gauges {
			s.Gauges[name] = v
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Maps serialize with
// sorted keys (encoding/json guarantees this), so output is deterministic
// for fixed inputs.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot JSON to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return &s, nil
}

// Normalize returns a copy with every timing zeroed, keeping counts and
// counters. Golden tests compare normalized snapshots: the event structure
// is deterministic, wall-clock durations and build metadata are not, so
// Meta is dropped too.
func (s *Snapshot) Normalize() *Snapshot {
	out := &Snapshot{
		Stages:   make(map[string]StageStats, len(s.Stages)),
		Counters: make(map[string]int64, len(s.Counters)),
	}
	for name, st := range s.Stages {
		out.Stages[name] = StageStats{Count: st.Count}
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[name] = v
		}
	}
	return out
}

// Summary renders the snapshot as a human-readable stage table followed by
// the counters, the form the experiment harness prints.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	if len(s.Stages) > 0 {
		fmt.Fprintf(&b, "%-18s %8s %12s %12s %12s %12s\n",
			"stage", "count", "total", "avg", "min", "max")
		for _, name := range sortedKeys(s.Stages) {
			st := s.Stages[name]
			fmt.Fprintf(&b, "%-18s %8d %12s %12s %12s %12s\n",
				name, st.Count, fmtDur(st.Total), fmtDur(st.Avg()),
				fmtDur(st.Min), fmtDur(st.Max))
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-24s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-24s %12d\n", name, s.Gauges[name])
		}
	}
	return b.String()
}

// fmtDur rounds a duration to a readable precision for the summary table.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
