package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAdd(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Add("a", 3)
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("overwrite: Get(a) = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[string]
	c.Add("a", "x") // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
	if New[string](0) != nil {
		t.Fatal("New(0) should return the nil disabled cache")
	}
}

func TestEvictionBounded(t *testing.T) {
	const cap = 128
	c := New[int](cap)
	for i := 0; i < 10*cap; i++ {
		c.Add(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > cap+shardCount {
		t.Fatalf("Len = %d, want <= capacity %d (plus shard rounding)", n, cap)
	}
}

func TestSecondChanceKeepsHotKeys(t *testing.T) {
	// One shard's worth of keys that all hash to different shards is hard
	// to arrange; instead verify globally that a continuously-touched key
	// survives heavy churn far beyond capacity.
	c := New[int](64)
	c.Add("hot", 42)
	for i := 0; i < 4096; i++ {
		c.Add(fmt.Sprintf("cold%d", i), i)
		if _, ok := c.Get("hot"); !ok {
			// The hot key may be evicted only if its shard saw enough
			// churn to sweep past it twice without an intervening Get —
			// with a Get after every single Add that cannot happen.
			t.Fatalf("hot key evicted at i=%d", i)
		}
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%512)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("impossible value")
					return
				}
				c.Add(k, i)
			}
		}(w)
	}
	wg.Wait()
}

func TestGetHitAllocs(t *testing.T) {
	c := New[int](64)
	c.Add("token", 7)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get("token"); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get hit allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New[int](1024)
	c.Add("university of california at davis", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get("university of california at davis")
	}
}

func TestStats(t *testing.T) {
	c := New[int](64)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("fresh stats = %+v", st)
	}
	c.Add("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss, 1 entry", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %f", got)
	}
	var nilCache *Cache[int]
	if st := nilCache.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("zero stats hit rate should be 0")
	}
}
