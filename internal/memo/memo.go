// Package memo provides a small concurrency-safe LRU-ish cache keyed by
// string, shared by the pipeline's per-token hot paths (the frozen Bayes
// classifier and the concept-instance matcher). Template-generated corpora
// repeat the same token texts across thousands of documents, so memoizing a
// pure per-token computation turns the dominant inner loop into a hash
// lookup.
//
// The cache is sharded to keep lock contention negligible when the build
// paths run one converter goroutine per core, and eviction is CLOCK
// (second-chance): cheaper than a linked-list LRU, with the same "recently
// used entries survive" behaviour the workload needs. Values must be
// immutable once inserted — every shard hands the same value to all
// readers.
package memo

import (
	"sync"
)

// shardCount must be a power of two.
const shardCount = 16

// Cache is a fixed-capacity concurrency-safe string-keyed cache with CLOCK
// eviction. The zero value is unusable; construct with New. A nil *Cache is
// valid and acts as a disabled cache (every Get misses, Add is a no-op), so
// callers can make memoization optional without branching.
type Cache[V any] struct {
	shards [shardCount]shard[V]
}

type shard[V any] struct {
	mu     sync.Mutex
	m      map[string]int // key -> slot index
	slot   []entry[V]     // fixed-size ring of entries
	hand   int            // CLOCK hand
	hits   uint64
	misses uint64
}

type entry[V any] struct {
	key  string
	val  V
	used bool // second-chance bit, set on Get
	live bool
}

// New returns a cache holding at most capacity entries (rounded up so every
// shard holds at least one). A capacity <= 0 returns nil — the disabled
// cache.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + shardCount - 1) / shardCount
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]int, per)
		c.shards[i].slot = make([]entry[V], per)
	}
	return c
}

// fnv1a hashes key for shard selection.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Get returns the cached value for key. The boolean reports a hit. Get on a
// nil cache always misses.
func (c *Cache[V]) Get(key string) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	s := &c.shards[fnv1a(key)&(shardCount-1)]
	s.mu.Lock()
	i, ok := s.m[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	s.slot[i].used = true
	v := s.slot[i].val
	s.mu.Unlock()
	return v, true
}

// Add inserts key -> val, evicting the first entry the CLOCK hand finds
// whose second-chance bit is clear. Re-adding an existing key overwrites
// its value. Add on a nil cache is a no-op.
func (c *Cache[V]) Add(key string, val V) {
	if c == nil {
		return
	}
	s := &c.shards[fnv1a(key)&(shardCount-1)]
	s.mu.Lock()
	if i, ok := s.m[key]; ok {
		s.slot[i].val = val
		s.slot[i].used = true
		s.mu.Unlock()
		return
	}
	// CLOCK sweep: clear used bits until a victim is found. Bounded by two
	// full revolutions (after one revolution every bit is clear).
	for {
		e := &s.slot[s.hand]
		if e.live && e.used {
			e.used = false
			s.hand = (s.hand + 1) % len(s.slot)
			continue
		}
		if e.live {
			delete(s.m, e.key)
		}
		*e = entry[V]{key: key, val: val, live: true}
		s.m[key] = s.hand
		s.hand = (s.hand + 1) % len(s.slot)
		s.mu.Unlock()
		return
	}
}

// Stats is a point-in-time aggregate of a cache's effectiveness — the
// numbers webrevd's /api/stats endpoint and the serve counters report.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats aggregates hit/miss counts and the live entry count across all
// shards. A nil cache reports zeros. Counts are maintained under the
// per-shard lock the hot path already takes, so tracking costs nothing
// extra in synchronization.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of live entries across all shards.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
