package pathindex

import (
	"reflect"
	"testing"

	"webrev/internal/dom"
)

func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

func docs() []*dom.Node {
	return []*dom.Node{
		el("resume",
			el("contact"),
			el("education", el("degree"), el("date")),
		),
		el("resume",
			el("education", el("degree")),
			el("skills"),
		),
	}
}

func TestBuildAndLookup(t *testing.T) {
	ix := Build(docs())
	if ix.Docs() != 2 {
		t.Fatalf("docs = %d", ix.Docs())
	}
	refs := ix.Lookup("resume/education/degree")
	if len(refs) != 2 {
		t.Fatalf("refs = %d", len(refs))
	}
	if refs[0].Doc != 0 || refs[1].Doc != 1 {
		t.Fatalf("doc order: %+v", refs)
	}
	if refs[0].Node.Tag != "degree" {
		t.Fatalf("wrong node: %s", refs[0].Node.Label())
	}
	if len(ix.Lookup("resume/nothere")) != 0 {
		t.Fatal("phantom path")
	}
}

func TestPaths(t *testing.T) {
	ix := Build(docs())
	want := []string{
		"resume",
		"resume/contact",
		"resume/education",
		"resume/education/date",
		"resume/education/degree",
		"resume/skills",
	}
	if got := ix.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v", got)
	}
}

func TestPathsEndingIn(t *testing.T) {
	ix := Build([]*dom.Node{
		el("resume", el("education", el("date")), el("courses", el("date"))),
	})
	got := ix.PathsEndingIn("date")
	want := []string{"resume/courses/date", "resume/education/date"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v", got)
	}
	if len(ix.PathsEndingIn("zzz")) != 0 {
		t.Fatal("phantom label")
	}
}

func TestDocFrequency(t *testing.T) {
	ix := Build(docs())
	if f := ix.DocFrequency("resume/education/degree"); f != 2 {
		t.Fatalf("freq = %d", f)
	}
	if f := ix.DocFrequency("resume/contact"); f != 1 {
		t.Fatalf("freq = %d", f)
	}
	// Multiple occurrences in one document count once.
	ix2 := Build([]*dom.Node{el("r", el("x"), el("x"), el("x"))})
	if f := ix2.DocFrequency("r/x"); f != 1 {
		t.Fatalf("freq = %d", f)
	}
}

func TestAvgPosition(t *testing.T) {
	ix := Build(docs())
	// education is child 1 in doc0 and child 0 in doc1.
	if p, ok := ix.AvgPosition("resume/education"); !ok || p != 0.5 {
		t.Fatalf("avg pos = %v,%v", p, ok)
	}
	if _, ok := ix.AvgPosition("no/such"); ok {
		t.Fatal("phantom position")
	}
}

func TestNonElementNodesIgnored(t *testing.T) {
	r := el("resume")
	r.AppendChild(dom.NewText("hello"))
	r.AppendChild(el("contact"))
	ix := Build([]*dom.Node{r})
	refs := ix.Lookup("resume/contact")
	if len(refs) != 1 || refs[0].Pos != 0 {
		t.Fatalf("text node should not shift element positions: %+v", refs)
	}
}

func BenchmarkBuild(b *testing.B) {
	ds := docs()
	for i := 0; i < 6; i++ {
		ds = append(ds, ds...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ds)
	}
}
