// Package pathindex implements the index structure the paper sketches in
// §3.3: "for each path and node, the index contains pointers to the
// positions in XML documents that contain that node. Such an index structure
// can easily be built while the set paths is computed for each XML
// document." The index serves both the ordering rule (average child
// positions without re-walking every tree) and the query engine in
// internal/query.
package pathindex

import (
	"sort"

	"webrev/internal/dom"
	"webrev/internal/schema"
)

// Ref points to one occurrence of a label path: the node itself plus its
// document and child position.
type Ref struct {
	Doc  int // index into the corpus the index was built from
	Node *dom.Node
	Pos  int // child position among the parent's element children
}

// Index maps label paths to their occurrences across a corpus.
type Index struct {
	docs    int
	byPath  map[string][]Ref
	byLabel map[string]map[string]bool // last label -> set of full paths
	docFreq map[string]int             // path -> distinct containing documents
}

// Build indexes the given document trees. Only element nodes participate.
func Build(docs []*dom.Node) *Index {
	ix := &Index{
		docs:    len(docs),
		byPath:  make(map[string][]Ref),
		byLabel: make(map[string]map[string]bool),
	}
	for i, d := range docs {
		ix.addTree(i, d, "", 0)
	}
	// Precompute document frequencies: refs for a path are appended in
	// non-decreasing document order, so distinct documents are the
	// transitions — one pass here replaces a map allocation per
	// DocFrequency call.
	ix.docFreq = make(map[string]int, len(ix.byPath))
	for p, refs := range ix.byPath {
		ix.docFreq[p] = countDocs(refs)
	}
	return ix
}

// countDocs counts distinct Doc values in refs, which are sorted by Doc
// (indexing appends documents in order).
func countDocs(refs []Ref) int {
	n, last := 0, -1
	for _, r := range refs {
		if r.Doc != last {
			n++
			last = r.Doc
		}
	}
	return n
}

func (ix *Index) addTree(doc int, n *dom.Node, prefix string, pos int) {
	if n.Type != dom.ElementNode {
		return
	}
	path := n.Tag
	if prefix != "" {
		path = prefix + schema.Sep + n.Tag
	}
	ix.byPath[path] = append(ix.byPath[path], Ref{Doc: doc, Node: n, Pos: pos})
	set := ix.byLabel[n.Tag]
	if set == nil {
		set = make(map[string]bool)
		ix.byLabel[n.Tag] = set
	}
	set[path] = true
	i := 0
	for _, c := range n.Children {
		if c.Type != dom.ElementNode {
			continue
		}
		ix.addTree(doc, c, path, i)
		i++
	}
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return ix.docs }

// Paths returns every indexed label path, sorted.
func (ix *Index) Paths() []string {
	out := make([]string, 0, len(ix.byPath))
	for p := range ix.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Lookup returns all occurrences of the exact label path, in indexing order
// (document, then document order).
func (ix *Index) Lookup(path string) []Ref { return ix.byPath[path] }

// PathsEndingIn returns the indexed paths whose final label is label,
// sorted — the expansion step for descendant ("//") queries.
func (ix *Index) PathsEndingIn(label string) []string {
	set := ix.byLabel[label]
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DocFrequency returns the number of distinct documents containing the
// path — the support numerator of §3.2 served from the index. Frequencies
// are precomputed at Build; a call allocates nothing.
func (ix *Index) DocFrequency(path string) int {
	return ix.docFreq[path]
}

// AvgPosition returns the mean child position of the path's occurrences —
// the ordering rule's statistic (§3.3) computed from index pointers.
func (ix *Index) AvgPosition(path string) (float64, bool) {
	refs := ix.byPath[path]
	if len(refs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, r := range refs {
		sum += float64(r.Pos)
	}
	return sum / float64(len(refs)), true
}
