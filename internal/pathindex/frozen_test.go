package pathindex

import (
	"reflect"
	"sync"
	"testing"
)

// TestFrozenAgreesWithIndex pins that every read the frozen form answers
// is identical to the mutable index it was frozen from.
func TestFrozenAgreesWithIndex(t *testing.T) {
	ix := Build(docs())
	f := ix.Freeze()
	if f.Docs() != ix.Docs() {
		t.Fatalf("docs = %d; want %d", f.Docs(), ix.Docs())
	}
	if got, want := f.Paths(), ix.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths = %v; want %v", got, want)
	}
	for _, p := range ix.Paths() {
		if got, want := f.Lookup(p), ix.Lookup(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%s) diverged", p)
		}
		if got, want := f.DocFrequency(p), ix.DocFrequency(p); got != want {
			t.Fatalf("DocFrequency(%s) = %d; want %d", p, got, want)
		}
		gp, gok := f.AvgPosition(p)
		wp, wok := ix.AvgPosition(p)
		if gp != wp || gok != wok {
			t.Fatalf("AvgPosition(%s) = %v,%v; want %v,%v", p, gp, gok, wp, wok)
		}
	}
	for _, label := range []string{"resume", "degree", "date", "zzz"} {
		got, want := f.PathsEndingIn(label), ix.PathsEndingIn(label)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("PathsEndingIn(%s) = %v; want %v", label, got, want)
		}
	}
	if f.Lookup("no/such") != nil {
		t.Fatal("phantom path in frozen index")
	}
	if _, ok := f.AvgPosition("no/such"); ok {
		t.Fatal("phantom position in frozen index")
	}
}

// TestFrozenReadsAllocationFree pins the serving-path property the frozen
// form exists for: lookups, path expansion and doc frequencies allocate
// nothing per call.
func TestFrozenReadsAllocationFree(t *testing.T) {
	f := Build(docs()).Freeze()
	if allocs := testing.AllocsPerRun(50, func() {
		f.Lookup("resume/education/degree")
		f.PathsEndingIn("degree")
		f.DocFrequency("resume/education/degree")
		f.Paths()
		f.AvgPosition("resume/education")
	}); allocs != 0 {
		t.Errorf("frozen reads allocated %.0f objects per run; want 0", allocs)
	}
}

// TestDocFrequencyAllocationFree is the regression test for the per-call
// map[int]bool the old implementation allocated.
func TestDocFrequencyAllocationFree(t *testing.T) {
	ix := Build(docs())
	if allocs := testing.AllocsPerRun(50, func() {
		ix.DocFrequency("resume/education/degree")
		ix.DocFrequency("resume/contact")
		ix.DocFrequency("no/such")
	}); allocs != 0 {
		t.Errorf("DocFrequency allocated %.0f objects per run; want 0", allocs)
	}
}

// TestFrozenConcurrentReads hammers a frozen index from many goroutines;
// run under -race this proves the lock-free read claim.
func TestFrozenConcurrentReads(t *testing.T) {
	ds := docs()
	for i := 0; i < 4; i++ {
		ds = append(ds, ds...)
	}
	f := Build(ds).Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for _, p := range f.Paths() {
					f.Lookup(p)
					f.DocFrequency(p)
				}
				f.PathsEndingIn("degree")
			}
		}()
	}
	wg.Wait()
}

func TestCountDocs(t *testing.T) {
	cases := []struct {
		docs []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{0, 0, 0}, 1},
		{[]int{0, 1, 1, 3}, 3},
		{[]int{2, 2, 5, 7, 7, 7}, 3},
	}
	for _, c := range cases {
		refs := make([]Ref, len(c.docs))
		for i, d := range c.docs {
			refs[i] = Ref{Doc: d}
		}
		if got := countDocs(refs); got != c.want {
			t.Errorf("countDocs(%v) = %d; want %d", c.docs, got, c.want)
		}
	}
}

func BenchmarkFrozenLookup(b *testing.B) {
	f := Build(docs()).Freeze()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Lookup("resume/education/degree")
	}
}

func BenchmarkFreeze(b *testing.B) {
	ds := docs()
	for i := 0; i < 6; i++ {
		ds = append(ds, ds...)
	}
	ix := Build(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Freeze()
	}
}
