package pathindex

import "sort"

// frozenShards must be a power of two. Sixteen shards keep each per-shard
// map small enough that concurrent readers on different cores touch
// disjoint cache lines for most lookups while the whole structure stays
// read-only (Go maps are safe for lock-free concurrent reads).
const frozenShards = 16

// Frozen is an immutable, read-optimized form of an Index, the shape
// webrevd serves queries from. Everything a query evaluation needs is
// precomputed at Freeze time: the sorted path universe, sorted per-label
// path lists (PathsEndingIn on the mutable Index sorts and allocates per
// call), and document frequencies. Ref lookups go through a fixed shard
// table keyed by an FNV-1a hash of the path.
//
// A Frozen is safe for unsynchronized concurrent use. Callers must treat
// every returned slice as read-only — they are the shared precomputed
// forms, not copies.
type Frozen struct {
	docs    int
	shards  [frozenShards]frozenShard
	paths   []string            // all paths, sorted
	byLabel map[string][]string // last label -> sorted full paths
	docFreq map[string]int
}

type frozenShard struct {
	byPath map[string][]Ref
}

// Freeze compiles the index into its immutable serving form. The Refs are
// shared with the source index, which must not be modified afterwards.
func (ix *Index) Freeze() *Frozen {
	f := &Frozen{
		docs:    ix.docs,
		byLabel: make(map[string][]string, len(ix.byLabel)),
		docFreq: make(map[string]int, len(ix.docFreq)),
	}
	perShard := len(ix.byPath)/frozenShards + 1
	for i := range f.shards {
		f.shards[i].byPath = make(map[string][]Ref, perShard)
	}
	f.paths = make([]string, 0, len(ix.byPath))
	for p, refs := range ix.byPath {
		f.paths = append(f.paths, p)
		f.shards[fnv1a(p)&(frozenShards-1)].byPath[p] = refs
		f.docFreq[p] = ix.docFreq[p]
	}
	sort.Strings(f.paths)
	for label, set := range ix.byLabel {
		paths := make([]string, 0, len(set))
		for p := range set {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		f.byLabel[label] = paths
	}
	return f
}

// fnv1a hashes a path for shard selection.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Docs returns the number of indexed documents.
func (f *Frozen) Docs() int { return f.docs }

// Paths returns every indexed label path, sorted. The slice is shared —
// do not modify.
func (f *Frozen) Paths() []string { return f.paths }

// PathsEndingIn returns the indexed paths whose final label is label,
// sorted. Unlike the mutable Index, the list is precomputed: no per-call
// sort or allocation. The slice is shared — do not modify.
func (f *Frozen) PathsEndingIn(label string) []string { return f.byLabel[label] }

// Lookup returns all occurrences of the exact label path, in indexing
// order. The slice is shared — do not modify.
func (f *Frozen) Lookup(path string) []Ref {
	return f.shards[fnv1a(path)&(frozenShards-1)].byPath[path]
}

// DocFrequency returns the number of distinct documents containing the
// path.
func (f *Frozen) DocFrequency(path string) int { return f.docFreq[path] }

// AvgPosition returns the mean child position of the path's occurrences.
func (f *Frozen) AvgPosition(path string) (float64, bool) {
	refs := f.Lookup(path)
	if len(refs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, r := range refs {
		sum += float64(r.Pos)
	}
	return sum / float64(len(refs)), true
}
