package convert

import (
	"strings"
	"testing"

	"webrev/internal/concept"
)

func limitedConverter(t *testing.T, lim Limits) *Converter {
	t.Helper()
	set, err := concept.NewSet(concept.Concept{Name: "skill", Instances: []string{"java", "go"}})
	if err != nil {
		t.Fatal(err)
	}
	return New(set, Options{RootName: "doc", Limits: lim})
}

func TestConvertMaxTokens(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body><p>")
	for i := 0; i < 50; i++ {
		b.WriteString("java; filler text; ")
	}
	b.WriteString("</p></body></html>")

	c := limitedConverter(t, Limits{MaxTokens: 10})
	root, stats := c.Convert(b.String())
	if !stats.Truncated {
		t.Fatal("token limit not reported as truncation")
	}
	if stats.Tokens > 10 {
		t.Fatalf("tokenization produced %d tokens, limit was 10", stats.Tokens)
	}
	// Over-budget text is preserved as val, not dropped.
	all := root.String()
	if !strings.Contains(all, "filler text") {
		t.Fatalf("over-budget text lost from output: %s", all)
	}
}

func TestConvertMaxDOMNodes(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 500; i++ {
		b.WriteString("<p>go</p>")
	}
	b.WriteString("</body></html>")

	c := limitedConverter(t, Limits{MaxDOMNodes: 50})
	_, stats := c.Convert(b.String())
	if !stats.Truncated {
		t.Fatal("DOM node limit not reported as truncation")
	}
	if stats.HTMLNodes > 50 {
		t.Fatalf("parsed %d element nodes, node limit was 50", stats.HTMLNodes)
	}
}

func TestConvertUnlimitedNotTruncated(t *testing.T) {
	c := limitedConverter(t, Limits{})
	_, stats := c.Convert("<html><body><p>java; go</p></body></html>")
	if stats.Truncated {
		t.Fatal("unlimited conversion reported truncation")
	}
	if stats.Tokens == 0 {
		t.Fatal("no tokens produced")
	}
}
