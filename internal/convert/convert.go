// Package convert implements the paper's document conversion process (§2.3):
// the transformation of a topic-specific HTML document into an XML document
// whose elements carry concept names and whose structure reflects the
// logical — rather than visual — layout of the original.
//
// Four restructuring rules run in order:
//
//  1. Tokenization rule (text rule): each text node is decomposed at
//     punctuation delimiters into TOKEN nodes.
//  2. Concept instance rule (text rule): each token is related to a concept
//     by synonym matching and/or a multinomial Bayes classifier; identified
//     tokens become <concept val="..."/> elements, unidentified token text
//     is passed to the parent's val attribute so no information is lost.
//  3. Grouping rule (structure rule): runs of block-level "group tags" at
//     the same level collect their following siblings into GROUP nodes that
//     sink below them, recovering logical nesting from visual sectioning.
//  4. Consolidation rule (structure rule): bottom-up elimination of all
//     remaining HTML markup — list-structured or uniform children are
//     pushed up, otherwise a node is replaced by its first concept child.
//
// The result contains only XML elements named after concepts.
package convert

import (
	"strings"
	"sync"

	"webrev/internal/bayes"
	"webrev/internal/concept"
	"webrev/internal/dom"
	"webrev/internal/htmlparse"
	"webrev/internal/obs"
	"webrev/internal/tidy"
)

// TokenTag is the temporary element name produced by the tokenization rule.
const TokenTag = "TOKEN"

// GroupTag is the temporary element name produced by the grouping rule.
const GroupTag = "GROUP"

// Options configures a Converter. The zero value is completed by
// applyDefaults with the paper's §4 settings.
type Options struct {
	// Delimiters are the punctuation bytes used by the tokenization rule.
	// Default: ";" "," ":" "·" (the paper's set).
	Delimiters string
	// GroupTags maps HTML group tags to their grouping weight; higher
	// weights group first (the paper gives h1 priority over p). Defaults to
	// the paper's annotation: headings, div, p, tr, dt, dd, li, title, u,
	// strong, b, em, i.
	GroupTags map[string]int
	// ListTags are HTML elements "known to exhibit a list structure" whose
	// children are objects of the same abstraction level. Defaults to the
	// paper's: body, table, dl, ul, ol, dir, menu.
	ListTags map[string]bool
	// RootName is the element name of the produced XML document root, e.g.
	// "resume".
	RootName string
	// Classifier, when non-nil and trained, identifies tokens the synonym
	// matcher misses.
	Classifier *bayes.Classifier
	// Constraints, when non-nil, guide consolidation (e.g. preferring title
	// concepts as group heads). Optional, per §2.2.
	Constraints *concept.Constraints
	// SkipTidy disables the HTML cleansing pass (§2.4) before conversion.
	SkipTidy bool
	// SkipGrouping disables the grouping rule (§2.3.2), for ablation: only
	// text rules and consolidation run, so visual sectioning is never
	// recovered into nesting.
	SkipGrouping bool
	// Limits bounds the work one document may consume; over-limit input is
	// truncated rather than failed (Stats.Truncated reports it). The zero
	// value is unlimited.
	Limits Limits
	// Tracer receives sub-spans (convert.tokenize, convert.classify,
	// convert.group, convert.consolidate) and token/concept counters. Nil
	// means the no-op tracer: conversion pays nothing for instrumentation.
	Tracer obs.Tracer
}

// DefaultGroupTags returns the paper's group-tag annotation with weights:
// heading levels dominate structural blocks, which dominate inline emphasis.
func DefaultGroupTags() map[string]int {
	return map[string]int{
		"h1": 100, "h2": 95, "h3": 90, "h4": 85, "h5": 80, "h6": 75,
		"title": 70,
		"div":   60, "p": 55, "tr": 50, "dt": 45, "dd": 40, "li": 35,
		"u": 20, "strong": 18, "b": 16, "em": 14, "i": 12,
	}
}

// DefaultListTags returns the paper's list-tag annotation.
func DefaultListTags() map[string]bool {
	return map[string]bool{
		"body": true, "table": true, "dl": true, "ul": true, "ol": true,
		"dir": true, "menu": true,
	}
}

func (o Options) applyDefaults() Options {
	if o.Delimiters == "" {
		o.Delimiters = ";,:·"
	}
	if o.GroupTags == nil {
		o.GroupTags = DefaultGroupTags()
	}
	if o.ListTags == nil {
		o.ListTags = DefaultListTags()
	}
	if o.RootName == "" {
		o.RootName = "document"
	}
	o.Tracer = obs.OrNop(o.Tracer)
	return o
}

// Sub-span names of one document conversion, recorded on Options.Tracer.
const (
	SpanParse       = "convert.parse"       // HTML parsing + tidy cleansing
	SpanTokenize    = "convert.tokenize"    // tokenization + concept instance rules
	SpanClassify    = "convert.classify"    // Bayes classifier invocations
	SpanGroup       = "convert.group"       // grouping rule
	SpanConsolidate = "convert.consolidate" // consolidation rule
)

// Limits bounds what one document's conversion may consume, so a single
// pathological page (a machine-generated million-node table, a degenerate
// thousand-deep nesting, an unbounded text blob) degrades gracefully
// instead of stalling the pipeline. Zero fields are unlimited.
type Limits struct {
	// MaxDOMNodes caps the parsed DOM's node count; input past the cap is
	// dropped (htmlparse.Limits.MaxNodes).
	MaxDOMNodes int
	// MaxDepth caps the parsed DOM's element nesting depth
	// (htmlparse.Limits.MaxDepth).
	MaxDepth int
	// MaxTokens caps the tokens produced by the tokenization rule; text
	// past the cap folds into parent vals uninspected.
	MaxTokens int
}

// active reports whether any limit is set.
func (l Limits) active() bool {
	return l.MaxDOMNodes > 0 || l.MaxDepth > 0 || l.MaxTokens > 0
}

// Stats reports conversion measurements, including the identified /
// unidentifiable token ratio the paper recommends as user feedback (§2.3.1).
type Stats struct {
	Tokens             int // tokens produced by the tokenization rule
	IdentifiedTokens   int // tokens related to at least one concept
	UnidentifiedTokens int // tokens passed to parent val
	ConceptNodes       int // concept elements in the result
	HTMLNodes          int // element nodes in the parsed input
	// Truncated reports that a configured limit (Options.Limits) cut the
	// document short: the result covers only the prefix within budget.
	Truncated bool
}

// IdentifiedRatio returns the fraction of tokens related to a concept.
func (s Stats) IdentifiedRatio() float64 {
	if s.Tokens == 0 {
		return 0
	}
	return float64(s.IdentifiedTokens) / float64(s.Tokens)
}

// Converter transforms HTML documents into concept-tagged XML documents.
// A Converter is safe for concurrent use: per-document scratch state lives
// in pools, and the classifier is consulted through its frozen snapshot,
// which all worker shards share (see bayes.Frozen).
type Converter struct {
	set  *concept.Set
	opts Options
	// delim is Options.Delimiters compiled to a byte table: the
	// tokenization rule tests every input byte against it.
	delim [256]bool
}

// New returns a Converter over the given concept set. opts zero fields are
// filled with the paper's defaults. When opts.Classifier is trained, its
// log-probability tables are frozen here, once, so the per-token
// classification in every worker shard is pure table lookups over shared
// state.
func New(set *concept.Set, opts Options) *Converter {
	c := &Converter{set: set, opts: opts.applyDefaults()}
	for i := 0; i < len(c.opts.Delimiters); i++ {
		c.delim[c.opts.Delimiters[i]] = true
	}
	if c.opts.Classifier != nil {
		// Warm the frozen snapshot so the first converted document does
		// not pay the freeze; later Train calls re-freeze lazily.
		c.opts.Classifier.Freeze()
	}
	return c
}

// scratch holds the per-document reusable buffers of one conversion.
type scratch struct {
	toks  []string    // tokenization rule output
	texts []*dom.Node // collected text nodes
	kids  []*dom.Node // consolidation child snapshot
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Convert parses, cleans and restructures the HTML source into an XML
// document tree rooted at an element named opts.RootName.
func (c *Converter) Convert(htmlSrc string) (*dom.Node, Stats) {
	sp := c.opts.Tracer.StartSpan(SpanParse)
	doc, truncated := htmlparse.ParseLimited(htmlSrc, htmlparse.Limits{
		MaxNodes: c.opts.Limits.MaxDOMNodes,
		MaxDepth: c.opts.Limits.MaxDepth,
	})
	if !c.opts.SkipTidy {
		tidy.Clean(doc)
	}
	sp.End()
	body := doc.FindElement("body")
	if body == nil {
		body = doc
	}
	root, stats := c.ConvertTree(body)
	stats.Truncated = stats.Truncated || truncated
	return root, stats
}

// ConvertTree restructures an already parsed (and optionally cleaned) HTML
// subtree. The input tree is consumed: its nodes are rearranged into the
// result.
func (c *Converter) ConvertTree(body *dom.Node) (*dom.Node, Stats) {
	var stats Stats
	stats.HTMLNodes = body.CountElements()
	tr := c.opts.Tracer

	sp := tr.StartSpan(SpanTokenize)
	c.applyTextRules(body, &stats)
	sp.End()
	if !c.opts.SkipGrouping {
		sp = tr.StartSpan(SpanGroup)
		c.applyGroupingRule(body)
		sp.End()
	}
	sp = tr.StartSpan(SpanConsolidate)
	root := dom.NewElement(c.opts.RootName)
	c.consolidate(body, root)
	sp.End()
	// Whatever val accumulated on the consumed body/document belongs to the
	// root.
	root.AppendVal(body.Val())
	stats.ConceptNodes = countConcepts(root, c.set)
	if tr.Enabled() {
		tr.Add(obs.CtrTokens, int64(stats.Tokens))
		tr.Add(obs.CtrTokensIdent, int64(stats.IdentifiedTokens))
		tr.Add(obs.CtrTokensUnident, int64(stats.UnidentifiedTokens))
		tr.Add(obs.CtrConceptNodes, int64(stats.ConceptNodes))
	}
	return root, stats
}

func countConcepts(root *dom.Node, set *concept.Set) int {
	n := 0
	if root.Type == dom.ElementNode && set.Has(root.Tag) {
		n++
	}
	for _, ch := range root.Children {
		n += countConcepts(ch, set)
	}
	return n
}

// ---------------------------------------------------------------------------
// Text rules (§2.3.1)
// ---------------------------------------------------------------------------

// Tokenize splits a topic sentence at the configured delimiters, trimming
// whitespace and dropping empty tokens. Exposed for tests and the paper's
// TOKEN-node semantics.
func (c *Converter) Tokenize(text string) []string {
	return c.appendTokens(nil, text)
}

// appendTokens is Tokenize into a caller-owned buffer: the tokens (always
// sub-slices of text) are appended to dst, so a recycled dst makes the
// tokenization rule allocation-free.
func (c *Converter) appendTokens(dst []string, text string) []string {
	start := 0
	for i := 0; i < len(text); i++ {
		if c.delim[text[i]] {
			if tok := strings.TrimSpace(text[start:i]); tok != "" {
				dst = append(dst, tok)
			}
			start = i + 1
		}
	}
	if tok := strings.TrimSpace(text[start:]); tok != "" {
		dst = append(dst, tok)
	}
	return dst
}

// applyTextRules runs the tokenization and concept instance rules top-down,
// replacing every text node with concept elements and folding unidentified
// text into parent val attributes. Both the collected-text-node slice and
// the per-node token slice come from a pooled scratch, so the rule
// allocates only for the concept elements it creates.
func (c *Converter) applyTextRules(root *dom.Node, stats *Stats) {
	sc := scratchPool.Get().(*scratch)
	texts := root.FindAllAppend(sc.texts[:0], func(n *dom.Node) bool { return n.Type == dom.TextNode })
	toks := sc.toks
	for _, tn := range texts {
		parent := tn.Parent
		if parent == nil {
			continue
		}
		at := parent.ChildIndex(tn)
		tn.Detach()
		toks = c.appendTokens(toks[:0], tn.Text)
		for _, tok := range toks {
			if max := c.opts.Limits.MaxTokens; max > 0 && stats.Tokens >= max {
				// Token budget exhausted: the rest of the document's text
				// folds into parent vals uninspected, preserving the
				// information without paying for concept matching.
				stats.Truncated = true
				parent.AppendVal(tok)
				continue
			}
			stats.Tokens++
			nodes := c.applyInstanceRule(tok, parent, stats)
			for _, nd := range nodes {
				parent.InsertChildAt(at, nd)
				at++
			}
		}
	}
	// Drop references into the converted document before pooling the
	// scratch, so a recycled buffer does not pin the previous tree.
	clear(texts)
	clear(toks)
	sc.texts, sc.toks = texts[:0], toks[:0]
	scratchPool.Put(sc)
}

// applyInstanceRule implements the concept instance rule for one token:
// it returns the replacement elements (possibly none) and folds unmatched
// text into parent's val.
func (c *Converter) applyInstanceRule(tok string, parent *dom.Node, stats *Stats) []*dom.Node {
	matches := c.set.FindAll(tok)
	if len(matches) == 0 && c.opts.Classifier != nil {
		// Freeze is an atomic load after the first call; every worker
		// shard shares the same compiled tables and token memo.
		if f := c.opts.Classifier.Freeze(); f.Trained() {
			sp := c.opts.Tracer.StartSpan(SpanClassify)
			class, _ := f.Classify(tok)
			sp.End()
			if class != bayes.Unknown && c.set.Has(class) {
				stats.IdentifiedTokens++
				c.opts.Tracer.Add(obs.CtrClassifierHits, 1)
				el := dom.NewElement(class)
				el.SetVal(tok)
				return []*dom.Node{el}
			}
		}
	}
	switch len(matches) {
	case 0:
		// Case 2: no concept instance — token node deleted, text passed to
		// the parent as val.
		stats.UnidentifiedTokens++
		parent.AppendVal(tok)
		return nil
	case 1:
		// Case 1: the whole token becomes <C val="token"/>.
		stats.IdentifiedTokens++
		el := dom.NewElement(matches[0].Concept)
		el.SetVal(tok)
		return []*dom.Node{el}
	default:
		// More than one instance: decompose. Text before the first instance
		// goes to the parent val; each instance claims text up to the next
		// instance (the last claims the remainder).
		stats.IdentifiedTokens++
		if pre := strings.TrimSpace(tok[:matches[0].Start]); pre != "" {
			parent.AppendVal(pre)
		}
		out := make([]*dom.Node, 0, len(matches))
		for i, m := range matches {
			end := len(tok)
			if i+1 < len(matches) {
				end = matches[i+1].Start
			}
			el := dom.NewElement(m.Concept)
			el.SetVal(strings.TrimSpace(tok[m.Start:end]))
			out = append(out, el)
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Grouping rule (§2.3.2)
// ---------------------------------------------------------------------------

// applyGroupingRule operates top-down: at every level, the highest-weight
// group tag present among the children partitions its following siblings
// into GROUP nodes that become children of the marker nodes.
func (c *Converter) applyGroupingRule(n *dom.Node) {
	c.groupLevel(n)
	// groupLevel has already rewritten n.Children; the recursion below
	// only restructures each child's own subtree, so n.Children is stable
	// and needs no defensive copy.
	for _, k := range n.Children {
		if k.Type == dom.ElementNode {
			c.applyGroupingRule(k)
		}
	}
}

// emphasisTags are text-level elements whose presence as the sole content
// of a block signals a heading-like marker (visual clue: authors who avoid
// heading elements bold their section titles instead).
var emphasisTags = map[string]bool{
	"b": true, "strong": true, "u": true, "em": true, "i": true,
	"big": true, "font": true,
}

// groupLevel applies one grouping pass to the children of n. Grouping by
// the dominant effective tag sinks the intervening siblings; lower-weight
// tags are handled when recursion reaches the new GROUP nodes.
func (c *Converter) groupLevel(n *dom.Node) {
	mark := c.dominantGroupTag(n)
	if mark == "" {
		return
	}
	// Partition: children before the first marker stay; for each marker, the
	// siblings up to the next marker form its GROUP.
	var result []*dom.Node
	i := 0
	for i < len(n.Children) && c.effectiveTag(n.Children[i]) != mark {
		result = append(result, n.Children[i])
		i++
	}
	for i < len(n.Children) {
		marker := n.Children[i]
		i++
		var between []*dom.Node
		for i < len(n.Children) && c.effectiveTag(n.Children[i]) != mark {
			between = append(between, n.Children[i])
			i++
		}
		result = append(result, marker)
		if len(between) > 0 {
			g := dom.NewElement(GroupTag)
			for _, b := range between {
				b.Parent = g
				g.Children = append(g.Children, b)
			}
			g.Parent = marker
			marker.Children = append(marker.Children, g)
		}
	}
	n.Children = result
}

// effectiveTag returns the grouping identity of a child: its own tag, or
// "tag:emphasis" when the block's only element child is an emphasis element
// (e.g. <p><b>Education</b></p> acts as a bold-heading marker distinct from
// plain <p> siblings). Concept elements have no grouping identity: they are
// data, not markup — even when a concept name collides with an HTML tag
// name (the job-title concept vs <title>).
func (c *Converter) effectiveTag(ch *dom.Node) string {
	if ch.Type != dom.ElementNode || c.set.Has(ch.Tag) {
		return ""
	}
	if len(ch.Children) == 1 {
		only := ch.Children[0]
		if only.Type == dom.ElementNode && emphasisTags[only.Tag] && !c.set.Has(only.Tag) {
			return ch.Tag + ":emphasis"
		}
	}
	return ch.Tag
}

// tagWeight returns the grouping weight of an effective tag; promoted
// emphasis markers outrank their plain block siblings.
func (c *Converter) tagWeight(eff string) (int, bool) {
	if base, found := strings.CutSuffix(eff, ":emphasis"); found {
		w, ok := c.opts.GroupTags[base]
		if !ok {
			return 0, false
		}
		return w + 10, true
	}
	w, ok := c.opts.GroupTags[eff]
	return w, ok
}

// dominantGroupTag returns the highest-weight effective group tag that
// occurs among the element children of n and has something to group, or "".
func (c *Converter) dominantGroupTag(n *dom.Node) string {
	best, bestW := "", -1
	for _, ch := range n.Children {
		eff := c.effectiveTag(ch)
		if eff == "" {
			continue
		}
		if w, ok := c.tagWeight(eff); ok && w > bestW {
			best, bestW = eff, w
		}
	}
	if best == "" {
		return ""
	}
	// Grouping is useful only if at least one non-marker sibling follows the
	// first marker.
	seen := false
	for _, ch := range n.Children {
		if c.effectiveTag(ch) == best {
			seen = true
			continue
		}
		if seen {
			return best
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Consolidation rule (§2.3.2)
// ---------------------------------------------------------------------------

// consolidate eliminates all non-concept markup bottom-up. body's surviving
// children are moved under root.
func (c *Converter) consolidate(body, root *dom.Node) {
	c.consolidateNode(body)
	// body is itself a list tag ("body" is in the paper's list-tag set): its
	// children are objects of the same level and become the root's children.
	root.AdoptChildren(body)
}

// isConceptNode reports whether n is an XML element carrying a concept name.
func (c *Converter) isConceptNode(n *dom.Node) bool {
	return n.Type == dom.ElementNode && c.set.Has(n.Tag)
}

// consolidateNode processes n's children recursively, then removes
// non-concept children of n according to the consolidation rule.
func (c *Converter) consolidateNode(n *dom.Node) {
	// The recursion mutates only each child's own subtree, never
	// n.Children, so it iterates in place.
	for _, k := range n.Children {
		c.consolidateNode(k)
	}
	// Now every grandchild level below n is consolidated; fold each
	// non-concept child of n. Folding rewrites n.Children (detach, splice,
	// replace), so this loop runs over a snapshot — stack-buffered, which
	// makes it allocation-free for the typical fan-out.
	var stackBuf [16]*dom.Node
	kids := append(stackBuf[:0], n.Children...)
	for _, k := range kids {
		if k.Parent != n || k.Type != dom.ElementNode || c.isConceptNode(k) {
			continue
		}
		c.foldMarkupNode(k)
	}
}

// foldMarkupNode eliminates one non-concept element whose descendants are
// already consolidated (children are concept elements only).
func (c *Converter) foldMarkupNode(k *dom.Node) {
	parent := k.Parent
	if len(k.Children) == 0 {
		// Childless markup: delete, passing its val (unidentified text) up.
		parent.AppendVal(k.Val())
		k.Detach()
		return
	}
	if c.opts.ListTags[k.Tag] || uniformConceptChildren(k) || c.titleSiblings(k) {
		// List structure or uniform children: maintain the sibling
		// relationship by pushing the children up in k's place.
		parent.AppendVal(k.Val())
		k.SpliceUp()
		return
	}
	// Replace k by its first child related to a concept; the remaining
	// children become that child's children (Figure 1). Constraints, when
	// available, prefer a title-role concept as the head.
	head := c.pickHead(k)
	if head == nil {
		// No concept child (pure markup subtree): push everything up.
		parent.AppendVal(k.Val())
		k.SpliceUp()
		return
	}
	// Unidentified text that accumulated on the markup node belongs to the
	// surrounding context, not to the head concept's own value.
	parent.AppendVal(k.Val())
	rest := make([]*dom.Node, 0, len(k.Children)-1)
	for _, ch := range k.Children {
		if ch != head {
			rest = append(rest, ch)
		}
	}
	for _, ch := range rest {
		head.AppendChild(ch)
	}
	k.ReplaceWith(head)
}

// pickHead selects the child that replaces a folded markup node: the first
// concept child, except that when role constraints are active a title-role
// concept is preferred over content-role ones (§2.2: constraints can be
// utilized to determine whether a node can become a parent of another).
func (c *Converter) pickHead(k *dom.Node) *dom.Node {
	var first *dom.Node
	for _, ch := range k.Children {
		if !c.isConceptNode(ch) {
			continue
		}
		if first == nil {
			first = ch
		}
		if c.opts.Constraints != nil && c.opts.Constraints.RoleDepth {
			if cc := c.set.Get(ch.Tag); cc != nil && cc.Role == concept.RoleTitle {
				return ch
			}
		}
	}
	return first
}

// titleSiblings reports whether k's concept children include two or more
// title-role concepts. Sections are sibling objects at the same level of
// abstraction, so nesting one under another would violate the sibling
// constraints; the consolidation rule "can also utilize existing concept
// constraints in order to determine whether a node can become a parent or
// sibling of another" (§2.3.2). Content-role orphans between sections ride
// along as siblings rather than swallowing the sections that follow them.
func (c *Converter) titleSiblings(k *dom.Node) bool {
	if c.opts.Constraints == nil || !c.opts.Constraints.RoleDepth {
		return false
	}
	titles := 0
	for _, ch := range k.Children {
		if !c.isConceptNode(ch) {
			return false
		}
		if cc := c.set.Get(ch.Tag); cc != nil && cc.Role == concept.RoleTitle {
			titles++
		}
	}
	return titles >= 2
}

// uniformConceptChildren reports whether k has at least two element children
// and they all carry the same element name ("a more trivial case is when the
// children already carry the same XML element name").
func uniformConceptChildren(k *dom.Node) bool {
	var tag string
	n := 0
	for _, ch := range k.Children {
		if ch.Type != dom.ElementNode {
			return false
		}
		if n == 0 {
			tag = ch.Tag
		} else if ch.Tag != tag {
			return false
		}
		n++
	}
	return n >= 2
}
