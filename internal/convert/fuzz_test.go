package convert_test

import (
	"testing"

	"webrev/internal/concept"
	"webrev/internal/convert"
	"webrev/internal/corpus"
)

// FuzzConvert runs the full conversion pipeline (parse, tidy, tokenize,
// instance rules, grouping, consolidation) on arbitrary HTML. Malformed or
// truncated input must never panic, the result must be a valid tree rooted
// at the configured root concept, and the token accounting must balance.
func FuzzConvert(f *testing.F) {
	g := corpus.New(corpus.Options{Seed: 11})
	seeds := []string{
		"",
		"<h1>Jane Doe</h1><h2>Education</h2><ul><li>MIT, B.S., June 1999</li></ul>",
		"<h2>Experience</h2><p>Acme, Engineer, 1998 - 2000",
		"<h2>Education</h2><h2>Education</h2>", // duplicate sections
		"<ul><li>June 1999<li>GPA 3.9</ul>",
		"<p>no concepts here at all</p>",
		"<table><tr><td>Skills</td><td>Go, SQL</table>",
		"\x00<h1>\xff</h1>",
	}
	for _, r := range g.Corpus(3) {
		seeds = append(seeds, r.HTML)
	}
	if long := g.Resume().HTML; len(long) > 40 {
		seeds = append(seeds, long[:2*len(long)/3])
	}
	for _, s := range seeds {
		f.Add(s)
	}
	set := concept.ResumeSet()
	f.Fuzz(func(t *testing.T, src string) {
		c := convert.New(set, convert.Options{RootName: "resume"})
		root, stats := c.Convert(src)
		if root == nil {
			t.Fatal("Convert returned nil root")
		}
		if err := root.Validate(); err != nil {
			t.Fatalf("Convert produced an invalid tree: %v", err)
		}
		if root.Tag != "resume" {
			t.Fatalf("root = %q, want %q", root.Tag, "resume")
		}
		if stats.Tokens < 0 || stats.IdentifiedTokens < 0 || stats.UnidentifiedTokens < 0 {
			t.Fatalf("negative stats: %+v", stats)
		}
		if stats.IdentifiedTokens+stats.UnidentifiedTokens > stats.Tokens {
			t.Fatalf("token accounting does not balance: %+v", stats)
		}
		if r := stats.IdentifiedRatio(); r < 0 || r > 1 {
			t.Fatalf("IdentifiedRatio out of range: %v (%+v)", r, stats)
		}
	})
}
