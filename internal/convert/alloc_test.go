package convert

import (
	"strings"
	"testing"
)

// TestAppendTokensAllocs pins the pooled tokenizer's allocation behaviour:
// appending tokens into a pre-sized buffer must not allocate, since every
// token is a substring of the input text. A regression here (e.g. someone
// reintroducing strings.Split) multiplies allocations across every text
// node of every converted document.
func TestAppendTokensAllocs(t *testing.T) {
	c := New(testSet(), Options{})
	text := "Alice Smith, B.S. June 1995 University of Somewhere; skills: Go, SQL"
	buf := make([]string, 0, 32)
	allocs := testing.AllocsPerRun(100, func() {
		buf = c.appendTokens(buf[:0], text)
	})
	if allocs != 0 {
		t.Errorf("appendTokens into pre-sized buffer: %v allocs/run, want 0", allocs)
	}
	if len(buf) == 0 {
		t.Fatal("appendTokens produced no tokens")
	}
}

// TestTokenizeMatchesAppendTokens keeps the exported Tokenize wrapper in
// sync with the buffer-reusing path the converter itself uses.
func TestTokenizeMatchesAppendTokens(t *testing.T) {
	c := New(testSet(), Options{})
	for _, text := range []string{
		"", "   ", "one", "a, b; c", strings.Repeat("word ", 50),
	} {
		got := c.appendTokens(nil, text)
		want := c.Tokenize(text)
		if len(got) != len(want) {
			t.Fatalf("appendTokens(%q) = %v, Tokenize = %v", text, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("appendTokens(%q)[%d] = %q, want %q", text, i, got[i], want[i])
			}
		}
	}
}
