package convert

import (
	"reflect"
	"strings"
	"testing"

	"webrev/internal/bayes"
	"webrev/internal/concept"
	"webrev/internal/dom"
)

func testSet() *concept.Set {
	return concept.MustSet(
		concept.Concept{Name: "education", Role: concept.RoleTitle, Instances: []string{"educational background"}},
		concept.Concept{Name: "experience", Role: concept.RoleTitle, Instances: []string{"work experience", "employment"}},
		concept.Concept{Name: "skills", Role: concept.RoleTitle, Instances: []string{"technical skills"}},
		concept.Concept{Name: "institution", Role: concept.RoleContent, Instances: []string{"University", "College"}},
		concept.Concept{Name: "degree", Role: concept.RoleContent, Instances: []string{"B.S.", "M.S.", "Ph.D."}},
		concept.Concept{Name: "date", Role: concept.RoleContent, Instances: []string{"June", "January", "September"}},
		concept.Concept{Name: "gpa", Role: concept.RoleContent, Instances: []string{"GPA"}},
		concept.Concept{Name: "company", Role: concept.RoleContent, Instances: []string{"Inc", "Corp"}},
	)
}

func newConv() *Converter {
	return New(testSet(), Options{RootName: "resume"})
}

// xmlShape renders element structure ignoring val attributes.
func xmlShape(n *dom.Node) string {
	var b strings.Builder
	var walk func(*dom.Node)
	walk = func(m *dom.Node) {
		b.WriteString("(" + m.Tag)
		for _, c := range m.Children {
			walk(c)
		}
		b.WriteString(")")
	}
	walk(n)
	return b.String()
}

func TestTokenize(t *testing.T) {
	c := newConv()
	got := c.Tokenize("University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0")
	want := []string{"University of California at Davis", "B.S.(Computer Science)", "June 1996", "GPA 3.8/4.0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %#v", got)
	}
	if got := c.Tokenize(" ;; , "); got != nil {
		t.Fatalf("empty tokens should be dropped: %#v", got)
	}
	if got := c.Tokenize("no delimiters here"); len(got) != 1 {
		t.Fatalf("single token expected: %#v", got)
	}
}

func TestPaperTopicSentence(t *testing.T) {
	// §2.3.1: the topic sentence yields four sibling elements.
	c := newConv()
	root, stats := c.Convert(`<body><p>University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0</p></body>`)
	var tags []string
	for _, ch := range root.Children {
		tags = append(tags, ch.Tag)
	}
	// p is a lone group tag with nothing to group; consolidation folds it.
	// The four concepts surface as siblings (the first becomes head when p
	// folds via first-child replacement; institution adopts the rest).
	all := root.FindAll(func(n *dom.Node) bool { return n.Type == dom.ElementNode })
	var names []string
	for _, n := range all {
		names = append(names, n.Tag)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"institution", "degree", "date", "gpa"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s in %s (shape %s)", want, joined, xmlShape(root))
		}
	}
	if stats.Tokens != 4 || stats.IdentifiedTokens != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	inst := root.FindElement("institution")
	if inst.Val() != "University of California at Davis" {
		t.Fatalf("institution val = %q", inst.Val())
	}
}

func TestInstanceRuleUnidentifiedPassesToParent(t *testing.T) {
	c := newConv()
	root, stats := c.Convert(`<body><p>totally unrelated text</p></body>`)
	if stats.UnidentifiedTokens != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if root.Val() != "totally unrelated text" {
		t.Fatalf("val lost: root=%s", root.String())
	}
}

func TestInstanceRuleMultipleConceptsInToken(t *testing.T) {
	// No delimiters between instances: token must be decomposed, text before
	// the first instance goes to the parent.
	c := newConv()
	root, _ := c.Convert(`<body><p>prefix University of Davis B.S. Computer Science</p></body>`)
	inst := root.FindElement("institution")
	deg := root.FindElement("degree")
	if inst == nil || deg == nil {
		t.Fatalf("decomposition failed: %s", root.String())
	}
	if inst.Val() != "University of Davis" {
		t.Fatalf("institution val = %q", inst.Val())
	}
	if deg.Val() != "B.S. Computer Science" {
		t.Fatalf("degree val = %q", deg.Val())
	}
	if !strings.Contains(root.Val(), "prefix") {
		t.Fatalf("prefix text lost: root val = %q", root.Val())
	}
}

func TestGroupingRuleSinksSections(t *testing.T) {
	// Two h2 sections: content between them must sink under the first.
	c := newConv()
	src := `<body>
<h2>Education</h2>
<p>University of California, B.S., June 1996</p>
<h2>Work Experience</h2>
<p>Acme Inc, January 1998</p>
</body>`
	root, _ := c.Convert(src)
	edu := root.FindElement("education")
	exp := root.FindElement("experience")
	if edu == nil || exp == nil {
		t.Fatalf("sections missing: %s", xmlShape(root))
	}
	if edu.FindElement("institution") == nil || edu.FindElement("degree") == nil || edu.FindElement("date") == nil {
		t.Fatalf("education children wrong: %s", edu.String())
	}
	if exp.FindElement("company") == nil {
		t.Fatalf("experience children wrong: %s", exp.String())
	}
	if edu.FindElement("company") != nil {
		t.Fatalf("company leaked into education: %s", edu.String())
	}
}

func TestPaperFigure1Consolidation(t *testing.T) {
	// Figure 1: <h2>EDUCATION <ul> (GROUP DATE INST DEGREE)(GROUP DATE INST
	// DEGREE) -> EDUCATION with DATE children each holding INST+DEGREE.
	c := newConv()
	src := `<body><h2>Education</h2><ul>` +
		`<li>June 1996; University of California; B.S.</li>` +
		`<li>September 1998; Stanford University; M.S.</li>` +
		`</ul></body>`
	root, _ := c.Convert(src)
	edu := root.FindElement("education")
	if edu == nil {
		t.Fatalf("no education: %s", xmlShape(root))
	}
	dates := edu.FindElements("date")
	if len(dates) != 2 {
		t.Fatalf("dates = %d: %s", len(dates), xmlShape(edu))
	}
	for _, d := range dates {
		if d.FindElement("institution") == nil || d.FindElement("degree") == nil {
			t.Fatalf("date entry lacks inst/degree: %s", d.String())
		}
	}
}

func TestConsolidationUniformChildrenPushUp(t *testing.T) {
	// A ul whose li-entries each reduce to the same concept: the ul node
	// must disappear, keeping the siblings.
	c := newConv()
	src := `<body><h2>Education</h2><ul><li>June 1996</li><li>January 1997</li><li>September 1998</li></ul></body>`
	root, _ := c.Convert(src)
	edu := root.FindElement("education")
	if edu == nil {
		t.Fatalf("no education: %s", xmlShape(root))
	}
	if got := len(edu.FindElements("date")); got != 3 {
		t.Fatalf("dates = %d: %s", got, edu.String())
	}
	if root.FindElement("ul") != nil || root.FindElement("li") != nil || root.FindElement("GROUP") != nil {
		t.Fatalf("markup survived: %s", xmlShape(root))
	}
}

func TestOnlyConceptElementsRemain(t *testing.T) {
	c := newConv()
	set := testSet()
	src := `<body><h1>John Doe</h1><h2>Education</h2><table><tr><td>University of X</td><td>B.S.</td></tr>
<tr><td>College of Y</td><td>M.S.</td></tr></table><h2>Skills</h2><p>Java, C++</p><hr><center>thanks</center></body>`
	root, _ := c.Convert(src)
	var bad []string
	root.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n != root && !set.Has(n.Tag) {
			bad = append(bad, n.Tag)
		}
		return true
	})
	if len(bad) > 0 {
		t.Fatalf("non-concept elements remain: %v in %s", bad, xmlShape(root))
	}
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoInformationLoss(t *testing.T) {
	c := newConv()
	src := `<body><h2>Education</h2><p>University of California, B.S., June 1996, GPA 3.8, random remark</p>
<p>stray paragraph with no concepts at all</p></body>`
	root, _ := c.Convert(src)
	text := strings.Join(root.AllText(), " ")
	for _, frag := range []string{"University of California", "B.S.", "June 1996", "GPA 3.8", "random remark", "stray paragraph with no concepts at all"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("lost %q; have %q", frag, text)
		}
	}
}

func TestBayesFallback(t *testing.T) {
	cls := bayes.New()
	cls.Train("Foothill Community", "institution")
	cls.Train("Evergreen Community", "institution")
	cls.Train("random words here", "education")
	c := New(testSet(), Options{RootName: "resume", Classifier: cls})
	root, stats := c.Convert(`<body><p>Foothill Community of Anywhere</p></body>`)
	if root.FindElement("institution") == nil {
		t.Fatalf("classifier fallback failed: %s (stats %+v)", root.String(), stats)
	}
	if stats.IdentifiedTokens != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestConstraintsPreferTitleHead(t *testing.T) {
	// Without role constraints the first concept child heads the section;
	// with them, a title concept is preferred even when not first.
	set := testSet()
	src := `<body><h2>June 1996 Education</h2><p>University of X</p></body>`
	plain := New(set, Options{RootName: "resume"})
	r1, _ := plain.Convert(src)
	cons := New(set, Options{RootName: "resume", Constraints: concept.ResumeConstraints()})
	r2, _ := cons.Convert(src)
	// In the constrained run education must dominate date.
	edu := r2.FindElement("education")
	if edu == nil {
		t.Fatalf("education missing: %s", xmlShape(r2))
	}
	if e := r2.FindElement("date"); e != nil && e.FindElement("education") != nil {
		t.Fatalf("date dominates education despite constraints: %s", xmlShape(r2))
	}
	_ = r1 // plain variant exercised for coverage of the default path
}

func TestStatsRatioAndCounts(t *testing.T) {
	c := newConv()
	_, stats := c.Convert(`<body><p>University, nonsense, B.S.</p></body>`)
	if stats.Tokens != 3 || stats.IdentifiedTokens != 2 || stats.UnidentifiedTokens != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if r := stats.IdentifiedRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("ratio = %v", r)
	}
	var zero Stats
	if zero.IdentifiedRatio() != 0 {
		t.Fatal("zero stats ratio should be 0")
	}
}

func TestEmptyDocument(t *testing.T) {
	c := newConv()
	root, stats := c.Convert("")
	if root.Tag != "resume" || len(root.Children) != 0 {
		t.Fatalf("root = %s", root.String())
	}
	if stats.Tokens != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(testSet(), Options{})
	if c.opts.RootName != "document" || c.opts.Delimiters == "" {
		t.Fatalf("defaults not applied: %+v", c.opts)
	}
	if len(DefaultGroupTags()) == 0 || !DefaultListTags()["ul"] {
		t.Fatal("default tag sets broken")
	}
	if DefaultGroupTags()["h1"] <= DefaultGroupTags()["p"] {
		t.Fatal("h1 must outrank p (paper §2.3.2)")
	}
}

func TestDeeplyNestedFontMarkup(t *testing.T) {
	c := newConv()
	src := `<body><h2><b><i><u>Education</u></i></b></h2><p><font size="2">University of Z, B.S.</font></p></body>`
	root, _ := c.Convert(src)
	edu := root.FindElement("education")
	if edu == nil {
		t.Fatalf("education not recovered through font markup: %s", xmlShape(root))
	}
	if edu.FindElement("institution") == nil {
		t.Fatalf("institution missing: %s", xmlShape(root))
	}
}

func TestMalformedHTMLStillConverts(t *testing.T) {
	c := newConv()
	src := `<body><h2>Education<p>University of W, B.S.<h2>Employment<p>Acme Inc`
	root, _ := c.Convert(src)
	if root.FindElement("education") == nil || root.FindElement("experience") == nil {
		t.Fatalf("sections missing from tag soup: %s", xmlShape(root))
	}
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipGroupingFlattens(t *testing.T) {
	src := `<body><h2>Education</h2><p>University of X, B.S.</p><h2>Employment</h2><p>Acme Inc</p></body>`
	with := New(testSet(), Options{RootName: "resume"})
	r1, _ := with.Convert(src)
	if r1.FindElement("education").FindElement("institution") == nil {
		t.Fatalf("grouping should nest: %s", xmlShape(r1))
	}
	without := New(testSet(), Options{RootName: "resume", SkipGrouping: true})
	r2, _ := without.Convert(src)
	edu := r2.FindElement("education")
	if edu != nil && edu.FindElement("institution") != nil {
		t.Fatalf("grouping disabled but nesting recovered: %s", xmlShape(r2))
	}
	// No information lost either way.
	if len(r2.AllText()) == 0 {
		t.Fatal("text lost without grouping")
	}
}

func BenchmarkConvertResume(b *testing.B) {
	c := New(concept.ResumeSet(), Options{RootName: "resume"})
	src := `<html><body><h1>Jane Doe</h1>
<h2>Objective</h2><p>Seeking a software engineer position</p>
<h2>Education</h2><ul>
<li>University of California at Davis, B.S. Computer Science, June 1996, GPA 3.8/4.0</li>
<li>Stanford University, M.S. Computer Science, June 1998</li></ul>
<h2>Experience</h2>
<p><b>Acme Inc</b>, Software Engineer, January 1998 - present. Developed systems in Java, C++.</p>
<h2>Skills</h2><p>Java, C++, Perl, SQL, Unix</p>
</body></html>`
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		c.Convert(src)
	}
}
