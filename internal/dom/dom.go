// Package dom implements the ordered-tree document model shared by the HTML
// and XML sides of the webrev pipeline.
//
// The paper (§2.3) treats an input HTML document as an XML document: an
// ordered tree in which every element carries an attribute named "val" of
// type CDATA. This package provides that tree: typed nodes, attribute
// handling, traversal, and the mutation primitives (append, insert, replace,
// splice, detach) that the restructuring rules in internal/convert are built
// from.
package dom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeType discriminates the kinds of tree nodes.
type NodeType int

// Node types. DocumentNode is the synthetic root produced by parsers;
// ElementNode covers both HTML elements and XML concept elements.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
)

// String returns a short human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DoctypeNode:
		return "doctype"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Attr is a single name/value attribute pair. Order of attributes on a node
// is preserved as authored.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of an ordered document tree. The zero value is not
// directly useful; construct nodes with NewElement, NewText, NewDocument or
// the parsers.
type Node struct {
	Type     NodeType
	Tag      string // element name; lowercase for HTML elements
	Text     string // content for TextNode, CommentNode, DoctypeNode
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// NewDocument returns an empty document root.
func NewDocument() *Node { return &Node{Type: DocumentNode} }

// NewElement returns a parentless element node with the given tag.
func NewElement(tag string) *Node { return &Node{Type: ElementNode, Tag: tag} }

// NewText returns a parentless text node.
func NewText(text string) *Node { return &Node{Type: TextNode, Text: text} }

// NewComment returns a parentless comment node.
func NewComment(text string) *Node { return &Node{Type: CommentNode, Text: text} }

// Elem builds an element with attributes given as alternating name, value
// strings, followed by children. It is a convenience for tests and
// generators; it panics if attrs has odd length.
func Elem(tag string, attrs []string, children ...*Node) *Node {
	if len(attrs)%2 != 0 {
		panic("dom.Elem: attrs must be name/value pairs")
	}
	n := NewElement(tag)
	for i := 0; i < len(attrs); i += 2 {
		n.SetAttr(attrs[i], attrs[i+1])
	}
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets the named attribute, replacing an existing value.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// DeleteAttr removes the named attribute if present.
func (n *Node) DeleteAttr(name string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// ValAttr is the attribute every converted XML element carries (paper §2.3).
const ValAttr = "val"

// Val returns the node's val attribute (empty when absent).
func (n *Node) Val() string { return n.AttrOr(ValAttr, "") }

// SetVal sets the node's val attribute.
func (n *Node) SetVal(v string) { n.SetAttr(ValAttr, v) }

// AppendVal appends text to the node's val attribute, separating existing
// content with a single space. Empty text is a no-op. This implements the
// paper's "pass the text value to the parent node" behaviour without losing
// information.
func (n *Node) AppendVal(text string) {
	text = strings.TrimSpace(text)
	if text == "" {
		return
	}
	cur := n.Val()
	if cur == "" {
		n.SetVal(text)
		return
	}
	n.SetVal(cur + " " + text)
}

// AppendChild adds c as the last child of n, detaching it from any previous
// parent first.
func (n *Node) AppendChild(c *Node) {
	if c == nil {
		panic("dom: AppendChild(nil)")
	}
	c.Detach()
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChildAt inserts c at index i among n's children (0 ≤ i ≤ len).
func (n *Node) InsertChildAt(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("dom: InsertChildAt index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Detach()
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// ChildIndex returns the index of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, ch := range n.Children {
		if ch == c {
			return i
		}
	}
	return -1
}

// RemoveChild removes c from n's children. It panics if c is not a child.
func (n *Node) RemoveChild(c *Node) {
	i := n.ChildIndex(c)
	if i < 0 {
		panic("dom: RemoveChild of non-child")
	}
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
}

// Detach removes n from its parent, if any.
func (n *Node) Detach() {
	if n.Parent != nil {
		n.Parent.RemoveChild(n)
	}
}

// ReplaceWith substitutes repl for n in n's parent's child list. n must have
// a parent. n keeps its children.
func (n *Node) ReplaceWith(repl *Node) {
	p := n.Parent
	if p == nil {
		panic("dom: ReplaceWith on parentless node")
	}
	i := p.ChildIndex(n)
	repl.Detach()
	repl.Parent = p
	p.Children[i] = repl
	n.Parent = nil
}

// SpliceUp replaces n (which must have a parent) with n's own children,
// preserving order. This is the "push up" operation of the consolidation
// rule: the children take n's position among its siblings.
func (n *Node) SpliceUp() {
	p := n.Parent
	if p == nil {
		panic("dom: SpliceUp on parentless node")
	}
	i := p.ChildIndex(n)
	kids := n.Children
	n.Children = nil
	n.Parent = nil
	repl := make([]*Node, 0, len(p.Children)-1+len(kids))
	repl = append(repl, p.Children[:i]...)
	for _, k := range kids {
		k.Parent = p
		repl = append(repl, k)
	}
	repl = append(repl, p.Children[i+1:]...)
	p.Children = repl
}

// AdoptChildren moves all of src's children to the end of n's child list.
func (n *Node) AdoptChildren(src *Node) {
	kids := src.Children
	src.Children = nil
	for _, k := range kids {
		k.Parent = n
		n.Children = append(n.Children, k)
	}
}

// NextSibling returns the sibling immediately after n, or nil.
func (n *Node) NextSibling() *Node {
	if n.Parent == nil {
		return nil
	}
	i := n.Parent.ChildIndex(n)
	if i >= 0 && i+1 < len(n.Parent.Children) {
		return n.Parent.Children[i+1]
	}
	return nil
}

// PrevSibling returns the sibling immediately before n, or nil.
func (n *Node) PrevSibling() *Node {
	if n.Parent == nil {
		return nil
	}
	i := n.Parent.ChildIndex(n)
	if i > 0 {
		return n.Parent.Children[i-1]
	}
	return nil
}

// FirstChild returns n's first child or nil.
func (n *Node) FirstChild() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[0]
}

// Depth returns the number of ancestors of n (root has depth 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n (n itself when parentless).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// parentless.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// Walk visits n and every descendant in document (pre-) order. Returning
// false from fn prunes the subtree below the current node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	// Children may be mutated by fn on a *different* subtree; iterate a copy.
	kids := make([]*Node, len(n.Children))
	copy(kids, n.Children)
	for _, c := range kids {
		if c.Parent == n { // skip nodes detached by earlier visits
			c.Walk(fn)
		}
	}
}

// walkRO is the read-only fast path of Walk: it iterates children in place
// instead of copying them, so it allocates nothing. The visitor must not
// mutate the tree. Every pure query helper (Find, FindAll, CountNodes,
// CountElements, InnerText, AllText) runs on it; Walk keeps the
// copy-per-level semantics for visitors that restructure while walking.
func (n *Node) walkRO(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.walkRO(fn)
	}
}

// WalkPost visits every descendant of n and then n itself (post-order).
func (n *Node) WalkPost(fn func(*Node)) {
	kids := make([]*Node, len(n.Children))
	copy(kids, n.Children)
	for _, c := range kids {
		if c.Parent == n {
			c.WalkPost(fn)
		}
	}
	fn(n)
}

// Find returns the first node in document order (including n) satisfying
// pred, or nil. pred must not mutate the tree.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.walkRO(func(m *Node) bool {
		if found != nil {
			return false
		}
		if pred(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// FindAll returns every node in document order satisfying pred. pred must
// not mutate the tree.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	return n.FindAllAppend(nil, pred)
}

// FindAllAppend appends every node in document order satisfying pred to
// dst and returns the extended slice — the allocation-free variant of
// FindAll for callers that recycle a scratch buffer. pred must not mutate
// the tree.
func (n *Node) FindAllAppend(dst []*Node, pred func(*Node) bool) []*Node {
	n.walkRO(func(m *Node) bool {
		if pred(m) {
			dst = append(dst, m)
		}
		return true
	})
	return dst
}

// FindElement returns the first element with the given tag, or nil.
func (n *Node) FindElement(tag string) *Node {
	return n.Find(func(m *Node) bool { return m.Type == ElementNode && m.Tag == tag })
}

// FindElements returns all elements with the given tag, in document order.
func (n *Node) FindElements(tag string) []*Node {
	return n.FindAll(func(m *Node) bool { return m.Type == ElementNode && m.Tag == tag })
}

// CountNodes returns the number of nodes in the subtree rooted at n.
func (n *Node) CountNodes() int {
	count := 0
	n.walkRO(func(*Node) bool { count++; return true })
	return count
}

// CountElements returns the number of element nodes in the subtree.
func (n *Node) CountElements() int {
	count := 0
	n.walkRO(func(m *Node) bool {
		if m.Type == ElementNode {
			count++
		}
		return true
	})
	return count
}

// InnerText concatenates all descendant text nodes in document order,
// inserting a single space between adjacent pieces, and returns the result
// trimmed.
func (n *Node) InnerText() string {
	var parts []string
	n.walkRO(func(m *Node) bool {
		if m.Type == TextNode {
			t := strings.TrimSpace(m.Text)
			if t != "" {
				parts = append(parts, t)
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

// AllText gathers the text content of the subtree including val attributes,
// used by the no-information-loss invariant tests.
func (n *Node) AllText() []string {
	var parts []string
	n.walkRO(func(m *Node) bool {
		if m.Type == TextNode {
			if t := strings.TrimSpace(m.Text); t != "" {
				parts = append(parts, t)
			}
		}
		if m.Type == ElementNode {
			if v := strings.TrimSpace(m.Val()); v != "" {
				parts = append(parts, v)
			}
		}
		return true
	})
	return parts
}

// Equal reports deep structural equality of the subtrees rooted at n and m:
// same types, tags, text, attributes (order-insensitive) and children.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Type != m.Type || n.Tag != m.Tag || n.Text != m.Text {
		return false
	}
	if !attrsEqual(n.Attrs, m.Attrs) {
		return false
	}
	if len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]Attr, len(a))
	bs := make([]Attr, len(b))
	copy(as, a)
	copy(bs, b)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Validate checks structural integrity of the subtree: every child's Parent
// pointer refers back to its actual parent and no node appears twice. It
// returns a descriptive error for the first violation found.
func (n *Node) Validate() error {
	seen := make(map[*Node]bool)
	var check func(*Node) error
	check = func(m *Node) error {
		if seen[m] {
			return fmt.Errorf("dom: node %s appears twice in tree", m.Label())
		}
		seen[m] = true
		for _, c := range m.Children {
			if c.Parent != m {
				return fmt.Errorf("dom: child %s of %s has wrong parent pointer", c.Label(), m.Label())
			}
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(n)
}

// Label returns a short identifying string for diagnostics: the tag for
// elements, a truncated quoted text for text nodes.
func (n *Node) Label() string {
	switch n.Type {
	case ElementNode:
		return "<" + n.Tag + ">"
	case TextNode:
		t := n.Text
		if len(t) > 20 {
			t = t[:20] + "..."
		}
		return fmt.Sprintf("%q", t)
	case DocumentNode:
		return "#document"
	case CommentNode:
		return "#comment"
	case DoctypeNode:
		return "#doctype"
	}
	return "#unknown"
}

// String renders a compact single-line s-expression of the subtree, mainly
// for tests and debugging.
func (n *Node) String() string {
	var b strings.Builder
	n.writeSexpr(&b)
	return b.String()
}

func (n *Node) writeSexpr(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		fmt.Fprintf(b, "%q", n.Text)
		return
	case CommentNode:
		fmt.Fprintf(b, "<!--%s-->", n.Text)
		return
	case DoctypeNode:
		fmt.Fprintf(b, "<!DOCTYPE %s>", n.Text)
		return
	}
	b.WriteByte('(')
	if n.Type == DocumentNode {
		b.WriteString("#doc")
	} else {
		b.WriteString(n.Tag)
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.writeSexpr(b)
	}
	b.WriteByte(')')
}
