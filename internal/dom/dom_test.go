package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNodeTypeString(t *testing.T) {
	cases := map[NodeType]string{
		DocumentNode: "document",
		ElementNode:  "element",
		TextNode:     "text",
		CommentNode:  "comment",
		DoctypeNode:  "doctype",
		NodeType(42): "NodeType(42)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("NodeType(%d).String() = %q, want %q", int(ty), got, want)
		}
	}
}

func TestAttrBasics(t *testing.T) {
	n := NewElement("div")
	if _, ok := n.Attr("class"); ok {
		t.Fatal("attr should be absent")
	}
	n.SetAttr("class", "a")
	if v, ok := n.Attr("class"); !ok || v != "a" {
		t.Fatalf("got %q,%v want a,true", v, ok)
	}
	n.SetAttr("class", "b")
	if v := n.AttrOr("class", "x"); v != "b" {
		t.Fatalf("SetAttr should replace, got %q", v)
	}
	if len(n.Attrs) != 1 {
		t.Fatalf("duplicate attr created: %v", n.Attrs)
	}
	if v := n.AttrOr("id", "fallback"); v != "fallback" {
		t.Fatalf("AttrOr default, got %q", v)
	}
	n.DeleteAttr("class")
	if _, ok := n.Attr("class"); ok {
		t.Fatal("attr should be deleted")
	}
	n.DeleteAttr("missing") // must not panic
}

func TestValAppend(t *testing.T) {
	n := NewElement("education")
	n.AppendVal("")
	if n.Val() != "" {
		t.Fatal("empty append should be no-op")
	}
	n.AppendVal("  Stanford  ")
	if n.Val() != "Stanford" {
		t.Fatalf("got %q", n.Val())
	}
	n.AppendVal("1998")
	if n.Val() != "Stanford 1998" {
		t.Fatalf("got %q", n.Val())
	}
}

func TestAppendInsertRemove(t *testing.T) {
	p := NewElement("ul")
	a := NewElement("li")
	b := NewElement("li")
	c := NewElement("li")
	p.AppendChild(a)
	p.AppendChild(c)
	p.InsertChildAt(1, b)
	if len(p.Children) != 3 || p.Children[1] != b {
		t.Fatalf("insert failed: %v", p.String())
	}
	if b.Parent != p {
		t.Fatal("parent not set")
	}
	if i := p.ChildIndex(b); i != 1 {
		t.Fatalf("ChildIndex = %d", i)
	}
	p.RemoveChild(b)
	if len(p.Children) != 2 || b.Parent != nil {
		t.Fatal("remove failed")
	}
	if i := p.ChildIndex(b); i != -1 {
		t.Fatalf("removed child index = %d", i)
	}
}

func TestAppendChildReparents(t *testing.T) {
	p1 := NewElement("a")
	p2 := NewElement("b")
	c := NewElement("c")
	p1.AppendChild(c)
	p2.AppendChild(c)
	if len(p1.Children) != 0 {
		t.Fatal("child not detached from old parent")
	}
	if c.Parent != p2 {
		t.Fatal("child not attached to new parent")
	}
}

func TestReplaceWith(t *testing.T) {
	p := NewElement("p")
	old := NewText("old")
	neu := NewElement("span")
	p.AppendChild(NewText("x"))
	p.AppendChild(old)
	old.ReplaceWith(neu)
	if p.Children[1] != neu || neu.Parent != p || old.Parent != nil {
		t.Fatalf("replace failed: %s", p.String())
	}
}

func TestSpliceUp(t *testing.T) {
	// (div "a" (group (x) (y)) "b") -> (div "a" (x) (y) "b")
	div := NewElement("div")
	g := NewElement("group")
	x := NewElement("x")
	y := NewElement("y")
	div.AppendChild(NewText("a"))
	div.AppendChild(g)
	g.AppendChild(x)
	g.AppendChild(y)
	div.AppendChild(NewText("b"))
	g.SpliceUp()
	if len(div.Children) != 4 {
		t.Fatalf("got %s", div.String())
	}
	if div.Children[1] != x || div.Children[2] != y {
		t.Fatalf("order wrong: %s", div.String())
	}
	if x.Parent != div || y.Parent != div {
		t.Fatal("parents not updated")
	}
	if err := div.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceUpEmpty(t *testing.T) {
	div := NewElement("div")
	g := NewElement("group")
	div.AppendChild(g)
	g.SpliceUp()
	if len(div.Children) != 0 {
		t.Fatalf("got %s", div.String())
	}
}

func TestAdoptChildren(t *testing.T) {
	a := NewElement("a")
	b := NewElement("b")
	b.AppendChild(NewText("1"))
	b.AppendChild(NewText("2"))
	a.AppendChild(NewText("0"))
	a.AdoptChildren(b)
	if len(a.Children) != 3 || len(b.Children) != 0 {
		t.Fatalf("adopt failed: %s / %s", a.String(), b.String())
	}
	if a.Children[2].Parent != a {
		t.Fatal("parent not updated")
	}
}

func TestSiblingsDepthRoot(t *testing.T) {
	r := NewElement("r")
	a := NewElement("a")
	b := NewElement("b")
	c := NewElement("c")
	r.AppendChild(a)
	r.AppendChild(b)
	r.AppendChild(c)
	if b.PrevSibling() != a || b.NextSibling() != c {
		t.Fatal("sibling navigation broken")
	}
	if a.PrevSibling() != nil || c.NextSibling() != nil {
		t.Fatal("boundary siblings should be nil")
	}
	if r.PrevSibling() != nil || r.NextSibling() != nil {
		t.Fatal("root siblings should be nil")
	}
	gc := NewElement("gc")
	c.AppendChild(gc)
	if gc.Depth() != 2 || r.Depth() != 0 {
		t.Fatalf("depth: gc=%d r=%d", gc.Depth(), r.Depth())
	}
	if gc.Root() != r {
		t.Fatal("Root failed")
	}
	if r.FirstChild() != a {
		t.Fatal("FirstChild failed")
	}
	if gc.FirstChild() != nil {
		t.Fatal("empty FirstChild should be nil")
	}
}

func buildSample() *Node {
	// (#doc (html (body (h1 "Resume") (ul (li "a") (li "b")))))
	doc := NewDocument()
	html := NewElement("html")
	body := NewElement("body")
	h1 := NewElement("h1")
	h1.AppendChild(NewText("Resume"))
	ul := NewElement("ul")
	li1 := NewElement("li")
	li1.AppendChild(NewText("a"))
	li2 := NewElement("li")
	li2.AppendChild(NewText("b"))
	ul.AppendChild(li1)
	ul.AppendChild(li2)
	body.AppendChild(h1)
	body.AppendChild(ul)
	html.AppendChild(body)
	doc.AppendChild(html)
	return doc
}

func TestWalkOrderAndPrune(t *testing.T) {
	doc := buildSample()
	var tags []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			tags = append(tags, n.Tag)
		}
		return n.Tag != "ul" // prune below ul
	})
	want := "html body h1 ul"
	if got := strings.Join(tags, " "); got != want {
		t.Fatalf("walk order %q want %q", got, want)
	}
}

func TestWalkPost(t *testing.T) {
	doc := buildSample()
	var tags []string
	doc.WalkPost(func(n *Node) {
		if n.Type == ElementNode {
			tags = append(tags, n.Tag)
		}
	})
	want := "h1 li li ul body html"
	if got := strings.Join(tags, " "); got != want {
		t.Fatalf("post order %q want %q", got, want)
	}
}

func TestFindHelpers(t *testing.T) {
	doc := buildSample()
	if doc.FindElement("ul") == nil {
		t.Fatal("FindElement failed")
	}
	if doc.FindElement("nope") != nil {
		t.Fatal("FindElement should return nil")
	}
	if n := len(doc.FindElements("li")); n != 2 {
		t.Fatalf("FindElements li = %d", n)
	}
	texts := doc.FindAll(func(n *Node) bool { return n.Type == TextNode })
	if len(texts) != 3 {
		t.Fatalf("text nodes = %d", len(texts))
	}
}

func TestCounts(t *testing.T) {
	doc := buildSample()
	if got := doc.CountNodes(); got != 10 {
		t.Fatalf("CountNodes = %d", got)
	}
	if got := doc.CountElements(); got != 6 {
		t.Fatalf("CountElements = %d", got)
	}
}

func TestInnerTextAndAllText(t *testing.T) {
	doc := buildSample()
	if got := doc.InnerText(); got != "Resume a b" {
		t.Fatalf("InnerText = %q", got)
	}
	e := NewElement("x")
	e.SetVal("hello")
	e.AppendChild(NewText(" world "))
	all := e.AllText()
	if len(all) != 2 || all[0] != "hello" || all[1] != "world" {
		t.Fatalf("AllText = %v", all)
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := buildSample()
	c := doc.Clone()
	if !doc.Equal(c) {
		t.Fatal("clone not equal")
	}
	if c.Parent != nil {
		t.Fatal("clone should be parentless")
	}
	c.FindElement("h1").AppendChild(NewText("mutated"))
	if doc.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := Elem("x", []string{"k", "v", "a", "b"})
	b := Elem("x", []string{"a", "b", "k", "v"})
	if !a.Equal(b) {
		t.Fatal("attr order should not matter")
	}
	b.SetAttr("k", "other")
	if a.Equal(b) {
		t.Fatal("different attr values should differ")
	}
	if a.Equal(nil) {
		t.Fatal("non-nil != nil")
	}
	var n1, n2 *Node
	if !n1.Equal(n2) {
		t.Fatal("nil == nil")
	}
	c := Elem("x", []string{"k", "v", "a", "b"}, NewText("t"))
	if a.Equal(c) {
		t.Fatal("child count differs")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	doc := buildSample()
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a parent pointer.
	li := doc.FindElements("li")[0]
	li.Parent = doc
	if err := doc.Validate(); err == nil {
		t.Fatal("expected validation error for wrong parent")
	}
	li.Parent = doc.FindElement("ul")
	// Duplicate node in tree.
	ul := doc.FindElement("ul")
	ul.Children = append(ul.Children, ul.Children[0])
	if err := doc.Validate(); err == nil {
		t.Fatal("expected validation error for duplicated node")
	}
}

func TestElemPanicsOnOddAttrs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Elem("x", []string{"only-name"})
}

func TestInsertChildAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewElement("x").InsertChildAt(1, NewElement("y"))
}

func TestString(t *testing.T) {
	n := Elem("a", []string{"href", "x"}, NewText("hi"), NewComment("c"))
	got := n.String()
	want := `(a href="x" "hi" <!--c-->)`
	if got != want {
		t.Fatalf("String = %s want %s", got, want)
	}
}

func TestLabel(t *testing.T) {
	if NewElement("p").Label() != "<p>" {
		t.Fatal("element label")
	}
	long := NewText(strings.Repeat("x", 30))
	if !strings.Contains(long.Label(), "...") {
		t.Fatal("long text should be truncated")
	}
	if NewDocument().Label() != "#document" {
		t.Fatal("document label")
	}
}

// randomTree builds a pseudo-random tree of up to n nodes for property tests.
func randomTree(r *rand.Rand, n int) *Node {
	tags := []string{"a", "b", "c", "d", "e"}
	root := NewElement("root")
	nodes := []*Node{root}
	for i := 0; i < n; i++ {
		p := nodes[r.Intn(len(nodes))]
		var c *Node
		if r.Intn(4) == 0 {
			c = NewText("t" + tags[r.Intn(len(tags))])
		} else {
			c = NewElement(tags[r.Intn(len(tags))])
			nodes = append(nodes, c)
		}
		p.AppendChild(c)
	}
	return root
}

func TestPropertyCloneEqualAndValid(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, int(size%60))
		cl := tr.Clone()
		return tr.Equal(cl) && cl.Validate() == nil && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpliceUpPreservesTextAndValidity(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, int(size%60)+5)
		before := tr.InnerText()
		// Splice a random internal element (not root).
		els := tr.FindAll(func(n *Node) bool { return n.Type == ElementNode && n.Parent != nil })
		if len(els) == 0 {
			return true
		}
		els[r.Intn(len(els))].SpliceUp()
		return tr.Validate() == nil && tr.InnerText() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDetachReattachCountInvariant(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, int(size%40)+5)
		total := tr.CountNodes()
		els := tr.FindAll(func(n *Node) bool { return n.Parent != nil && n.Parent.Parent != nil })
		if len(els) == 0 {
			return true
		}
		n := els[r.Intn(len(els))]
		sub := n.CountNodes()
		n.Detach()
		if tr.CountNodes() != total-sub {
			return false
		}
		tr.AppendChild(n)
		return tr.CountNodes() == total && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
