package watch

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webrev/internal/faultinject"
	"webrev/internal/obs"
)

// TestWatchChaosDrift is the continuous-operation chaos gate (`make
// chaos-drift`): a seeded template-mutation sweep rewrites the section
// headings of ~20% of the site's templates mid-watch, and the next cycle
// must (1) detect every mutated document, (2) emit a drift report naming
// the shifted frequent paths, (3) finish without touching the quarantine
// budget, and (4) leave a state directory a fresh watcher resumes from
// cleanly. The normalized report is pinned as a golden
// (testdata/chaos_drift.golden; regenerate with UPDATE_GOLDEN=1).
func TestWatchChaosDrift(t *testing.T) {
	site, srv := newSite(t, 30, 1)
	dir := t.TempDir()
	col := obs.NewCollector()
	w := newWatcher(t, srv, Options{StateDir: dir, MinSupportShift: 0.02, Tracer: col})
	if _, err := w.Cycle(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The chaos sweep: rename ~20% of the templates' section headings to
	// phrases outside the concept vocabulary.
	tm := faultinject.NewTemplate(faultinject.TemplateConfig{
		Seed: 42, Rate: 0.2,
		Ops: []faultinject.TemplateOp{faultinject.TemplateRenameHeading},
	})
	mutated := mutatePages(t, site, tm)
	if len(mutated) < 3 {
		t.Fatalf("chaos sweep mutated only %d templates", len(mutated))
	}
	res, err := w.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Drift
	if got := d.Docs.Changed; got != len(mutated) {
		t.Fatalf("drift saw %d changed docs, sweep mutated %d", got, len(mutated))
	}
	if !d.Shifted() {
		t.Fatalf("template sweep went undetected: %s", d.Summary())
	}
	if len(d.ShiftedPaths)+len(d.VanishedPaths) == 0 {
		t.Fatalf("report names no shifted or vanished frequent paths: %s", d.Summary())
	}
	if ratio := res.Repo.FailureRatio(); ratio > 0 {
		t.Fatalf("chaos cycle quarantined documents (ratio %.2f)", ratio)
	}
	snap := col.Snapshot().Normalize()
	if snap.Counters[obs.CtrWatchCycles] != 2 ||
		snap.Counters[obs.CtrWatchDocsChanged] != int64(len(mutated)) {
		t.Fatalf("watch counters off: cycles=%d changed=%d",
			snap.Counters[obs.CtrWatchCycles], snap.Counters[obs.CtrWatchDocsChanged])
	}

	blob, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(string(blob), strings.TrimPrefix(srv.URL, "http://"), "site.example") + "\n"
	golden := filepath.Join("testdata", "chaos_drift.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (regenerate with UPDATE_GOLDEN=1 go test ./internal/watch/ -run ChaosDrift): %v", err)
	}
	if got != string(want) {
		t.Fatalf("drift report diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Kill/resume: a fresh watcher over the same state directory picks up
	// after the chaos cycle, and a quiet cycle reports a stable schema and
	// an identical repository.
	w2 := newWatcher(t, srv, Options{StateDir: dir, MinSupportShift: 0.02})
	if w2.Cycles() != 2 {
		t.Fatalf("resumed watcher at cycle %d, want 2", w2.Cycles())
	}
	res3, err := w2.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d3 := res3.Drift
	if d3.Shifted() || d3.Docs.Changed != 0 || d3.Docs.New != 0 || d3.Docs.Vanished != 0 {
		t.Fatalf("post-resume cycle not stable: %s", d3.Summary())
	}
	if renderRepo(res3.Repo) != renderRepo(res.Repo) {
		t.Fatal("post-resume repository diverges from pre-kill repository")
	}
}
