package watch

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webrev/internal/concept"
	"webrev/internal/core"
	"webrev/internal/corpus"
	"webrev/internal/crawler"
	"webrev/internal/faultinject"
	"webrev/internal/xmlout"
)

func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	p, err := core.New(core.Config{
		Concepts:    concept.ResumeConcepts(),
		Constraints: concept.ResumeConstraints(),
		RootName:    "resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// renderRepo flattens a repository to its deterministic text artifacts.
func renderRepo(r *core.Repository) string {
	var b strings.Builder
	b.WriteString(r.DTD.Render())
	for i, c := range r.Conformed {
		b.WriteString(r.Docs[i].Source)
		b.WriteString("\n")
		b.WriteString(xmlout.Marshal(c))
	}
	return b.String()
}

func newSite(t testing.TB, n int, seed int64) (*crawler.Site, *httptest.Server) {
	t.Helper()
	g := corpus.New(corpus.Options{Seed: seed})
	site := crawler.BuildSite(g.Corpus(n), []string{g.Distractor()})
	srv := httptest.NewServer(site.Handler())
	t.Cleanup(srv.Close)
	return site, srv
}

func newWatcher(t testing.TB, srv *httptest.Server, opt Options) *Watcher {
	t.Helper()
	if opt.Pipeline == nil {
		opt.Pipeline = testPipeline(t)
	}
	if opt.Crawler == nil {
		opt.Crawler = &crawler.Crawler{
			Client: srv.Client(),
			Filter: crawler.ResumeFilter(3),
			Fetch:  crawler.FetchPolicy{Revalidate: true, MaxRetries: -1},
		}
	}
	if opt.Seed == "" {
		opt.Seed = srv.URL + "/"
	}
	w, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// coldRepo rebuilds the watcher's current corpus state from scratch: the
// live page bodies, in the watcher's document order, through a fresh
// pipeline's batch build.
func coldRepo(t *testing.T, w *Watcher, site *crawler.Site, base string) *core.Repository {
	t.Helper()
	var sources []core.Source
	for _, u := range w.DocURLs() {
		html, ok := site.Page(strings.TrimPrefix(u, base))
		if !ok {
			t.Fatalf("watcher tracks %s but the site no longer serves it", u)
		}
		sources = append(sources, core.Source{Name: u, HTML: html})
	}
	repo, err := testPipeline(t).Build(sources)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// mutatePages runs the template mutator over every resume page, applying
// what it selects, and returns the mutated paths.
func mutatePages(t testing.TB, site *crawler.Site, tm *faultinject.Template) []string {
	t.Helper()
	var mutated []string
	for _, path := range site.Paths() {
		if !strings.HasPrefix(path, "/resumes/") {
			continue
		}
		html, _ := site.Page(path)
		if out, op := tm.Mutate(path, html); op != faultinject.TemplateNone {
			site.SetPage(path, out)
			mutated = append(mutated, path)
		}
	}
	return mutated
}

// linkFromRoot appends a link to path on the site's index page.
func linkFromRoot(t *testing.T, site *crawler.Site, path string) {
	t.Helper()
	root, ok := site.Page("/")
	if !ok {
		t.Fatal("site has no index page")
	}
	site.SetPage("/", strings.Replace(root, "</ul>",
		`<li><a href="`+path+`">x</a></li></ul>`, 1))
}

// TestWatchIncrementalMatchesCold is the equivalence wall: across cycles of
// randomized template mutations, page additions, and removals, every
// incremental rebuild is byte-identical to a cold full build of the same
// corpus state.
func TestWatchIncrementalMatchesCold(t *testing.T) {
	site, srv := newSite(t, 10, 3)
	w := newWatcher(t, srv, Options{})

	res, err := w.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift.Docs.New == 0 || res.Drift.Docs.New != w.Docs() {
		t.Fatalf("seed cycle: %d new docs, watcher tracks %d", res.Drift.Docs.New, w.Docs())
	}
	if got, want := renderRepo(res.Repo), renderRepo(coldRepo(t, w, site, srv.URL)); got != want {
		t.Fatal("seed cycle diverges from cold build")
	}

	fresh := corpus.New(corpus.Options{Seed: 91})
	extra := fresh.Corpus(3)
	for cycle := 2; cycle <= 5; cycle++ {
		tm := faultinject.NewTemplate(faultinject.TemplateConfig{Seed: int64(cycle), Rate: 0.4})
		mutated := mutatePages(t, site, tm)
		if cycle == 3 {
			site.RemovePage("/resumes/4.html")
			add := "/resumes/extra-3.html"
			site.SetPage(add, extra[0].HTML)
			linkFromRoot(t, site, add)
		}
		if cycle == 4 {
			site.SetPage("/resumes/extra-4.html", extra[1].HTML)
			linkFromRoot(t, site, "/resumes/extra-4.html")
		}
		res, err := w.Cycle(context.Background())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if res.Cycle != cycle {
			t.Fatalf("cycle ordinal %d, want %d", res.Cycle, cycle)
		}
		d := res.Drift.Docs
		if len(mutated) > 0 && d.Changed+d.Vanished == 0 {
			t.Fatalf("cycle %d mutated %d pages but delta is %+v", cycle, len(mutated), d)
		}
		if got, want := renderRepo(res.Repo), renderRepo(coldRepo(t, w, site, srv.URL)); got != want {
			t.Fatalf("cycle %d diverges from cold build of the same corpus state", cycle)
		}
	}
}

// TestWatchDriftReport: duplicating sections in a third of the templates
// changes repetition statistics; the report names the cycle's changed
// documents and the DTD movement, and stays quiet on a no-op cycle.
func TestWatchDriftReport(t *testing.T) {
	site, srv := newSite(t, 12, 5)
	w := newWatcher(t, srv, Options{MinSupportShift: 0.01})
	if _, err := w.Cycle(context.Background()); err != nil {
		t.Fatal(err)
	}

	tm := faultinject.NewTemplate(faultinject.TemplateConfig{
		Seed: 7, Rate: 0.4,
		Ops: []faultinject.TemplateOp{faultinject.TemplateDuplicateSection},
	})
	mutated := mutatePages(t, site, tm)
	if len(mutated) == 0 {
		t.Fatal("mutator selected no pages")
	}
	res, err := w.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Drift.Docs.Changed; got != len(mutated) {
		t.Fatalf("drift reports %d changed docs, mutated %d", got, len(mutated))
	}
	if !strings.Contains(res.Drift.Summary(), "changed") {
		t.Fatalf("summary: %s", res.Drift.Summary())
	}

	// A quiet cycle: everything revalidates, schema stable.
	res, err = w.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Drift
	if d.Shifted() || d.Docs.Changed != 0 || d.Docs.New != 0 || d.Docs.Vanished != 0 {
		t.Fatalf("quiet cycle reported drift: %s", d.Summary())
	}
	if d.Docs.Unchanged != w.Docs() {
		t.Fatalf("quiet cycle: %d unchanged, corpus has %d", d.Docs.Unchanged, w.Docs())
	}
	if len(d.Sites) == 0 || d.Sites[0].NewDocs != w.Docs() {
		t.Fatalf("site rows: %+v", d.Sites)
	}
}

// TestWatchResumeMatchesContinuous: a watcher killed and re-created from
// its state directory after every cycle tracks a continuously running one
// byte for byte — repositories and drift reports both.
func TestWatchResumeMatchesContinuous(t *testing.T) {
	siteA, srvA := newSite(t, 8, 11)
	siteB, srvB := newSite(t, 8, 11)
	dir := t.TempDir()

	cont := newWatcher(t, srvA, Options{})
	normalize := func(s, base string) string { return strings.ReplaceAll(s, base, "SITE") }

	for cycle := 1; cycle <= 3; cycle++ {
		if cycle > 1 {
			tm := faultinject.NewTemplate(faultinject.TemplateConfig{Seed: int64(100 + cycle), Rate: 0.5})
			mutatePages(t, siteA, tm)
			tm = faultinject.NewTemplate(faultinject.TemplateConfig{Seed: int64(100 + cycle), Rate: 0.5})
			mutatePages(t, siteB, tm)
		}
		resA, err := cont.Cycle(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Kill/restart boundary: a brand-new watcher resumes from disk.
		restarted := newWatcher(t, srvB, Options{StateDir: dir})
		if restarted.Cycles() != cycle-1 {
			t.Fatalf("restarted watcher resumed at cycle %d, want %d", restarted.Cycles(), cycle-1)
		}
		resB, err := restarted.Cycle(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := normalize(renderRepo(resB.Repo), srvB.URL),
			normalize(renderRepo(resA.Repo), srvA.URL); got != want {
			t.Fatalf("cycle %d: restarted repository diverges from continuous", cycle)
		}
		ja, _ := json.Marshal(resA.Drift)
		jb, _ := json.Marshal(resB.Drift)
		if normalize(string(jb), strings.TrimPrefix(srvB.URL, "http://")) !=
			normalize(string(ja), strings.TrimPrefix(srvA.URL, "http://")) {
			t.Fatalf("cycle %d: drift reports diverge:\n%s\n%s", cycle, ja, jb)
		}
	}
}

// TestWatchStateV1Migration: a version-1 streaming-build checkpoint loads
// as watch state — documents restore, statistics re-extract into a delta
// accumulator — and the first cycle reconciles it against the live site,
// retiring records the site no longer serves.
func TestWatchStateV1Migration(t *testing.T) {
	site, srv := newSite(t, 6, 13)
	dir := t.TempDir()
	p := testPipeline(t)

	type v1Doc struct {
		Idx    int    `json:"idx"`
		Source string `json:"source"`
	}
	var docs []v1Doc
	idx := 0
	for _, path := range site.Paths() {
		if !strings.HasPrefix(path, "/resumes/") {
			continue
		}
		html, _ := site.Page(path)
		d, _, failed := p.ConvertSource(core.Source{Name: srv.URL + path, HTML: html})
		if failed != nil {
			t.Fatalf("convert %s: %s", path, failed.Err)
		}
		if err := os.WriteFile(docFile(dir, idx), []byte(xmlout.Marshal(d.XML)), 0o644); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, v1Doc{Idx: idx, Source: srv.URL + path})
		idx++
	}
	// One checkpointed document the site no longer serves.
	gone, _, _ := p.ConvertSource(core.Source{Name: srv.URL + "/resumes/gone.html",
		HTML: docs0HTML(t, site)})
	if err := os.WriteFile(docFile(dir, idx), []byte(xmlout.Marshal(gone.XML)), 0o644); err != nil {
		t.Fatal(err)
	}
	docs = append(docs, v1Doc{Idx: idx, Source: srv.URL + "/resumes/gone.html"})
	manifest, _ := json.Marshal(map[string]any{"version": 1, "shards": []json.RawMessage{}, "docs": docs})
	if err := os.WriteFile(filepath.Join(dir, stateFileName), manifest, 0o644); err != nil {
		t.Fatal(err)
	}

	w := newWatcher(t, srv, Options{StateDir: dir})
	if w.Docs() != len(docs) {
		t.Fatalf("migrated %d docs, checkpoint had %d", w.Docs(), len(docs))
	}
	res, err := w.Cycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift.Docs.Vanished == 0 {
		t.Fatal("stale checkpoint record was not retired")
	}
	if got, want := renderRepo(res.Repo), renderRepo(coldRepo(t, w, site, srv.URL)); got != want {
		t.Fatal("migrated state diverges from cold build")
	}
	// The next life loads as version 2.
	w2 := newWatcher(t, srv, Options{StateDir: dir})
	if w2.Cycles() != 1 || w2.Docs() != w.Docs() {
		t.Fatalf("v2 reload: cycles %d docs %d, want 1/%d", w2.Cycles(), w2.Docs(), w.Docs())
	}
}

// docs0HTML returns some resume page's HTML to stand in for a vanished doc.
func docs0HTML(t *testing.T, site *crawler.Site) string {
	t.Helper()
	for _, path := range site.Paths() {
		if strings.HasPrefix(path, "/resumes/") {
			html, _ := site.Page(path)
			return html
		}
	}
	t.Fatal("site has no resume pages")
	return ""
}

// TestWatchRun drives the Run loop for a fixed cycle count.
func TestWatchRun(t *testing.T) {
	_, srv := newSite(t, 5, 17)
	w := newWatcher(t, srv, Options{})
	var cycles []int
	if err := w.Run(context.Background(), 2, 0, func(r *Result) {
		cycles = append(cycles, r.Cycle)
	}); err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 2 || cycles[0] != 1 || cycles[1] != 2 {
		t.Fatalf("run emitted cycles %v", cycles)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.Run(ctx, 5, 0, nil); err != nil {
		t.Fatalf("cancelled run: %v", err)
	}
}
