package watch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"webrev/internal/core"
	"webrev/internal/crawler"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// The watch state directory is version 2 of the checkpoint manifest layout
// the streaming build introduced (internal/core's checkpoint store,
// version 1). The directory shape is unchanged — a state.json manifest plus
// one doc-%08d.xml file per live converted document, manifest written
// atomically (tmp + rename), doc files not listed in the manifest ignored —
// and version 2 extends the manifest with the continuous-operation state:
// the crawl validators (crawler.CrawlState), the delta accumulator, the
// cycle ordinal, and the previous cycle's derivation (supports, DTD text,
// per-site conformance) that the next drift report diffs against.
//
// A version-1 manifest (a streaming-build checkpoint) still loads: its
// documents are restored and their statistics re-extracted into a fresh
// delta accumulator, and the crawl state starts empty, so the first cycle
// refetches everything and classifies by content hash. The full format
// contract, including the version bump policy, is documented in DESIGN.md
// ("Versioned persistent formats").

// StateVersion is the watch state manifest version this package writes.
const StateVersion = 2

// stateFileName is the manifest filename inside a state directory.
const stateFileName = "state.json"

// stateDoc is one live document's manifest entry. Version 2 writes URL;
// version 1 wrote the same value under "source".
type stateDoc struct {
	Idx    int    `json:"idx"`
	URL    string `json:"url,omitempty"`
	Source string `json:"source,omitempty"`
}

// name returns the document's identifier under either version's field.
func (d stateDoc) name() string {
	if d.URL != "" {
		return d.URL
	}
	return d.Source
}

// stateManifest is the serialized form of a watch state directory's
// state.json, covering both the version it writes (2) and the version-1
// streaming-checkpoint fields it can migrate from.
type stateManifest struct {
	// Version guards the format; readers reject versions they don't know.
	Version int `json:"version"`
	// Cycle is the number of completed cycles.
	Cycle int `json:"cycle,omitempty"`
	// NextIdx is the next fresh accumulator index.
	NextIdx int `json:"next_idx,omitempty"`
	// Crawl holds the per-URL revalidation records.
	Crawl *crawler.CrawlState `json:"crawl,omitempty"`
	// Acc is the delta accumulator's JSON encoding (version 2).
	Acc json.RawMessage `json:"acc,omitempty"`
	// Shards holds per-worker accumulator encodings (version 1 only; they
	// are not delta-capable and are discarded on migration).
	Shards []json.RawMessage `json:"shards,omitempty"`
	// Docs lists the live documents; each entry's XML lives in doc-%08d.xml.
	Docs []stateDoc `json:"docs"`
	// Supports is the previous cycle's path → support map.
	Supports map[string]float64 `json:"supports,omitempty"`
	// DTD is the previous cycle's rendered DTD text.
	DTD string `json:"dtd,omitempty"`
	// Sites is the previous cycle's per-site conformance aggregate.
	Sites map[string]siteRate `json:"sites,omitempty"`
}

// docFile names the converted-XML file of accumulator index idx — the same
// naming the version-1 checkpoint store uses.
func docFile(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("doc-%08d.xml", idx))
}

// save flushes the watcher's state to the state directory: dirty document
// files first, then the manifest atomically, then retired document files
// are removed. A crash between the doc writes and the rename leaves the
// previous manifest authoritative — unreferenced doc files are ignored on
// load.
func (w *Watcher) save() error {
	dir := w.opt.StateDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("watch: state dir: %w", err)
	}
	for idx, d := range w.dirty {
		if err := os.WriteFile(docFile(dir, idx), []byte(xmlout.Marshal(d.XML)), 0o644); err != nil {
			return fmt.Errorf("watch: state doc write: %w", err)
		}
	}
	accJSON, err := json.Marshal(w.acc)
	if err != nil {
		return fmt.Errorf("watch: state encode: %w", err)
	}
	m := stateManifest{
		Version:  StateVersion,
		Cycle:    w.cycle,
		NextIdx:  w.next,
		Crawl:    w.crawl,
		Acc:      accJSON,
		Supports: w.prevSupports,
		DTD:      w.prevDTD,
		Sites:    w.prevSites,
	}
	for u, e := range w.docs {
		m.Docs = append(m.Docs, stateDoc{Idx: e.idx, URL: u})
	}
	sort.Slice(m.Docs, func(i, j int) bool { return m.Docs[i].Idx < m.Docs[j].Idx })
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("watch: state encode: %w", err)
	}
	tmp := filepath.Join(dir, stateFileName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("watch: state write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, stateFileName)); err != nil {
		return fmt.Errorf("watch: state write: %w", err)
	}
	for idx := range w.removed {
		os.Remove(docFile(dir, idx))
	}
	w.dirty = make(map[int]*core.Document)
	w.removed = make(map[int]bool)
	return nil
}

// load restores the watcher from its state directory. A missing manifest is
// a fresh start, not an error. Version 2 restores everything; version 1 (a
// streaming-build checkpoint) migrates — documents restore from their XML,
// statistics re-extract into a fresh delta accumulator, and the crawl state
// starts empty.
func (w *Watcher) load() error {
	dir := w.opt.StateDir
	data, err := os.ReadFile(filepath.Join(dir, stateFileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("watch: state read: %w", err)
	}
	var m stateManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("watch: state decode: %w", err)
	}
	switch m.Version {
	case 1, StateVersion:
	default:
		return fmt.Errorf("watch: state version %d not supported (want 1 or %d)", m.Version, StateVersion)
	}

	maxIdx := -1
	for _, sd := range m.Docs {
		xml, err := os.ReadFile(docFile(dir, sd.Idx))
		if err != nil {
			return fmt.Errorf("watch: state doc %d: %w", sd.Idx, err)
		}
		root, err := xmlout.UnmarshalElement(string(xml))
		if err != nil {
			return fmt.Errorf("watch: state doc %d: %w", sd.Idx, err)
		}
		name := sd.name()
		if name == "" || w.docs[name] != nil {
			return fmt.Errorf("watch: state doc %d: missing or duplicate name %q", sd.Idx, name)
		}
		w.docs[name] = &docEntry{idx: sd.Idx, doc: &core.Document{Source: name, XML: root}}
		if sd.Idx > maxIdx {
			maxIdx = sd.Idx
		}
	}

	if m.Version == StateVersion {
		w.cycle = m.Cycle
		w.next = m.NextIdx
		if w.next <= maxIdx {
			w.next = maxIdx + 1
		}
		if m.Crawl != nil && m.Crawl.Pages != nil {
			w.crawl = m.Crawl
		}
		if len(m.Acc) > 0 {
			acc := &schema.Accumulator{}
			if err := json.Unmarshal(m.Acc, acc); err != nil {
				return fmt.Errorf("watch: state decode: %w", err)
			}
			if !acc.Delta() {
				return fmt.Errorf("watch: state accumulator is not delta-capable")
			}
			if acc.Docs() != len(w.docs) {
				return fmt.Errorf("watch: state accumulator folds %d documents, manifest lists %d",
					acc.Docs(), len(w.docs))
			}
			w.acc = acc
		}
		if m.Supports != nil {
			w.prevSupports = m.Supports
		}
		w.prevDTD = m.DTD
		if m.Sites != nil {
			w.prevSites = m.Sites
		}
		return nil
	}

	// Version 1: re-extract statistics into the delta accumulator; the
	// checkpoint's own (compacted, non-invertible) shards are discarded.
	w.next = maxIdx + 1
	for _, e := range w.docs {
		w.acc.Add(e.idx, w.opt.Pipeline.ExtractPaths(e.doc))
	}
	return nil
}
