package watch

import (
	"context"
	"strings"
	"testing"

	"webrev/internal/core"
	"webrev/internal/faultinject"
)

// The recrawl-cycle benchmarks back the continuous-operation claim (and
// experiment E13): a steady-state cycle costs revalidation plus one
// incremental re-derive, and a delta cycle adds work proportional to the
// changed documents — both far under a cold full rebuild of the corpus.
// `make bench-recrawl` snapshots them as BENCH_recrawl.json for the CI
// bench-regression gate.

const benchCorpus = 40

// BenchmarkRecrawlSteady is the no-change cycle: every page revalidates via
// 304 and the repository re-derives from the untouched accumulator.
func BenchmarkRecrawlSteady(b *testing.B) {
	_, srv := newSite(b, benchCorpus, 1)
	w := newWatcher(b, srv, Options{})
	if _, err := w.Cycle(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Cycle(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecrawlDelta mutates ~20% of the templates before every cycle:
// the changed documents refetch, retire, and refold; the rest revalidate.
func BenchmarkRecrawlDelta(b *testing.B) {
	site, srv := newSite(b, benchCorpus, 1)
	w := newWatcher(b, srv, Options{})
	if _, err := w.Cycle(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tm := faultinject.NewTemplate(faultinject.TemplateConfig{Seed: int64(i), Rate: 0.2})
		mutatePages(b, site, tm)
		b.StartTimer()
		if _, err := w.Cycle(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecrawlColdRebuild is the comparison baseline: a full batch
// build of the same corpus from raw HTML, the price every cycle would pay
// without delta builds.
func BenchmarkRecrawlColdRebuild(b *testing.B) {
	site, srv := newSite(b, benchCorpus, 1)
	var sources []core.Source
	for _, path := range site.Paths() {
		if !strings.HasPrefix(path, "/resumes/") {
			continue
		}
		html, _ := site.Page(path)
		sources = append(sources, core.Source{Name: srv.URL + path, HTML: html})
	}
	p := testPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Build(sources); err != nil {
			b.Fatal(err)
		}
	}
}
