// Package watch is the continuous-operation loop over the reverse-
// engineering pipeline: instead of rebuilding the repository from a cold
// crawl, a Watcher revisits the site on a cadence, classifies every page
// against the previous cycle (conditional requests — see
// crawler.RecrawlTo), retires the statistics of documents that changed or
// vanished (schema.Accumulator.Subtract), folds replacements in, and
// re-derives the schema, DTD, and conformed repository incrementally
// (core.Pipeline.BuildFromStats). Because accumulator arithmetic is exact,
// every cycle's repository is byte-identical to a cold full rebuild of the
// same corpus state — the equivalence the package's tests pin.
//
// Each cycle emits a schema.Drift report naming the frequent paths that
// appeared, vanished, or shifted support, the DTD elements whose content
// models changed, and per-site conformance movement — the operator's signal
// that a source site redesigned its templates.
//
// State persists between process lives in a versioned directory manifest
// (see state.go): the crawl validators, the delta accumulator, and every
// live converted document. A Watcher pointed at an existing state directory
// resumes exactly where the previous one stopped.
package watch

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"time"

	"webrev/internal/core"
	"webrev/internal/crawler"
	"webrev/internal/obs"
	"webrev/internal/schema"
)

// Options configures a Watcher.
type Options struct {
	// Pipeline converts, mines, and maps; its configuration (concepts,
	// thresholds, limits, fault budget) applies to every cycle.
	Pipeline *core.Pipeline
	// Crawler fetches pages. Enable Fetch.Revalidate to revalidate with
	// conditional requests instead of refetching bodies; change detection
	// works either way via content hashes. The crawler's own Tracer, when
	// set, records per-cycle crawl counters.
	Crawler *crawler.Crawler
	// Seed is the URL every cycle starts from.
	Seed string
	// StateDir, when non-empty, persists the watch state after every cycle
	// and is loaded on New — the crash/restart boundary. Empty keeps state
	// in memory only.
	StateDir string
	// MinSupportShift is the support change below which a frequent path is
	// not reported as shifted (<= 0 selects schema.DefaultMinSupportShift).
	MinSupportShift float64
	// Tracer, when non-nil, times each cycle under obs.StageWatch and
	// records the watch.* counters.
	Tracer obs.Tracer
}

// docEntry is one live corpus document: its stable accumulator index and
// its converted form.
type docEntry struct {
	idx int
	doc *core.Document
}

// Watcher runs continuous-operation cycles. Not safe for concurrent use;
// run one Watcher per state directory.
type Watcher struct {
	opt Options
	tr  obs.Tracer

	cycle int
	crawl *crawler.CrawlState
	acc   *schema.Accumulator
	docs  map[string]*docEntry // URL → live document
	next  int                  // next fresh accumulator index

	// Previous cycle's derivation, diffed against by the drift report.
	prevSupports map[string]float64
	prevDTD      string
	prevSites    map[string]siteRate

	// Pending state-directory mutations, flushed by save.
	dirty   map[int]*core.Document
	removed map[int]bool
}

// Result is one completed cycle's output.
type Result struct {
	// Cycle is the 1-based cycle ordinal.
	Cycle int
	// Report is the recrawl's account (fetches, 304s, failures, vanished).
	Report *crawler.Report
	// Drift is the cycle's schema-drift report. The first cycle diffs
	// against the empty schema, so it reports every frequent path as new.
	Drift *schema.Drift
	// Repo is the incrementally rebuilt repository.
	Repo *core.Repository
}

// New returns a Watcher over opt, resuming from opt.StateDir when it holds
// a previous life's state (either the watch format or a version-1 streaming
// checkpoint, which migrates — see Load in state.go).
func New(opt Options) (*Watcher, error) {
	if opt.Pipeline == nil || opt.Crawler == nil || opt.Seed == "" {
		return nil, fmt.Errorf("watch: Pipeline, Crawler, and Seed are required")
	}
	w := &Watcher{
		opt:          opt,
		tr:           obs.OrNop(opt.Tracer),
		crawl:        crawler.NewCrawlState(),
		acc:          schema.NewDeltaAccumulator(0),
		docs:         make(map[string]*docEntry),
		prevSupports: make(map[string]float64),
		prevSites:    make(map[string]siteRate),
		dirty:        make(map[int]*core.Document),
		removed:      make(map[int]bool),
	}
	if opt.StateDir != "" {
		if err := w.load(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Docs returns the number of live corpus documents.
func (w *Watcher) Docs() int { return len(w.docs) }

// Cycles returns the number of completed cycles.
func (w *Watcher) Cycles() int { return w.cycle }

// DocURLs returns the live documents' URLs in accumulator-index order —
// the order the incremental repository lists them in.
func (w *Watcher) DocURLs() []string {
	ents := w.entries()
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.doc.Source
	}
	return out
}

// entries returns the live documents sorted by accumulator index.
func (w *Watcher) entries() []*docEntry {
	out := make([]*docEntry, 0, len(w.docs))
	for _, e := range w.docs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// retire removes one live document: its statistics leave the accumulator
// and its persisted file is marked for removal.
func (w *Watcher) retire(u string, e *docEntry) error {
	if err := w.acc.Subtract(e.idx, w.opt.Pipeline.ExtractPaths(e.doc)); err != nil {
		return fmt.Errorf("watch: retire %s: %w", u, err)
	}
	delete(w.docs, u)
	delete(w.dirty, e.idx)
	w.removed[e.idx] = true
	return nil
}

// complete reports whether the recrawl covered the whole site, i.e. its
// vanished classifications (and the watcher's own corpus sweep) are sound.
func complete(rep *crawler.Report) bool {
	return !rep.Canceled && !rep.BudgetExhausted && rep.Skipped == 0
}

// Cycle runs one continuous-operation cycle: recrawl, delta fold,
// incremental rebuild, drift report, state save. On error the state
// directory is left at the previous cycle (a restarted Watcher resumes
// cleanly); the in-memory Watcher must be discarded.
func (w *Watcher) Cycle(ctx context.Context) (*Result, error) {
	sp := w.tr.StartSpan(obs.StageWatch)
	defer sp.End()

	var pages []crawler.Page
	rep, err := w.opt.Crawler.RecrawlTo(ctx, w.opt.Seed, w.crawl, func(p crawler.Page) {
		pages = append(pages, p)
	})
	if err != nil {
		return nil, fmt.Errorf("watch: recrawl: %w", err)
	}

	var delta schema.DocDelta
	for _, fe := range rep.Errors {
		if _, ok := w.docs[fe.URL]; ok {
			delta.Failed++ // refetch failed: keep serving the stale copy
		}
	}
	for _, pg := range pages {
		ent := w.docs[pg.URL]
		switch pg.Change {
		case crawler.ChangeUnchanged:
			if ent != nil {
				delta.Unchanged++
			}
		case crawler.ChangeVanished:
			if ent != nil {
				if err := w.retire(pg.URL, ent); err != nil {
					return nil, err
				}
				delta.Vanished++
			}
		default: // ChangeNew, ChangeChanged, ChangeFetched
			if !pg.OnTopic {
				// A page that drifted off topic leaves the corpus even
				// though the site still serves it.
				if ent != nil {
					if err := w.retire(pg.URL, ent); err != nil {
						return nil, err
					}
					delta.Vanished++
				}
				continue
			}
			d, _, failed := w.opt.Pipeline.ConvertSource(core.Source{Name: pg.URL, HTML: pg.HTML})
			if failed != nil {
				delta.Failed++ // reconversion failed: keep the old version
				continue
			}
			if ent != nil {
				if err := w.acc.Subtract(ent.idx, w.opt.Pipeline.ExtractPaths(ent.doc)); err != nil {
					return nil, fmt.Errorf("watch: refold %s: %w", pg.URL, err)
				}
				ent.doc = d
				w.acc.Add(ent.idx, w.opt.Pipeline.ExtractPaths(d))
				w.dirty[ent.idx] = d
				delta.Changed++
			} else {
				e := &docEntry{idx: w.next, doc: d}
				w.next++
				w.docs[pg.URL] = e
				w.acc.Add(e.idx, w.opt.Pipeline.ExtractPaths(d))
				w.dirty[e.idx] = d
				delta.New++
			}
		}
	}

	// Corpus sweep: on a complete crawl every live document must have a
	// crawl record; entries without one are left over from a migrated or
	// inconsistent state and retire now.
	if complete(rep) {
		var orphans []string
		for u := range w.docs {
			if _, ok := w.crawl.Pages[u]; !ok {
				orphans = append(orphans, u)
			}
		}
		sort.Strings(orphans)
		for _, u := range orphans {
			if err := w.retire(u, w.docs[u]); err != nil {
				return nil, err
			}
			delta.Vanished++
		}
	}

	if len(w.docs) == 0 {
		return nil, fmt.Errorf("watch: no on-topic documents after cycle %d", w.cycle+1)
	}
	ents := w.entries()
	docs := make([]*core.Document, len(ents))
	for i, e := range ents {
		docs[i] = e.doc
	}
	repo, err := w.opt.Pipeline.BuildFromStats(ctx, docs, w.acc)
	if err != nil {
		return nil, fmt.Errorf("watch: rebuild: %w", err)
	}

	w.cycle++
	cur := repo.Schema.SupportMap()
	dtdText := repo.DTD.Render()
	curSites := siteRates(repo)
	drift := &schema.Drift{
		Version: schema.DriftVersion,
		Cycle:   w.cycle,
		Docs:    delta,
		DTD:     schema.DiffDTDText(w.prevDTD, dtdText),
		Sites:   siteRows(w.prevSites, curSites),
	}
	drift.NewPaths, drift.VanishedPaths, drift.ShiftedPaths =
		schema.DiffSupports(w.prevSupports, cur, w.opt.MinSupportShift)
	w.prevSupports, w.prevDTD, w.prevSites = cur, dtdText, curSites

	if w.tr.Enabled() {
		w.tr.Add(obs.CtrWatchCycles, 1)
		w.tr.Add(obs.CtrWatchDocsUnchanged, int64(delta.Unchanged))
		w.tr.Add(obs.CtrWatchDocsChanged, int64(delta.Changed))
		w.tr.Add(obs.CtrWatchDocsNew, int64(delta.New))
		w.tr.Add(obs.CtrWatchDocsVanished, int64(delta.Vanished))
		w.tr.Add(obs.CtrWatchDriftNew, int64(len(drift.NewPaths)))
		w.tr.Add(obs.CtrWatchDriftVanished, int64(len(drift.VanishedPaths)))
	}

	if w.opt.StateDir != "" {
		if err := w.save(); err != nil {
			return nil, err
		}
	}
	return &Result{Cycle: w.cycle, Report: rep, Drift: drift, Repo: repo}, nil
}

// Run executes cycles until ctx ends or n cycles complete (n <= 0 runs
// until ctx ends), sleeping interval between cycles. Each result is handed
// to emit (which may be nil). The first cycle error stops the loop; a loop
// stopped by ctx returns nil after complete cycles only.
func (w *Watcher) Run(ctx context.Context, n int, interval time.Duration, emit func(*Result)) error {
	for i := 0; n <= 0 || i < n; i++ {
		if i > 0 && interval > 0 {
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				return nil
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		res, err := w.Cycle(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if emit != nil {
			emit(res)
		}
	}
	return nil
}

// siteOf maps a document's source (a URL for acquired corpora) to its
// conformance-aggregation key: the URL host, or "corpus" for non-URL names.
func siteOf(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Host != "" {
		return u.Host
	}
	return "corpus"
}

// siteRate is one site's per-cycle conformance aggregate, persisted between
// cycles so regressions survive a restart.
type siteRate struct {
	// Docs is the site's mapped document count.
	Docs int `json:"docs"`
	// Rate is the fraction of the site's mapped documents that conformed to
	// the DTD before mapping.
	Rate float64 `json:"rate"`
}

// siteRates aggregates a repository's conformance per source site.
func siteRates(repo *core.Repository) map[string]siteRate {
	out := make(map[string]siteRate)
	for i := 0; i < repo.MappedDocs(); i++ {
		s := siteOf(repo.Docs[i].Source)
		r := out[s]
		r.Docs++
		if repo.MapStats[i].Cost() == 0 {
			r.Rate++ // conforming count; divided below
		}
		out[s] = r
	}
	for s, r := range out {
		r.Rate /= float64(r.Docs)
		out[s] = r
	}
	return out
}

// siteRows joins the previous and current per-site aggregates into sorted
// drift-report rows.
func siteRows(old, cur map[string]siteRate) []schema.SiteConformance {
	sites := make(map[string]bool)
	for s := range old {
		sites[s] = true
	}
	for s := range cur {
		sites[s] = true
	}
	var rows []schema.SiteConformance
	for s := range sites {
		o, c := old[s], cur[s]
		rows = append(rows, schema.SiteConformance{
			Site: s, OldDocs: o.Docs, NewDocs: c.Docs, OldRate: o.Rate, NewRate: c.Rate,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Site < rows[j].Site })
	return rows
}
