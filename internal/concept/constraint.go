package concept

import (
	"fmt"
	"math"
	"strings"
)

// Op is a comparison operator for depth constraints.
type Op int

// Depth comparison operators (paper §2.2: ⊙ ∈ {=, <, >}).
const (
	OpEq Op = iota
	OpLt
	OpGt
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	}
	return "?"
}

// Constraint is one concept constraint. The three forms of §2.2 are
// parent(c1,c2), sibling(c1,c2) and depth(c1) ⊙ d; every predicate may be
// negated to specify atypical properties.
type Constraint struct {
	Kind    Kind
	C1, C2  string // concept names (C2 unused for depth)
	Op      Op     // depth only
	D       int    // depth only
	Negated bool
}

// Kind discriminates constraint forms.
type Kind int

// Constraint kinds.
const (
	KindParent  Kind = iota // c1 is a (not necessarily direct) ancestor of c2
	KindSibling             // c1 and c2 occur at the same level of abstraction
	KindDepth               // c1 occurs only at depth ⊙ d
)

func (k Kind) String() string {
	switch k {
	case KindParent:
		return "parent"
	case KindSibling:
		return "sibling"
	case KindDepth:
		return "depth"
	}
	return "?"
}

// Parent returns the constraint parent(c1, c2).
func Parent(c1, c2 string) Constraint { return Constraint{Kind: KindParent, C1: c1, C2: c2} }

// Sibling returns the constraint sibling(c1, c2).
func Sibling(c1, c2 string) Constraint { return Constraint{Kind: KindSibling, C1: c1, C2: c2} }

// Depth returns the constraint depth(c1) ⊙ d.
func Depth(c1 string, op Op, d int) Constraint {
	return Constraint{Kind: KindDepth, C1: c1, Op: op, D: d}
}

// Not negates a constraint.
func Not(c Constraint) Constraint { c.Negated = !c.Negated; return c }

// String renders the constraint in the paper's notation.
func (c Constraint) String() string {
	var body string
	switch c.Kind {
	case KindParent, KindSibling:
		body = fmt.Sprintf("%s(%s, %s)", c.Kind, c.C1, c.C2)
	case KindDepth:
		body = fmt.Sprintf("depth(%s) %s %d", c.C1, c.Op, c.D)
	}
	if c.Negated {
		return "¬" + body
	}
	return body
}

// Constraints is a checkable collection of concept constraints plus the two
// structural constraint classes used in §4.2: no concept repeats along a
// label path, and a global maximum depth.
type Constraints struct {
	List []Constraint
	// NoRepeatOnPath forbids the same concept name twice on any label path
	// (first constraint class of §4.2).
	NoRepeatOnPath bool
	// MaxDepth, when > 0, bounds the depth of any concept node (§4.2 uses 4).
	MaxDepth int
	// RoleDepth enforces Role-derived depths: title names at depth 1,
	// content names at depth > 1 (second constraint class of §4.2). Requires
	// the Set to be passed to the check.
	RoleDepth bool
}

// AllowPath reports whether the label path (root excluded — path[0] is a
// first-level concept) violates no constraint. Depth of path[i] is i+1.
// Sibling constraints cannot be checked on a single path and are ignored
// here; CheckTree covers them.
func (cs *Constraints) AllowPath(path []string, set *Set) bool {
	if cs == nil {
		return true
	}
	if cs.MaxDepth > 0 && len(path) > cs.MaxDepth {
		return false
	}
	if cs.NoRepeatOnPath {
		seen := make(map[string]bool, len(path))
		for _, name := range path {
			if seen[name] {
				return false
			}
			seen[name] = true
		}
	}
	if cs.RoleDepth && set != nil {
		for i, name := range path {
			c := set.Get(name)
			if c == nil {
				continue
			}
			depth := i + 1
			switch c.Role {
			case RoleTitle:
				if depth != 1 {
					return false
				}
			case RoleContent:
				if depth <= 1 {
					return false
				}
			}
		}
	}
	for _, con := range cs.List {
		if !allowPathOne(con, path) {
			return false
		}
	}
	return true
}

func allowPathOne(con Constraint, path []string) bool {
	switch con.Kind {
	case KindDepth:
		for i, name := range path {
			if name != con.C1 {
				continue
			}
			depth := i + 1
			var ok bool
			switch con.Op {
			case OpEq:
				ok = depth == con.D
			case OpLt:
				ok = depth < con.D
			case OpGt:
				ok = depth > con.D
			}
			if con.Negated {
				ok = !ok
			}
			if !ok {
				return false
			}
		}
		return true
	case KindParent:
		// Positive parent(c1,c2): whenever c2 occurs on the path, c1 must
		// appear somewhere above it. Negated: c1 must NOT appear above c2.
		for i, name := range path {
			if name != con.C2 {
				continue
			}
			found := false
			for j := 0; j < i; j++ {
				if path[j] == con.C1 {
					found = true
					break
				}
			}
			if con.Negated {
				if found {
					return false
				}
			} else if !found {
				return false
			}
		}
		return true
	case KindSibling:
		// Sibling constraints are level constraints: on a single path the
		// only checkable violation is c1 being an ancestor of c2 or vice
		// versa (siblings cannot nest).
		if con.Negated {
			return true
		}
		for i, name := range path {
			for j := i + 1; j < len(path); j++ {
				if name == con.C1 && path[j] == con.C2 || name == con.C2 && path[j] == con.C1 {
					return false
				}
			}
		}
		return true
	}
	return true
}

// SearchSpace returns the number of distinct label paths of length 1..
// maxDepth over a vocabulary of n concepts with no constraints (sum of n^l).
// See PaperExhaustive for the exact arithmetic the paper reports in §4.2.
func SearchSpace(n, maxDepth int) float64 {
	total := 0.0
	for l := 1; l <= maxDepth; l++ {
		total += math.Pow(float64(n), float64(l))
	}
	return total
}

// PaperExhaustive reproduces the paper's §4.2 exhaustive count n^(d+1) − 1
// (for n=24, d=4: 7,962,623 — the number of nodes of the complete 24-ary
// trie of height 5, minus the root).
func PaperExhaustive(n, maxDepth int) int {
	v := 1
	for i := 0; i < maxDepth+1; i++ {
		v *= n
	}
	return v - 1
}

// CountConstrainedPaths enumerates the label-path trie under the
// constraints and returns the number of admissible nodes (paths). The
// enumeration mirrors the schema-discovery search: a path is extended only
// while it remains admissible, so pruned subtrees are never visited.
func (cs *Constraints) CountConstrainedPaths(set *Set, maxDepth int) int {
	names := set.Names()
	count := 0
	var rec func(path []string)
	rec = func(path []string) {
		for _, name := range names {
			next := append(path, name)
			if !cs.AllowPath(next, set) {
				continue
			}
			count++
			if len(next) < maxDepth {
				rec(next)
			}
		}
	}
	if maxDepth <= 0 {
		maxDepth = cs.MaxDepth
	}
	rec(nil)
	return count
}

// Describe renders a multi-line summary of the constraint set.
func (cs *Constraints) Describe() string {
	var b strings.Builder
	if cs.NoRepeatOnPath {
		b.WriteString("no concept repeats on a label path\n")
	}
	if cs.MaxDepth > 0 {
		fmt.Fprintf(&b, "max depth %d\n", cs.MaxDepth)
	}
	if cs.RoleDepth {
		b.WriteString("title names at depth 1, content names at depth > 1\n")
	}
	for _, c := range cs.List {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
