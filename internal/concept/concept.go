// Package concept models topic-specific domain knowledge: concepts, concept
// instances, and concept constraints (paper §2.2).
//
// Concepts provide the element-name vocabulary of the XML documents produced
// by conversion. Each concept carries instances — text patterns and keywords
// as they might occur in topic-specific HTML documents — that the concept
// instance rule matches against tokens. Constraints (parent, sibling, depth)
// optionally restrict how concepts may nest and are exploited both during
// conversion and to prune the schema-discovery search space (§4.2).
package concept

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"webrev/internal/memo"
)

// Role classifies a concept for the constraint classes of §4.2: title names
// may only appear as first-level nodes, content names only deeper.
type Role int

// Concept roles.
const (
	RoleAny     Role = iota // unclassified
	RoleTitle               // section title; depth == 1
	RoleContent             // content of a title; depth > 1
)

// Concept is one topic-specific concept: an XML element name plus the
// instances that identify it in text.
type Concept struct {
	Name      string   // element name, e.g. "institution"
	Instances []string // text patterns incl. the name itself, e.g. "University"
	Role      Role
}

// Set is an immutable collection of concepts with a compiled instance
// matcher. Build one with NewSet. Sets are safe for concurrent use: the
// only mutable state is an internal result memo, which is lock-protected.
type Set struct {
	concepts map[string]*Concept
	ordered  []*Concept // insertion order, for deterministic iteration
	// matcher: lowercase instance -> concept name; longest instances first.
	instances []instanceEntry
	// matches memoizes FindAll results per searched text. Entries are
	// shared: callers must treat returned slices as read-only (all of the
	// pipeline's call sites do).
	matches *memo.Cache[[]Match]
}

type instanceEntry struct {
	pattern string // lowercase
	concept string
	mask    byteMask // bytes occurring in pattern, for the pre-filter
}

// byteMask is a 256-bit set of byte values, the necessary-condition
// pre-filter of the matcher: a pattern can only occur in a text whose
// byte set is a superset of the pattern's.
type byteMask [4]uint64

func (m *byteMask) add(c byte) { m[c>>6] |= 1 << (c & 63) }

// subsetOf reports whether every byte in m also occurs in of.
func (m byteMask) subsetOf(of byteMask) bool {
	return m[0]&^of[0] == 0 && m[1]&^of[1] == 0 &&
		m[2]&^of[2] == 0 && m[3]&^of[3] == 0
}

func maskOf(s string) byteMask {
	var m byteMask
	for i := 0; i < len(s); i++ {
		m.add(s[i])
	}
	return m
}

// NewSet compiles the given concepts into a Set. The concept's own name is
// always implicitly an instance. Duplicate concept names are an error.
func NewSet(concepts ...Concept) (*Set, error) {
	s := &Set{concepts: make(map[string]*Concept, len(concepts))}
	for i := range concepts {
		c := concepts[i]
		if c.Name == "" {
			return nil, fmt.Errorf("concept: empty concept name at index %d", i)
		}
		if _, dup := s.concepts[c.Name]; dup {
			return nil, fmt.Errorf("concept: duplicate concept %q", c.Name)
		}
		cc := &Concept{Name: c.Name, Role: c.Role}
		seen := map[string]bool{}
		add := func(inst string) {
			inst = strings.TrimSpace(inst)
			if inst == "" {
				return
			}
			low := strings.ToLower(inst)
			if seen[low] {
				return
			}
			seen[low] = true
			cc.Instances = append(cc.Instances, inst)
			s.instances = append(s.instances, instanceEntry{pattern: low, concept: c.Name, mask: maskOf(low)})
		}
		add(c.Name)
		for _, inst := range c.Instances {
			add(inst)
		}
		s.concepts[c.Name] = cc
		s.ordered = append(s.ordered, cc)
	}
	// Longest-pattern-first so "assistant professor" wins over "professor".
	sort.SliceStable(s.instances, func(i, j int) bool {
		return len(s.instances[i].pattern) > len(s.instances[j].pattern)
	})
	s.matches = memo.New[[]Match](matchMemoSize)
	return s, nil
}

// matchMemoSize bounds the per-set FindAll memo. Tokens repeat heavily in
// template-derived corpora; see internal/memo.
const matchMemoSize = 4096

// MustSet is NewSet that panics on error, for tests and fixed vocabularies.
func MustSet(concepts ...Concept) *Set {
	s, err := NewSet(concepts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of concepts.
func (s *Set) Len() int { return len(s.ordered) }

// InstanceCount returns the total number of compiled instances.
func (s *Set) InstanceCount() int { return len(s.instances) }

// Names returns the concept names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.ordered))
	for i, c := range s.ordered {
		out[i] = c.Name
	}
	return out
}

// Get returns the named concept, or nil.
func (s *Set) Get(name string) *Concept { return s.concepts[name] }

// Has reports whether name is a concept in the set.
func (s *Set) Has(name string) bool { _, ok := s.concepts[name]; return ok }

// Match is one instance occurrence found in a token text.
type Match struct {
	Concept  string // concept name
	Instance string // the instance pattern that matched (lowercase)
	Start    int    // byte offset of the match in the searched text
	End      int    // byte offset just past the match
}

// FindAll locates every non-overlapping instance occurrence in text,
// case-insensitively and on word boundaries, preferring longer instances.
// Matches are returned in order of Start, with Start/End as byte offsets
// into text itself.
//
// Results for repeated texts are served from a per-set memo and shared:
// the returned slice must be treated as read-only.
func (s *Set) FindAll(text string) []Match {
	if ms, ok := s.matches.Get(text); ok {
		return ms
	}
	ms := s.findAll(text)
	// Clone the key: text is often a sub-slice of a whole parsed document,
	// and retaining it would pin the document's backing array.
	s.matches.Add(strings.Clone(text), ms)
	return ms
}

// claimedPool recycles the per-call claimed-byte scratch of findAll.
var claimedPool = sync.Pool{New: func() any { return new([]bool) }}

func (s *Set) findAll(text string) []Match {
	low, off := foldText(text)
	cp := claimedPool.Get().(*[]bool)
	if cap(*cp) < len(low) {
		*cp = make([]bool, len(low))
	}
	claimed := (*cp)[:len(low)]
	for i := range claimed {
		claimed[i] = false
	}
	textMask := maskOf(low)
	var out []Match
	for _, e := range s.instances {
		if len(e.pattern) > len(low) || !e.mask.subsetOf(textMask) {
			// The text cannot contain the pattern: it is shorter, or lacks
			// one of the pattern's bytes. This filter rejects almost every
			// instance for a typical short token at the cost of four ANDs.
			continue
		}
		from := 0
		for {
			i := strings.Index(low[from:], e.pattern)
			if i < 0 {
				break
			}
			start := from + i
			end := start + len(e.pattern)
			from = start + 1
			if !wordBoundary(low, start, end) {
				continue
			}
			if anyClaimed(claimed, start, end) {
				continue
			}
			for k := start; k < end; k++ {
				claimed[k] = true
			}
			if off != nil {
				start, end = off[start], off[end]
			}
			out = append(out, Match{Concept: e.concept, Instance: e.pattern, Start: start, End: end})
		}
	}
	claimedPool.Put(cp)
	if len(out) > 1 {
		sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	}
	return out
}

// foldText lowercases text and returns, for every byte of the lowered form
// plus one end sentinel, the corresponding byte offset in the original
// text. A nil offset slice means the mapping is the identity (the
// all-ASCII fast path). Lowering can shift byte offsets — multi-byte case
// pairs change encoded length, and invalid bytes turn into U+FFFD — so
// offsets found in the lowered string must be translated before slicing
// the original; indexing it directly is an out-of-bounds panic waiting for
// malformed input.
func foldText(text string) (string, []int) {
	ascii := true
	for i := 0; i < len(text); i++ {
		if text[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		return strings.ToLower(text), nil
	}
	var b strings.Builder
	b.Grow(len(text))
	off := make([]int, 0, len(text)+1)
	for i, r := range text {
		n := b.Len()
		b.WriteRune(unicode.ToLower(r))
		for ; n < b.Len(); n++ {
			off = append(off, i)
		}
	}
	off = append(off, len(text))
	return b.String(), off
}

// First returns the first (leftmost, longest-preferred) match in text, or a
// zero Match and false.
func (s *Set) First(text string) (Match, bool) {
	ms := s.FindAll(text)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}

func anyClaimed(claimed []bool, start, end int) bool {
	for k := start; k < end; k++ {
		if claimed[k] {
			return true
		}
	}
	return false
}

// wordBoundary reports whether [start,end) in s is delimited by non-word
// bytes (or string edges) on both sides.
func wordBoundary(s string, start, end int) bool {
	if start > 0 && isWordByte(s[start-1]) {
		return false
	}
	if end < len(s) && isWordByte(s[end]) {
		return false
	}
	return true
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
