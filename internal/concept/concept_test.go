package concept

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSet(t *testing.T) *Set {
	t.Helper()
	return MustSet(
		Concept{Name: "institution", Instances: []string{"University", "College"}},
		Concept{Name: "degree", Instances: []string{"B.S.", "M.S.", "Ph.D.", "bachelor of science"}},
		Concept{Name: "date", Instances: []string{"January", "June", "1996"}},
		Concept{Name: "gpa", Instances: []string{"GPA"}},
	)
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(Concept{Name: ""}); err == nil {
		t.Fatal("empty name should error")
	}
	if _, err := NewSet(Concept{Name: "a"}, Concept{Name: "a"}); err == nil {
		t.Fatal("duplicate name should error")
	}
	s, err := NewSet(Concept{Name: "x", Instances: []string{"X", "x", " x "}})
	if err != nil {
		t.Fatal(err)
	}
	if s.InstanceCount() != 1 {
		t.Fatalf("dedup failed: %d instances", s.InstanceCount())
	}
}

func TestSetAccessors(t *testing.T) {
	s := testSet(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := strings.Join(s.Names(), ","); got != "institution,degree,date,gpa" {
		t.Fatalf("Names = %q", got)
	}
	if !s.Has("degree") || s.Has("nope") {
		t.Fatal("Has broken")
	}
	if s.Get("degree") == nil || s.Get("nope") != nil {
		t.Fatal("Get broken")
	}
}

func TestFindAllPaperSentence(t *testing.T) {
	s := testSet(t)
	// The paper's running example topic sentence (§2.3.1).
	text := "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0"
	ms := s.FindAll(text)
	var got []string
	for _, m := range ms {
		got = append(got, m.Concept)
	}
	want := "institution degree date date gpa"
	if strings.Join(got, " ") != want {
		t.Fatalf("concepts = %v, want %s", got, want)
	}
	// Offsets must be sane and non-overlapping.
	for i := 1; i < len(ms); i++ {
		if ms[i].Start < ms[i-1].End {
			t.Fatalf("overlap: %+v", ms)
		}
	}
}

func TestFindAllCaseInsensitive(t *testing.T) {
	s := testSet(t)
	if _, ok := s.First("UNIVERSITY of somewhere"); !ok {
		t.Fatal("uppercase not matched")
	}
	if _, ok := s.First("university"); !ok {
		t.Fatal("lowercase not matched")
	}
}

func TestFindAllWordBoundary(t *testing.T) {
	s := testSet(t)
	if ms := s.FindAll("multiversity"); len(ms) != 0 {
		t.Fatalf("substring match should be rejected: %+v", ms)
	}
	if ms := s.FindAll("the University."); len(ms) != 1 {
		t.Fatalf("punctuation boundary should match: %+v", ms)
	}
}

func TestFindAllLongestWins(t *testing.T) {
	s := MustSet(
		Concept{Name: "degree", Instances: []string{"bachelor of science"}},
		Concept{Name: "major", Instances: []string{"science"}},
	)
	ms := s.FindAll("bachelor of science")
	if len(ms) != 1 || ms[0].Concept != "degree" {
		t.Fatalf("longest-match failed: %+v", ms)
	}
}

func TestFindAllConceptNameItself(t *testing.T) {
	s := testSet(t)
	ms := s.FindAll("Degree information")
	if len(ms) != 1 || ms[0].Concept != "degree" {
		t.Fatalf("concept name should be implicit instance: %+v", ms)
	}
}

func TestFirstNoMatch(t *testing.T) {
	s := testSet(t)
	if _, ok := s.First("nothing relevant here"); ok {
		t.Fatal("unexpected match")
	}
}

func TestPropertyMatchesWithinBoundsAndOrdered(t *testing.T) {
	s := testSet(t)
	words := []string{"University", "B.S.", "June", "GPA", "xyz", ",", "of", "hello", "1996"}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(words[int(p)%len(words)])
			b.WriteByte(' ')
		}
		text := b.String()
		ms := s.FindAll(text)
		for i, m := range ms {
			if m.Start < 0 || m.End > len(text) || m.Start >= m.End {
				return false
			}
			if i > 0 && ms[i-1].End > m.Start {
				return false
			}
			if !strings.EqualFold(text[m.Start:m.End], m.Instance) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindAllOffsetsSurviveLoweringLengthChanges(t *testing.T) {
	// Lowercasing can change byte length: invalid UTF-8 bytes become
	// U+FFFD (3 bytes each), and some case pairs have different encoded
	// sizes (e.g. U+212A KELVIN SIGN → 'k'). Match offsets must refer to
	// the original text, not the lowered copy (regression: the fuzzer
	// found a slice-bounds panic in conversion on exactly this input
	// shape).
	s := testSet(t)
	for _, text := range []string{
		"GPA \xd7\xd7\xd7\xd7\xd7\xd7GPA",
		"K İ GPA",                    // Kelvin sign (shrinks) and dotted capital I (grows)
		"\xffGPA\xff University\xe0", // invalid bytes hugging real instances
	} {
		ms := s.FindAll(text)
		if len(ms) == 0 {
			t.Fatalf("FindAll(%q) found nothing", text)
		}
		for _, m := range ms {
			if m.Start < 0 || m.End > len(text) || m.Start >= m.End {
				t.Fatalf("FindAll(%q): match %+v out of bounds", text, m)
			}
			if got := strings.ToLower(text[m.Start:m.End]); got != m.Instance {
				t.Fatalf("FindAll(%q): offsets select %q, want instance %q", text, got, m.Instance)
			}
		}
	}
}

func TestResumeVocabularyFigures(t *testing.T) {
	cs := ResumeConcepts()
	if len(cs) != 24 {
		t.Fatalf("resume concepts = %d, want 24 (paper §4)", len(cs))
	}
	titles, contents := 0, 0
	for _, c := range cs {
		switch c.Role {
		case RoleTitle:
			titles++
		case RoleContent:
			contents++
		}
	}
	if titles != 11 || contents != 13 {
		t.Fatalf("roles = %d title / %d content, want 11/13 (paper §4.2)", titles, contents)
	}
	s := ResumeSet()
	if got := s.InstanceCount(); got != 233 {
		t.Fatalf("instances = %d, want 233 (paper §4)", got)
	}
}

func BenchmarkFindAllResume(b *testing.B) {
	s := ResumeSet()
	text := "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.FindAll(text)
	}
}
