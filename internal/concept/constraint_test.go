package concept

import (
	"strings"
	"testing"
)

func TestConstraintString(t *testing.T) {
	cases := []struct {
		c    Constraint
		want string
	}{
		{Parent("education", "degree"), "parent(education, degree)"},
		{Sibling("degree", "date"), "sibling(degree, date)"},
		{Depth("contact", OpEq, 1), "depth(contact) = 1"},
		{Depth("x", OpLt, 3), "depth(x) < 3"},
		{Depth("x", OpGt, 1), "depth(x) > 1"},
		{Not(Parent("a", "b")), "¬parent(a, b)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if Not(Not(Parent("a", "b"))).Negated {
		t.Fatal("double negation should cancel")
	}
}

func TestAllowPathDepth(t *testing.T) {
	cs := &Constraints{List: []Constraint{Depth("contact", OpEq, 1)}}
	if !cs.AllowPath([]string{"contact"}, nil) {
		t.Fatal("depth 1 should be allowed")
	}
	if cs.AllowPath([]string{"education", "contact"}, nil) {
		t.Fatal("depth 2 should be rejected")
	}
	lt := &Constraints{List: []Constraint{Depth("x", OpLt, 3)}}
	if !lt.AllowPath([]string{"a", "x"}, nil) || lt.AllowPath([]string{"a", "b", "x"}, nil) {
		t.Fatal("OpLt broken")
	}
	gt := &Constraints{List: []Constraint{Depth("x", OpGt, 1)}}
	if gt.AllowPath([]string{"x"}, nil) || !gt.AllowPath([]string{"a", "x"}, nil) {
		t.Fatal("OpGt broken")
	}
	neg := &Constraints{List: []Constraint{Not(Depth("x", OpEq, 2))}}
	if neg.AllowPath([]string{"a", "x"}, nil) || !neg.AllowPath([]string{"x"}, nil) {
		t.Fatal("negated depth broken")
	}
}

func TestAllowPathParent(t *testing.T) {
	cs := &Constraints{List: []Constraint{Parent("education", "degree")}}
	if !cs.AllowPath([]string{"education", "degree"}, nil) {
		t.Fatal("direct parent allowed")
	}
	if !cs.AllowPath([]string{"education", "x", "degree"}, nil) {
		t.Fatal("indirect parent allowed")
	}
	if cs.AllowPath([]string{"experience", "degree"}, nil) {
		t.Fatal("missing required ancestor should reject")
	}
	if !cs.AllowPath([]string{"experience", "company"}, nil) {
		t.Fatal("unrelated path should pass")
	}
	neg := &Constraints{List: []Constraint{Not(Parent("experience", "degree"))}}
	if neg.AllowPath([]string{"experience", "degree"}, nil) {
		t.Fatal("negated parent should reject")
	}
	if !neg.AllowPath([]string{"education", "degree"}, nil) {
		t.Fatal("negated parent should allow other ancestors")
	}
}

func TestAllowPathSibling(t *testing.T) {
	cs := &Constraints{List: []Constraint{Sibling("degree", "date")}}
	if cs.AllowPath([]string{"degree", "date"}, nil) {
		t.Fatal("siblings must not nest")
	}
	if cs.AllowPath([]string{"date", "x", "degree"}, nil) {
		t.Fatal("siblings must not nest transitively")
	}
	if !cs.AllowPath([]string{"education", "degree"}, nil) {
		t.Fatal("unrelated nesting fine")
	}
}

func TestAllowPathStructuralClasses(t *testing.T) {
	set := MustSet(
		Concept{Name: "education", Role: RoleTitle},
		Concept{Name: "degree", Role: RoleContent},
		Concept{Name: "misc", Role: RoleAny},
	)
	cs := &Constraints{NoRepeatOnPath: true, MaxDepth: 4, RoleDepth: true}
	if !cs.AllowPath([]string{"education", "degree"}, set) {
		t.Fatal("well-formed path rejected")
	}
	if cs.AllowPath([]string{"education", "degree", "degree"}, set) {
		t.Fatal("repeat on path should reject")
	}
	if cs.AllowPath([]string{"degree"}, set) {
		t.Fatal("content name at depth 1 should reject")
	}
	if cs.AllowPath([]string{"education", "education2", "x", "y", "z"}, set) {
		t.Fatal("beyond max depth should reject")
	}
	if cs.AllowPath([]string{"misc", "education"}, set) {
		t.Fatal("title name at depth 2 should reject")
	}
	if !cs.AllowPath([]string{"misc", "misc2"}, set) {
		t.Fatal("RoleAny should be unconstrained")
	}
}

func TestNilConstraintsAllowEverything(t *testing.T) {
	var cs *Constraints
	if !cs.AllowPath([]string{"a", "a", "a", "a", "a", "a"}, nil) {
		t.Fatal("nil constraints must allow all")
	}
}

func TestPaperExhaustive(t *testing.T) {
	// §4.2: 24^5 - 1 = 7,962,623 nodes for 24 concepts, depth ≤ 4.
	if got := PaperExhaustive(24, 4); got != 7962623 {
		t.Fatalf("PaperExhaustive(24,4) = %d, want 7962623", got)
	}
}

func TestSearchSpace(t *testing.T) {
	if got := SearchSpace(2, 3); got != 2+4+8 {
		t.Fatalf("SearchSpace(2,3) = %v", got)
	}
}

func TestCountConstrainedPathsSmall(t *testing.T) {
	set := MustSet(
		Concept{Name: "t1", Role: RoleTitle},
		Concept{Name: "t2", Role: RoleTitle},
		Concept{Name: "c1", Role: RoleContent},
	)
	cs := &Constraints{NoRepeatOnPath: true, MaxDepth: 2, RoleDepth: true}
	// Depth-1 paths: t1, t2 (c1 rejected). Depth-2: t1/c1, t2/c1 (titles at
	// depth 2 rejected; repeats impossible at this size). Total 4.
	if got := cs.CountConstrainedPaths(set, 2); got != 4 {
		t.Fatalf("constrained paths = %d, want 4", got)
	}
}

func TestCountConstrainedPathsResumeScale(t *testing.T) {
	// The paper reports 1,871 admissible nodes for its exact (unpublished)
	// constraint set; ours must land in the same order of magnitude and be
	// a tiny fraction of the exhaustive space.
	set := ResumeSet()
	cs := ResumeConstraints()
	got := cs.CountConstrainedPaths(set, 4)
	if got <= 0 {
		t.Fatal("no admissible paths")
	}
	exhaustive := PaperExhaustive(24, 4)
	frac := float64(got) / float64(exhaustive)
	if frac > 0.01 {
		t.Fatalf("constraints prune too little: %d of %d (%.4f)", got, exhaustive, frac)
	}
	t.Logf("admissible=%d exhaustive=%d fraction=%.5f%%", got, exhaustive, frac*100)
}

func TestDescribe(t *testing.T) {
	cs := &Constraints{
		NoRepeatOnPath: true,
		MaxDepth:       4,
		RoleDepth:      true,
		List:           []Constraint{Parent("education", "degree")},
	}
	d := cs.Describe()
	for _, want := range []string{"no concept repeats", "max depth 4", "title names", "parent(education, degree)"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
