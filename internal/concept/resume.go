package concept

// ResumeConcepts returns the resume-domain vocabulary used throughout the
// evaluation: 24 concept names partitioned into 11 title names and 13
// content names, carrying 233 concept instances in total — the figures the
// paper reports in §4 ("24 concept names and a total of 233 concept
// instances specified as domain knowledge", "11 are title names and 13 are
// content names"). The instance lists are reconstructed from the paper's
// examples (University/College for institution, B.S. for degree, …) and
// padded with era-appropriate synonyms to reach the reported total.
func ResumeConcepts() []Concept {
	return []Concept{
		// ---- 11 title names (section headings; depth 1) ----
		{Name: "contact", Role: RoleTitle, Instances: []string{
			"contact information", "contact info", "address", "phone",
			"telephone", "email", "e-mail", "home page", "homepage", "fax",
		}},
		{Name: "objective", Role: RoleTitle, Instances: []string{
			"career objective", "job objective", "professional objective",
			"employment objective", "goal", "career goal", "seeking",
			"position desired", "summary of qualifications",
		}},
		{Name: "education", Role: RoleTitle, Instances: []string{
			"educational background", "education and training", "academic background",
			"academic history", "academics", "schooling", "educational history",
			"education background", "studies",
		}},
		{Name: "experience", Role: RoleTitle, Instances: []string{
			"work experience", "professional experience", "employment",
			"employment history", "work history", "professional background",
			"relevant experience", "career history", "positions held",
			"professional summary",
		}},
		{Name: "skills", Role: RoleTitle, Instances: []string{
			"technical skills", "computer skills", "skill set", "skillset",
			"qualifications", "technical summary", "areas of expertise",
			"expertise", "competencies", "technical proficiencies",
			"computer knowledge",
		}},
		{Name: "awards", Role: RoleTitle, Instances: []string{
			"honors", "honours", "awards and honors", "honors and awards",
			"achievements", "accomplishments", "recognition", "distinctions",
			"scholarships", "fellowships",
		}},
		{Name: "activities", Role: RoleTitle, Instances: []string{
			"extracurricular activities", "interests", "hobbies",
			"professional activities", "memberships", "affiliations",
			"professional affiliations", "volunteer work", "community service",
			"leadership",
		}},
		{Name: "reference", Role: RoleTitle, Instances: []string{
			"references", "references available", "referees",
			"references available upon request", "references upon request",
			"recommendations",
		}},
		{Name: "courses", Role: RoleTitle, Instances: []string{
			"coursework", "course work", "relevant coursework",
			"relevant courses", "courses taken", "selected courses",
			"related coursework", "classes",
		}},
		{Name: "publications", Role: RoleTitle, Instances: []string{
			"papers", "selected publications", "publications and presentations",
			"presentations", "articles", "conference papers", "journal papers",
			"technical reports",
		}},
		{Name: "projects", Role: RoleTitle, Instances: []string{
			"selected projects", "research projects", "academic projects",
			"class projects", "personal projects", "project experience",
			"research experience", "portfolio",
		}},

		// ---- 13 content names (describe title content; depth > 1) ----
		{Name: "institution", Role: RoleContent, Instances: []string{
			"university", "college", "institute", "school", "academy",
			"polytechnic", "state university", "univ",
		}},
		{Name: "degree", Role: RoleContent, Instances: []string{
			"b.s.", "bs", "b.a.", "m.s.", "ms", "m.a.", "ph.d.", "phd",
			"mba", "bachelor", "master", "doctorate", "diploma",
		}},
		{Name: "date", Role: RoleContent, Instances: []string{
			"january", "february", "march", "april", "may", "june", "july",
			"august", "september", "october", "november", "december",
			"present", "summer", "fall", "spring", "winter",
		}},
		{Name: "gpa", Role: RoleContent, Instances: []string{
			"g.p.a.", "grade point average", "gpa:", "cumulative gpa",
			"overall gpa",
		}},
		{Name: "company", Role: RoleContent, Instances: []string{
			"inc", "inc.", "corp", "corporation", "ltd", "llc", "co.",
			"laboratories", "systems",
		}},
		{Name: "title", Role: RoleContent, Instances: []string{
			"engineer", "software engineer", "developer", "programmer",
			"analyst", "consultant", "manager", "director", "intern",
		}},
		{Name: "programming-skills", Role: RoleContent, Instances: []string{
			"java", "c++", "perl", "javascript", "html", "xml", "sql",
			"unix", "oracle", "cgi", "tcl",
		}},
		{Name: "location", Role: RoleContent, Instances: []string{
			"california", "new york", "texas", "boston", "san jose",
			"sunnyvale", "davis",
		}},
		{Name: "gradation", Role: RoleContent, Instances: []string{
			"graduated", "expected", "anticipated", "candidate",
			"expected graduation",
		}},
		{Name: "major", Role: RoleContent, Instances: []string{
			"computer science", "electrical engineering", "mathematics",
			"physics", "computer engineering", "economics", "statistics",
		}},
		{Name: "citizenship", Role: RoleContent, Instances: []string{
			"citizen", "us citizen", "u.s. citizen", "permanent resident",
			"visa",
		}},
		{Name: "language", Role: RoleContent, Instances: []string{
			"english", "spanish", "french", "german", "chinese", "japanese",
			"fluent",
		}},
		{Name: "description", Role: RoleContent, Instances: []string{
			"responsible for", "developed", "designed", "implemented",
			"maintained", "managed", "led",
		}},
	}
}

// ResumeSet compiles ResumeConcepts into a Set.
func ResumeSet() *Set { return MustSet(ResumeConcepts()...) }

// ResumeConstraints returns the constraint classes the paper specifies in
// §4.2: no concept name more than once along any label path, title names at
// depth 1, content names at depth > 1, and no concept at depth greater
// than 4 — where the document root occupies depth 1, so concept paths have
// length at most 3. That reading reproduces the paper's count exactly:
// 1 + 11 + 11·13 + 11·13·12 = 1871 admissible trie nodes including the
// root.
func ResumeConstraints() *Constraints {
	return &Constraints{
		NoRepeatOnPath: true,
		MaxDepth:       3,
		RoleDepth:      true,
	}
}
