package query

import (
	"context"
	"testing"

	"webrev/internal/dom"
	"webrev/internal/pathindex"
)

// ctxIndex builds an index with enough occurrences that the stride-based
// cancellation check fires during a walk.
func ctxIndex(t *testing.T, docs int) *pathindex.Frozen {
	t.Helper()
	trees := make([]*dom.Node, docs)
	for i := range trees {
		trees[i] = dom.Elem("resume", nil,
			dom.Elem("contact", []string{"val", "x"}),
			dom.Elem("education", nil,
				dom.Elem("institution", []string{"val", "UC"}),
			),
		)
	}
	return pathindex.Build(trees).Freeze()
}

func TestEachContextUncancellable(t *testing.T) {
	ix := ctxIndex(t, 8)
	q, err := Compile("//institution")
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.CountContext(context.Background(), ix)
	if err != nil || n != 8 {
		t.Fatalf("CountContext(Background) = %d, %v; want 8, nil", n, err)
	}
}

func TestEachContextAlreadyCancelled(t *testing.T) {
	ix := ctxIndex(t, 8)
	q, err := Compile("//institution")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	if err := q.EachContext(ctx, ix, func(string, pathindex.Ref) bool {
		calls++
		return true
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("cancelled-before-start walk visited %d matches, want 0", calls)
	}
}

func TestEachContextCancelsMidWalk(t *testing.T) {
	// More than one stride of matches so the in-walk check fires.
	ix := ctxIndex(t, ctxCheckStride*3)
	q, err := Compile("//*")
	if err != nil {
		t.Fatal(err)
	}
	total, err := q.CountContext(context.Background(), ix)
	if err != nil {
		t.Fatal(err)
	}
	if total <= ctxCheckStride {
		t.Fatalf("test index too small: %d matches", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err = q.EachContext(ctx, ix, func(string, pathindex.Ref) bool {
		calls++
		if calls == ctxCheckStride/2 {
			cancel() // fires mid-walk; the next stride check must stop it
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls >= total {
		t.Fatalf("walk ran to completion (%d of %d) despite cancellation", calls, total)
	}
}

func TestCountContextPartialOnCancel(t *testing.T) {
	ix := ctxIndex(t, ctxCheckStride*2)
	q, err := Compile("//*")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := q.CountContext(ctx, ix)
	if err != context.Canceled || n != 0 {
		t.Fatalf("CountContext(cancelled) = %d, %v; want 0, Canceled", n, err)
	}
}
