package query

import (
	"testing"

	"webrev/internal/dom"
	"webrev/internal/pathindex"
)

// TestRootAnchoring pins the anchoring semantics matchSteps documents:
// a query starting with a child step is anchored at the document root,
// while a leading descendant step may bind at any depth. The old
// implementation carried a dead atRoot parameter — anchoring worked only
// because every candidate path is absolute, and nothing pinned it.
func TestRootAnchoring(t *testing.T) {
	// /education/institution names a real subpath, but not from the root:
	// anchored evaluation must reject it.
	if got := mustEval(t, "/education/institution"); len(got) != 0 {
		t.Fatalf("/education/institution matched %d nodes; want 0 (not anchored at root)", len(got))
	}
	// The same location reached by a descendant step matches.
	if got := mustEval(t, "//education/institution"); len(got) != 3 {
		t.Fatalf("//education/institution matched %d nodes; want 3", len(got))
	}
	// Direct matcher-level pin: /a/b must not float to a deeper suffix.
	steps := []Step{{Label: "a"}, {Label: "b"}}
	if matchSteps(steps, "x/a/b") {
		t.Fatal("/a/b matched x/a/b; child steps must anchor at the root")
	}
	if !matchSteps(steps, "a/b") {
		t.Fatal("/a/b failed to match a/b")
	}
	if !matchSteps([]Step{{Label: "b", Descendant: true}}, "x/a/b") {
		t.Fatal("//b failed to match x/a/b")
	}
}

// TestPredicateQuoting pins the balanced-quote grammar: values keep
// embedded quotes, escapes decode, and malformed literals fail to compile
// instead of being silently "repaired" by trimming.
func TestPredicateQuoting(t *testing.T) {
	root := el("r")
	for _, val := range []string{
		"B.S.",   // plain
		`"B.S."`, // value that itself starts and ends with quotes
		"a/b",    // '/' inside a value is not a step separator
		"[x]",    // brackets inside a value are not a predicate
		`a\b`,    // literal backslash
	} {
		root.AppendChild(elv("v", val))
	}
	ix := pathindex.Build([]*dom.Node{root})
	cases := []struct {
		expr string
		want int
	}{
		{`//v[@val="B.S."]`, 1},
		{`//v[@val="\"B.S.\""]`, 1},
		{`//v[@val~"B.S."]`, 2}, // substring hits the plain and quoted values
		{`//v[@val="a/b"]`, 1},
		{`//v[@val="[x]"]`, 1},
		{`//v[@val~"x]"]`, 1},
		{`//v[@val="a\\b"]`, 1},
	}
	for _, c := range cases {
		q, err := Compile(c.expr)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.expr, err)
			continue
		}
		if got := len(q.Evaluate(ix)); got != c.want {
			t.Errorf("%s matched %d; want %d", c.expr, got, c.want)
		}
	}
	malformed := []string{
		`//v[@val=B.S.]`,  // unquoted: the old Trim accepted this silently
		`//v[@val="B.S.]`, // missing closing quote
		`//v[@val=B.S."]`, // missing opening quote
		`//v[@val=""x]`,   // text after closing quote
		`//v[@val="a\x"]`, // unsupported escape
		`//v[@val="a\]`,   // escape swallows the would-be closing quote
		`//v[@val=]`,      // empty literal
		`//v[@val="]`,     // lone quote
	}
	for _, expr := range malformed {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) should fail", expr)
		}
	}
}

// TestCompileEdgeCases is the table-driven compile suite: empty steps,
// trailing slashes, wildcard chains, descendant-at-root, and predicate
// malformations in one place.
func TestCompileEdgeCases(t *testing.T) {
	cases := []struct {
		expr    string
		wantErr bool
		steps   int
	}{
		{"", true, 0},
		{"   ", true, 0},
		{"/", true, 0},
		{"//", true, 0},
		{"resume", true, 0},
		{"/resume/", true, 0},
		{"/resume//", true, 0},
		{"/resume///date", true, 0}, // empty step between separators
		{"/resume", false, 1},
		{"//resume", false, 1},
		{"//*", false, 1}, // lifted: //* is now a supported query
		{"/*", false, 1},
		{"/*/*/*", false, 3},
		{"/resume//*", false, 2},
		{"//a//b//c", false, 3},
		{`/a[@val="x"]`, false, 1},
		{`/a[@val~"x"]`, false, 1},
		{`/a[@val~"x"`, true, 0},
		{`/a[]`, true, 0},
		{`/a[@val]`, true, 0},
		{`[@val="x"]`, true, 0},
	}
	for _, c := range cases {
		q, err := Compile(c.expr)
		if c.wantErr {
			if err == nil {
				t.Errorf("Compile(%q) should fail, got %+v", c.expr, q.Steps)
			}
			continue
		}
		if err != nil {
			t.Errorf("Compile(%q): %v", c.expr, err)
			continue
		}
		if len(q.Steps) != c.steps {
			t.Errorf("Compile(%q) = %d steps; want %d", c.expr, len(q.Steps), c.steps)
		}
	}
}

// TestDescendantWildcard pins //* semantics: every element, at any depth.
func TestDescendantWildcard(t *testing.T) {
	// index() holds 14 elements across its two documents.
	if got := mustEval(t, "//*"); len(got) != 14 {
		t.Fatalf("//* matched %d; want 14", len(got))
	}
	// /resume//* is every element strictly below a root resume.
	if got := mustEval(t, "/resume//*"); len(got) != 12 {
		t.Fatalf("/resume//* matched %d; want 12", len(got))
	}
}

// TestCountMatchesEvaluate pins Count == len(Evaluate) across shapes;
// TestCountDoesNotMaterialize pins the "no result slice" claim with an
// allocation budget.
func TestCountMatchesEvaluate(t *testing.T) {
	ix := index()
	for _, expr := range []string{
		"/resume", "//date", "/resume/*", "//*", `//degree[@val="B.S."]`,
		`//institution[@val~"a"]`, "/nope", "//nope",
	} {
		q, err := Compile(expr)
		if err != nil {
			t.Fatalf("Compile(%q): %v", expr, err)
		}
		if got, want := q.Count(ix), len(q.Evaluate(ix)); got != want {
			t.Errorf("Count(%s) = %d; Evaluate found %d", expr, got, want)
		}
	}
}

func TestCountDoesNotMaterialize(t *testing.T) {
	// A corpus wide enough that materializing results would need many
	// slice growths.
	var docs []*dom.Node
	for d := 0; d < 64; d++ {
		root := el("r")
		for i := 0; i < 32; i++ {
			root.AppendChild(elv("leaf", "v"))
		}
		docs = append(docs, root)
	}
	frozen := pathindex.Build(docs).Freeze()
	q, err := Compile("//leaf")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Count(frozen); got != 64*32 {
		t.Fatalf("count = %d; want %d", got, 64*32)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		q.Count(frozen)
	}); allocs != 0 {
		t.Errorf("Count allocated %.0f objects per run; want 0", allocs)
	}
	// The equality-predicate path must stay allocation-free too.
	qp, err := Compile(`//leaf[@val="v"]`)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		qp.Count(frozen)
	}); allocs != 0 {
		t.Errorf("Count with predicate allocated %.0f objects per run; want 0", allocs)
	}
}

// TestUnquote covers the literal grammar directly.
func TestUnquote(t *testing.T) {
	good := map[string]string{
		`""`:         "",
		`"x"`:        "x",
		`"\""`:       `"`,
		`"\\"`:       `\`,
		`"a\"b"`:     `a"b`,
		`"[/]"`:      "[/]",
		`"\"B.S.\""`: `"B.S."`,
	}
	for in, want := range good {
		got, err := unquote(in)
		if err != nil {
			t.Errorf("unquote(%s): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("unquote(%s) = %q; want %q", in, got, want)
		}
	}
	for _, in := range []string{``, `"`, `x`, `"x`, `x"`, `"x"y`, `"\x"`, `"\`, `""extra`} {
		if got, err := unquote(in); err == nil {
			t.Errorf("unquote(%s) = %q; want error", in, got)
		}
	}
}

// TestEachEarlyStop pins that a false return stops the stream — the limit
// path of webrevd's query endpoint.
func TestEachEarlyStop(t *testing.T) {
	ix := index()
	q, err := Compile("//*")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	q.Each(ix, func(path string, ref pathindex.Ref) bool {
		if path == "" || ref.Node == nil {
			t.Fatalf("empty visit: path=%q ref=%+v", path, ref)
		}
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop visited %d; want 5", seen)
	}
}
