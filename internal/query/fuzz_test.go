package query

import (
	"testing"

	"webrev/internal/dom"
	"webrev/internal/pathindex"
)

// FuzzCompile feeds arbitrary expressions through Compile and, for the
// ones that compile, checks the engine's internal invariants: evaluation
// never panics, Count agrees with Evaluate, and the compiled form
// round-trips (String() recompiles to the same shape). Run in the fuzz CI
// lane next to the parser and converter targets.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"/resume/education/institution",
		"//institution",
		"/resume//date",
		"/resume/*/degree",
		"//*",
		`//degree[@val="B.S."]`,
		`//institution[@val~"Davis"]`,
		`//v[@val="\"quoted\""]`,
		`//v[@val="a\\b"]`,
		"", "/", "//", "/a[", "/a[]", "/a[@val=", `/a[@val="]`,
		"/a//", "///", "/a[@val~\"x\"", "[@val=\"x\"]",
	} {
		f.Add(seed)
	}
	ix := pathindex.Build([]*dom.Node{
		dom.Elem("resume", nil,
			dom.Elem("education", nil,
				dom.Elem("institution", []string{"val", `"UC" Davis`}),
				dom.Elem("degree", []string{"val", "B.S."}),
			),
			dom.Elem("date", []string{"val", "1996"}),
		),
	})
	frozen := ix.Freeze()
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := Compile(expr)
		if err != nil {
			return
		}
		if len(q.Steps) == 0 {
			t.Fatalf("Compile(%q) succeeded with zero steps", expr)
		}
		refs := q.Evaluate(ix)
		if n := q.Count(ix); n != len(refs) {
			t.Fatalf("Count(%q) = %d, Evaluate found %d", expr, n, len(refs))
		}
		// The frozen index must agree with the mutable one.
		if n := q.Count(frozen); n != len(refs) {
			t.Fatalf("frozen Count(%q) = %d, mutable found %d", expr, n, len(refs))
		}
		// String() preserves the source; it must recompile to the same
		// shape.
		q2, err := Compile(q.String())
		if err != nil {
			t.Fatalf("recompile of %q failed: %v", q.String(), err)
		}
		if len(q2.Steps) != len(q.Steps) || (q2.Pred == nil) != (q.Pred == nil) {
			t.Fatalf("recompile of %q changed shape", expr)
		}
	})
}
