package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"webrev/internal/dom"
	"webrev/internal/pathindex"
	"webrev/internal/schema"
)

func el(tag string, children ...*dom.Node) *dom.Node {
	return dom.Elem(tag, nil, children...)
}

func elv(tag, val string, children ...*dom.Node) *dom.Node {
	n := dom.Elem(tag, []string{"val", val}, children...)
	return n
}

func index() *pathindex.Index {
	return pathindex.Build([]*dom.Node{
		el("resume",
			elv("contact", "a@x"),
			el("education",
				elv("institution", "UC Davis",
					elv("degree", "B.S."),
					elv("date", "June 1996"),
				),
				elv("institution", "Stanford",
					elv("degree", "M.S."),
				),
			),
			el("courses", elv("date", "Fall 1997")),
		),
		el("resume",
			el("education",
				elv("institution", "MIT", elv("degree", "B.S.")),
			),
		),
	})
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "resume", "/", "//", "/resume/", "/resume//",
		"/a[@val~\"x\"", "/a[zzz]", "/a[val=\"x\"]",
	}
	for _, q := range bad {
		if _, err := Compile(q); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}

func TestCompileStructure(t *testing.T) {
	q, err := Compile(`/resume//date[@val~"June"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Steps) != 2 || q.Steps[0].Descendant || !q.Steps[1].Descendant {
		t.Fatalf("steps = %+v", q.Steps)
	}
	if q.Pred == nil || !q.Pred.Contains || q.Pred.Value != "June" {
		t.Fatalf("pred = %+v", q.Pred)
	}
	if q.String() != `/resume//date[@val~"June"]` {
		t.Fatalf("String = %q", q.String())
	}
}

func mustEval(t *testing.T, expr string) []pathindex.Ref {
	t.Helper()
	q, err := Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return q.Evaluate(index())
}

func TestChildSteps(t *testing.T) {
	if got := mustEval(t, "/resume/education/institution"); len(got) != 3 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := mustEval(t, "/resume/contact"); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := mustEval(t, "/resume/institution"); len(got) != 0 {
		t.Fatalf("wrong-level match: %d", len(got))
	}
}

func TestDescendantSteps(t *testing.T) {
	// date appears under institution and under courses.
	if got := mustEval(t, "//date"); len(got) != 2 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := mustEval(t, "/resume//degree"); len(got) != 3 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := mustEval(t, "//resume"); len(got) != 2 {
		t.Fatalf("root via //: %d", len(got))
	}
}

func TestWildcardStep(t *testing.T) {
	// /resume/*/institution: any single level between resume and inst.
	if got := mustEval(t, "/resume/*/institution"); len(got) != 3 {
		t.Fatalf("matches = %d", len(got))
	}
	// doc0 has contact/education/courses, doc1 has education.
	if got := mustEval(t, "/resume/*"); len(got) != 4 {
		t.Fatalf("matches = %d", len(got))
	}
}

func TestPredicates(t *testing.T) {
	if got := mustEval(t, `//degree[@val="B.S."]`); len(got) != 2 {
		t.Fatalf("equality matches = %d", len(got))
	}
	if got := mustEval(t, `//institution[@val~"Davis"]`); len(got) != 1 {
		t.Fatalf("contains matches = %d", len(got))
	}
	if got := mustEval(t, `//date[@val~"June"]`); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := mustEval(t, `//degree[@val="Ph.D."]`); len(got) != 0 {
		t.Fatalf("phantom matches = %d", len(got))
	}
}

func TestCount(t *testing.T) {
	q, err := Compile("//institution")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Count(index()); got != 3 {
		t.Fatalf("count = %d", got)
	}
}

func TestEvaluateReturnsUsableRefs(t *testing.T) {
	refs := mustEval(t, `//institution[@val~"MIT"]`)
	if len(refs) != 1 {
		t.Fatalf("refs = %+v", refs)
	}
	if refs[0].Doc != 1 || refs[0].Node.Val() != "MIT" {
		t.Fatalf("ref = %+v", refs[0])
	}
	// The node is live: navigate to its children.
	if refs[0].Node.FindElement("degree") == nil {
		t.Fatal("ref node lost its subtree")
	}
}

// naiveEvaluate re-implements query evaluation as a direct tree walk,
// used as the oracle for the differential property test.
func naiveEvaluate(q *Query, docs []*dom.Node) int {
	count := 0
	var walk func(n *dom.Node, path []string)
	walk = func(n *dom.Node, path []string) {
		if n.Type != dom.ElementNode {
			return
		}
		path = append(path, n.Tag)
		if matchSteps(q.Steps, schema.Join(path)) {
			if q.Pred == nil {
				count++
			} else {
				val := n.Val()
				if q.Pred.Contains && strings.Contains(val, q.Pred.Value) {
					count++
				} else if !q.Pred.Contains && val == q.Pred.Value {
					count++
				}
			}
		}
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	for _, d := range docs {
		walk(d, nil)
	}
	return count
}

func TestPropertyIndexMatchesNaiveWalk(t *testing.T) {
	tags := []string{"resume", "education", "institution", "degree", "date"}
	exprs := []string{
		"/resume", "//degree", "/resume/education", "/resume//date",
		"/resume/*/degree", "//institution", `//degree[@val="x"]`,
		`//date[@val~"19"]`, "//*", "/resume//*", "//education//*",
	}
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var docs []*dom.Node
		for d := 0; d < 1+int(size%3); d++ {
			root := el("resume")
			nodes := []*dom.Node{root}
			for i := 0; i < int(size%30); i++ {
				p := nodes[r.Intn(len(nodes))]
				c := el(tags[1+r.Intn(len(tags)-1)])
				if r.Intn(2) == 0 {
					c.SetVal([]string{"x", "1996", "y"}[r.Intn(3)])
				}
				p.AppendChild(c)
				nodes = append(nodes, c)
			}
			docs = append(docs, root)
		}
		ix := pathindex.Build(docs)
		for _, expr := range exprs {
			q, err := Compile(expr)
			if err != nil {
				return false
			}
			if len(q.Evaluate(ix)) != naiveEvaluate(q, docs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvaluateDescendant(b *testing.B) {
	ix := index()
	q, _ := Compile(`//degree[@val="B.S."]`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Evaluate(ix)
	}
}
