// Package query implements a small label-path query language over an XML
// repository — the retrieval capability the paper's introduction motivates
// ("querying Web based data in a way more efficient and effective than just
// keyword based retrieval"). Queries are evaluated against the path index
// of internal/pathindex.
//
// Syntax (a practical XPath subset over label paths and val attributes):
//
//	/resume/education/institution          child steps
//	//institution                          descendant step (any depth)
//	/resume//date                          mixed
//	/resume/*/degree                       single-step wildcard
//	//institution[@val~"Davis"]            val contains
//	//degree[@val="B.S."]                  val equals
//
// Predicates apply to the final step.
package query

import (
	"fmt"
	"strings"

	"webrev/internal/pathindex"
	"webrev/internal/schema"
)

// Step is one location step of a compiled query.
type Step struct {
	Label      string // element name, or "*" for any
	Descendant bool   // true when reached via "//" (any depth ≥ 1)
}

// Predicate restricts the val attribute of matched nodes.
type Predicate struct {
	Contains bool // substring match rather than equality
	Value    string
}

// Query is a compiled query.
type Query struct {
	Steps []Step
	Pred  *Predicate
	src   string
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

// Compile parses a query expression.
func Compile(src string) (*Query, error) {
	q := &Query{src: src}
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("query: empty expression")
	}
	// Trailing predicate.
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("query: unterminated predicate in %q", src)
		}
		pred, err := parsePredicate(s[i+1 : len(s)-1])
		if err != nil {
			return nil, err
		}
		q.Pred = pred
		s = s[:i]
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("query: expression must start with / or //")
	}
	for len(s) > 0 {
		desc := false
		switch {
		case strings.HasPrefix(s, "//"):
			desc = true
			s = s[2:]
		case strings.HasPrefix(s, "/"):
			s = s[1:]
		}
		if s == "" {
			return nil, fmt.Errorf("query: trailing slash in %q", src)
		}
		end := strings.IndexByte(s, '/')
		var label string
		if end < 0 {
			label, s = s, ""
		} else {
			label, s = s[:end], s[end:]
		}
		if label == "" {
			return nil, fmt.Errorf("query: empty step in %q", src)
		}
		if label == "*" && desc {
			return nil, fmt.Errorf("query: //* is not supported")
		}
		q.Steps = append(q.Steps, Step{Label: label, Descendant: desc})
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("query: no steps in %q", src)
	}
	return q, nil
}

func parsePredicate(s string) (*Predicate, error) {
	s = strings.TrimSpace(s)
	for _, op := range []struct {
		sep      string
		contains bool
	}{{"~", true}, {"=", false}} {
		prefix := "@val" + op.sep
		if strings.HasPrefix(s, prefix) {
			v := strings.TrimPrefix(s, prefix)
			v = strings.Trim(v, `"`)
			return &Predicate{Contains: op.contains, Value: v}, nil
		}
	}
	return nil, fmt.Errorf("query: unsupported predicate [%s]", s)
}

// matchPath reports whether a Sep-joined label path satisfies the steps.
func (q *Query) matchPath(path string) bool {
	labels := schema.Split(path)
	return matchSteps(q.Steps, labels, true)
}

// matchSteps matches steps against labels. atRoot requires the first
// non-descendant step to match the first label.
func matchSteps(steps []Step, labels []string, atRoot bool) bool {
	if len(steps) == 0 {
		return len(labels) == 0
	}
	st := steps[0]
	if st.Descendant {
		// Skip 0..n labels before matching (descendant-or-deeper: // means
		// any depth ≥ 1 below the current point; at the very start //x also
		// matches a root named x).
		for i := 0; i < len(labels); i++ {
			if stepMatches(st, labels[i]) && matchSteps(steps[1:], labels[i+1:], false) {
				return true
			}
		}
		return false
	}
	if len(labels) == 0 || !stepMatches(st, labels[0]) {
		return false
	}
	return matchSteps(steps[1:], labels[1:], false)
}

func stepMatches(st Step, label string) bool {
	return st.Label == "*" || st.Label == label
}

// Evaluate runs the query against an index and returns the matching node
// references in index order.
func (q *Query) Evaluate(ix *pathindex.Index) []pathindex.Ref {
	var out []pathindex.Ref
	// Candidate paths: when the final step is a concrete label, only paths
	// ending in it can match; otherwise scan all.
	last := q.Steps[len(q.Steps)-1]
	var candidates []string
	if last.Label != "*" {
		candidates = ix.PathsEndingIn(last.Label)
	} else {
		candidates = ix.Paths()
	}
	for _, p := range candidates {
		if !q.matchPath(p) {
			continue
		}
		for _, ref := range ix.Lookup(p) {
			if q.Pred == nil || q.predMatches(ref) {
				out = append(out, ref)
			}
		}
	}
	return out
}

func (q *Query) predMatches(ref pathindex.Ref) bool {
	val := ref.Node.Val()
	if q.Pred.Contains {
		return strings.Contains(val, q.Pred.Value)
	}
	return val == q.Pred.Value
}

// Count returns the number of matches without materializing them all.
func (q *Query) Count(ix *pathindex.Index) int {
	return len(q.Evaluate(ix))
}
