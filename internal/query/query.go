// Package query implements a small label-path query language over an XML
// repository — the retrieval capability the paper's introduction motivates
// ("querying Web based data in a way more efficient and effective than just
// keyword based retrieval"). Queries are evaluated against the path index
// of internal/pathindex, either the mutable build-time Index or the frozen
// read-only form webrevd serves from.
//
// Syntax (a practical XPath subset over label paths and val attributes):
//
//	/resume/education/institution          child steps
//	//institution                          descendant step (any depth)
//	/resume//date                          mixed
//	/resume/*/degree                       single-step wildcard
//	//*                                    every element
//	//institution[@val~"Davis"]            val contains
//	//degree[@val="B.S."]                  val equals
//	//degree[@val="\"B.S.\""]              escaped quotes inside values
//
// Predicates apply to the final step. Predicate values must be balanced
// double-quoted strings; `\"` and `\\` are the only escapes.
package query

import (
	"context"
	"fmt"
	"strings"

	"webrev/internal/pathindex"
	"webrev/internal/schema"
)

// Step is one location step of a compiled query.
type Step struct {
	Label      string // element name, or "*" for any
	Descendant bool   // true when reached via "//" (any depth ≥ 1)
}

// Predicate restricts the val attribute of matched nodes.
type Predicate struct {
	Contains bool // substring match rather than equality
	Value    string
}

// Query is a compiled query.
type Query struct {
	Steps []Step
	Pred  *Predicate
	src   string
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

// Index is the read-side of a path index, the surface Evaluate, Each and
// Count need. Both *pathindex.Index and *pathindex.Frozen satisfy it, so
// queries run unchanged against a build-time index or a serving snapshot.
type Index interface {
	// Paths returns every indexed label path, sorted.
	Paths() []string
	// PathsEndingIn returns the indexed paths whose final label is label,
	// sorted.
	PathsEndingIn(label string) []string
	// Lookup returns all occurrences of the exact label path in indexing
	// order.
	Lookup(path string) []pathindex.Ref
}

// Compile parses a query expression.
func Compile(src string) (*Query, error) {
	q := &Query{src: src}
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("query: empty expression")
	}
	// Trailing predicate.
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("query: unterminated predicate in %q", src)
		}
		pred, err := parsePredicate(s[i+1 : len(s)-1])
		if err != nil {
			return nil, err
		}
		q.Pred = pred
		s = s[:i]
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("query: expression must start with / or //")
	}
	for len(s) > 0 {
		desc := false
		switch {
		case strings.HasPrefix(s, "//"):
			desc = true
			s = s[2:]
		case strings.HasPrefix(s, "/"):
			s = s[1:]
		}
		if s == "" {
			return nil, fmt.Errorf("query: trailing slash in %q", src)
		}
		end := strings.IndexByte(s, '/')
		var label string
		if end < 0 {
			label, s = s, ""
		} else {
			label, s = s[:end], s[end:]
		}
		if label == "" {
			return nil, fmt.Errorf("query: empty step in %q", src)
		}
		q.Steps = append(q.Steps, Step{Label: label, Descendant: desc})
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("query: no steps in %q", src)
	}
	return q, nil
}

func parsePredicate(s string) (*Predicate, error) {
	s = strings.TrimSpace(s)
	var contains bool
	var lit string
	switch {
	case strings.HasPrefix(s, "@val~"):
		contains, lit = true, s[len("@val~"):]
	case strings.HasPrefix(s, "@val="):
		contains, lit = false, s[len("@val="):]
	default:
		return nil, fmt.Errorf("query: unsupported predicate [%s]", s)
	}
	v, err := unquote(lit)
	if err != nil {
		return nil, fmt.Errorf("query: predicate [%s]: %w", s, err)
	}
	return &Predicate{Contains: contains, Value: v}, nil
}

// unquote parses a balanced double-quoted string literal, decoding the two
// supported escapes `\"` and `\\`. Unquoted, half-quoted or trailing text
// is an error — silently trimming quotes corrupted values that legitimately
// begin or end with one (e.g. @val="\"B.S.\"").
func unquote(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' {
		return "", fmt.Errorf("value must be a double-quoted string")
	}
	var b strings.Builder
	for i := 1; i < len(s); {
		switch c := s[i]; c {
		case '"':
			if i != len(s)-1 {
				return "", fmt.Errorf("unexpected text after closing quote")
			}
			return b.String(), nil
		case '\\':
			i++
			if i >= len(s) || (s[i] != '"' && s[i] != '\\') {
				return "", fmt.Errorf(`unsupported escape (only \" and \\)`)
			}
			b.WriteByte(s[i])
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", fmt.Errorf("unterminated string value")
}

// matchPath reports whether a Sep-joined label path satisfies the steps.
// The first step is anchored at the path's root: /a/b matches only paths
// whose first label is a, while //b may match at any depth.
func (q *Query) matchPath(path string) bool {
	return matchSteps(q.Steps, path)
}

// matchSteps matches steps against the remainder of a Sep-joined label
// path ("" means no labels left). A child step consumes exactly the next
// label; a descendant step tries every suffix. Matching walks the string
// directly — no per-call label slice — so evaluation and counting stay
// allocation-free.
func matchSteps(steps []Step, path string) bool {
	if len(steps) == 0 {
		return path == ""
	}
	st := steps[0]
	if st.Descendant {
		// Try each label as the step's match (descendant-or-deeper: //
		// means any depth ≥ 1 below the current point; at the very start
		// //x also matches a root named x).
		for rest := path; rest != ""; {
			label, tail := nextLabel(rest)
			if stepMatches(st, label) && matchSteps(steps[1:], tail) {
				return true
			}
			rest = tail
		}
		return false
	}
	if path == "" {
		return false
	}
	label, tail := nextLabel(path)
	if !stepMatches(st, label) {
		return false
	}
	return matchSteps(steps[1:], tail)
}

// nextLabel splits the first label off a Sep-joined path.
func nextLabel(path string) (label, rest string) {
	if i := strings.Index(path, schema.Sep); i >= 0 {
		return path[:i], path[i+len(schema.Sep):]
	}
	return path, ""
}

func stepMatches(st Step, label string) bool {
	return st.Label == "*" || st.Label == label
}

// Each streams every match to fn in index order (candidate paths sorted,
// then occurrences in indexing order) without materializing a result
// slice. fn returning false stops the walk early — the limit/early-exit
// path of webrevd's query endpoint.
func (q *Query) Each(ix Index, fn func(path string, ref pathindex.Ref) bool) {
	// Candidate paths: when the final step is a concrete label, only paths
	// ending in it can match; otherwise scan all.
	last := q.Steps[len(q.Steps)-1]
	var candidates []string
	if last.Label != "*" {
		candidates = ix.PathsEndingIn(last.Label)
	} else {
		candidates = ix.Paths()
	}
	for _, p := range candidates {
		if !q.matchPath(p) {
			continue
		}
		for _, ref := range ix.Lookup(p) {
			if q.Pred != nil && !q.predMatches(ref) {
				continue
			}
			if !fn(p, ref) {
				return
			}
		}
	}
}

// ctxCheckStride is how many matches EachContext streams between
// cancellation checks — frequent enough that an aborted scan stops within
// microseconds, rare enough that the channel poll never shows up in
// profiles.
const ctxCheckStride = 256

// EachContext is Each with cooperative cancellation: the walk polls
// ctx.Done() every ctxCheckStride matches and stops early when the context
// is cancelled or its deadline passes, returning the context's error. This
// is how webrevd's per-request deadlines abort slow scans instead of
// pinning a worker until the scan finishes on its own. A context that can
// never be cancelled costs nothing extra (the check is skipped entirely).
func (q *Query) EachContext(ctx context.Context, ix Index, fn func(path string, ref pathindex.Ref) bool) error {
	done := ctx.Done()
	if done == nil {
		q.Each(ix, fn)
		return nil
	}
	select {
	case <-done:
		return ctx.Err()
	default:
	}
	var err error
	n := 0
	q.Each(ix, func(p string, ref pathindex.Ref) bool {
		if n++; n%ctxCheckStride == 0 {
			select {
			case <-done:
				err = ctx.Err()
				return false
			default:
			}
		}
		return fn(p, ref)
	})
	return err
}

// CountContext is Count under cooperative cancellation: it returns the
// number of matches streamed before the context fired, and the context's
// error if it did.
func (q *Query) CountContext(ctx context.Context, ix Index) (int, error) {
	n := 0
	err := q.EachContext(ctx, ix, func(string, pathindex.Ref) bool {
		n++
		return true
	})
	return n, err
}

// Evaluate runs the query against an index and returns the matching node
// references in index order.
func (q *Query) Evaluate(ix Index) []pathindex.Ref {
	var out []pathindex.Ref
	q.Each(ix, func(_ string, ref pathindex.Ref) bool {
		out = append(out, ref)
		return true
	})
	return out
}

func (q *Query) predMatches(ref pathindex.Ref) bool {
	val := ref.Node.Val()
	if q.Pred.Contains {
		return strings.Contains(val, q.Pred.Value)
	}
	return val == q.Pred.Value
}

// Count returns the number of matches without materializing them: it walks
// the same candidate paths as Evaluate but only increments a counter, so
// counting a million-match query allocates nothing.
func (q *Query) Count(ix Index) int {
	n := 0
	q.Each(ix, func(string, pathindex.Ref) bool {
		n++
		return true
	})
	return n
}
