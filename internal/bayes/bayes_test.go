package bayes

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func trained() *Classifier {
	c := New()
	for _, ex := range []struct{ text, class string }{
		{"University of California at Davis", "institution"},
		{"Stanford University", "institution"},
		{"San Jose State University", "institution"},
		{"Foothill College", "institution"},
		{"B.S. Computer Science", "degree"},
		{"M.S. Electrical Engineering", "degree"},
		{"Ph.D. candidate in Physics", "degree"},
		{"Bachelor of Arts, Economics", "degree"},
		{"June 1996", "date"},
		{"September 1998 to present", "date"},
		{"January 2000", "date"},
		{"May 1994", "date"},
		{"GPA 3.8/4.0", "gpa"},
		{"GPA: 3.5", "gpa"},
		{"Grade Point Average 3.9", "gpa"},
	} {
		c.Train(ex.text, ex.class)
	}
	return c
}

func TestWords(t *testing.T) {
	got := Words("B.S.(Computer Science), June 1996!")
	want := []string{"b", "s", "computer", "science", "june", "1996"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	if len(Words("  ,,;; ")) != 0 {
		t.Fatal("punctuation-only should yield no words")
	}
}

func TestClassifyBasics(t *testing.T) {
	c := trained()
	cases := map[string]string{
		"University of Texas":       "institution",
		"Harvey Mudd College":       "institution",
		"B.S. in Computer Science":  "degree",
		"M.S. Physics":              "degree",
		"August 1997":               "date",
		"GPA 4.0":                   "gpa",
		"Grade Point Average: 3.95": "gpa",
	}
	for text, want := range cases {
		if got, _ := c.Classify(text); got != want {
			t.Errorf("Classify(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestClassifyUntrained(t *testing.T) {
	c := New()
	if got, _ := c.Classify("anything"); got != Unknown {
		t.Fatalf("untrained Classify = %q", got)
	}
	if c.Trained() {
		t.Fatal("Trained() should be false")
	}
}

func TestClassifyEmptyText(t *testing.T) {
	c := trained()
	if got, _ := c.Classify("..."); got != Unknown {
		t.Fatalf("no-word Classify = %q", got)
	}
}

func TestUnknownThreshold(t *testing.T) {
	c := trained()
	c.MinLogOdds = 2.0
	// A word none of the classes has seen: classes differ only by priors and
	// smoothing, so the margin should be tiny and Unknown returned.
	if got, _ := c.Classify("zzzqqq"); got != Unknown {
		t.Fatalf("ambiguous token classified as %q, want unknown", got)
	}
	// A strongly indicative token must still be classified.
	if got, _ := c.Classify("University University University"); got != "institution" {
		t.Fatalf("strong token = %q", got)
	}
}

func TestClasses(t *testing.T) {
	c := trained()
	want := []string{"date", "degree", "gpa", "institution"}
	if got := c.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Classes = %v", got)
	}
}

func TestTrainEmptyTextIgnored(t *testing.T) {
	c := New()
	c.Train("   ", "x")
	if c.Trained() {
		t.Fatal("empty example should not count")
	}
}

func TestProbabilitiesNormalized(t *testing.T) {
	c := trained()
	p, err := c.Probabilities("B.S. University 1996")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if _, err := New().Probabilities("x"); err == nil {
		t.Fatal("untrained Probabilities should error")
	}
}

func TestClassPriorMatters(t *testing.T) {
	c := New()
	for i := 0; i < 9; i++ {
		c.Train("alpha", "big")
	}
	c.Train("alpha", "small")
	if got, _ := c.Classify("alpha"); got != "big" {
		t.Fatalf("prior-dominant class = %q", got)
	}
}

func TestPropertyClassifyTotalOrder(t *testing.T) {
	// Classify must agree with the argmax of Probabilities when no
	// threshold is set.
	c := trained()
	words := []string{"university", "college", "b", "s", "science", "1996", "june", "gpa", "davis", "physics"}
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		text := ""
		for _, p := range picks {
			text += words[int(p)%len(words)] + " "
		}
		got, _ := c.Classify(text)
		probs, err := c.Probabilities(text)
		if err != nil {
			return false
		}
		best, bestP := "", -1.0
		for class, p := range probs {
			if p > bestP {
				best, bestP = class, p
			}
		}
		// Ties can legitimately differ; accept when probabilities are close.
		return got == best || math.Abs(probs[got]-bestP) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTrainingMonotonicity(t *testing.T) {
	// Adding more examples of class X for a word makes X (weakly) more
	// probable for that word.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New()
		c.Train("foo bar", "a")
		c.Train("baz qux", "b")
		p1, _ := c.Probabilities("foo")
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			c.Train("foo", "a")
		}
		p2, _ := c.Probabilities("foo")
		return p2["a"] >= p1["a"]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	c := trained()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify("University of California at Davis, B.S. Computer Science, June 1996")
	}
}
