package bayes

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// referenceClassify re-implements the pre-freeze classifier verbatim (per
// call math.Log over the raw counts, map iteration replaced by the sorted
// class order the frozen path uses) so tests can assert the compiled tables
// give bit-identical scores.
func referenceClassify(c *Classifier, text string) (string, float64) {
	words := Words(text)
	if len(words) == 0 || c.totalDocs == 0 {
		return Unknown, 0
	}
	v := float64(len(c.vocab))
	best, second := math.Inf(-1), math.Inf(-1)
	bestClass := Unknown
	for _, class := range c.Classes() {
		docs := c.classDocs[class]
		score := math.Log(float64(docs) / float64(c.totalDocs))
		wc := c.classWords[class]
		total := float64(c.classTotals[class])
		for _, w := range words {
			score += math.Log((float64(wc[w]) + 1) / (total + v))
		}
		if score > best {
			second = best
			best = score
			bestClass = class
		} else if score > second {
			second = score
		}
	}
	if c.MinLogOdds > 0 && len(c.classDocs) > 1 && best-second < c.MinLogOdds {
		return Unknown, best
	}
	return bestClass, best
}

func frozenFixture() *Classifier {
	c := New()
	c.Train("University of California at Davis", "institution")
	c.Train("Stanford University", "institution")
	c.Train("B.S. Computer Science", "degree")
	c.Train("M.S. Electrical Engineering", "degree")
	c.Train("June 1996", "date")
	c.Train("January 1998 - present", "date")
	c.Train("Software Engineer", "jobtitle")
	c.Train("Assistant Professor", "jobtitle")
	return c
}

func TestFrozenMatchesReference(t *testing.T) {
	c := frozenFixture()
	inputs := []string{
		"University of Texas",
		"Ph.D. Computer Science",
		"March 2001",
		"Senior Software Engineer",
		"GPA 3.8/4.0",
		"", "   ", ";;;",
		"B.S.(Computer Science)",
		"Universität München", // non-ASCII path
		"June 1996",
	}
	for _, minOdds := range []float64{0, 0.5, 5} {
		c.MinLogOdds = minOdds
		f := c.Freeze()
		for _, in := range inputs {
			wantClass, wantScore := referenceClassify(c, in)
			gotClass, gotScore := f.Classify(in)
			if gotClass != wantClass || gotScore != wantScore {
				t.Errorf("minOdds=%v Classify(%q) = (%q, %v), reference (%q, %v)",
					minOdds, in, gotClass, gotScore, wantClass, wantScore)
			}
			// A second call exercises the memo-hit path.
			hitClass, hitScore := f.Classify(in)
			if hitClass != gotClass || hitScore != gotScore {
				t.Errorf("memo hit diverged for %q: (%q, %v) vs (%q, %v)",
					in, hitClass, hitScore, gotClass, gotScore)
			}
		}
	}
}

func TestFrozenMatchesReferenceQuick(t *testing.T) {
	c := frozenFixture()
	f := c.Freeze()
	fn := func(text string) bool {
		wc, ws := referenceClassify(c, text)
		gc, gs := f.Classify(text)
		return wc == gc && ws == gs
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeInvalidation(t *testing.T) {
	c := New()
	f0 := c.Freeze()
	if f0.Trained() {
		t.Fatal("untrained snapshot reports trained")
	}
	if class, score := f0.Classify("anything"); class != Unknown || score != 0 {
		t.Fatalf("untrained Classify = %q, %v", class, score)
	}
	c.Train("foo bar", "a")
	f1 := c.Freeze()
	if f1 == f0 {
		t.Fatal("Train did not invalidate the frozen snapshot")
	}
	if f1 != c.Freeze() {
		t.Fatal("Freeze rebuilt without new training data")
	}
	c.MinLogOdds = 1.5
	f2 := c.Freeze()
	if f2 == f1 {
		t.Fatal("MinLogOdds change did not invalidate the frozen snapshot")
	}
}

func TestFrozenConcurrent(t *testing.T) {
	c := frozenFixture()
	f := c.Freeze()
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 500; i++ {
				text := fmt.Sprintf("Software Engineer %d", i%37)
				class, _ := f.Classify(text)
				if class == "" {
					t.Error("empty class")
					break
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestFrozenClassifyMemoAllocs asserts the alloc win the tentpole claims:
// a memoized token classifies with zero allocations.
func TestFrozenClassifyMemoAllocs(t *testing.T) {
	f := frozenFixture().Freeze()
	const tok = "University of California at Davis, B.S. Computer Science, June 1996"
	f.Classify(tok) // populate the memo
	allocs := testing.AllocsPerRun(1000, func() { f.Classify(tok) })
	if allocs != 0 {
		t.Fatalf("memoized Classify allocates %v allocs/op, want 0", allocs)
	}
}

// TestFrozenClassifyColdAllocs bounds the miss path: tokenizing into pooled
// scratch and memo insertion must stay within a few allocations (the memo
// key clone plus map growth), nowhere near the one-per-word of the
// unfrozen path.
func TestFrozenClassifyColdAllocs(t *testing.T) {
	f := frozenFixture().Freeze()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		f.Classify(fmt.Sprintf("Department of Computer Science building %d floor %d", i, i%7))
	})
	// fmt.Sprintf costs ~3; the classify miss itself should add only the
	// memo key clone and entry bookkeeping.
	if allocs > 8 {
		t.Fatalf("cold Classify allocates %v allocs/op, want <= 8", allocs)
	}
}

func BenchmarkFrozenClassifyHit(b *testing.B) {
	f := trained().Freeze()
	const tok = "University of California at Davis, B.S. Computer Science, June 1996"
	f.Classify(tok)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Classify(tok)
	}
}

func BenchmarkFrozenClassifyCold(b *testing.B) {
	f := trained().Freeze()
	// Cycle through more unique texts than the memo holds so every call is
	// a miss: this is the table-lookup (no memo) cost.
	texts := make([]string, defaultMemoSize*2)
	for i := range texts {
		texts[i] = fmt.Sprintf("University of California at Davis, B.S. Computer Science, June %d", i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Classify(texts[i%len(texts)])
	}
}
