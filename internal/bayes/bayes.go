// Package bayes implements the multinomial naive Bayes classifier the paper
// uses as its second concept-instance identification mechanism (§2.3.1):
// "the user gives examples on how to associate tokens with concept instances
// by labeling some input HTML documents … the classifier classifies each
// token as a concept instance with the highest probability".
package bayes

import (
	"errors"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"unicode"
)

// Unknown is the class returned when no trained class exceeds the decision
// threshold. The paper feeds the identified/unidentified ratio back to the
// user (§2.3.1); Unknown tokens contribute to that ratio.
const Unknown = "unknown"

// Classifier is a multinomial naive Bayes text classifier with Laplace
// smoothing. The zero value is empty; add examples with Train and call
// Finalize (or just Classify, which finalizes lazily) before classifying.
type Classifier struct {
	classDocs   map[string]int            // class -> number of training tokens
	classWords  map[string]map[string]int // class -> word -> count
	classTotals map[string]int            // class -> total word count
	vocab       map[string]struct{}
	totalDocs   int

	// MinLogOdds is the margin (in nats) by which the best class must beat
	// the uniform prior baseline to avoid Unknown. Zero accepts everything.
	MinLogOdds float64

	// frozen caches the compiled snapshot built by Freeze; Train clears it.
	frozen atomic.Pointer[Frozen]
}

// New returns an empty classifier.
func New() *Classifier {
	return &Classifier{
		classDocs:   make(map[string]int),
		classWords:  make(map[string]map[string]int),
		classTotals: make(map[string]int),
		vocab:       make(map[string]struct{}),
	}
}

// Train adds one labeled example: text is a token's content, class the
// concept name the user assigned.
func (c *Classifier) Train(text, class string) {
	words := Words(text)
	if len(words) == 0 {
		return
	}
	c.classDocs[class]++
	c.totalDocs++
	wc := c.classWords[class]
	if wc == nil {
		wc = make(map[string]int)
		c.classWords[class] = wc
	}
	for _, w := range words {
		wc[w]++
		c.classTotals[class]++
		c.vocab[w] = struct{}{}
	}
	c.frozen.Store(nil)
}

// Classes returns the trained class names, sorted.
func (c *Classifier) Classes() []string {
	out := make([]string, 0, len(c.classDocs))
	for cl := range c.classDocs {
		out = append(out, cl)
	}
	sort.Strings(out)
	return out
}

// Trained reports whether any examples have been added.
func (c *Classifier) Trained() bool { return c.totalDocs > 0 }

// Classify returns the most probable class for text and its log-probability
// score. When the classifier is untrained or the text has no recognizable
// words, it returns Unknown with a zero score.
//
// Classification runs on the frozen snapshot (see Freeze): the per-token
// log-likelihood tables are compiled once after the last Train call and
// repeated tokens are served from a memo, so per-call cost is a cache probe
// or a handful of table lookups — never math.Log.
func (c *Classifier) Classify(text string) (string, float64) {
	return c.Freeze().Classify(text)
}

// Probabilities returns the posterior distribution over classes for text
// (normalized in probability space). Useful for diagnostics and tests.
func (c *Classifier) Probabilities(text string) (map[string]float64, error) {
	if c.totalDocs == 0 {
		return nil, errors.New("bayes: classifier has no training data")
	}
	words := Words(text)
	v := float64(len(c.vocab))
	logs := make(map[string]float64, len(c.classDocs))
	maxLog := math.Inf(-1)
	for class, docs := range c.classDocs {
		score := math.Log(float64(docs) / float64(c.totalDocs))
		wc := c.classWords[class]
		total := float64(c.classTotals[class])
		for _, w := range words {
			score += math.Log((float64(wc[w]) + 1) / (total + v))
		}
		logs[class] = score
		if score > maxLog {
			maxLog = score
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	out := make(map[string]float64, len(logs))
	for class, l := range logs {
		out[class] = math.Exp(l-maxLog) / sum
	}
	return out, nil
}

// Words lowercases and splits text into word features: letter/digit runs, so
// "B.S.(Computer Science)" yields [b s computer science].
func Words(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}
