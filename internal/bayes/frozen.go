package bayes

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"webrev/internal/memo"
)

// defaultMemoSize is the per-model capacity of the frozen classifier's
// token memo. Template-generated pages repeat the same token texts across
// thousands of documents; 4096 entries covers the working set of the
// synthetic corpus many times over while bounding memory.
const defaultMemoSize = 4096

// Frozen is an immutable compiled snapshot of a Classifier: the per-class
// log priors and per-token log-likelihoods are precomputed once, so
// classification is pure table lookups and additions — no math.Log on the
// hot path. A Frozen is safe for concurrent use and is shared across all
// worker shards of a build (both the batch and streaming paths), together
// with its token memo: a repeated token costs one cache probe.
//
// Scores are bit-identical to Classifier.Classify: the tables store the
// result of the exact same floating-point expressions the unfrozen
// classifier evaluates per call, and per-class sums accumulate in the same
// word order.
type Frozen struct {
	classes    []string             // sorted, deterministic iteration
	prior      []float64            // log(classDocs/totalDocs), per class
	logp       []map[string]float64 // word -> log((count+1)/(total+v)), per class
	unknown    []float64            // log(1/(total+v)), per class
	minLogOdds float64
	trained    bool

	memo *memo.Cache[frozenHit]
}

// frozenHit is one memoized classification outcome.
type frozenHit struct {
	class string
	score float64
}

// Freeze compiles the classifier's current training state into a Frozen
// snapshot. The snapshot is cached: repeated calls return the same pointer
// until Train adds data or MinLogOdds changes, so call sites may freeze
// per classification without paying a rebuild. Freeze is safe to call from
// multiple goroutines; concurrent first calls may build the snapshot twice
// and keep either (both are identical).
func (c *Classifier) Freeze() *Frozen {
	if f := c.frozen.Load(); f != nil && f.minLogOdds == c.MinLogOdds {
		return f
	}
	f := c.buildFrozen()
	c.frozen.Store(f)
	return f
}

func (c *Classifier) buildFrozen() *Frozen {
	f := &Frozen{
		minLogOdds: c.MinLogOdds,
		trained:    c.totalDocs > 0,
	}
	if !f.trained {
		return f
	}
	f.memo = memo.New[frozenHit](defaultMemoSize)
	f.classes = make([]string, 0, len(c.classDocs))
	for class := range c.classDocs {
		f.classes = append(f.classes, class)
	}
	sort.Strings(f.classes)
	v := float64(len(c.vocab))
	f.prior = make([]float64, len(f.classes))
	f.unknown = make([]float64, len(f.classes))
	f.logp = make([]map[string]float64, len(f.classes))
	for i, class := range f.classes {
		f.prior[i] = math.Log(float64(c.classDocs[class]) / float64(c.totalDocs))
		wc := c.classWords[class]
		total := float64(c.classTotals[class])
		// The same expression Classifier.Classify evaluates, with wc[w]
		// present (count) and absent (zero): precomputing it preserves
		// bit-identical scores.
		f.unknown[i] = math.Log((float64(0) + 1) / (total + v))
		m := make(map[string]float64, len(c.vocab))
		for w := range c.vocab {
			m[w] = math.Log((float64(wc[w]) + 1) / (total + v))
		}
		f.logp[i] = m
	}
	return f
}

// Trained reports whether the snapshot carries any training data.
func (f *Frozen) Trained() bool { return f.trained }

// Classes returns the class names known to the snapshot, sorted.
func (f *Frozen) Classes() []string { return f.classes }

// classifyScratch holds the reusable per-call buffers of Frozen.Classify.
type classifyScratch struct {
	word   []byte
	scores []float64
}

var scratchPool = sync.Pool{
	New: func() any { return &classifyScratch{word: make([]byte, 0, 64)} },
}

// Classify returns the most probable class for text and its
// log-probability score, exactly as Classifier.Classify would, at table
// lookup cost. Repeated texts are served from the memo. Safe for
// concurrent use.
func (f *Frozen) Classify(text string) (string, float64) {
	if !f.trained {
		return Unknown, 0
	}
	if hit, ok := f.memo.Get(text); ok {
		return hit.class, hit.score
	}
	s := scratchPool.Get().(*classifyScratch)
	if cap(s.scores) < len(f.classes) {
		s.scores = make([]float64, len(f.classes))
	}
	scores := s.scores[:len(f.classes)]
	copy(scores, f.prior)
	words := 0
	// Tokenize word-by-word into the scratch byte buffer and fold each
	// word's per-class log-likelihood into the running sums. The word is
	// only ever used as a map-lookup key (string(s.word) in an index
	// expression compiles to a no-allocation lookup), so a full []string
	// materialization is never needed.
	flush := func() {
		if len(s.word) == 0 {
			return
		}
		words++
		for i, m := range f.logp {
			if lp, ok := m[string(s.word)]; ok {
				scores[i] += lp
			} else {
				scores[i] += f.unknown[i]
			}
		}
		s.word = s.word[:0]
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			r = unicode.ToLower(r)
			if r < 0x80 {
				s.word = append(s.word, byte(r))
			} else {
				s.word = utf8.AppendRune(s.word, r)
			}
		} else {
			flush()
		}
	}
	flush()
	if words == 0 {
		s.scores = scores
		scratchPool.Put(s)
		return Unknown, 0
	}
	best, second := math.Inf(-1), math.Inf(-1)
	bestClass := Unknown
	for i, score := range scores {
		if score > best {
			second = best
			best = score
			bestClass = f.classes[i]
		} else if score > second {
			second = score
		}
	}
	s.scores = scores
	scratchPool.Put(s)
	if f.minLogOdds > 0 && len(f.classes) > 1 && best-second < f.minLogOdds {
		bestClass = Unknown
	}
	// Clone the key: text is often a sub-slice of a whole parsed document,
	// and retaining it in the memo would pin the document's backing array.
	f.memo.Add(strings.Clone(text), frozenHit{class: bestClass, score: best})
	return bestClass, best
}
