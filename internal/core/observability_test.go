package core

import (
	"testing"

	"webrev/internal/concept"
	"webrev/internal/corpus"
	"webrev/internal/mapping"
	"webrev/internal/obs"
	"webrev/internal/xmlout"
)

func corpusSources(t *testing.T, n int, seed int64) []Source {
	t.Helper()
	g := corpus.New(corpus.Options{Seed: seed})
	var sources []Source
	for _, r := range g.Corpus(n) {
		sources = append(sources, Source{Name: r.Name, HTML: r.HTML})
	}
	return sources
}

func tracedPipeline(t *testing.T, tr obs.Tracer, parallelism int) *Pipeline {
	t.Helper()
	p, err := New(Config{
		Concepts:    concept.ResumeConcepts(),
		Constraints: concept.ResumeConstraints(),
		RootName:    "resume",
		Tracer:      tr,
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTracerDisabledAddsNothing is the acceptance guarantee for the no-op
// path: a build under the default (nil → no-op) tracer records no stages
// and no counters anywhere, and surfaces no stats on the repository.
func TestTracerDisabledAddsNothing(t *testing.T) {
	p := tracedPipeline(t, nil, 0)
	if p.Tracer().Enabled() {
		t.Fatal("default tracer must be disabled")
	}
	repo, err := p.Build(corpusSources(t, 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	if repo.Stages != nil {
		t.Fatalf("no-op build surfaced stages: %v", repo.Stages)
	}
	if p.Metrics() != nil {
		t.Fatal("no-op pipeline returned a metrics snapshot")
	}
}

// TestTracerEnabledRecordsAllStages is the acceptance guarantee for the
// enabled path: one Build records named timings for every pipeline stage
// (convert, extract, mine, derive, map) and non-zero counters for the
// paper's measured quantities, retrievable via Pipeline.Metrics,
// Repository.Stages, and the JSON snapshot writer.
func TestTracerEnabledRecordsAllStages(t *testing.T) {
	c := obs.NewCollector()
	p := tracedPipeline(t, c, 0)
	sources := corpusSources(t, 6, 11)
	repo, err := p.Build(sources)
	if err != nil {
		t.Fatal(err)
	}

	for _, stage := range obs.PipelineStages {
		st, ok := repo.Stages[stage]
		if !ok {
			t.Fatalf("stage %q not recorded; have %v", stage, repo.Stages)
		}
		if st.Count == 0 || st.Total <= 0 {
			t.Fatalf("stage %q recorded but empty: %+v", stage, st)
		}
	}
	// Per-document stages ran once per document.
	if got := repo.Stages[obs.StageConvert].Count; got != int64(len(sources)) {
		t.Fatalf("convert spans = %d, want %d", got, len(sources))
	}
	if got := repo.Stages[obs.StageMap].Count; got != int64(len(sources)) {
		t.Fatalf("map spans = %d, want %d", got, len(sources))
	}

	snap := p.Metrics()
	if snap == nil {
		t.Fatal("Metrics() returned nil with a collector attached")
	}
	for _, ctr := range []string{
		obs.CtrDocsConverted, obs.CtrBytesIn, obs.CtrBytesOut,
		obs.CtrTokens, obs.CtrTokensIdent, obs.CtrConceptNodes,
		obs.CtrPathsExtracted, obs.CtrPathsExplored, obs.CtrPathsFrequent,
		obs.CtrDTDElements, obs.CtrMapDocs,
	} {
		if snap.Counters[ctr] <= 0 {
			t.Fatalf("counter %q = %d, want > 0\ncounters: %v",
				ctr, snap.Counters[ctr], snap.Counters)
		}
	}
	if got := snap.Counters[obs.CtrDocsConverted]; got != int64(len(sources)) {
		t.Fatalf("docs.converted = %d, want %d", got, len(sources))
	}
	// Conversion sub-spans are present too.
	for _, sub := range []string{"convert.parse", "convert.tokenize", "convert.group", "convert.consolidate"} {
		if snap.Stages[sub].Count == 0 {
			t.Fatalf("conversion sub-span %q missing; stages: %v", sub, snap.Stages)
		}
	}
}

// TestBuildParallelMatchesSerial proves the parallelized DTD-guided mapping
// loop (and parallel conversion) is deterministic: a serial build and a
// heavily parallel build of the same corpus yield byte-identical conformed
// documents, aligned MapStats, and the same schema/DTD. Run under -race
// this also exercises the worker pool for data races on the shared
// collector and result slices.
func TestBuildParallelMatchesSerial(t *testing.T) {
	sources := corpusSources(t, 24, 7)

	serial, err := tracedPipeline(t, nil, 1).Build(sources)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := tracedPipeline(t, obs.NewCollector(), 8).Build(sources)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Conformed) != len(parallel.Conformed) || len(parallel.Conformed) != len(sources) {
		t.Fatalf("length mismatch: serial %d, parallel %d, sources %d",
			len(serial.Conformed), len(parallel.Conformed), len(sources))
	}
	if s, p := serial.DTD.Render(), parallel.DTD.Render(); s != p {
		t.Fatalf("DTDs differ:\nserial:\n%s\nparallel:\n%s", s, p)
	}
	for i := range serial.Conformed {
		if serial.MapStats[i] != parallel.MapStats[i] {
			t.Fatalf("doc %d (%s): MapStats differ: serial %+v, parallel %+v",
				i, sources[i].Name, serial.MapStats[i], parallel.MapStats[i])
		}
		s, p := xmlout.Marshal(serial.Conformed[i]), xmlout.Marshal(parallel.Conformed[i])
		if s != p {
			t.Fatalf("doc %d (%s): conformed XML differs:\nserial:\n%s\nparallel:\n%s",
				i, sources[i].Name, s, p)
		}
	}
	if serial.TotalMapCost() != parallel.TotalMapCost() {
		t.Fatalf("map cost: serial %d, parallel %d",
			serial.TotalMapCost(), parallel.TotalMapCost())
	}
}

// TestRepositoryStatsPartial covers the ConformanceRate/TotalMapCost guards
// for empty and partial repositories.
func TestRepositoryStatsPartial(t *testing.T) {
	empty := &Repository{}
	if got := empty.ConformanceRate(); got != 0 {
		t.Fatalf("empty ConformanceRate = %v, want 0", got)
	}
	if got := empty.TotalMapCost(); got != 0 {
		t.Fatalf("empty TotalMapCost = %v, want 0", got)
	}
	// Stats but no docs (inconsistent input): still defined, still 0.
	orphan := &Repository{MapStats: []mapping.EditStats{{Inserted: 3}}}
	if got := orphan.ConformanceRate(); got != 0 {
		t.Fatalf("orphan ConformanceRate = %v, want 0", got)
	}
	if got := orphan.TotalMapCost(); got != 0 {
		t.Fatalf("orphan TotalMapCost = %v, want 0 (no docs mapped)", got)
	}

	// Partial build: 4 docs, only 2 mapped — one clean, one with edits.
	partial := &Repository{
		Docs: []*Document{{Source: "a"}, {Source: "b"}, {Source: "c"}, {Source: "d"}},
		MapStats: []mapping.EditStats{
			{},            // conformed without edits
			{Inserted: 2}, // needed 2 edits
		},
	}
	if got := partial.MappedDocs(); got != 2 {
		t.Fatalf("MappedDocs = %d, want 2", got)
	}
	if got, want := partial.ConformanceRate(), 0.25; got != want {
		t.Fatalf("partial ConformanceRate = %v, want %v (unmapped docs are non-conforming)", got, want)
	}
	if got := partial.TotalMapCost(); got != 2 {
		t.Fatalf("partial TotalMapCost = %d, want 2", got)
	}
}
