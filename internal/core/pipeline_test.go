package core

import (
	"strings"
	"testing"

	"webrev/internal/concept"
	"webrev/internal/corpus"
)

func resumePipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(Config{
		Concepts:    concept.ResumeConcepts(),
		Constraints: concept.ResumeConstraints(),
		RootName:    "resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no concepts should error")
	}
	if _, err := New(Config{Concepts: []concept.Concept{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate concepts should error")
	}
}

func TestConvertSingle(t *testing.T) {
	p := resumePipeline(t)
	doc := p.Convert("r1", `<body><h2>Education</h2><p>University of X, B.S., June 1996</p></body>`)
	if doc.Source != "r1" {
		t.Fatalf("source = %q", doc.Source)
	}
	if doc.XML.FindElement("education") == nil {
		t.Fatalf("conversion failed: %s", doc.XML.String())
	}
	if doc.Stats.Tokens == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestBuildFullPipeline(t *testing.T) {
	p := resumePipeline(t)
	g := corpus.New(corpus.Options{Seed: 21})
	var sources []Source
	for _, r := range g.Corpus(40) {
		sources = append(sources, Source{Name: r.Name, HTML: r.HTML})
	}
	repo, err := p.Build(sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Docs) != 40 || len(repo.Conformed) != 40 || len(repo.MapStats) != 40 {
		t.Fatalf("repo sizes: %d/%d/%d", len(repo.Docs), len(repo.Conformed), len(repo.MapStats))
	}
	if repo.Schema.Root() == nil || repo.Schema.Root().Label != "resume" {
		t.Fatalf("schema root: %+v", repo.Schema.Root())
	}
	if repo.DTD.Len() < 5 {
		t.Fatalf("DTD too small: %d elements\n%s", repo.DTD.Len(), repo.DTD.Render())
	}
	// Every mapped document must conform to the derived DTD.
	for i, c := range repo.Conformed {
		if !repo.DTD.Conforms(c) {
			t.Fatalf("doc %d does not conform after mapping: %v", i, repo.DTD.Validate(c))
		}
	}
	if repo.ConformanceRate() < 0 || repo.ConformanceRate() > 1 {
		t.Fatalf("conformance rate = %v", repo.ConformanceRate())
	}
	if repo.TotalMapCost() < 0 {
		t.Fatal("negative map cost")
	}
	dtdText := repo.DTD.Render()
	for _, want := range []string{"resume", "education", "experience"} {
		if !strings.Contains(dtdText, want) {
			t.Fatalf("DTD missing %s:\n%s", want, dtdText)
		}
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	p := resumePipeline(t)
	if _, err := p.Build(nil); err == nil {
		t.Fatal("empty corpus should error")
	}
}

func TestRepositoryAccessorsEmpty(t *testing.T) {
	r := &Repository{}
	if r.ConformanceRate() != 0 || r.TotalMapCost() != 0 {
		t.Fatal("empty repository accessors broken")
	}
}

func TestConvertAllParallelMatchesSequential(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 31})
	var sources []Source
	for _, r := range g.Corpus(30) {
		sources = append(sources, Source{Name: r.Name, HTML: r.HTML})
	}
	seqP, err := New(Config{
		Concepts: concept.ResumeConcepts(), Constraints: concept.ResumeConstraints(),
		RootName: "resume", Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parP, err := New(Config{
		Concepts: concept.ResumeConcepts(), Constraints: concept.ResumeConstraints(),
		RootName: "resume", Parallelism: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := seqP.ConvertAll(sources)
	par := parP.ConvertAll(sources)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Source != par[i].Source {
			t.Fatalf("order not preserved at %d: %s vs %s", i, seq[i].Source, par[i].Source)
		}
		if !seq[i].XML.Equal(par[i].XML) {
			t.Fatalf("doc %d differs between sequential and parallel runs", i)
		}
		if seq[i].Stats != par[i].Stats {
			t.Fatalf("stats %d differ: %+v vs %+v", i, seq[i].Stats, par[i].Stats)
		}
	}
}

func TestBuildRepository(t *testing.T) {
	p := resumePipeline(t)
	g := corpus.New(corpus.Options{Seed: 41})
	var sources []Source
	for _, r := range g.Corpus(15) {
		sources = append(sources, Source{Name: r.Name, HTML: r.HTML})
	}
	repo, err := p.BuildRepository(sources)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 15 {
		t.Fatalf("repo len = %d", repo.Len())
	}
	refs, err := repo.Query("//education")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("education not queryable")
	}
	if _, err := p.BuildRepository(nil); err == nil {
		t.Fatal("empty corpus should error")
	}
}

func TestUnifySimilarConfig(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 43})
	var sources []Source
	for _, r := range g.Corpus(60) {
		sources = append(sources, Source{Name: r.Name, HTML: r.HTML})
	}
	base, err := New(Config{
		Concepts: concept.ResumeConcepts(), Constraints: concept.ResumeConstraints(),
		RootName: "resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := New(Config{
		Concepts: concept.ResumeConcepts(), Constraints: concept.ResumeConstraints(),
		RootName: "resume", UnifySimilar: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := base.DiscoverSchema(base.ConvertAll(sources))
	s2 := unified.DiscoverSchema(unified.ConvertAll(sources))
	// Unification merges the split education entry variants, so the
	// unified schema has no more paths than the raw one.
	if s2.CountNodes() > s1.CountNodes() {
		t.Fatalf("unification grew the schema: %d -> %d", s1.CountNodes(), s2.CountNodes())
	}
}

func TestSetAccessor(t *testing.T) {
	p := resumePipeline(t)
	if p.Set().Len() != 24 {
		t.Fatalf("set size = %d", p.Set().Len())
	}
}
