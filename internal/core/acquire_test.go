package core

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webrev/internal/corpus"
	"webrev/internal/crawler"
	"webrev/internal/crawler/faultinject"
)

func TestAcquire(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 21})
	var off []string
	for i := 0; i < 4; i++ {
		off = append(off, g.Distractor())
	}
	site := crawler.BuildSite(g.Corpus(10), off)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := &crawler.Crawler{Workers: 4, Filter: crawler.ResumeFilter(3)}
	sources, rep, err := Acquire(context.Background(), c, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 10 {
		t.Fatalf("acquired %d sources, want the 10 on-topic resumes", len(sources))
	}
	for _, s := range sources {
		if !strings.Contains(s.Name, "/resumes/") {
			t.Fatalf("off-topic source acquired: %s", s.Name)
		}
	}
	if rep.Fetched != site.PageCount() || rep.Failed != 0 {
		t.Fatalf("report: %s", rep)
	}
}

// Acquisition under transient faults still yields the full on-topic corpus.
func TestAcquireUnderFaults(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 22})
	site := crawler.BuildSite(g.Corpus(10), nil)
	inj := faultinject.New(site.Handler(), faultinject.Config{
		Seed: 4, Rate: 0.25, SlowDelay: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(inj)
	defer srv.Close()

	c := &crawler.Crawler{Workers: 4, Filter: crawler.ResumeFilter(3),
		Fetch: crawler.FetchPolicy{
			Timeout: 250 * time.Millisecond, MaxRetries: 3,
			BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond,
		}}
	sources, rep, err := Acquire(context.Background(), c, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 10 {
		t.Fatalf("acquired %d of 10 under faults (report %s, injected %v)",
			len(sources), rep, inj.Injected())
	}
	if rep.Failed != 0 {
		t.Fatalf("transient faults reported permanent: %s", rep)
	}
}

func TestAcquireCanceled(t *testing.T) {
	g := corpus.New(corpus.Options{Seed: 23})
	site := crawler.BuildSite(g.Corpus(10), nil)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first fetch
	c := &crawler.Crawler{Filter: crawler.ResumeFilter(3)}
	sources, rep, err := Acquire(ctx, c, srv.URL+"/")
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sources) != 0 {
		t.Fatalf("canceled acquire returned %d sources", len(sources))
	}
	if rep == nil || !rep.Canceled {
		t.Fatalf("report missing cancellation: %v", rep)
	}
}
