package core

import (
	"reflect"
	"testing"

	"webrev/internal/dtd"
	"webrev/internal/mapping"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// TestDiscoverSchemaShardInvariance is the golden-determinism proof at the
// pipeline seam: the sharded parallel fold DiscoverSchema now runs must
// produce a schema — and a derived DTD rendering — byte-identical to a
// fully serial fold of the same converted documents.
func TestDiscoverSchemaShardInvariance(t *testing.T) {
	p := tracedPipeline(t, nil, 0)
	docs := p.ConvertAll(corpusSources(t, 16, 12345))

	parallel := p.DiscoverSchema(docs) // mineShards-way fold
	acc := schema.NewAccumulator(0)
	for i, d := range docs {
		acc.Add(i, p.ExtractPaths(d))
	}
	serial := p.MineStats(acc)

	if !reflect.DeepEqual(parallel, serial) {
		t.Fatalf("sharded DiscoverSchema diverged from serial fold:\n%s\nvs\n%s", parallel, serial)
	}
	dp := dtd.FromSchema(parallel, p.cfg.DTD)
	ds := dtd.FromSchema(serial, p.cfg.DTD)
	if dp.Render() != ds.Render() {
		t.Fatal("derived DTD rendering differs between sharded and serial mining")
	}
}

// TestConformPrecompileInvariance checks the compiled-index memo cannot
// change mapping output: conforming against a cold DTD (index built inside
// the call) and a precompiled one yields byte-identical XML and equal
// stats for every document.
func TestConformPrecompileInvariance(t *testing.T) {
	p := tracedPipeline(t, nil, 0)
	docs := p.ConvertAll(corpusSources(t, 10, 777))
	s := p.DiscoverSchema(docs)

	cold := dtd.FromSchema(s, p.cfg.DTD)
	warm := dtd.FromSchema(s, p.cfg.DTD)
	mapping.Precompile(warm)
	for i, d := range docs {
		outCold, statsCold := mapping.Conform(d.XML, cold)
		outWarm, statsWarm := mapping.Conform(d.XML, warm)
		if statsCold != statsWarm {
			t.Fatalf("doc %d: stats differ cold %+v warm %+v", i, statsCold, statsWarm)
		}
		if xmlout.Marshal(outCold) != xmlout.Marshal(outWarm) {
			t.Fatalf("doc %d: conformed XML differs between cold and precompiled DTD", i)
		}
	}
}
