package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"webrev/internal/dtd"
	"webrev/internal/obs"
	"webrev/internal/repository"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// The sharded build scales the pipeline to corpora that cannot be resident
// in one process: N independent shard workers each convert a contiguous
// range of the input, folding schema statistics into a mergeable
// accumulator (tagged with global corpus indices, exactly like BuildStream)
// and appending converted XML to a per-shard disk segment
// (repository.DiskStore). A merge step folds the shard accumulators — the
// merge is exactly commutative, so the mined schema and derived DTD are
// byte-identical to a single-process build — and a second sharded pass maps
// each shard's converted documents to the DTD into per-shard conformed
// segments, which concatenate in shard order into the final disk-backed
// repository. Because shards cover contiguous ranges, concatenation
// preserves global input order, and because xmlout round-trips converted
// trees exactly, the final repository's documents are byte-identical to
// Build + Export over the same sources.
//
// Memory is flat in corpus size: a shard holds one document between
// conversion and fold, the accumulators are bounded by distinct label
// paths (not documents), and the map phase streams one document at a time
// through each shard's segment. Only the final store's decoded-DOM LRU
// (DiskOptions.MaxResidentDocs) retains trees.
//
// Each shard checkpoints durably (state.json + its flushed segment) every
// CheckpointEvery documents, so a killed shard resumes from its last
// checkpoint on the next BuildSharded over the same directory and the
// completed build is still byte-identical to an uninterrupted one.

// ShardOptions configures BuildSharded.
type ShardOptions struct {
	// Shards is the number of independent shard workers (default 2). It is
	// clamped to the corpus size.
	Shards int
	// Dir is the build's working directory (required): shard-NNN/
	// subdirectories hold per-shard segments and checkpoint state, final/
	// holds the resulting disk-backed repository.
	Dir string
	// CheckpointEvery is the number of documents a shard processes between
	// durable checkpoints (default 64).
	CheckpointEvery int
	// Store configures the final repository's disk store — in particular
	// MaxResidentDocs, the decoded-DOM cache bound that keeps query-time
	// memory flat.
	Store repository.DiskOptions

	// kill, when non-nil, is the crash-injection test hook: it runs after
	// each document a shard finishes, and returning true makes that shard
	// stop immediately — no final checkpoint, no segment flush — as if the
	// process died. BuildSharded then returns errShardKilled.
	kill func(shard, done int) bool
}

// ShardResult is the outcome of a sharded build.
type ShardResult struct {
	// Repo is the final repository, backed by the disk store in
	// Dir/final (which also holds schema.dtd for repository.LoadDisk).
	Repo *repository.Repository
	// Schema is the mined majority schema.
	Schema *schema.Schema
	// DTD is the DTD derived from the merged schema statistics.
	DTD *dtd.DTD
	// Quarantined aggregates the per-document failure records across all
	// shards, sorted by document source.
	Quarantined []FailureRecord
	// Degraded lists documents converted or mapped in degraded mode,
	// aggregated across shards and sorted by document source.
	Degraded []FailureRecord
	// TotalInput is the number of source documents given to the build.
	TotalInput int
	// TotalMapCost sums the edit operations conformance mapping spent.
	TotalMapCost int
	// BytesOnDisk is the final store's disk footprint (segment + index).
	BytesOnDisk int64
}

// FailureRatio returns the fraction of input documents quarantined.
func (r *ShardResult) FailureRatio() float64 {
	if r.TotalInput == 0 {
		return 0
	}
	return float64(len(r.Quarantined)) / float64(r.TotalInput)
}

// errShardKilled reports that the crash-injection hook stopped a shard
// mid-build; the shard's durable state is at its last checkpoint and a new
// BuildSharded over the same directory resumes it.
var errShardKilled = errors.New("core: shard killed")

// shardStateVersion guards the shard checkpoint format.
const shardStateVersion = 1

// shardStateFile is the per-shard checkpoint manifest name.
const shardStateFile = "state.json"

// shardState is a shard's durable checkpoint: where its range stands and
// the accumulator fold so far. The converted XML lives beside it in the
// conv/ disk segment; Stored is the authoritative segment length (a
// resumed shard truncates the segment back to it, discarding any appends
// after the last checkpoint).
type shardState struct {
	Version int `json:"version"`
	// Start and End delimit the shard's half-open source range; a resume
	// against a different split starts the shard fresh.
	Start int `json:"start"`
	End   int `json:"end"`
	// Done counts sources processed (from Start); Stored counts documents
	// appended to the conv segment (Done minus quarantined).
	Done   int `json:"done"`
	Stored int `json:"stored"`
	// Acc is the shard accumulator's JSON encoding — the same wire format
	// the streaming build's checkpoints use (schema.Accumulator).
	Acc json.RawMessage `json:"acc"`
	// Quarantined and Degraded carry the shard's failure records so a
	// resumed build still reports them.
	Quarantined []FailureRecord `json:"quarantined,omitempty"`
	Degraded    []FailureRecord `json:"degraded,omitempty"`
}

// shardDir names shard i's working directory under the build directory.
func shardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", shard))
}

// shardRange splits n sources into the given number of contiguous ranges
// and returns the i-th as a half-open interval. Contiguity is what lets
// the merge step concatenate shard segments and preserve global order.
func shardRange(n, shards, i int) (start, end int) {
	base, rem := n/shards, n%shards
	start = i*base + min(i, rem)
	end = start + base
	if i < rem {
		end++
	}
	return start, end
}

// BuildSharded runs the complete pipeline over sources as a sharded,
// disk-backed, crash-resumable build (see the package comment above for
// the dataflow). The result's repository, DTD, and conformed documents are
// byte-identical to Build + Export over the same sources.
//
// The build directory opts.Dir persists between calls: a build that failed
// or was killed mid-convert resumes from each shard's last checkpoint; a
// completed build re-run over the same directory skips all conversion work
// and re-derives the same output.
func (p *Pipeline) BuildSharded(ctx context.Context, sources []Source, opts ShardOptions) (*ShardResult, error) {
	return p.BuildShardedFrom(ctx, len(sources), func(i int) (Source, error) {
		return sources[i], nil
	}, opts)
}

// BuildShardedFrom is BuildSharded with lazy source production: at(i) is
// called once per source, by the shard that owns index i, just before
// conversion — so a corpus read from disk or generated on the fly is never
// resident as a whole, keeping RSS flat at million-document scale. at must
// be deterministic (a resumed build calls it again for re-processed
// indices) and safe for concurrent calls with distinct i.
func (p *Pipeline) BuildShardedFrom(ctx context.Context, n int, at func(i int) (Source, error), opts ShardOptions) (*ShardResult, error) {
	if n == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: sharded build needs a working directory")
	}
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	if opts.Shards > n {
		opts.Shards = n
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = defaultCheckpointEvery
	}
	sink, err := p.openFailureSink()
	if err != nil {
		return nil, err
	}

	// Phase 1: convert, sharded. Every shard worker is independent — own
	// range, own segment, own checkpoint — so one dying (or being killed by
	// the test hook) never corrupts another.
	states := make([]*shardState, opts.Shards)
	errs := make([]error, opts.Shards)
	var wg sync.WaitGroup
	for i := 0; i < opts.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i], errs[i] = p.runShardConvert(ctx, i, n, at, opts, sink)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: build cancelled: %w", err)
	}

	// Phase 2: merge the shard accumulators and derive the schema + DTD.
	// Merge order is shard order, but the accumulator merge is exactly
	// commutative, so any order mines the same schema.
	res := &ShardResult{TotalInput: n}
	res.Quarantined = sink.snapshotQuarantined()
	if err := p.checkShardBudget(res, sink); err != nil {
		return nil, err
	}
	stored := 0
	for _, st := range states {
		stored += st.Stored
	}
	if stored == 0 {
		return nil, fmt.Errorf("core: all %d documents quarantined", n)
	}
	sp := p.tr.StartSpan(obs.StageShardMerge)
	merged := schema.NewAccumulator(0)
	for i, st := range states {
		acc := &schema.Accumulator{}
		if err := json.Unmarshal(st.Acc, acc); err != nil {
			sp.End()
			return nil, fmt.Errorf("core: shard %d accumulator: %w", i, err)
		}
		if err := merged.Merge(acc); err != nil {
			sp.End()
			return nil, fmt.Errorf("core: shard %d merge: %w", i, err)
		}
	}
	sp.End()
	res.Schema = p.MineStats(merged)
	res.DTD = p.DeriveDTD(res.Schema)

	// Phase 3: map, sharded. Each shard streams its converted segment one
	// document at a time through DTD-guided mapping into a conformed
	// segment.
	costs := make([]int, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			costs[i], errs[i] = p.runShardMap(ctx, i, opts.Dir, res.DTD, sink)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: build cancelled: %w", err)
	}
	for _, c := range costs {
		res.TotalMapCost += c
	}
	res.Quarantined = sink.snapshotQuarantined()
	res.Degraded = sink.snapshotDegraded()
	if err := p.checkShardBudget(res, sink); err != nil {
		return nil, err
	}

	// Phase 4: concatenate the conformed segments, in shard order, into the
	// final disk-backed repository. Contiguous shard ranges make this a
	// pure concatenation — global input order is preserved without any
	// reordering step.
	finalDir := filepath.Join(opts.Dir, "final")
	storeOpts := opts.Store
	if storeOpts.Tracer == nil {
		storeOpts.Tracer = p.tr
	}
	final, err := repository.CreateDiskStore(finalDir, storeOpts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Shards; i++ {
		conf, err := repository.OpenDiskStore(filepath.Join(shardDir(opts.Dir, i), "conf"), repository.DiskOptions{MaxResidentDocs: -1})
		if err != nil {
			final.Close()
			return nil, err
		}
		for j := 0; j < conf.Len(); j++ {
			xml, err := conf.XML(j)
			if err == nil {
				err = final.AppendXML(conf.Name(j), xml)
			}
			if err != nil {
				conf.Close()
				final.Close()
				return nil, err
			}
		}
		conf.Close()
	}
	if err := final.Flush(); err != nil {
		final.Close()
		return nil, err
	}
	if err := repository.SaveDTDFile(finalDir, res.DTD); err != nil {
		final.Close()
		return nil, err
	}
	res.BytesOnDisk = final.BytesOnDisk()
	res.Repo = repository.NewWithStore(res.DTD, final)
	if p.tr.Enabled() {
		p.tr.Set(obs.GaugeStreamShards, int64(opts.Shards))
	}
	return res, nil
}

// checkShardBudget enforces the error budget over a sharded build's
// aggregated quarantine records.
func (p *Pipeline) checkShardBudget(res *ShardResult, sink *failureSink) error {
	if err := sink.err(); err != nil {
		return err
	}
	if budget := p.failureBudget(); res.FailureRatio() > budget {
		return fmt.Errorf("core: %d of %d documents quarantined (ratio %.2f exceeds budget %.2f)",
			len(res.Quarantined), res.TotalInput, res.FailureRatio(), budget)
	}
	return nil
}

// runShardConvert is one shard's convert phase: process the shard's
// contiguous source range sequentially, folding statistics into the shard
// accumulator (tagged with global corpus indices) and appending converted
// XML to the shard's conv/ segment, checkpointing durably every
// opts.CheckpointEvery documents. An existing checkpoint for the same
// range resumes: the segment is truncated back to the checkpoint's
// watermark and already-processed sources are skipped.
func (p *Pipeline) runShardConvert(ctx context.Context, shard, n int, at func(int) (Source, error), opts ShardOptions, sink *failureSink) (*shardState, error) {
	sp := p.tr.StartSpan(obs.ShardStage(obs.StageShardConvert, shard))
	defer sp.End()
	start, end := shardRange(n, opts.Shards, shard)
	dir := shardDir(opts.Dir, shard)
	convDir := filepath.Join(dir, "conv")

	st, acc, conv, err := p.openShardState(dir, convDir, start, end, sink)
	if err != nil {
		return nil, err
	}
	defer conv.Close()

	checkpoint := func() error {
		if err := conv.Flush(); err != nil {
			return fmt.Errorf("core: shard %d flush: %w", shard, err)
		}
		enc, err := json.Marshal(acc)
		if err != nil {
			return fmt.Errorf("core: shard %d checkpoint: %w", shard, err)
		}
		st.Acc = enc
		return writeShardState(dir, st)
	}
	sinceCkpt := 0
	for i := st.Done; i < end-start; i++ {
		if err := ctx.Err(); err != nil {
			// Cancelled: persist progress so a later build resumes here.
			if cerr := checkpoint(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: build cancelled: %w", err)
		}
		src, err := at(start + i)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d source %d: %w", shard, start+i, err)
		}
		d, degraded, failed := p.convertGuarded(src.Name, src.HTML)
		if failed != nil {
			sink.quarantine(*failed, src.HTML)
			st.Quarantined = append(st.Quarantined, *failed)
		} else {
			if degraded != nil {
				sink.degrade(*degraded)
				st.Degraded = append(st.Degraded, *degraded)
			}
			acc.Add(start+i, p.ExtractPaths(d))
			if err := conv.Append(src.Name, d.XML); err != nil {
				return nil, fmt.Errorf("core: shard %d: %w", shard, err)
			}
			st.Stored++
			// The converted tree is folded and durably appended; drop it.
		}
		st.Done = i + 1
		if opts.kill != nil && opts.kill(shard, st.Done) {
			// Simulated crash: stop with whatever the last checkpoint (and
			// any index lines the OS already has) persisted.
			return nil, fmt.Errorf("core: shard %d: %w", shard, errShardKilled)
		}
		if sinceCkpt++; sinceCkpt >= opts.CheckpointEvery {
			sinceCkpt = 0
			if err := checkpoint(); err != nil {
				return nil, err
			}
			if p.tr.Enabled() {
				p.tr.Add(obs.CtrCheckpoints, 1)
			}
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	return st, nil
}

// openShardState resumes shard state from dir when a checkpoint for the
// same source range exists (truncating the conv segment back to the
// checkpoint watermark and re-registering its failure records), and starts
// fresh otherwise.
func (p *Pipeline) openShardState(dir, convDir string, start, end int, sink *failureSink) (*shardState, *schema.Accumulator, *repository.DiskStore, error) {
	if data, err := os.ReadFile(filepath.Join(dir, shardStateFile)); err == nil {
		var st shardState
		if err := json.Unmarshal(data, &st); err == nil &&
			st.Version == shardStateVersion && st.Start == start && st.End == end {
			acc := &schema.Accumulator{}
			if err := json.Unmarshal(st.Acc, acc); err != nil {
				return nil, nil, nil, fmt.Errorf("core: shard resume: %w", err)
			}
			conv, err := repository.OpenDiskStore(convDir, repository.DiskOptions{MaxResidentDocs: -1, Tracer: p.tr})
			if err != nil {
				return nil, nil, nil, err
			}
			if conv.Len() < st.Stored {
				// The segment lost appends the state already covers — the
				// checkpoint protocol flushes the segment before the state,
				// so this means external tampering, not a crash.
				conv.Close()
				return nil, nil, nil, fmt.Errorf("core: shard resume: segment holds %d documents, checkpoint expects %d", conv.Len(), st.Stored)
			}
			if err := conv.TruncateDocs(st.Stored); err != nil {
				conv.Close()
				return nil, nil, nil, err
			}
			sink.restoreQuarantined(st.Quarantined)
			for _, rec := range st.Degraded {
				sink.degrade(rec)
			}
			if p.tr.Enabled() {
				p.tr.Add(obs.CtrShardsResumed, 1)
			}
			return &st, acc, conv, nil
		}
	}
	conv, err := repository.CreateDiskStore(convDir, repository.DiskOptions{MaxResidentDocs: -1, Tracer: p.tr})
	if err != nil {
		return nil, nil, nil, err
	}
	st := &shardState{Version: shardStateVersion, Start: start, End: end}
	return st, schema.NewAccumulator(0), conv, nil
}

// writeShardState persists a shard checkpoint atomically (tmp + rename).
func writeShardState(dir string, st *shardState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("core: shard checkpoint: %w", err)
	}
	tmp := filepath.Join(dir, shardStateFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: shard checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, shardStateFile)); err != nil {
		return fmt.Errorf("core: shard checkpoint: %w", err)
	}
	return nil
}

// runShardMap is one shard's map phase: stream the conv/ segment one
// document at a time through DTD-guided conformance mapping into a fresh
// conf/ segment. Map-stage failures quarantine the document (it is absent
// from the segment); a degraded (identity-mapped) document that still
// violates the DTD is dropped, exactly as Repository.Export drops it in
// the single-process build. Returns the total mapping edit cost.
func (p *Pipeline) runShardMap(ctx context.Context, shard int, dir string, dt *dtd.DTD, sink *failureSink) (int, error) {
	sp := p.tr.StartSpan(obs.ShardStage(obs.StageShardMap, shard))
	defer sp.End()
	sdir := shardDir(dir, shard)
	conv, err := repository.OpenDiskStore(filepath.Join(sdir, "conv"), repository.DiskOptions{MaxResidentDocs: -1})
	if err != nil {
		return 0, err
	}
	defer conv.Close()
	conf, err := repository.CreateDiskStore(filepath.Join(sdir, "conf"), repository.DiskOptions{MaxResidentDocs: -1, Tracer: p.tr})
	if err != nil {
		return 0, err
	}
	defer conf.Close()

	cost := 0
	for i := 0; i < conv.Len(); i++ {
		if err := ctx.Err(); err != nil {
			return cost, fmt.Errorf("core: build cancelled: %w", err)
		}
		root, err := conv.Doc(i)
		if err != nil {
			return cost, fmt.Errorf("core: shard %d map: %w", shard, err)
		}
		d := &Document{Source: conv.Name(i), XML: root}
		out, est, degraded, failed := p.conformGuarded(d, dt)
		if failed != nil {
			sink.quarantine(*failed, "")
			continue
		}
		if degraded != nil {
			sink.degrade(*degraded)
			if errs := dt.Validate(out); len(errs) > 0 {
				// Identity-mapped over the cost ceiling and still
				// non-conforming: dropped, as in Repository.Export.
				continue
			}
		}
		cost += est.Cost()
		if err := conf.AppendXML(d.Source, []byte(xmlout.Marshal(out))); err != nil {
			return cost, fmt.Errorf("core: shard %d map: %w", shard, err)
		}
	}
	if err := conf.Flush(); err != nil {
		return cost, fmt.Errorf("core: shard %d map: %w", shard, err)
	}
	return cost, nil
}
