package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// FailureKind classifies how a per-document unit of work failed.
type FailureKind string

// Failure kinds.
const (
	// FailPanic: the stage crashed; the record carries the panic value and
	// stack.
	FailPanic FailureKind = "panic"
	// FailTimeout: the stage exceeded Limits.DocTimeout and was abandoned.
	FailTimeout FailureKind = "timeout"
	// FailError: the stage returned an error (e.g. injected by a chaos
	// test).
	FailError FailureKind = "error"
	// FailLimit: a resource limit degraded the document (truncated
	// conversion, identity mapping over the edit-cost ceiling). Limit
	// records accompany documents that are kept, not quarantined.
	FailLimit FailureKind = "limit"
)

// FailureRecord describes one per-document failure: which stage, which
// document, and why. Records for quarantined documents (the document was
// dropped) land on Repository.Quarantined; records for degraded documents
// (kept, but truncated or identity-mapped by a resource limit) land on
// Repository.Degraded.
type FailureRecord struct {
	// Stage is the obs stage name where the failure happened
	// (obs.StageConvert, obs.StageMap).
	Stage string `json:"stage"`
	// URL identifies the document: its source name (URL, filename, or
	// generator id).
	URL string `json:"url"`
	// Kind classifies the failure.
	Kind FailureKind `json:"kind"`
	// Err is the panic value, error text, or limit description.
	Err string `json:"err"`
	// Stack is the goroutine stack at the point of a panic; empty for
	// other kinds.
	Stack string `json:"stack,omitempty"`
}

// String renders the record for logs and CLI output.
func (r FailureRecord) String() string {
	return fmt.Sprintf("[%s] %s at %s: %s", r.Kind, r.URL, r.Stage, r.Err)
}

// Limits bounds the resources one document may consume in the pipeline, so
// a single pathological input degrades or quarantines instead of stalling
// a whole build. The zero value is unlimited (the pre-existing behavior).
type Limits struct {
	// MaxDOMNodes caps the parsed DOM node count per document; input past
	// the cap is dropped and the document counted as degraded.
	MaxDOMNodes int
	// MaxDepth caps the parsed DOM element nesting depth per document.
	MaxDepth int
	// MaxTokens caps the tokens the conversion rules inspect per document;
	// text past the cap folds into parent vals uninspected.
	MaxTokens int
	// DocTimeout is the per-document deadline for each of conversion and
	// conformance mapping. A document that exceeds it is abandoned (its
	// worker goroutine is left to finish and be discarded) and
	// quarantined.
	DocTimeout time.Duration
	// MaxMapCost is the conformance-mapping edit-cost ceiling: a document
	// whose mapping needs more than this many edit operations is kept
	// identity-mapped (unmodified) instead, and counted as degraded.
	MaxMapCost int
}

// runGuarded executes fn as one isolated per-document unit of work: a
// panic inside fn is recovered into a FailureRecord instead of crashing
// the build, an error return becomes a FailError record, and — when
// timeout > 0 — fn runs on its own goroutine and is abandoned with a
// FailTimeout record if the deadline passes. A nil return means fn
// completed and its results may be used.
//
// On timeout the abandoned goroutine keeps running to completion on its
// own data and is then discarded; the caller must not touch results after
// a timeout record, which the happens-before edge of the result channel
// guarantees race-free.
func runGuarded(stage, source string, timeout time.Duration, fn func() error) *FailureRecord {
	if timeout <= 0 {
		return recoverWrap(stage, source, fn)
	}
	ch := make(chan *FailureRecord, 1)
	go func() {
		ch <- recoverWrap(stage, source, fn)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case rec := <-ch:
		return rec
	case <-t.C:
		return &FailureRecord{
			Stage: stage,
			URL:   source,
			Kind:  FailTimeout,
			Err:   fmt.Sprintf("exceeded per-document deadline %v", timeout),
		}
	}
}

// recoverWrap runs fn, converting a panic into a FailPanic record and an
// error into a FailError record.
func recoverWrap(stage, source string, fn func() error) (rec *FailureRecord) {
	defer func() {
		if p := recover(); p != nil {
			rec = &FailureRecord{
				Stage: stage,
				URL:   source,
				Kind:  FailPanic,
				Err:   fmt.Sprint(p),
				Stack: string(debug.Stack()),
			}
		}
	}()
	if err := fn(); err != nil {
		return &FailureRecord{Stage: stage, URL: source, Kind: FailError, Err: err.Error()}
	}
	return nil
}

// QuarantinedDoc is one entry of a QuarantineStore: the failure record
// plus the stable id under which the document's original HTML is kept for
// replay.
type QuarantinedDoc struct {
	// ID is the stable entry id, derived from the URL and failure time.
	ID string
	// Record is the failure that sent the document here.
	Record FailureRecord
}

// QuarantineStore is a directory-backed log of quarantined documents. Each
// entry is a pair of files named by a stable id derived from the document
// source: <id>.json (the FailureRecord) and <id>.html (the original
// input), so a document that failed the pipeline can be listed, inspected,
// and replayed after a fix (see the `webrev quarantine` subcommand). Safe
// for concurrent use.
type QuarantineStore struct {
	dir string
	mu  sync.Mutex
}

// OpenQuarantineStore opens (creating if needed) the store at dir.
func OpenQuarantineStore(dir string) (*QuarantineStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty quarantine directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: quarantine store: %w", err)
	}
	return &QuarantineStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (q *QuarantineStore) Dir() string { return q.dir }

// quarantineID derives the stable file id for a document source name.
func quarantineID(source string) string {
	h := fnv.New64a()
	h.Write([]byte(source))
	return fmt.Sprintf("q-%016x", h.Sum64())
}

// Put persists one quarantined document: its failure record and original
// HTML. A later failure of the same source overwrites the earlier entry.
func (q *QuarantineStore) Put(rec FailureRecord, html string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	id := quarantineID(rec.URL)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("core: quarantine store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(q.dir, id+".html"), []byte(html), 0o644); err != nil {
		return fmt.Errorf("core: quarantine store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(q.dir, id+".json"), data, 0o644); err != nil {
		return fmt.Errorf("core: quarantine store: %w", err)
	}
	return nil
}

// List returns every quarantined document, sorted by source name.
func (q *QuarantineStore) List() ([]QuarantinedDoc, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(q.dir, "q-*.json"))
	if err != nil {
		return nil, fmt.Errorf("core: quarantine store: %w", err)
	}
	var out []QuarantinedDoc
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return nil, fmt.Errorf("core: quarantine store: %w", err)
		}
		var rec FailureRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("core: quarantine store: %s: %w", m, err)
		}
		id := strings.TrimSuffix(filepath.Base(m), ".json")
		out = append(out, QuarantinedDoc{ID: id, Record: rec})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Record.URL < out[j].Record.URL })
	return out, nil
}

// HTML returns the original input of a quarantined document by id.
func (q *QuarantineStore) HTML(id string) (string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(q.dir, id+".html"))
	if err != nil {
		return "", fmt.Errorf("core: quarantine store: %w", err)
	}
	return string(data), nil
}

// Remove deletes a quarantined document's record and input by id — the
// bookkeeping of a successful replay.
func (q *QuarantineStore) Remove(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := os.Remove(filepath.Join(q.dir, id+".json")); err != nil {
		return fmt.Errorf("core: quarantine store: %w", err)
	}
	// The HTML may already be gone; only the record is authoritative.
	os.Remove(filepath.Join(q.dir, id+".html"))
	return nil
}

// failureSink collects per-document failures from concurrent workers and
// forwards the dropped documents' originals to an optional persistent
// store.
type failureSink struct {
	store *QuarantineStore

	mu          sync.Mutex
	quarantined []FailureRecord
	degraded    []FailureRecord
	storeErr    error
}

// quarantine records a dropped document; html (when non-empty) is
// persisted for replay.
func (s *failureSink) quarantine(rec FailureRecord, html string) {
	s.mu.Lock()
	s.quarantined = append(s.quarantined, rec)
	s.mu.Unlock()
	if s.store != nil {
		if err := s.store.Put(rec, html); err != nil {
			s.mu.Lock()
			if s.storeErr == nil {
				s.storeErr = err
			}
			s.mu.Unlock()
		}
	}
}

// degrade records a document that was kept but limited.
func (s *failureSink) degrade(rec FailureRecord) {
	s.mu.Lock()
	s.degraded = append(s.degraded, rec)
	s.mu.Unlock()
}

// restoreQuarantined registers quarantine records carried over from a
// checkpoint, without re-persisting them (a configured store already
// holds them from the original run).
func (s *failureSink) restoreQuarantined(recs []FailureRecord) {
	s.mu.Lock()
	s.quarantined = append(s.quarantined, recs...)
	s.mu.Unlock()
}

// snapshotQuarantined returns the quarantine records so far, sorted by
// document source for deterministic reporting across worker interleavings.
func (s *failureSink) snapshotQuarantined() []FailureRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]FailureRecord(nil), s.quarantined...)
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// snapshotDegraded returns the degradation records so far, sorted by
// document source.
func (s *failureSink) snapshotDegraded() []FailureRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]FailureRecord(nil), s.degraded...)
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// err returns the first quarantine-store write failure, if any.
func (s *failureSink) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeErr
}
