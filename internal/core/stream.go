package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"webrev/internal/dom"
	"webrev/internal/mapping"
	"webrev/internal/obs"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// StreamSink receives each document of a streaming build as its DTD-guided
// mapping finishes. Documents arrive in input order (an in-order emitter
// runs ahead of the mapping workers, so delivery starts as soon as the
// first document's mapping is done, not after all of them). A non-nil error
// stops further deliveries and is returned by BuildStreamTo; mapping of the
// remaining documents still completes.
type StreamSink func(doc *Document, conformed *dom.Node, stats mapping.EditStats) error

// BuildStream runs the complete pipeline over a channel of sources: the
// streaming counterpart of Build. Documents are converted and their schema
// statistics folded into per-worker mergeable accumulators as they arrive
// (see schema.Accumulator), so schema discovery overlaps document
// production — a crawl (AcquireStream), a generator, or any other producer
// — instead of waiting behind it. Once the input channel closes, the shard
// statistics merge (obs.StageMerge), the majority schema is mined and the
// DTD derived exactly as in Build, and every document is mapped to conform.
//
// Memory stays bounded while the input is open: at most Config.MaxInFlight
// documents are held between acceptance and statistics fold, and a
// document's HTML source is dropped as soon as its conversion finishes
// (only the converted XML tree is retained for the mapping stage).
// Acceptance blocks when the cap is reached, propagating backpressure to
// the producer. The peak level is recorded on the
// obs.GaugeStreamInFlightPeak gauge.
//
// Given the same sources in the same order, BuildStream's repository is
// byte-identical to Build's: per-document work is deterministic and the
// accumulator merge is exactly order-independent.
//
// Per-document work runs inside the same fault boundary as BuildContext:
// a panic, per-document deadline overrun, or injected error quarantines
// the document (recorded on Repository.Quarantined) instead of aborting
// the stream, subject to the Config.MaxFailureRatio error budget.
//
// With Config.CheckpointDir set the build is crash-resumable: the worker
// accumulators, converted documents, and quarantine log snapshot to the
// directory every Config.CheckpointEvery folds, and a later BuildStream
// over the same source stream skips the already-processed prefix and
// produces output byte-identical to an uninterrupted run.
//
// On context cancellation the build abandons its result and returns the
// context error after its workers drain (writing a final checkpoint
// snapshot first, when checkpointing is on).
func (p *Pipeline) BuildStream(ctx context.Context, in <-chan Source) (*Repository, error) {
	return p.BuildStreamTo(ctx, in, nil)
}

// BuildStreamTo is BuildStream with a sink receiving each conformed
// document as its mapping finishes; see StreamSink. A nil sink is allowed.
// Quarantined documents are never delivered to the sink.
func (p *Pipeline) BuildStreamTo(ctx context.Context, in <-chan Source, sink StreamSink) (*Repository, error) {
	workers := p.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capDocs := p.cfg.MaxInFlight
	if capDocs <= 0 {
		capDocs = 4 * workers
	}
	if workers > capDocs {
		// The cap is a hard memory bound: never run more workers than
		// documents allowed in flight.
		workers = capDocs
	}

	fsink, err := p.openFailureSink()
	if err != nil {
		return nil, err
	}
	var (
		ckpt   *checkpointer
		resume *resumeState
	)
	if p.cfg.CheckpointDir != "" {
		if resume, err = loadCheckpoint(p.cfg.CheckpointDir); err != nil {
			return nil, err
		}
		if ckpt, err = newCheckpointer(p.cfg.CheckpointDir, p.cfg.CheckpointEvery, workers, p.tr); err != nil {
			return nil, err
		}
		if resume != nil {
			// Seed the new run with the snapshot so the next snapshot (and
			// a second resume) still covers the restored prefix, and carry
			// the restored quarantine log into this run's report.
			if err := ckpt.seed(resume); err != nil {
				return nil, err
			}
			recs := make([]FailureRecord, 0, len(resume.quar))
			for _, rec := range resume.quar {
				recs = append(recs, rec)
			}
			fsink.restoreQuarantined(recs)
		}
	}

	var (
		mu       sync.Mutex
		docs     []*Document
		inFlight int64
		peak     int64
	)
	placeDoc := func(idx int, d *Document) {
		mu.Lock()
		for len(docs) <= idx {
			docs = append(docs, nil)
		}
		docs[idx] = d
		mu.Unlock()
	}
	shards := make([]*schema.Accumulator, workers)
	for w := range shards {
		shards[w] = schema.NewAccumulator(0)
	}
	// jobs is buffered to the cap so a burst of arrivals (a crawler
	// finishing a fetch window) is accepted immediately and converted
	// during the producer's next idle period; the semaphore, not this
	// buffer, is what bounds held documents.
	jobs := make(chan streamJob, capDocs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, capDocs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				d, degraded, failed := p.convertGuarded(j.src.Name, j.src.HTML)
				if failed != nil {
					fsink.quarantine(*failed, j.src.HTML)
					if ckpt != nil {
						ckpt.quarantine(j.idx, *failed)
					}
				} else {
					if degraded != nil {
						fsink.degrade(*degraded)
					}
					j.src.HTML = "" // conversion done; drop the raw source
					paths := p.ExtractPaths(d)
					if ckpt != nil {
						ckpt.fold(w, j.idx, d, paths)
					} else {
						shards[w].Add(j.idx, paths)
					}
					placeDoc(j.idx, d)
				}
				cur := atomic.AddInt64(&inFlight, -1)
				if p.tr.Enabled() {
					p.tr.Set(obs.GaugeStreamInFlight, cur)
				}
				<-sem
				// Yield between documents. A buffered jobs queue means a
				// worker draining a burst never blocks, and on few-core
				// machines an unbroken conversion slice starves the
				// producer — a crawler gets its next fetch round dispatched
				// late, delaying the very idle time this worker should be
				// filling. The explicit yield keeps producer dispatch
				// latency bounded by one document, not one burst.
				runtime.Gosched()
			}
		}(w)
	}

	// Feed: reserve an in-flight slot before accepting a document, so at
	// most capDocs documents are ever held between acceptance and fold.
	// On resume, documents whose stream index the checkpoint already
	// covers (folded or quarantined) are skipped instead of dispatched.
	n := 0
	restored := 0
	var feedErr error
feed:
	for {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		}
		select {
		case <-ctx.Done():
			<-sem
			feedErr = ctx.Err()
			break feed
		case src, ok := <-in:
			if !ok {
				<-sem
				break feed
			}
			if resume != nil {
				if d := resume.docs[n]; d != nil {
					placeDoc(n, d)
					restored++
					n++
					<-sem
					continue
				}
				if _, quarantined := resume.quar[n]; quarantined {
					n++
					<-sem
					continue
				}
			}
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			if p.tr.Enabled() {
				p.tr.Set(obs.GaugeStreamInFlight, cur)
			}
			jobs <- streamJob{idx: n, src: src}
			n++
		}
	}
	close(jobs)
	wg.Wait()

	if ckpt != nil {
		// Final snapshot: everything accepted before a cancellation (or
		// the stream's end) is folded by now, so the snapshot covers the
		// complete prefix and a resumed build restarts exactly after it.
		ckpt.snapshot()
	}
	if p.tr.Enabled() {
		p.tr.Set(obs.GaugeStreamInFlight, 0)
		p.tr.Set(obs.GaugeStreamInFlightPeak, atomic.LoadInt64(&peak))
		p.tr.Set(obs.GaugeStreamShards, int64(workers))
		if restored > 0 {
			p.tr.Add(obs.CtrDocsRestored, int64(restored))
		}
	}
	if feedErr != nil {
		return nil, feedErr
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}

	repo := &Repository{TotalInput: n}
	repo.Quarantined = fsink.snapshotQuarantined()
	if err := p.checkBudget(repo, fsink); err != nil {
		repo.Degraded = fsink.snapshotDegraded()
		return repo, err
	}
	if ckpt != nil {
		if err := ckpt.firstErr(); err != nil {
			return repo, err
		}
	}

	// Compact away quarantined slots, preserving stream order.
	for _, d := range docs {
		if d != nil {
			repo.Docs = append(repo.Docs, d)
		}
	}
	if len(repo.Docs) == 0 {
		repo.Degraded = fsink.snapshotDegraded()
		return repo, fmt.Errorf("core: all %d documents quarantined", n)
	}

	// All statistics are in; combine the shards and mine once. With
	// checkpointing on, the checkpointer owns the shards (including any
	// restored snapshot state merged into shard 0).
	allShards := shards
	if ckpt != nil {
		allShards = ckpt.shards
	}
	sp := p.tr.StartSpan(obs.StageMerge)
	merged := allShards[0]
	for _, s := range allShards[1:] {
		if err := merged.Merge(s); err != nil {
			sp.End()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	sp.End()
	repo.Schema = p.MineStats(merged)
	repo.DTD = p.DeriveDTD(repo.Schema)

	// Map every survivor inside the fault boundary; a map-stage failure
	// quarantines the document and it is compacted out afterwards.
	ns := len(repo.Docs)
	conformed := make([]*dom.Node, ns)
	stats := make([]mapping.EditStats, ns)
	dropped := make([]bool, ns)
	mapDoc := func(i int) {
		out, st, degraded, failed := p.conformGuarded(repo.Docs[i], repo.DTD)
		if failed != nil {
			fsink.quarantine(*failed, "")
			dropped[i] = true
			return
		}
		if degraded != nil {
			fsink.degrade(*degraded)
		}
		conformed[i], stats[i] = out, st
	}
	var sinkErr error
	if sink == nil {
		p.forEach(ns, mapDoc)
	} else {
		// Stream conformance out: an in-order emitter delivers document i
		// the moment documents 0..i have all finished mapping, while later
		// documents are still being mapped. Quarantined documents are
		// skipped, never delivered.
		done := make(chan int, ns)
		go func() {
			p.forEach(ns, func(i int) {
				mapDoc(i)
				done <- i
			})
			close(done)
		}()
		ready := make([]bool, ns)
		emitted := 0
		for i := range done {
			ready[i] = true
			for emitted < ns && ready[emitted] {
				if sinkErr == nil && !dropped[emitted] {
					sinkErr = sink(repo.Docs[emitted], conformed[emitted], stats[emitted])
				}
				emitted++
			}
		}
	}
	kept := 0
	for i := 0; i < ns; i++ {
		if dropped[i] {
			continue
		}
		repo.Docs[kept] = repo.Docs[i]
		conformed[kept] = conformed[i]
		stats[kept] = stats[i]
		kept++
	}
	repo.Docs = repo.Docs[:kept]
	repo.Conformed = conformed[:kept]
	repo.MapStats = stats[:kept]
	repo.Quarantined = fsink.snapshotQuarantined()
	repo.Degraded = fsink.snapshotDegraded()
	if err := p.checkBudget(repo, fsink); err != nil {
		return repo, err
	}

	if p.tr.Enabled() {
		var out int64
		for _, c := range repo.Conformed {
			out += int64(len(xmlout.Marshal(c)))
		}
		p.tr.Add(obs.CtrBytesOut, out)
	}
	repo.Stages = obs.StagesOf(p.tr)
	if sinkErr != nil {
		return repo, fmt.Errorf("core: stream sink: %w", sinkErr)
	}
	if ckpt != nil {
		// The build completed; clear the checkpoint so a later run over
		// the same directory starts fresh instead of resuming into an
		// already-finished state.
		ckpt.clear()
	}
	return repo, nil
}

// streamJob carries one accepted source and its corpus index to a
// conversion worker.
type streamJob struct {
	idx int
	src Source
}

// SourceChan adapts a slice of sources into the channel BuildStream
// consumes, for callers whose corpus is already materialized.
func SourceChan(sources []Source) <-chan Source {
	ch := make(chan Source)
	go func() {
		for _, s := range sources {
			ch <- s
		}
		close(ch)
	}()
	return ch
}
