package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"webrev/internal/dom"
	"webrev/internal/mapping"
	"webrev/internal/obs"
	"webrev/internal/schema"
	"webrev/internal/xmlout"
)

// StreamSink receives each document of a streaming build as its DTD-guided
// mapping finishes. Documents arrive in input order (an in-order emitter
// runs ahead of the mapping workers, so delivery starts as soon as the
// first document's mapping is done, not after all of them). A non-nil error
// stops further deliveries and is returned by BuildStreamTo; mapping of the
// remaining documents still completes.
type StreamSink func(doc *Document, conformed *dom.Node, stats mapping.EditStats) error

// BuildStream runs the complete pipeline over a channel of sources: the
// streaming counterpart of Build. Documents are converted and their schema
// statistics folded into per-worker mergeable accumulators as they arrive
// (see schema.Accumulator), so schema discovery overlaps document
// production — a crawl (AcquireStream), a generator, or any other producer
// — instead of waiting behind it. Once the input channel closes, the shard
// statistics merge (obs.StageMerge), the majority schema is mined and the
// DTD derived exactly as in Build, and every document is mapped to conform.
//
// Memory stays bounded while the input is open: at most Config.MaxInFlight
// documents are held between acceptance and statistics fold, and a
// document's HTML source is dropped as soon as its conversion finishes
// (only the converted XML tree is retained for the mapping stage).
// Acceptance blocks when the cap is reached, propagating backpressure to
// the producer. The peak level is recorded on the
// obs.GaugeStreamInFlightPeak gauge.
//
// Given the same sources in the same order, BuildStream's repository is
// byte-identical to Build's: per-document work is deterministic and the
// accumulator merge is exactly order-independent.
//
// On context cancellation the build abandons its result and returns the
// context error after its workers drain.
func (p *Pipeline) BuildStream(ctx context.Context, in <-chan Source) (*Repository, error) {
	return p.BuildStreamTo(ctx, in, nil)
}

// BuildStreamTo is BuildStream with a sink receiving each conformed
// document as its mapping finishes; see StreamSink. A nil sink is allowed.
func (p *Pipeline) BuildStreamTo(ctx context.Context, in <-chan Source, sink StreamSink) (*Repository, error) {
	workers := p.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capDocs := p.cfg.MaxInFlight
	if capDocs <= 0 {
		capDocs = 4 * workers
	}
	if workers > capDocs {
		// The cap is a hard memory bound: never run more workers than
		// documents allowed in flight.
		workers = capDocs
	}

	var (
		mu       sync.Mutex
		docs     []*Document
		inFlight int64
		peak     int64
	)
	shards := make([]*schema.Accumulator, workers)
	// jobs is buffered to the cap so a burst of arrivals (a crawler
	// finishing a fetch window) is accepted immediately and converted
	// during the producer's next idle period; the semaphore, not this
	// buffer, is what bounds held documents.
	jobs := make(chan streamJob, capDocs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, capDocs)
	for w := 0; w < workers; w++ {
		shards[w] = schema.NewAccumulator(0)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				d := p.Convert(j.src.Name, j.src.HTML)
				j.src.HTML = "" // conversion done; drop the raw source
				shards[w].Add(j.idx, p.ExtractPaths(d))
				mu.Lock()
				for len(docs) <= j.idx {
					docs = append(docs, nil)
				}
				docs[j.idx] = d
				mu.Unlock()
				cur := atomic.AddInt64(&inFlight, -1)
				if p.tr.Enabled() {
					p.tr.Set(obs.GaugeStreamInFlight, cur)
				}
				<-sem
				// Yield between documents. A buffered jobs queue means a
				// worker draining a burst never blocks, and on few-core
				// machines an unbroken conversion slice starves the
				// producer — a crawler gets its next fetch round dispatched
				// late, delaying the very idle time this worker should be
				// filling. The explicit yield keeps producer dispatch
				// latency bounded by one document, not one burst.
				runtime.Gosched()
			}
		}(w)
	}

	// Feed: reserve an in-flight slot before accepting a document, so at
	// most capDocs documents are ever held between acceptance and fold.
	n := 0
	var feedErr error
feed:
	for {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			feedErr = ctx.Err()
			break feed
		}
		select {
		case <-ctx.Done():
			<-sem
			feedErr = ctx.Err()
			break feed
		case src, ok := <-in:
			if !ok {
				<-sem
				break feed
			}
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
					break
				}
			}
			if p.tr.Enabled() {
				p.tr.Set(obs.GaugeStreamInFlight, cur)
			}
			jobs <- streamJob{idx: n, src: src}
			n++
		}
	}
	close(jobs)
	wg.Wait()

	if p.tr.Enabled() {
		p.tr.Set(obs.GaugeStreamInFlight, 0)
		p.tr.Set(obs.GaugeStreamInFlightPeak, atomic.LoadInt64(&peak))
		p.tr.Set(obs.GaugeStreamShards, int64(workers))
	}
	if feedErr != nil {
		return nil, feedErr
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}

	// All statistics are in; combine the shards and mine once.
	sp := p.tr.StartSpan(obs.StageMerge)
	merged := shards[0]
	for _, s := range shards[1:] {
		if err := merged.Merge(s); err != nil {
			sp.End()
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	sp.End()

	repo := &Repository{
		Docs:      docs,
		Conformed: make([]*dom.Node, n),
		MapStats:  make([]mapping.EditStats, n),
	}
	repo.Schema = p.mineStats(merged)
	repo.DTD = p.DeriveDTD(repo.Schema)

	mapDoc := func(i int) {
		repo.Conformed[i], repo.MapStats[i] = mapping.ConformTraced(repo.Docs[i].XML, repo.DTD, p.tr)
	}
	var sinkErr error
	if sink == nil {
		p.forEach(n, mapDoc)
	} else {
		// Stream conformance out: an in-order emitter delivers document i
		// the moment documents 0..i have all finished mapping, while later
		// documents are still being mapped.
		done := make(chan int, n)
		go func() {
			p.forEach(n, func(i int) {
				mapDoc(i)
				done <- i
			})
			close(done)
		}()
		ready := make([]bool, n)
		emitted := 0
		for i := range done {
			ready[i] = true
			for emitted < n && ready[emitted] {
				if sinkErr == nil {
					sinkErr = sink(repo.Docs[emitted], repo.Conformed[emitted], repo.MapStats[emitted])
				}
				emitted++
			}
		}
	}
	if p.tr.Enabled() {
		var out int64
		for _, c := range repo.Conformed {
			out += int64(len(xmlout.Marshal(c)))
		}
		p.tr.Add(obs.CtrBytesOut, out)
	}
	repo.Stages = obs.StagesOf(p.tr)
	if sinkErr != nil {
		return repo, fmt.Errorf("core: stream sink: %w", sinkErr)
	}
	return repo, nil
}

// streamJob carries one accepted source and its corpus index to a
// conversion worker.
type streamJob struct {
	idx int
	src Source
}

// SourceChan adapts a slice of sources into the channel BuildStream
// consumes, for callers whose corpus is already materialized.
func SourceChan(sources []Source) <-chan Source {
	ch := make(chan Source)
	go func() {
		for _, s := range sources {
			ch <- s
		}
		close(ch)
	}()
	return ch
}
